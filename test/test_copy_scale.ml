(* Scaling properties of the sparse copy table.

   The table used to be a dense per-item [int array] over all clients;
   the sparse rewrite (compact holder vectors + per-site item indexes)
   must be observationally identical, so a reference model with the old
   dense shape is driven through random register/unregister/purge
   storms and every query compared after every step.  A separate check
   pins the purge-client cost: purging a site must not walk the whole
   table. *)

open Locking

(* --- Dense reference model ------------------------------------------------ *)

module Dense = struct
  type t = {
    clients : int;
    rows : (int, int array) Hashtbl.t; (* item -> per-client refcounts *)
  }

  let create ~clients = { clients; rows = Hashtbl.create 64 }

  let row t item =
    match Hashtbl.find_opt t.rows item with
    | Some r -> r
    | None ->
      let r = Array.make t.clients 0 in
      Hashtbl.replace t.rows item r;
      r

  let register t item ~client =
    let r = row t item in
    r.(client) <- r.(client) + 1

  let unregister t item ~client =
    match Hashtbl.find_opt t.rows item with
    | Some r when r.(client) > 0 -> r.(client) <- r.(client) - 1
    | Some _ | None -> ()

  let refs t item ~client =
    match Hashtbl.find_opt t.rows item with
    | Some r -> r.(client)
    | None -> 0

  let holders t item =
    match Hashtbl.find_opt t.rows item with
    | None -> []
    | Some r ->
      let acc = ref [] in
      for c = t.clients - 1 downto 0 do
        if r.(c) > 0 then acc := c :: !acc
      done;
      !acc

  let holders_except t item ~client =
    List.filter (fun c -> c <> client) (holders t item)

  let copies t =
    Hashtbl.fold
      (fun _ r acc ->
        acc + Array.fold_left (fun a n -> if n > 0 then a + 1 else a) 0 r)
      t.rows 0

  let client_copies t ~client =
    Hashtbl.fold
      (fun _ r acc -> if r.(client) > 0 then acc + 1 else acc)
      t.rows 0

  let purge_client t ~client =
    Hashtbl.fold
      (fun _ r acc ->
        if r.(client) > 0 then begin
          r.(client) <- 0;
          acc + 1
        end
        else acc)
      t.rows 0
end

(* --- Model equivalence under random storms -------------------------------- *)

type op = Register of int * int | Unregister of int * int | Purge of int

let op_gen ~clients ~items =
  QCheck.Gen.(
    frequency
      [
        (5, map2 (fun i c -> Register (i, c)) (int_bound (items - 1))
            (int_bound (clients - 1)));
        (4, map2 (fun i c -> Unregister (i, c)) (int_bound (items - 1))
            (int_bound (clients - 1)));
        (1, map (fun c -> Purge c) (int_bound (clients - 1)));
      ])

let show_op = function
  | Register (i, c) -> Printf.sprintf "Register(%d,%d)" i c
  | Unregister (i, c) -> Printf.sprintf "Unregister(%d,%d)" i c
  | Purge c -> Printf.sprintf "Purge(%d)" c

let prop_sparse_matches_dense =
  let clients = 7 and items = 9 in
  let arb =
    QCheck.make
      ~print:(fun ops -> String.concat "; " (List.map show_op ops))
      QCheck.Gen.(list_size (int_range 0 120) (op_gen ~clients ~items))
  in
  QCheck.Test.make ~name:"sparse copy table matches dense reference" ~count:300
    arb
    (fun ops ->
      let sparse = Copy_table.create ~clients in
      let dense = Dense.create ~clients in
      List.for_all
        (fun op ->
          (match op with
          | Register (i, c) ->
            Copy_table.register sparse i ~client:c;
            Dense.register dense i ~client:c
          | Unregister (i, c) ->
            Copy_table.unregister sparse i ~client:c;
            Dense.unregister dense i ~client:c
          | Purge c ->
            let got = Copy_table.purge_client sparse ~client:c in
            let want = Dense.purge_client dense ~client:c in
            if got <> want then
              QCheck.Test.fail_reportf "purge returned %d, expected %d" got
                want);
          (* Compare every observation the server makes. *)
          Copy_table.copies sparse = Dense.copies dense
          && List.for_all
               (fun c ->
                 Copy_table.client_copies sparse ~client:c
                 = Dense.client_copies dense ~client:c)
               (List.init clients Fun.id)
          && List.for_all
               (fun i ->
                 Copy_table.holders sparse i = Dense.holders dense i
                 && List.for_all
                      (fun c ->
                        Copy_table.refs sparse i ~client:c
                        = Dense.refs dense i ~client:c
                        && Copy_table.holds sparse i ~client:c
                           = (Dense.refs dense i ~client:c > 0)
                        && Copy_table.holders_except sparse i ~client:c
                           = Dense.holders_except dense i ~client:c)
                      (List.init clients Fun.id))
               (List.init items Fun.id))
        ops)

(* --- Purge cost: no full-table walk --------------------------------------- *)

(* A site's purge must cost O(that site's copies), independent of the
   table size.  Build a table with 200k rows held by other sites, then
   purge a site holding nothing many times over: each purge is O(1), so
   even a slow CI box finishes far inside the bound, while a dense
   full-table walk (2 * 10^8 row visits here) cannot. *)
let test_purge_cost_independent_of_table () =
  let rows = 200_000 and purges = 1_000 in
  let ct = Copy_table.create ~clients:4 in
  for i = 0 to rows - 1 do
    Copy_table.register ct i ~client:(1 + (i mod 3))
  done;
  (* Client 0 holds a handful; the first purge returns them, the rest
     purge an empty site. *)
  for i = 0 to 9 do
    Copy_table.register ct i ~client:0
  done;
  let t0 = Unix.gettimeofday () in
  let first = Copy_table.purge_client ct ~client:0 in
  for _ = 2 to purges do
    ignore (Copy_table.purge_client ct ~client:0 : int)
  done;
  let dt = Unix.gettimeofday () -. t0 in
  Alcotest.(check int) "first purge returns the site's copies" 10 first;
  Alcotest.(check int) "table untouched for other sites" rows
    (Copy_table.copies ct);
  if dt > 1.0 then
    Alcotest.failf
      "%d purges over a %d-row table took %.2fs — purge_client is walking \
       the table"
      purges rows dt

let suite =
  [
    QCheck_alcotest.to_alcotest prop_sparse_matches_dense;
    Alcotest.test_case "purge cost independent of table size" `Quick
      test_purge_cost_independent_of_table;
  ]

open Oodb_core

(* --- Config -------------------------------------------------------------- *)

let test_default_valid () =
  Config.validate Config.default;
  Alcotest.(check int) "client buffer pages" 312
    (Config.client_buf_pages Config.default);
  Alcotest.(check int) "server buffer pages" 625
    (Config.server_buf_pages Config.default);
  Alcotest.(check int) "client buffer objects" (312 * 20)
    (Config.client_buf_objects Config.default);
  Alcotest.(check int) "object bytes" 204 (Config.object_bytes Config.default)

let test_scaled () =
  let s = Config.scaled Config.default ~factor:9 in
  Config.validate s;
  Alcotest.(check int) "db x9" 11250 s.Config.db_pages;
  Alcotest.(check int) "client buffer follows" 2812 (Config.client_buf_pages s)

let test_msg_costs () =
  let cfg = Config.default in
  Alcotest.(check int) "control bytes" 256 (Config.control_bytes cfg);
  Alcotest.(check int) "page msg bytes" (4096 + 256) (Config.page_msg_bytes cfg);
  Alcotest.(check int) "objs msg bytes" ((3 * 204) + 256)
    (Config.objs_msg_bytes cfg ~count:3);
  let inst = Config.msg_instr cfg ~bytes:4096 in
  Alcotest.(check (float 1.0)) "page payload ~30000 instr" 30_000.0 inst

let test_invalid_rejected () =
  List.iter
    (fun cfg ->
      Alcotest.(check bool) "rejected" true
        (try
           Config.validate cfg;
           false
         with Invalid_argument _ -> true))
    [
      { Config.default with Config.num_clients = 0 };
      { Config.default with Config.server_disks = 0 };
      { Config.default with Config.min_disk_time = 0.05; max_disk_time = 0.01 };
      { Config.default with Config.db_pages = 0 };
    ]

(* --- Algo ---------------------------------------------------------------- *)

let test_algo_roundtrip () =
  List.iter
    (fun a ->
      Alcotest.(check bool) "roundtrip" true
        (Algo.of_string (Algo.to_string a) = Some a))
    Algo.all;
  Alcotest.(check bool) "unknown" true (Algo.of_string "nope" = None)

let test_algo_axes () =
  Alcotest.(check bool) "OS ships objects" false (Algo.transfers_pages Algo.OS);
  Alcotest.(check bool) "PS ships pages" true (Algo.transfers_pages Algo.PS);
  Alcotest.(check bool) "PS locks pages only" false (Algo.locks_objects Algo.PS);
  Alcotest.(check bool) "PS-OO object copies" false
    (Algo.page_grain_copies Algo.PS_OO);
  Alcotest.(check bool) "PS-OA page copies" true
    (Algo.page_grain_copies Algo.PS_OA)

(* --- Metrics ------------------------------------------------------------- *)

let test_metrics_counts () =
  let m = Metrics.create () in
  Metrics.note_msg m Metrics.M_read_req ~bytes:256;
  Metrics.note_msg m Metrics.M_read_reply ~bytes:4352;
  Metrics.note_commit m ~response:0.5;
  Metrics.note_commit m ~response:1.5;
  Metrics.note_abort m;
  Alcotest.(check int) "messages" 2 (Metrics.messages m);
  Alcotest.(check int) "by class" 1 (Metrics.messages_of m Metrics.M_read_req);
  Alcotest.(check int) "bytes" 4608 (Metrics.bytes m);
  Alcotest.(check int) "commits" 2 (Metrics.commits m);
  Alcotest.(check int) "aborts" 1 (Metrics.aborts m);
  Alcotest.(check (float 1e-9)) "msgs/commit" 1.0 (Metrics.msgs_per_commit m);
  Alcotest.(check (float 1e-9)) "throughput" 0.2 (Metrics.throughput m ~now:10.0)

let test_metrics_reset () =
  let m = Metrics.create () in
  Metrics.note_commit m ~response:1.0;
  Metrics.note_msg m Metrics.M_commit ~bytes:100;
  Metrics.reset m ~now:50.0;
  Alcotest.(check int) "commits cleared" 0 (Metrics.commits m);
  Alcotest.(check int) "messages cleared" 0 (Metrics.messages m);
  Metrics.note_commit m ~response:1.0;
  Alcotest.(check (float 1e-9)) "window restarts" 0.1
    (Metrics.throughput m ~now:60.0)

(* --- Analytic (fig 5) ----------------------------------------------------- *)

let test_page_write_prob () =
  Alcotest.(check (float 1e-12)) "k=1 identity" 0.3
    (Analytic.page_write_prob ~object_write_prob:0.3 ~objects_accessed:1);
  Alcotest.(check (float 1e-9)) "k=4" (1.0 -. (0.8 ** 4.0))
    (Analytic.page_write_prob ~object_write_prob:0.2 ~objects_accessed:4);
  Alcotest.(check (float 1e-12)) "w=0" 0.0
    (Analytic.page_write_prob ~object_write_prob:0.0 ~objects_accessed:12);
  Alcotest.(check (float 1e-12)) "w=1" 1.0
    (Analytic.page_write_prob ~object_write_prob:1.0 ~objects_accessed:5)

let test_page_write_prob_monotone () =
  (* Increasing in both w and k. *)
  let f w k = Analytic.page_write_prob ~object_write_prob:w ~objects_accessed:k in
  Alcotest.(check bool) "monotone in w" true (f 0.2 4 < f 0.3 4);
  Alcotest.(check bool) "monotone in k" true (f 0.2 4 < f 0.2 12)

let test_page_write_prob_range () =
  let r =
    Analytic.page_write_prob_range ~object_write_prob:0.2
      ~locality:{ Workload.Wparams.lo = 1; hi = 7 }
  in
  let lo = Analytic.page_write_prob ~object_write_prob:0.2 ~objects_accessed:1 in
  let hi = Analytic.page_write_prob ~object_write_prob:0.2 ~objects_accessed:7 in
  Alcotest.(check bool) "between extremes" true (r > lo && r < hi)

let prop_page_write_prob_bounds =
  QCheck.Test.make ~name:"page write probability in [0,1]" ~count:300
    QCheck.(pair (float_bound_inclusive 1.0) (int_range 0 40))
    (fun (w, k) ->
      let v = Analytic.page_write_prob ~object_write_prob:w ~objects_accessed:k in
      v >= 0.0 && v <= 1.0)

(* --- Experiments specs ----------------------------------------------------- *)

let test_experiment_specs () =
  Alcotest.(check int) "eleven figures" 11 (List.length Experiments.all);
  Alcotest.(check bool) "fig3 exists" true (Experiments.find "fig3" <> None);
  Alcotest.(check bool) "unknown" true (Experiments.find "fig99" = None);
  List.iter
    (fun spec ->
      (* Every spec must produce a valid config and workload. *)
      let cfg = Experiments.cfg_of spec in
      Config.validate cfg;
      List.iter
        (fun wp -> ignore (Experiments.params_of spec ~write_prob:wp))
        spec.Experiments.write_probs)
    Experiments.all

let test_figure5_data () =
  let curves = Experiments.figure5 () in
  Alcotest.(check int) "three curves" 3 (List.length curves);
  List.iter
    (fun (_, pts) ->
      (* monotone nondecreasing in w *)
      ignore
        (List.fold_left
           (fun prev (_, v) ->
             if v < prev -. 1e-12 then Alcotest.fail "not monotone";
             v)
           0.0 pts))
    curves

(* --- Trace laziness ------------------------------------------------------ *)

(* With the [oodb.kernel] source disabled (the default), trace call
   sites must not format their arguments: an entire simulated run may
   render zero messages.  Flipping the source level on (no reporter
   needed — rendering happens before the reporter) makes the same run
   format them, proving the call sites are live. *)
let test_trace_lazy_when_off () =
  let run () =
    let spec = Option.get (Experiments.find "fig3") in
    let cfg = Experiments.cfg_of spec in
    let params = Experiments.params_of spec ~write_prob:0.1 in
    ignore
      (Runner.run ~seed:7 ~warmup:2.0 ~measure:8.0 ~cfg ~algo:Algo.PS_AA
         ~params ())
  in
  Logs.Src.set_level Trace.src None;
  Alcotest.(check bool) "tracing off" false (Trace.active ());
  let before = Trace.rendered () in
  run ();
  Alcotest.(check int) "tracing off formats nothing" 0
    (Trace.rendered () - before);
  Logs.Src.set_level Trace.src (Some Logs.Debug);
  let before = Trace.rendered () in
  Fun.protect
    ~finally:(fun () -> Logs.Src.set_level Trace.src None)
    run;
  Alcotest.(check bool) "tracing on formats events" true
    (Trace.rendered () - before > 0)

let suite =
  [
    Alcotest.test_case "default config valid" `Quick test_default_valid;
    Alcotest.test_case "scaled config" `Quick test_scaled;
    Alcotest.test_case "message costs" `Quick test_msg_costs;
    Alcotest.test_case "invalid configs rejected" `Quick test_invalid_rejected;
    Alcotest.test_case "algo roundtrip" `Quick test_algo_roundtrip;
    Alcotest.test_case "algo axes" `Quick test_algo_axes;
    Alcotest.test_case "metrics counts" `Quick test_metrics_counts;
    Alcotest.test_case "metrics reset" `Quick test_metrics_reset;
    Alcotest.test_case "page write probability" `Quick test_page_write_prob;
    Alcotest.test_case "page write prob monotone" `Quick
      test_page_write_prob_monotone;
    Alcotest.test_case "page write prob over range" `Quick
      test_page_write_prob_range;
    QCheck_alcotest.to_alcotest prop_page_write_prob_bounds;
    Alcotest.test_case "experiment specs" `Quick test_experiment_specs;
    Alcotest.test_case "figure 5 data" `Quick test_figure5_data;
    Alcotest.test_case "trace off allocates no log strings" `Slow
      test_trace_lazy_when_off;
  ]

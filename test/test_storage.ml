open Storage

(* --- Ids --------------------------------------------------------------- *)

let test_oid_roundtrip () =
  let o = Ids.Oid.make ~page:7 ~slot:13 in
  let i = Ids.Oid.to_int ~objects_per_page:20 o in
  Alcotest.(check int) "encoding" 153 i;
  let o' = Ids.Oid.of_int ~objects_per_page:20 i in
  Alcotest.(check bool) "roundtrip" true (Ids.Oid.equal o o')

let test_oid_compare () =
  let a = Ids.Oid.make ~page:1 ~slot:5 in
  let b = Ids.Oid.make ~page:2 ~slot:0 in
  let c = Ids.Oid.make ~page:1 ~slot:6 in
  Alcotest.(check bool) "page dominates" true (Ids.Oid.compare a b < 0);
  Alcotest.(check bool) "slot breaks ties" true (Ids.Oid.compare a c < 0);
  Alcotest.(check bool) "equal" true (Ids.Oid.compare a a = 0)

let test_oid_invalid () =
  Alcotest.(check bool) "negative rejected" true
    (try
       ignore (Ids.Oid.make ~page:(-1) ~slot:0);
       false
     with Invalid_argument _ -> true)

(* --- LRU --------------------------------------------------------------- *)

let test_lru_basic () =
  let c = Lru.create ~capacity:2 in
  Alcotest.(check (option (pair int string))) "evict none" None (Lru.add c 1 "a");
  Alcotest.(check (option (pair int string))) "evict none" None (Lru.add c 2 "b");
  Alcotest.(check (option string)) "find" (Some "a") (Lru.find c 1);
  Alcotest.(check int) "size" 2 (Lru.size c)

let test_lru_eviction_order () =
  let c = Lru.create ~capacity:2 in
  ignore (Lru.add c 1 "a");
  ignore (Lru.add c 2 "b");
  (* 1 is LRU; adding 3 evicts it *)
  (match Lru.add c 3 "c" with
  | Some (k, v) ->
    Alcotest.(check int) "victim key" 1 k;
    Alcotest.(check string) "victim value" "a" v
  | None -> Alcotest.fail "expected eviction");
  Alcotest.(check bool) "victim gone" false (Lru.mem c 1)

let test_lru_touch_changes_victim () =
  let c = Lru.create ~capacity:2 in
  ignore (Lru.add c 1 "a");
  ignore (Lru.add c 2 "b");
  ignore (Lru.find c 1);
  (* touch 1: now 2 is LRU *)
  (match Lru.add c 3 "c" with
  | Some (k, _) -> Alcotest.(check int) "victim is 2" 2 k
  | None -> Alcotest.fail "expected eviction")

let test_lru_peek_no_touch () =
  let c = Lru.create ~capacity:2 in
  ignore (Lru.add c 1 "a");
  ignore (Lru.add c 2 "b");
  ignore (Lru.peek c 1);
  (* peek must NOT protect 1 *)
  (match Lru.add c 3 "c" with
  | Some (k, _) -> Alcotest.(check int) "victim still 1" 1 k
  | None -> Alcotest.fail "expected eviction")

let test_lru_replace_existing () =
  let c = Lru.create ~capacity:2 in
  ignore (Lru.add c 1 "a");
  ignore (Lru.add c 1 "a2");
  Alcotest.(check int) "no growth" 1 (Lru.size c);
  Alcotest.(check (option string)) "replaced" (Some "a2") (Lru.peek c 1)

let test_lru_remove () =
  let c = Lru.create ~capacity:3 in
  ignore (Lru.add c 1 "a");
  ignore (Lru.add c 2 "b");
  Alcotest.(check (option string)) "removed value" (Some "a") (Lru.remove c 1);
  Alcotest.(check (option string)) "absent" None (Lru.remove c 1);
  Alcotest.(check int) "size" 1 (Lru.size c);
  (* removal must not corrupt the recency list *)
  ignore (Lru.add c 3 "c");
  ignore (Lru.add c 4 "d");
  (match Lru.add c 5 "e" with
  | Some (k, _) -> Alcotest.(check int) "victim is 2" 2 k
  | None -> Alcotest.fail "expected eviction")

let test_lru_to_list_order () =
  let c = Lru.create ~capacity:3 in
  ignore (Lru.add c 1 "a");
  ignore (Lru.add c 2 "b");
  ignore (Lru.add c 3 "c");
  ignore (Lru.find c 1);
  Alcotest.(check (list int)) "MRU first" [ 1; 3; 2 ]
    (List.map fst (Lru.to_list c))

let test_lru_capacity_one () =
  let c = Lru.create ~capacity:1 in
  ignore (Lru.add c 1 "a");
  (match Lru.add c 2 "b" with
  | Some (1, "a") -> ()
  | _ -> Alcotest.fail "expected eviction of 1");
  Alcotest.(check bool) "2 present" true (Lru.mem c 2)

let prop_lru_never_exceeds_capacity =
  QCheck.Test.make ~name:"lru never exceeds capacity" ~count:200
    QCheck.(pair (int_range 1 10) (list (int_range 0 30)))
    (fun (cap, keys) ->
      let c = Lru.create ~capacity:cap in
      List.for_all
        (fun k ->
          ignore (Lru.add c k k);
          Lru.size c <= cap)
        keys)

let prop_lru_eviction_is_lru =
  QCheck.Test.make ~name:"lru evicts the least recently used key" ~count:200
    QCheck.(pair (int_range 1 8) (list (int_range 0 20)))
    (fun (cap, keys) ->
      let c = Lru.create ~capacity:cap in
      (* Track recency with a reference list (MRU at head). *)
      let recency = ref [] in
      List.for_all
        (fun k ->
          ignore (Lru.add c k k);
          recency := k :: List.filter (fun x -> x <> k) !recency;
          (* After each step the cache holds exactly the reference
             model's [cap] most recent keys. *)
          let expect = List.filteri (fun i _ -> i < cap) !recency in
          recency := expect;
          List.for_all (Lru.mem c) expect && Lru.size c = List.length expect)
        keys)

(* --- Buffer pool -------------------------------------------------------- *)

let test_pool_hit_miss () =
  let p = Buffer_pool.create ~capacity:2 in
  (match Buffer_pool.access p 1 with
  | Buffer_pool.Miss None -> ()
  | _ -> Alcotest.fail "expected cold miss");
  (match Buffer_pool.access p 1 with
  | Buffer_pool.Hit -> ()
  | _ -> Alcotest.fail "expected hit");
  Alcotest.(check bool) "resident" true (Buffer_pool.resident p 1)

let test_pool_eviction_dirty () =
  let p = Buffer_pool.create ~capacity:2 in
  ignore (Buffer_pool.access p 1);
  ignore (Buffer_pool.access p 2);
  Buffer_pool.mark_dirty p 1;
  ignore (Buffer_pool.access p 2);
  (* touch 2 so 1 is LRU *)
  (match Buffer_pool.access p 3 with
  | Buffer_pool.Miss (Some (1, true)) -> ()
  | Buffer_pool.Miss (Some (v, d)) ->
    Alcotest.failf "wrong victim %d dirty=%b" v d
  | _ -> Alcotest.fail "expected eviction");
  Alcotest.(check bool) "victim gone" false (Buffer_pool.resident p 1)

let test_pool_clean () =
  let p = Buffer_pool.create ~capacity:2 in
  ignore (Buffer_pool.access p 1);
  Buffer_pool.mark_dirty p 1;
  Alcotest.(check bool) "dirty" true (Buffer_pool.is_dirty p 1);
  Buffer_pool.clean p 1;
  Alcotest.(check bool) "clean" false (Buffer_pool.is_dirty p 1);
  Alcotest.(check int) "dirty count" 0 (Buffer_pool.dirty_count p)

let test_pool_mark_dirty_absent () =
  let p = Buffer_pool.create ~capacity:2 in
  Alcotest.(check bool) "absent mark rejected" true
    (try
       Buffer_pool.mark_dirty p 9;
       false
     with Invalid_argument _ -> true)

let suite =
  [
    Alcotest.test_case "oid roundtrip" `Quick test_oid_roundtrip;
    Alcotest.test_case "oid compare" `Quick test_oid_compare;
    Alcotest.test_case "oid invalid" `Quick test_oid_invalid;
    Alcotest.test_case "lru basic" `Quick test_lru_basic;
    Alcotest.test_case "lru eviction order" `Quick test_lru_eviction_order;
    Alcotest.test_case "lru touch changes victim" `Quick test_lru_touch_changes_victim;
    Alcotest.test_case "lru peek does not touch" `Quick test_lru_peek_no_touch;
    Alcotest.test_case "lru replace existing" `Quick test_lru_replace_existing;
    Alcotest.test_case "lru remove" `Quick test_lru_remove;
    Alcotest.test_case "lru to_list order" `Quick test_lru_to_list_order;
    Alcotest.test_case "lru capacity one" `Quick test_lru_capacity_one;
    QCheck_alcotest.to_alcotest prop_lru_never_exceeds_capacity;
    QCheck_alcotest.to_alcotest prop_lru_eviction_is_lru;
    Alcotest.test_case "pool hit/miss" `Quick test_pool_hit_miss;
    Alcotest.test_case "pool dirty eviction" `Quick test_pool_eviction_dirty;
    Alcotest.test_case "pool clean" `Quick test_pool_clean;
    Alcotest.test_case "pool mark_dirty absent" `Quick test_pool_mark_dirty_absent;
  ]

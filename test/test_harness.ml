(* The property that makes the parallel harness safe: a job's random
   stream is a pure function of its description, so results are
   byte-identical regardless of worker count, scheduling, or position
   in the job list. *)

open Oodb_core

let fig3_point () =
  let spec = Option.get (Experiments.find "fig3") in
  { spec with Experiments.write_probs = [ 0.1 ] }

(* --- Pool mechanics ------------------------------------------------------ *)

let test_pool_map_ordering () =
  let items = List.init 57 (fun i -> i) in
  let f x = (x * x) + 1 in
  let seq = List.map f items in
  List.iter
    (fun jobs ->
      Alcotest.(check (list int))
        (Printf.sprintf "map with %d workers preserves order" jobs)
        seq
        (Harness.Pool.map ~jobs f items))
    [ 1; 2; 4; 16 ]

let test_pool_progress_serialized () =
  let count = ref 0 in
  let results =
    Harness.Pool.map ~jobs:4
      ~progress:(fun _ _ -> incr count)
      (fun x -> x + 1)
      (List.init 40 (fun i -> i))
  in
  (* Progress calls run under the pool's mutex, so the unguarded
     counter must still reach exactly one call per item. *)
  Alcotest.(check int) "one progress call per item" 40 !count;
  Alcotest.(check int) "all results present" 40 (List.length results)

(* A failing job must not abort the sweep: every other item still runs,
   and the summary attributes each failure to its cell. *)
let check_sweep_failure ~jobs =
  let ran = Array.make 16 false in
  match
    Harness.Pool.map ~jobs
      ~describe:(fun x -> Printf.sprintf "cell-%d" x)
      (fun x ->
        ran.(x) <- true;
        if x = 7 || x = 11 then failwith (Printf.sprintf "boom %d" x) else x)
      (List.init 16 (fun i -> i))
  with
  | (_ : int list) -> Alcotest.fail "expected Sweep_failed"
  | exception Harness.Pool.Sweep_failed failures ->
    Alcotest.(check bool) "all items attempted" true
      (Array.for_all Fun.id ran);
    Alcotest.(check (list int)) "failing indices, in order" [ 7; 11 ]
      (List.map (fun f -> f.Harness.Pool.index) failures);
    Alcotest.(check (list string)) "described" [ "cell-7"; "cell-11" ]
      (List.map (fun f -> f.Harness.Pool.description) failures);
    List.iter
      (fun f ->
        match f.Harness.Pool.error with
        | Failure msg ->
          Alcotest.(check string) "original exception preserved"
            (Printf.sprintf "boom %d" f.Harness.Pool.index)
            msg
        | e -> raise e)
      failures

let test_pool_propagates_exception () = check_sweep_failure ~jobs:4
let test_pool_sequential_failure () = check_sweep_failure ~jobs:1

(* --- Job seeding --------------------------------------------------------- *)

let test_seeds_stable_under_reordering () =
  let jobs = Experiments.jobs_of_spec (Option.get (Experiments.find "fig3")) in
  let seeds = List.map Job.seed jobs in
  let seeds_rev = List.map Job.seed (List.rev jobs) in
  Alcotest.(check (list int))
    "seed depends on the job description, not its position" seeds
    (List.rev seeds_rev);
  let distinct = List.sort_uniq compare seeds in
  Alcotest.(check int) "every cell gets its own stream" (List.length seeds)
    (List.length distinct)

let test_seeds_differ_across_sweeps () =
  let fig3 = Experiments.jobs_of_spec (Option.get (Experiments.find "fig3")) in
  let fig6 = Experiments.jobs_of_spec (Option.get (Experiments.find "fig6")) in
  let all = List.map Job.seed fig3 @ List.map Job.seed fig6 in
  Alcotest.(check int) "no collisions across sweeps" (List.length all)
    (List.length (List.sort_uniq compare all))

let test_base_seed_changes_streams () =
  let spec = fig3_point () in
  let s42 = List.map Job.seed (Experiments.jobs_of_spec ~seed:42 spec) in
  let s7 = List.map Job.seed (Experiments.jobs_of_spec ~seed:7 spec) in
  Alcotest.(check bool) "base seed feeds derivation" true (s42 <> s7)

(* --- End-to-end determinism ---------------------------------------------- *)

let series_points (s : Experiments.series) = s.Experiments.points

let test_parallel_matches_sequential () =
  let spec = fig3_point () in
  let seq = Harness.Sweep.run_spec ~time_scale:0.1 ~jobs:1 spec in
  let par = Harness.Sweep.run_spec ~time_scale:0.1 ~jobs:4 spec in
  Alcotest.(check bool)
    "--jobs 1 and --jobs 4 give identical Runner.result records" true
    (series_points seq = series_points par)

let test_sequential_driver_matches_pool () =
  let spec = fig3_point () in
  let reference = Experiments.run_spec ~time_scale:0.1 spec in
  let pooled = Harness.Sweep.run_spec ~time_scale:0.1 ~jobs:4 spec in
  Alcotest.(check bool)
    "Experiments.run_spec and the pool agree" true
    (series_points reference = series_points pooled)

(* --- Engine event budget -------------------------------------------------- *)

let test_event_budget () =
  let e = Simcore.Engine.create () in
  (* A self-rescheduling event: without a budget this runs forever. *)
  let rec tick () = Simcore.Engine.schedule_after e 0.001 tick in
  tick ();
  Alcotest.(check bool) "budget guard fires with a diagnostic" true
    (try
       Simcore.Engine.run_until ~max_events:100 e 1e9;
       false
     with Simcore.Engine.Event_budget_exceeded msg ->
       (* The diagnostic names the budget and the queue state. *)
       let mem needle =
         let open String in
         let nl = length needle and hl = length msg in
         let rec at i = i + nl <= hl && (sub msg i nl = needle || at (i + 1)) in
         at 0
       in
       mem "100" && mem "pending");
  Alcotest.(check int) "processed exactly the budget" 100
    (Simcore.Engine.events_processed e)

let suite =
  [
    Alcotest.test_case "pool: map ordering" `Quick test_pool_map_ordering;
    Alcotest.test_case "pool: progress serialized" `Quick
      test_pool_progress_serialized;
    Alcotest.test_case "pool: exception propagates" `Quick
      test_pool_propagates_exception;
    Alcotest.test_case "pool: sequential failure attribution" `Quick
      test_pool_sequential_failure;
    Alcotest.test_case "job seeds stable under reordering" `Quick
      test_seeds_stable_under_reordering;
    Alcotest.test_case "job seeds unique across sweeps" `Quick
      test_seeds_differ_across_sweeps;
    Alcotest.test_case "base seed changes streams" `Quick
      test_base_seed_changes_streams;
    Alcotest.test_case "fig3 point: jobs=1 == jobs=4" `Slow
      test_parallel_matches_sequential;
    Alcotest.test_case "sequential driver == pool" `Slow
      test_sequential_driver_matches_pool;
    Alcotest.test_case "engine event budget" `Quick test_event_budget;
  ]

open Simcore

let test_clock_starts_at_zero () =
  let e = Engine.create () in
  Alcotest.(check (float 0.0)) "now" 0.0 (Engine.now e)

let test_event_ordering () =
  let e = Engine.create () in
  let log = ref [] in
  Engine.schedule_after e 3.0 (fun () -> log := 3 :: !log);
  Engine.schedule_after e 1.0 (fun () -> log := 1 :: !log);
  Engine.schedule_after e 2.0 (fun () -> log := 2 :: !log);
  Engine.run e;
  Alcotest.(check (list int)) "time order" [ 1; 2; 3 ] (List.rev !log);
  Alcotest.(check (float 0.0)) "clock at last event" 3.0 (Engine.now e)

let test_fifo_same_time () =
  let e = Engine.create () in
  let log = ref [] in
  for i = 1 to 5 do
    Engine.schedule_after e 1.0 (fun () -> log := i :: !log)
  done;
  Engine.run e;
  Alcotest.(check (list int)) "insertion order" [ 1; 2; 3; 4; 5 ] (List.rev !log)

let test_nested_scheduling () =
  let e = Engine.create () in
  let log = ref [] in
  Engine.schedule_after e 1.0 (fun () ->
      log := "a" :: !log;
      Engine.schedule_after e 1.0 (fun () -> log := "c" :: !log);
      Engine.schedule_after e 0.5 (fun () -> log := "b" :: !log));
  Engine.run e;
  Alcotest.(check (list string)) "nested" [ "a"; "b"; "c" ] (List.rev !log)

let test_run_until () =
  let e = Engine.create () in
  let fired = ref [] in
  List.iter
    (fun t -> Engine.schedule_at e t (fun () -> fired := t :: !fired))
    [ 1.0; 2.0; 3.0; 4.0 ];
  Engine.run_until e 2.5;
  Alcotest.(check (list (float 0.0))) "fired up to limit" [ 1.0; 2.0 ]
    (List.rev !fired);
  Alcotest.(check (float 0.0)) "clock at limit" 2.5 (Engine.now e);
  Alcotest.(check int) "pending" 2 (Engine.pending e);
  Engine.run_until e 10.0;
  Alcotest.(check int) "all fired" 4 (List.length !fired)

let test_zero_delay () =
  let e = Engine.create () in
  let fired = ref false in
  Engine.schedule_after e 0.0 (fun () -> fired := true);
  Engine.run e;
  Alcotest.(check bool) "fired" true !fired

(* The diagnostic must name both the clock and the requested time so a
   bad schedule is debuggable from the message alone. *)
let mem needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  go 0

let test_past_rejected () =
  let e = Engine.create () in
  Engine.schedule_after e 5.0 (fun () -> ());
  Engine.run e;
  Alcotest.(check bool) "negative delay rejected with diagnostic" true
    (try
       Engine.schedule_after e (-1.0) (fun () -> ());
       false
     with Engine.Time_travel msg ->
       mem "clock 5" msg && mem "delta" msg);
  Alcotest.(check bool) "past time rejected with diagnostic" true
    (try
       Engine.schedule_at e 1.0 (fun () -> ());
       false
     with Engine.Time_travel msg ->
       mem "requested time 1" msg && mem "clock 5" msg)

let test_timer_fires () =
  let e = Engine.create () in
  let fired = ref (-1.0) in
  let tm = Engine.after e 2.0 (fun () -> fired := Engine.now e) in
  Alcotest.(check bool) "pending before" true (Engine.timer_pending tm);
  Alcotest.(check (float 0.0)) "deadline" 2.0 (Engine.timer_deadline tm);
  Engine.run e;
  Alcotest.(check (float 0.0)) "fired at deadline" 2.0 !fired;
  Alcotest.(check bool) "not pending after" false (Engine.timer_pending tm)

let test_timer_cancel () =
  let e = Engine.create () in
  let fired = ref false in
  let tm = Engine.after e 2.0 (fun () -> fired := true) in
  Engine.schedule_after e 1.0 (fun () -> Engine.cancel tm);
  Engine.run e;
  Alcotest.(check bool) "cancelled timer does not fire" false !fired;
  Alcotest.(check bool) "not pending" false (Engine.timer_pending tm);
  (* Cancelling again (or after firing) is a harmless no-op. *)
  Engine.cancel tm

let test_events_processed () =
  let e = Engine.create () in
  for _ = 1 to 7 do
    Engine.schedule_after e 1.0 (fun () -> ())
  done;
  Engine.run e;
  Alcotest.(check int) "count" 7 (Engine.events_processed e)

let prop_any_schedule_order =
  QCheck.Test.make ~name:"events fire in nondecreasing time order" ~count:200
    QCheck.(list_of_size (QCheck.Gen.int_range 1 50) (float_bound_exclusive 100.0))
    (fun times ->
      let e = Engine.create () in
      let fired = ref [] in
      List.iter
        (fun t -> Engine.schedule_at e t (fun () -> fired := Engine.now e :: !fired))
        times;
      Engine.run e;
      let fired = List.rev !fired in
      List.length fired = List.length times
      && fired = List.sort compare times)

let suite =
  [
    Alcotest.test_case "clock starts at zero" `Quick test_clock_starts_at_zero;
    Alcotest.test_case "event ordering" `Quick test_event_ordering;
    Alcotest.test_case "FIFO at same instant" `Quick test_fifo_same_time;
    Alcotest.test_case "nested scheduling" `Quick test_nested_scheduling;
    Alcotest.test_case "run_until" `Quick test_run_until;
    Alcotest.test_case "zero delay" `Quick test_zero_delay;
    Alcotest.test_case "past scheduling rejected" `Quick test_past_rejected;
    Alcotest.test_case "timer fires at deadline" `Quick test_timer_fires;
    Alcotest.test_case "timer cancellation" `Quick test_timer_cancel;
    Alcotest.test_case "events processed" `Quick test_events_processed;
    QCheck_alcotest.to_alcotest prop_any_schedule_order;
  ]

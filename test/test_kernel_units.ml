(* Unit tests of the kernel plumbing: message transport costs, client
   cache operations, direct callback handling, server request handlers,
   and report rendering. *)

open Oodb_core
open Storage

let oid page slot = Ids.Oid.make ~page ~slot

let mk_sys ?(clients = 2) ?(algo = Algo.PS_OO) () =
  let cfg = { Config.default with Config.num_clients = clients } in
  let params =
    Workload.Presets.make Workload.Presets.Uniform ~db_pages:cfg.Config.db_pages
      ~objects_per_page:cfg.Config.objects_per_page ~num_clients:clients
      ~locality:Workload.Presets.Low ~write_prob:0.0
  in
  Model.create ~cfg ~algo ~params ~seed:3

(* Run [f] as a fiber; return its result and the duration it took in
   simulated time. *)
let run_fiber_timed sys f =
  let engine = sys.Model.engine in
  let t0 = Simcore.Engine.now engine in
  let result = ref None in
  Simcore.Proc.spawn engine (fun () ->
      let v = f () in
      result := Some (v, Simcore.Engine.now engine -. t0));
  Simcore.Engine.run_until engine (t0 +. 30.0);
  match !result with
  | Some v -> v
  | None -> Alcotest.fail "fiber did not complete"

let run_fiber sys f = fst (run_fiber_timed sys f)

(* --- Netlayer ----------------------------------------------------------- *)

let test_netlayer_costs () =
  let sys = mk_sys () in
  let cfg = sys.Model.cfg in
  let (), latency =
    run_fiber_timed sys (fun () ->
        Netlayer.control sys ~cls:Metrics.M_read_req ~src:(Netlayer.Client 0)
          ~dst:(Netlayer.Server 0))
  in
  (* End-to-end latency = send CPU + wire + receive CPU. *)
  let bytes = Config.control_bytes cfg in
  let cpu_s = Config.msg_instr cfg ~bytes /. (cfg.Config.client_mips *. 1e6) in
  let cpu_r = Config.msg_instr cfg ~bytes /. (cfg.Config.server_mips *. 1e6) in
  let wire = float_of_int (bytes * 8) /. (cfg.Config.network_mbits *. 1e6) in
  Alcotest.(check (float 1e-9)) "latency" (cpu_s +. wire +. cpu_r) latency;
  Alcotest.(check int) "counted" 1
    (Metrics.messages_of sys.Model.metrics Metrics.M_read_req);
  Alcotest.(check int) "bytes" bytes (Metrics.bytes sys.Model.metrics)

let test_netlayer_page_bigger_than_control () =
  let sys = mk_sys () in
  let (), t_control =
    run_fiber_timed sys (fun () ->
        Netlayer.control sys ~cls:Metrics.M_read_req ~src:(Netlayer.Client 0)
          ~dst:(Netlayer.Server 0))
  in
  let (), t_page =
    run_fiber_timed sys (fun () ->
        Netlayer.page_data sys ~cls:Metrics.M_read_reply ~src:(Netlayer.Server 0)
          ~dst:(Netlayer.Client 0))
  in
  Alcotest.(check bool) "page message costs more" true (t_page > t_control)

(* --- Cache_ops ----------------------------------------------------------- *)

let mk_txn sys client =
  let txn =
    {
      Model.tid = Model.fresh_tid sys;
      client;
      epoch = sys.Model.clients.Model.epoch.(client);
      ops = [||];
      started = 0.0;
      first_started = 0.0;
      restarts = 0;
      read_pages = Ids.Page_set.empty;
      read_objs = Ids.Oid_set.empty;
      wpages = Ids.Page_set.empty;
      wobjs = Ids.Oid_set.empty;
      updated = Ids.Oid_set.empty;
      doomed = false;
      rpc_sid = -1;
    }
  in
  Model.set_running sys client txn;
  txn

let test_install_page_fresh () =
  let sys = mk_sys () in
  let cache = sys.Model.clients.Model.cache.(0) in
  let txn = mk_txn sys 0 in
  let unavailable = Ids.Int_set.of_list [ 3; 7 ] in
  let evicted = Cache_ops.install_page sys 0 txn 5 ~unavailable ~version:4 in
  Alcotest.(check bool) "no eviction" true (evicted = None);
  match Lru.peek cache 5 with
  | Some e ->
    Alcotest.(check bool) "unavailable kept" true
      (Ids.Int_set.equal e.Model.unavailable unavailable);
    Alcotest.(check int) "version" 4 e.Model.fetch_version;
    Alcotest.(check bool) "fresh copy starts clean" true
      (Ids.Int_set.is_empty e.Model.dirty)
  | None -> Alcotest.fail "page not cached"

(* Copy registration happens server-side when the copy is shipped, so a
   full PS-OO read must leave the available objects (and only those)
   registered for the reader. *)
let test_read_registers_object_copies () =
  let sys = mk_sys ~algo:Algo.PS_OO () in
  let txn = mk_txn sys 0 in
  Locking.Lock_table.force_grant sys.Model.servers.(0).olocks (oid 5 3) ~txn:77;
  Model.index_obj_lock sys.Model.servers.(0) (oid 5 3);
  (match run_fiber sys (fun () -> Srv.read_rpc sys txn (oid 5 0)) with
  | Srv.R_page { unavailable; version } ->
    ignore (Cache_ops.install_page sys 0 txn 5 ~unavailable ~version)
  | _ -> Alcotest.fail "expected page");
  Alcotest.(check int) "available object registered once" 1
    (Locking.Copy_table.refs sys.Model.servers.(0).ocopies (oid 5 0) ~client:0);
  Alcotest.(check int) "foreign-locked object not registered" 0
    (Locking.Copy_table.refs sys.Model.servers.(0).ocopies (oid 5 3) ~client:0)

let test_install_page_merges_local_dirty () =
  let sys = mk_sys () in
  let cache = sys.Model.clients.Model.cache.(0) in
  let txn = mk_txn sys 0 in
  run_fiber sys (fun () ->
      ignore
        (Cache_ops.install_page sys 0 txn 5 ~unavailable:Ids.Int_set.empty
           ~version:0);
      (match Lru.peek cache 5 with
      | Some e -> e.Model.dirty <- Ids.Int_set.of_list [ 2 ]
      | None -> assert false);
      (* Re-receive with slot 2 marked unavailable by the server: the
         local uncommitted update must stay visible/available. *)
      ignore
        (Cache_ops.install_page sys 0 txn 5
           ~unavailable:(Ids.Int_set.of_list [ 2; 9 ])
           ~version:3));
  (match Lru.peek cache 5 with
  | Some e ->
    Alcotest.(check bool) "own update stays available" false
      (Ids.Int_set.mem 2 e.Model.unavailable);
    Alcotest.(check bool) "foreign mark applied" true
      (Ids.Int_set.mem 9 e.Model.unavailable)
  | None -> Alcotest.fail "page lost");
  Alcotest.(check int) "client merge counted" 1
    (Metrics.client_merges sys.Model.metrics)

let test_install_page_eviction_reports_dirty () =
  let sys = mk_sys () in
  let cache = sys.Model.clients.Model.cache.(0) in
  let txn = mk_txn sys 0 in
  let cap = Lru.capacity cache in
  (* Fill the cache, dirty page 0, then overflow. *)
  for p = 0 to cap - 1 do
    ignore
      (Cache_ops.install_page sys 0 txn p ~unavailable:Ids.Int_set.empty
         ~version:0)
  done;
  (match Lru.peek cache 0 with
  | Some e -> e.Model.dirty <- Ids.Int_set.of_list [ 1 ]
  | None -> assert false);
  Lru.touch cache 0;
  (* Insert enough fresh pages to evict page 0 (now MRU, evicted last). *)
  let shipped = ref [] in
  for p = cap to 2 * cap do
    match
      Cache_ops.install_page sys 0 txn p ~unavailable:Ids.Int_set.empty
        ~version:0
    with
    | Some (victim, dirty, _) -> shipped := (victim, dirty) :: !shipped
    | None -> ()
  done;
  Alcotest.(check bool) "dirty victim reported exactly once" true
    (match List.filter (fun (v, _) -> v = 0) !shipped with
    | [ (0, d) ] -> Ids.Int_set.equal d (Ids.Int_set.of_list [ 1 ])
    | _ -> false)

let test_drop_page_protects_dirty () =
  let sys = mk_sys () in
  let cache = sys.Model.clients.Model.cache.(0) in
  let txn = mk_txn sys 0 in
  ignore
    (Cache_ops.install_page sys 0 txn 5 ~unavailable:Ids.Int_set.empty
       ~version:0);
  (match Lru.peek cache 5 with
  | Some e -> e.Model.dirty <- Ids.Int_set.of_list [ 0 ]
  | None -> assert false);
  Alcotest.(check bool) "dirty drop rejected" true
    (try
       Cache_ops.drop_page sys 0 5 ~discard_dirty:false;
       false
     with Invalid_argument _ -> true);
  Cache_ops.drop_page sys 0 5 ~discard_dirty:true;
  Alcotest.(check bool) "dropped" false (Lru.mem cache 5)

(* --- Cb (direct) ----------------------------------------------------------- *)

let test_cb_not_cached () =
  let sys = mk_sys () in
  List.iter
    (fun kind ->
      let r = run_fiber sys (fun () -> Cb.handle sys ~sv:sys.Model.servers.(0) ~client:1 ~writer:99 kind) in
      Alcotest.(check bool) "not cached" true (r = Cb.Not_cached))
    [ Cb.Purge_page 5; Cb.Purge_obj (oid 5 0); Cb.Adaptive (oid 5 0) ]

let test_cb_adaptive_purges_idle () =
  let sys = mk_sys () in
  let cache = sys.Model.clients.Model.cache.(1) in
  let txn = mk_txn sys 1 in
  ignore
    (Cache_ops.install_page sys 1 txn 5 ~unavailable:Ids.Int_set.empty
       ~version:0);
  ignore (Model.clear_running sys 1);
  (* txn over, page idle *)
  let r =
    run_fiber sys (fun () -> Cb.handle sys ~sv:sys.Model.servers.(0) ~client:1 ~writer:99 (Cb.Adaptive (oid 5 0)))
  in
  Alcotest.(check bool) "purged" true (r = Cb.Purged);
  Alcotest.(check bool) "gone" false (Lru.mem cache 5)

let test_cb_adaptive_marks_in_use () =
  let sys = mk_sys () in
  let cache = sys.Model.clients.Model.cache.(1) in
  let txn = mk_txn sys 1 in
  ignore
    (Cache_ops.install_page sys 1 txn 5 ~unavailable:Ids.Int_set.empty
       ~version:0);
  (* The running txn uses another object of the page. *)
  txn.Model.read_objs <- Ids.Oid_set.singleton (oid 5 1);
  txn.Model.read_pages <- Ids.Page_set.singleton 5;
  let r =
    run_fiber sys (fun () -> Cb.handle sys ~sv:sys.Model.servers.(0) ~client:1 ~writer:99 (Cb.Adaptive (oid 5 0)))
  in
  Alcotest.(check bool) "marked" true (r = Cb.Marked);
  (match Lru.peek cache 5 with
  | Some e ->
    Alcotest.(check bool) "slot marked" true (Ids.Int_set.mem 0 e.Model.unavailable)
  | None -> Alcotest.fail "page purged instead of marked")

(* --- Srv handlers ------------------------------------------------------------ *)

let mk_read_txn sys client = mk_txn sys client

let test_read_rpc_ps_plain_page () =
  let sys = mk_sys ~algo:Algo.PS () in
  let txn = mk_read_txn sys 0 in
  let r = run_fiber sys (fun () -> Srv.read_rpc sys txn (oid 7 3)) in
  (match r with
  | Srv.R_page { unavailable; version } ->
    Alcotest.(check bool) "no marks under PS" true
      (Ids.Int_set.is_empty unavailable);
    Alcotest.(check int) "fresh page version 0" 0 version
  | _ -> Alcotest.fail "expected page");
  Alcotest.(check bool) "copy registered" true
    (Locking.Copy_table.holds sys.Model.servers.(0).pcopies 7 ~client:0);
  (* The cold read went to disk. *)
  Alcotest.(check bool) "disk I/O" true
    (Resources.Disk_array.io_count sys.Model.servers.(0).sdisks >= 1)

let test_read_rpc_marks_foreign_lock () =
  let sys = mk_sys ~algo:Algo.PS_OO () in
  let txn0 = mk_read_txn sys 0 in
  (* Simulate a foreign object lock held by txn 77. *)
  Locking.Lock_table.force_grant sys.Model.servers.(0).olocks (oid 7 4) ~txn:77;
  Model.index_obj_lock sys.Model.servers.(0) (oid 7 4);
  let r = run_fiber sys (fun () -> Srv.read_rpc sys txn0 (oid 7 3)) in
  (match r with
  | Srv.R_page { unavailable; _ } ->
    Alcotest.(check bool) "foreign-locked slot marked" true
      (Ids.Int_set.mem 4 unavailable);
    Alcotest.(check bool) "requested slot clear" false
      (Ids.Int_set.mem 3 unavailable)
  | _ -> Alcotest.fail "expected page")

let test_buffer_page_write_back () =
  let sys = mk_sys () in
  let txn = mk_read_txn sys 0 in
  let cap = Config.server_buf_pages sys.Model.cfg in
  run_fiber sys (fun () ->
      (* Fill the server buffer, dirty one page, then force eviction. *)
      ignore (Srv.read_rpc sys txn (oid 0 0));
      Storage.Buffer_pool.mark_dirty sys.Model.servers.(0).sbuffer 0;
      for p = 1 to cap do
        ignore (Srv.read_rpc sys txn (oid p 0))
      done);
  (* cap+1 reads + 1 write-back of the dirty victim. *)
  Alcotest.(check int) "write-back counted"
    (cap + 2)
    (Resources.Disk_array.io_count sys.Model.servers.(0).sdisks)

(* --- Report -------------------------------------------------------------- *)

let tiny_series () =
  let spec = Option.get (Experiments.find "fig3") in
  let spec = { spec with Experiments.write_probs = [ 0.0 ]; warmup = 2.0; measure = 5.0 } in
  Experiments.run_spec ~time_scale:0.2 spec

let test_csv_shape () =
  let series = tiny_series () in
  let csv = Report.series_to_csv series in
  let lines =
    List.filter (fun l -> String.trim l <> "") (String.split_on_char '\n' csv)
  in
  (* header + one row per (wp, algo) *)
  Alcotest.(check int) "rows" (1 + List.length Algo.all) (List.length lines);
  Alcotest.(check bool) "header" true
    (String.length (List.hd lines) > 0
    && String.sub (List.hd lines) 0 6 = "figure")

let suite =
  [
    Alcotest.test_case "netlayer costs" `Quick test_netlayer_costs;
    Alcotest.test_case "netlayer page > control" `Quick
      test_netlayer_page_bigger_than_control;
    Alcotest.test_case "install_page fresh" `Quick test_install_page_fresh;
    Alcotest.test_case "read registers object copies" `Quick
      test_read_registers_object_copies;
    Alcotest.test_case "install_page merges local dirty" `Quick
      test_install_page_merges_local_dirty;
    Alcotest.test_case "install_page reports dirty eviction" `Quick
      test_install_page_eviction_reports_dirty;
    Alcotest.test_case "drop_page protects dirty" `Quick
      test_drop_page_protects_dirty;
    Alcotest.test_case "cb: not cached" `Quick test_cb_not_cached;
    Alcotest.test_case "cb: adaptive purges idle" `Quick
      test_cb_adaptive_purges_idle;
    Alcotest.test_case "cb: adaptive marks in use" `Quick
      test_cb_adaptive_marks_in_use;
    Alcotest.test_case "srv: PS read ships plain page" `Quick
      test_read_rpc_ps_plain_page;
    Alcotest.test_case "srv: read marks foreign locks" `Quick
      test_read_rpc_marks_foreign_lock;
    Alcotest.test_case "srv: buffer write-back" `Quick test_buffer_page_write_back;
    Alcotest.test_case "report: csv shape" `Slow test_csv_shape;
  ]

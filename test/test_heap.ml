open Simcore

let pop_all h =
  let rec go acc =
    match Heap.pop h with None -> List.rev acc | Some x -> go (x :: acc)
  in
  go []

let test_empty () =
  let h = Heap.create ~cmp:compare () in
  Alcotest.(check bool) "is_empty" true (Heap.is_empty h);
  Alcotest.(check int) "size" 0 (Heap.size h);
  Alcotest.(check (option int)) "peek" None (Heap.peek h);
  Alcotest.(check (option int)) "pop" None (Heap.pop h)

let test_ordering () =
  let h = Heap.create ~cmp:compare () in
  List.iter (Heap.push h) [ 5; 3; 8; 1; 9; 2; 7 ];
  Alcotest.(check (option int)) "peek min" (Some 1) (Heap.peek h);
  Alcotest.(check (list int)) "sorted" [ 1; 2; 3; 5; 7; 8; 9 ] (pop_all h)

let test_duplicates () =
  let h = Heap.create ~cmp:compare () in
  List.iter (Heap.push h) [ 2; 2; 1; 1; 3 ];
  Alcotest.(check (list int)) "dups kept" [ 1; 1; 2; 2; 3 ] (pop_all h)

let test_interleaved () =
  let h = Heap.create ~cmp:compare () in
  Heap.push h 4;
  Heap.push h 2;
  Alcotest.(check (option int)) "pop 2" (Some 2) (Heap.pop h);
  Heap.push h 1;
  Heap.push h 3;
  Alcotest.(check (option int)) "pop 1" (Some 1) (Heap.pop h);
  Alcotest.(check (option int)) "pop 3" (Some 3) (Heap.pop h);
  Alcotest.(check (option int)) "pop 4" (Some 4) (Heap.pop h)

let test_clear () =
  let h = Heap.create ~cmp:compare () in
  List.iter (Heap.push h) [ 1; 2; 3 ];
  Heap.clear h;
  Alcotest.(check bool) "cleared" true (Heap.is_empty h);
  Heap.push h 42;
  Alcotest.(check (option int)) "usable after clear" (Some 42) (Heap.pop h)

let test_custom_cmp () =
  (* Max-heap via reversed comparison. *)
  let h = Heap.create ~cmp:(fun a b -> compare b a) () in
  List.iter (Heap.push h) [ 5; 1; 9; 3 ];
  Alcotest.(check (list int)) "descending" [ 9; 5; 3; 1 ] (pop_all h)

let test_capacity () =
  (* [?capacity] pre-sizes the first allocation; behavior must be
     unchanged whether the hint is tiny (forcing immediate growth) or
     larger than the element count. *)
  let h = Heap.create ~capacity:1 ~cmp:compare () in
  List.iter (Heap.push h) [ 3; 1; 2 ];
  Alcotest.(check (list int)) "capacity 1 grows" [ 1; 2; 3 ] (pop_all h);
  let h = Heap.create ~capacity:1024 ~cmp:compare () in
  List.iter (Heap.push h) [ 2; 1 ];
  Alcotest.(check (list int)) "oversized capacity" [ 1; 2 ] (pop_all h);
  Alcotest.(check bool) "non-positive capacity rejected" true
    (try
       ignore (Heap.create ~capacity:0 ~cmp:compare () : int Heap.t);
       false
     with Invalid_argument _ -> true)

let prop_sorted =
  QCheck.Test.make ~name:"heap pops in sorted order" ~count:300
    QCheck.(list int)
    (fun xs ->
      let h = Heap.create ~cmp:compare () in
      List.iter (Heap.push h) xs;
      pop_all h = List.sort compare xs)

let prop_size =
  QCheck.Test.make ~name:"heap size tracks pushes/pops" ~count:200
    QCheck.(list small_nat)
    (fun xs ->
      let h = Heap.create ~cmp:compare () in
      List.iteri
        (fun i x ->
          Heap.push h x;
          assert (Heap.size h = i + 1))
        xs;
      List.for_all
        (fun _ ->
          let before = Heap.size h in
          ignore (Heap.pop h);
          Heap.size h = before - 1)
        xs)

let suite =
  [
    Alcotest.test_case "empty heap" `Quick test_empty;
    Alcotest.test_case "ordering" `Quick test_ordering;
    Alcotest.test_case "duplicates" `Quick test_duplicates;
    Alcotest.test_case "interleaved push/pop" `Quick test_interleaved;
    Alcotest.test_case "clear" `Quick test_clear;
    Alcotest.test_case "custom comparison" `Quick test_custom_cmp;
    Alcotest.test_case "capacity hint" `Quick test_capacity;
    QCheck_alcotest.to_alcotest prop_sorted;
    QCheck_alcotest.to_alcotest prop_size;
  ]

let () =
  Alcotest.run "oodb"
    [
      ("heap", Test_heap.suite);
      ("rng", Test_rng.suite);
      ("stats", Test_stats.suite);
      ("engine", Test_engine.suite);
      ("equeue", Test_equeue.suite);
      ("proc", Test_proc.suite);
      ("resources", Test_resources.suite);
      ("storage", Test_storage.suite);
      ("locking", Test_locking.suite);
      ("copy-scale", Test_copy_scale.suite);
      ("workload", Test_workload.suite);
      ("core-units", Test_core_units.suite);
      ("kernel-units", Test_kernel_units.suite);
      ("protocols", Test_protocols.suite);
      ("extensions", Test_extensions.suite);
      ("fuzz", Test_fuzz.suite);
      ("faults", Test_faults.suite);
      ("runner", Test_runner.suite);
      ("shard", Test_shard.suite);
      ("cluster", Test_cluster.suite);
      ("srvfault", Test_srvfault.suite);
      ("oracle", Test_oracle.suite);
      ("harness", Test_harness.suite);
      ("telemetry", Test_telemetry.suite);
      ("report", Test_report.suite);
    ]

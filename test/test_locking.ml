open Simcore
open Locking
open Lock_types

let mk () =
  let e = Engine.create () in
  let wfg = Waits_for.create () in
  let lt = Lock_table.create e ~waits_for:wfg ~lock_name:"t" in
  (e, wfg, lt)

(* --- Copy table --------------------------------------------------------- *)

let test_copy_register () =
  let ct = Copy_table.create ~clients:4 in
  Copy_table.register ct "p1" ~client:0;
  Copy_table.register ct "p1" ~client:2;
  Copy_table.register ct "p1" ~client:2;
  (* idempotent *)
  Alcotest.(check (list int)) "holders" [ 0; 2 ] (Copy_table.holders ct "p1");
  Alcotest.(check int) "total" 2 (Copy_table.copies ct);
  Alcotest.(check (list int)) "except requester" [ 0 ]
    (Copy_table.holders_except ct "p1" ~client:2)

let test_copy_unregister () =
  let ct = Copy_table.create ~clients:4 in
  Copy_table.register ct "p1" ~client:1;
  Copy_table.unregister ct "p1" ~client:1;
  Copy_table.unregister ct "p1" ~client:1;
  (* idempotent *)
  Alcotest.(check (list int)) "empty" [] (Copy_table.holders ct "p1");
  Alcotest.(check int) "total" 0 (Copy_table.copies ct);
  Alcotest.(check bool) "holds" false (Copy_table.holds ct "p1" ~client:1)

(* --- Lock table: grants -------------------------------------------------- *)

let test_immediate_grant () =
  let e, _, lt = mk () in
  let g = ref None in
  Proc.spawn e (fun () -> g := Some (Lock_table.acquire lt "a" ~txn:1 ~kind:Lock));
  Engine.run e;
  Alcotest.(check bool) "granted" true (!g = Some Granted);
  Alcotest.(check bool) "held" true (Lock_table.held_by lt "a" ~txn:1);
  Alcotest.(check (list string)) "locks_of" [ "a" ] (Lock_table.locks_of lt ~txn:1)

let test_reacquire_held () =
  let e, _, lt = mk () in
  let g = ref 0 in
  Proc.spawn e (fun () ->
      ignore (Lock_table.acquire lt "a" ~txn:1 ~kind:Lock);
      if Lock_table.acquire lt "a" ~txn:1 ~kind:Lock = Granted then incr g;
      if Lock_table.acquire lt "a" ~txn:1 ~kind:Probe = Granted then incr g);
  Engine.run e;
  Alcotest.(check int) "self re-acquire instant" 2 !g

let test_probe_free_item () =
  let e, _, lt = mk () in
  let g = ref None in
  Proc.spawn e (fun () -> g := Some (Lock_table.acquire lt "a" ~txn:1 ~kind:Probe));
  Engine.run e;
  Alcotest.(check bool) "probe granted" true (!g = Some Granted);
  Alcotest.(check bool) "probe holds nothing" true
    (Lock_table.holder lt "a" = None)

let test_conflict_blocks_until_release () =
  let e, _, lt = mk () in
  let order = ref [] in
  Proc.spawn e (fun () ->
      ignore (Lock_table.acquire lt "a" ~txn:1 ~kind:Lock);
      order := "t1 locked" :: !order;
      Proc.hold e 1.0;
      Lock_table.release lt "a" ~txn:1;
      order := "t1 released" :: !order);
  Proc.spawn e (fun () ->
      Proc.hold e 0.1;
      ignore (Lock_table.acquire lt "a" ~txn:2 ~kind:Lock);
      order := "t2 locked" :: !order);
  Engine.run e;
  Alcotest.(check (list string)) "blocking order"
    [ "t1 locked"; "t1 released"; "t2 locked" ]
    (List.rev !order);
  Alcotest.(check bool) "t2 holds now" true (Lock_table.held_by lt "a" ~txn:2)

let test_fifo_queue () =
  let e, _, lt = mk () in
  let order = ref [] in
  Proc.spawn e (fun () ->
      ignore (Lock_table.acquire lt "a" ~txn:1 ~kind:Lock);
      Proc.hold e 1.0;
      Lock_table.release lt "a" ~txn:1);
  List.iter
    (fun (txn, delay) ->
      Proc.spawn e (fun () ->
          Proc.hold e delay;
          ignore (Lock_table.acquire lt "a" ~txn ~kind:Lock);
          order := txn :: !order;
          Lock_table.release lt "a" ~txn))
    [ (2, 0.1); (3, 0.2); (4, 0.3) ];
  Engine.run e;
  Alcotest.(check (list int)) "FIFO grants" [ 2; 3; 4 ] (List.rev !order)

let test_probes_share () =
  let e, _, lt = mk () in
  let granted_at = ref [] in
  Proc.spawn e (fun () ->
      ignore (Lock_table.acquire lt "a" ~txn:1 ~kind:Lock);
      Proc.hold e 1.0;
      Lock_table.release lt "a" ~txn:1);
  for txn = 2 to 4 do
    Proc.spawn e (fun () ->
        Proc.hold e 0.1;
        ignore (Lock_table.acquire lt "a" ~txn ~kind:Probe);
        granted_at := Engine.now e :: !granted_at)
  done;
  Engine.run e;
  Alcotest.(check int) "all probes granted" 3 (List.length !granted_at);
  List.iter
    (fun t -> Alcotest.(check (float 1e-9)) "at release time" 1.0 t)
    !granted_at

let test_release_all () =
  let e, _, lt = mk () in
  Proc.spawn e (fun () ->
      ignore (Lock_table.acquire lt "a" ~txn:1 ~kind:Lock);
      ignore (Lock_table.acquire lt "b" ~txn:1 ~kind:Lock));
  Engine.run e;
  Lock_table.release_all lt ~txn:1;
  Alcotest.(check bool) "a free" true (Lock_table.holder lt "a" = None);
  Alcotest.(check bool) "b free" true (Lock_table.holder lt "b" = None);
  Alcotest.(check (list string)) "locks_of empty" [] (Lock_table.locks_of lt ~txn:1)

let test_force_grant () =
  let e, _, lt = mk () in
  ignore e;
  Lock_table.force_grant lt "a" ~txn:5;
  Alcotest.(check bool) "held" true (Lock_table.held_by lt "a" ~txn:5);
  Lock_table.force_grant lt "a" ~txn:5;
  (* idempotent *)
  Alcotest.(check bool) "conflicting force rejected" true
    (try
       Lock_table.force_grant lt "a" ~txn:6;
       false
     with Invalid_argument _ -> true);
  Lock_table.release_all lt ~txn:5;
  Alcotest.(check bool) "released" true (Lock_table.holder lt "a" = None)

let test_try_acquire () =
  let e, _, lt = mk () in
  ignore e;
  Alcotest.(check bool) "free grants" true
    (Lock_table.try_acquire lt "a" ~txn:1 ~kind:Lock);
  Alcotest.(check bool) "conflict fails" false
    (Lock_table.try_acquire lt "a" ~txn:2 ~kind:Lock);
  Alcotest.(check bool) "self succeeds" true
    (Lock_table.try_acquire lt "a" ~txn:1 ~kind:Lock)

(* --- Deadlock detection -------------------------------------------------- *)

let test_two_txn_deadlock () =
  let e, wfg, lt = mk () in
  Waits_for.begin_txn wfg 1 ~start:0.0;
  Waits_for.begin_txn wfg 2 ~start:1.0;
  let outcomes = Hashtbl.create 4 in
  (* t1 locks a then wants b; t2 locks b then wants a. *)
  Proc.spawn e (fun () ->
      ignore (Lock_table.acquire lt "a" ~txn:1 ~kind:Lock);
      Proc.hold e 0.5;
      Hashtbl.replace outcomes 1 (Lock_table.acquire lt "b" ~txn:1 ~kind:Lock));
  Proc.spawn e (fun () ->
      ignore (Lock_table.acquire lt "b" ~txn:2 ~kind:Lock);
      Proc.hold e 0.6;
      Hashtbl.replace outcomes 2 (Lock_table.acquire lt "a" ~txn:2 ~kind:Lock));
  Engine.run e;
  (* Youngest (txn 2, started later) must be the victim. *)
  Alcotest.(check bool) "t2 aborted" true (Hashtbl.find outcomes 2 = Aborted);
  Alcotest.(check int) "one deadlock" 1 (Waits_for.deadlocks wfg);
  (* t1 is still waiting for b, which aborted t2 still holds -- the
     abort protocol must release it (simulating the client abort): *)
  Lock_table.release_all lt ~txn:2;
  Engine.run e;
  Alcotest.(check bool) "t1 granted after victim release" true
    (Hashtbl.find outcomes 1 = Granted)

let test_victim_is_youngest () =
  let e, wfg, lt = mk () in
  Waits_for.begin_txn wfg 1 ~start:5.0;
  (* older start = 1 is YOUNGER? no: larger start = younger *)
  Waits_for.begin_txn wfg 2 ~start:1.0;
  let outcomes = Hashtbl.create 4 in
  Proc.spawn e (fun () ->
      ignore (Lock_table.acquire lt "a" ~txn:1 ~kind:Lock);
      Proc.hold e 0.5;
      Hashtbl.replace outcomes 1 (Lock_table.acquire lt "b" ~txn:1 ~kind:Lock));
  Proc.spawn e (fun () ->
      ignore (Lock_table.acquire lt "b" ~txn:2 ~kind:Lock);
      Proc.hold e 0.6;
      Hashtbl.replace outcomes 2 (Lock_table.acquire lt "a" ~txn:2 ~kind:Lock));
  Engine.run e;
  (* txn 1 started at 5.0 (younger) -> victim. *)
  Alcotest.(check bool) "t1 aborted" true (Hashtbl.find outcomes 1 = Aborted)

let test_three_txn_cycle () =
  let e, wfg, lt = mk () in
  List.iteri (fun i t -> Waits_for.begin_txn wfg t ~start:(float_of_int i)) [ 1; 2; 3 ];
  let aborted = ref [] in
  let spawn_chain txn own want delay =
    Proc.spawn e (fun () ->
        ignore (Lock_table.acquire lt own ~txn ~kind:Lock);
        Proc.hold e delay;
        match Lock_table.acquire lt want ~txn ~kind:Lock with
        | Aborted -> aborted := txn :: !aborted
        | Granted -> ())
  in
  spawn_chain 1 "a" "b" 0.5;
  spawn_chain 2 "b" "c" 0.6;
  spawn_chain 3 "c" "a" 0.7;
  Engine.run e;
  Alcotest.(check (list int)) "youngest (3) aborted" [ 3 ] !aborted;
  Alcotest.(check int) "one deadlock" 1 (Waits_for.deadlocks wfg)

let test_no_false_deadlock () =
  let e, wfg, lt = mk () in
  Waits_for.begin_txn wfg 1 ~start:0.0;
  Waits_for.begin_txn wfg 2 ~start:1.0;
  let ok = ref 0 in
  Proc.spawn e (fun () ->
      ignore (Lock_table.acquire lt "a" ~txn:1 ~kind:Lock);
      Proc.hold e 1.0;
      Lock_table.release lt "a" ~txn:1;
      incr ok);
  Proc.spawn e (fun () ->
      Proc.hold e 0.2;
      if Lock_table.acquire lt "a" ~txn:2 ~kind:Lock = Granted then incr ok);
  Engine.run e;
  Alcotest.(check int) "both fine" 2 !ok;
  Alcotest.(check int) "no deadlocks" 0 (Waits_for.deadlocks wfg)

let test_callback_style_cycle () =
  (* A cycle through a manual (gather-style) wait plus a lock wait, the
     shape that arises between a writer waiting for callbacks and a
     reader blocked at the server. *)
  let e, wfg, lt = mk () in
  Waits_for.begin_txn wfg 1 ~start:0.0;
  Waits_for.begin_txn wfg 2 ~start:1.0;
  let w_aborted = ref false in
  Proc.spawn e (fun () ->
      ignore (Lock_table.acquire lt "p" ~txn:1 ~kind:Lock);
      (* writer txn 1 now "waits for callbacks" *)
      let r =
        Proc.suspend e (fun resume ->
            Waits_for.set_wait wfg 1 ~blockers:[] ~cancel:(fun () ->
                resume (Ok `Aborted)))
      in
      if r = `Aborted then w_aborted := true);
  Proc.spawn e (fun () ->
      Proc.hold e 0.1;
      (* reader txn 2 blocks on the page lock: edge 2 -> 1 *)
      ignore (Lock_table.acquire lt "p" ~txn:2 ~kind:Probe));
  Proc.spawn e (fun () ->
      Proc.hold e 0.2;
      (* the callback reaches txn 2's client and blocks: edge 1 -> 2 *)
      Waits_for.add_blocker wfg 1 2;
      ignore (Waits_for.check_deadlock wfg ~from:1));
  Engine.run e;
  Alcotest.(check int) "deadlock found" 1 (Waits_for.deadlocks wfg);
  Alcotest.(check bool) "younger txn 2 was victim, writer survives" false
    !w_aborted

let test_cancelled_waiter_unblocks_queue () =
  let e, wfg, lt = mk () in
  List.iteri (fun i t -> Waits_for.begin_txn wfg t ~start:(float_of_int i)) [ 1; 2; 3 ];
  let g3 = ref None in
  Proc.spawn e (fun () -> ignore (Lock_table.acquire lt "a" ~txn:1 ~kind:Lock));
  (* txn 2 queues a Lock behind txn 1... *)
  let r2 = ref None in
  Proc.spawn e (fun () ->
      Proc.hold e 0.1;
      r2 := Some (Lock_table.acquire lt "a" ~txn:2 ~kind:Lock));
  (* ...txn 3 queues a probe behind txn 2 *)
  Proc.spawn e (fun () ->
      Proc.hold e 0.2;
      g3 := Some (Lock_table.acquire lt "a" ~txn:3 ~kind:Probe));
  Engine.run e;
  (* Abort txn 2 via an artificial cycle: 2 waits on 1; make 1 wait on 2. *)
  Waits_for.set_wait wfg 1 ~blockers:[ 2 ] ~cancel:(fun () -> ());
  ignore (Waits_for.check_deadlock wfg ~from:1);
  Engine.run e;
  Alcotest.(check bool) "t2 aborted" true (!r2 = Some Aborted);
  (* Now release txn 1: probe of txn 3 must be granted despite the
     cancelled Lock request that used to sit ahead of it. *)
  Waits_for.clear_wait wfg 1;
  Lock_table.release_all lt ~txn:1;
  Engine.run e;
  Alcotest.(check bool) "t3 probe granted" true (!g3 = Some Granted)

(* --- Lock conversion edge cases ------------------------------------------ *)

(* A probe confers no ownership, so probe-then-lock must go through the
   full acquire path; lock-then-probe must short-circuit. *)
let test_probe_then_lock_upgrade () =
  let e, _, lt = mk () in
  let steps = ref [] in
  Proc.spawn e (fun () ->
      ignore (Lock_table.acquire lt "a" ~txn:1 ~kind:Probe);
      steps := "probed" :: !steps;
      ignore (Lock_table.acquire lt "a" ~txn:1 ~kind:Lock);
      steps := "locked" :: !steps);
  Engine.run e;
  Alcotest.(check (list string)) "upgrade order" [ "probed"; "locked" ]
    (List.rev !steps);
  Alcotest.(check bool) "held after upgrade" true
    (Lock_table.held_by lt "a" ~txn:1)

(* force_grant (PS-AA de-escalation conversion) must not jump over the
   FIFO queue's memory: waiters queued behind the converted lock drain
   in order once it is released. *)
let test_force_grant_with_queued_waiters () =
  let e, _, lt = mk () in
  let order = ref [] in
  Proc.spawn e (fun () ->
      ignore (Lock_table.acquire lt "a" ~txn:1 ~kind:Lock);
      Proc.hold e 1.0;
      (* conversion while txns 2 and 3 sit in the queue *)
      Lock_table.force_grant lt "a" ~txn:1;
      Alcotest.(check bool) "still held by converter" true
        (Lock_table.held_by lt "a" ~txn:1);
      Proc.hold e 1.0;
      Lock_table.release lt "a" ~txn:1);
  List.iter
    (fun txn ->
      Proc.spawn e (fun () ->
          Proc.hold e (0.1 *. float_of_int txn);
          ignore (Lock_table.acquire lt "a" ~txn ~kind:Lock);
          order := txn :: !order;
          Lock_table.release lt "a" ~txn))
    [ 2; 3 ];
  Engine.run e;
  Alcotest.(check (list int)) "FIFO preserved across conversion" [ 2; 3 ]
    (List.rev !order)

(* Releasing a lock the transaction does not hold must not disturb the
   real holder. *)
let test_release_not_held_noop () =
  let e, _, lt = mk () in
  Proc.spawn e (fun () -> ignore (Lock_table.acquire lt "a" ~txn:1 ~kind:Lock));
  Engine.run e;
  Lock_table.release lt "a" ~txn:2;
  Lock_table.release_all lt ~txn:3;
  Alcotest.(check bool) "holder untouched" true
    (Lock_table.held_by lt "a" ~txn:1)

(* --- any_cycle vs brute-force reachability -------------------------------- *)

(* Install an arbitrary waits-for graph and compare the incremental
   detector's verdict against transitive-closure reachability; when a
   witness comes back, replay it edge by edge against the graph. *)
let prop_any_cycle_vs_reachability =
  let txns = [ 1; 2; 3; 4; 5; 6 ] in
  QCheck.Test.make ~name:"any_cycle agrees with brute-force reachability"
    ~count:500
    QCheck.(list_of_size (Gen.int_range 0 14) (pair (int_range 1 6) (int_range 1 6)))
    (fun pairs ->
      let edges = List.filter (fun (a, b) -> a <> b) pairs in
      let blockers_of w =
        List.sort_uniq compare
          (List.filter_map (fun (a, b) -> if a = w then Some b else None) edges)
      in
      let wfg = Waits_for.create () in
      List.iter (fun t -> Waits_for.begin_txn wfg t ~start:(float_of_int t)) txns;
      List.iter
        (fun w ->
          match blockers_of w with
          | [] -> ()
          | blockers -> Waits_for.set_wait wfg w ~blockers ~cancel:(fun () -> ()))
        txns;
      (* Brute force: a cycle exists iff some transaction reaches itself. *)
      let reaches src dst =
        let seen = Hashtbl.create 8 in
        let rec go u =
          List.exists
            (fun v ->
              v = dst
              || (not (Hashtbl.mem seen v))
                 && (Hashtbl.add seen v ();
                     go v))
            (blockers_of u)
        in
        go src
      in
      let expected = List.exists (fun t -> reaches t t) txns in
      match Waits_for.any_cycle wfg with
      | None -> not expected
      | Some cyc ->
        (* witness sanity: consecutive elements of the reversed path are
           waits-for edges, and the last closes back on the first *)
        let path = List.rev cyc in
        let rec edges_ok = function
          | a :: (b :: _ as rest) ->
            List.mem b (blockers_of a) && edges_ok rest
          | [ last ] -> List.mem (List.hd path) (blockers_of last)
          | [] -> false
        in
        expected && path <> [] && edges_ok path)

let suite =
  [
    Alcotest.test_case "copy table register" `Quick test_copy_register;
    Alcotest.test_case "copy table unregister" `Quick test_copy_unregister;
    Alcotest.test_case "immediate grant" `Quick test_immediate_grant;
    Alcotest.test_case "re-acquire held lock" `Quick test_reacquire_held;
    Alcotest.test_case "probe on free item" `Quick test_probe_free_item;
    Alcotest.test_case "conflict blocks until release" `Quick
      test_conflict_blocks_until_release;
    Alcotest.test_case "FIFO queue" `Quick test_fifo_queue;
    Alcotest.test_case "probes share" `Quick test_probes_share;
    Alcotest.test_case "release_all" `Quick test_release_all;
    Alcotest.test_case "force_grant" `Quick test_force_grant;
    Alcotest.test_case "try_acquire" `Quick test_try_acquire;
    Alcotest.test_case "two-txn deadlock" `Quick test_two_txn_deadlock;
    Alcotest.test_case "victim is youngest" `Quick test_victim_is_youngest;
    Alcotest.test_case "three-txn cycle" `Quick test_three_txn_cycle;
    Alcotest.test_case "no false deadlock" `Quick test_no_false_deadlock;
    Alcotest.test_case "callback-style cycle" `Quick test_callback_style_cycle;
    Alcotest.test_case "cancelled waiter unblocks queue" `Quick
      test_cancelled_waiter_unblocks_queue;
    Alcotest.test_case "probe-then-lock upgrade" `Quick
      test_probe_then_lock_upgrade;
    Alcotest.test_case "force_grant keeps FIFO queue" `Quick
      test_force_grant_with_queued_waiters;
    Alcotest.test_case "release of non-held lock is a no-op" `Quick
      test_release_not_held_noop;
    QCheck_alcotest.to_alcotest prop_any_cycle_vs_reachability;
  ]

open Simcore
open Resources

let feps = 1e-9

(* --- CPU --------------------------------------------------------------- *)

(* 1 MIPS CPU: n instructions take n microseconds. *)
let mk_cpu () =
  let e = Engine.create () in
  (e, Cpu.create e ~name:"test" ~mips:1.0)

let test_cpu_system_service_time () =
  let e, cpu = mk_cpu () in
  let t = ref 0.0 in
  Proc.spawn e (fun () ->
      Cpu.system cpu 1_000_000.0;
      t := Engine.now e);
  Engine.run e;
  Alcotest.(check (float feps)) "1M instr at 1 MIPS = 1s" 1.0 !t

let test_cpu_system_fifo () =
  let e, cpu = mk_cpu () in
  let log = ref [] in
  for i = 1 to 3 do
    Proc.spawn e (fun () ->
        Cpu.system cpu 1_000_000.0;
        log := (i, Engine.now e) :: !log)
  done;
  Engine.run e;
  Alcotest.(check (list (pair int (float feps))))
    "serialized FIFO"
    [ (1, 1.0); (2, 2.0); (3, 3.0) ]
    (List.rev !log)

let test_cpu_user_processor_sharing () =
  let e, cpu = mk_cpu () in
  (* Two equal user jobs sharing: each takes twice as long. *)
  let done_at = ref [] in
  for _ = 1 to 2 do
    Proc.spawn e (fun () ->
        Cpu.user cpu 1_000_000.0;
        done_at := Engine.now e :: !done_at)
  done;
  Engine.run e;
  List.iter
    (fun t -> Alcotest.(check (float 1e-6)) "PS doubles latency" 2.0 t)
    !done_at

let test_cpu_user_unequal_jobs () =
  let e, cpu = mk_cpu () in
  let short = ref 0.0 and long_ = ref 0.0 in
  Proc.spawn e (fun () ->
      Cpu.user cpu 1_000_000.0;
      short := Engine.now e);
  Proc.spawn e (fun () ->
      Cpu.user cpu 3_000_000.0;
      long_ := Engine.now e);
  Engine.run e;
  (* Short job: shares until 2s (1M each done), finishes. Long job: 2M
     left alone -> finishes at 4s. *)
  Alcotest.(check (float 1e-6)) "short at 2s" 2.0 !short;
  Alcotest.(check (float 1e-6)) "long at 4s" 4.0 !long_

let test_cpu_system_preempts_user () =
  let e, cpu = mk_cpu () in
  let user_done = ref 0.0 in
  Proc.spawn e (fun () ->
      Cpu.user cpu 2_000_000.0;
      user_done := Engine.now e);
  Proc.spawn e (fun () ->
      Proc.hold e 1.0;
      (* freeze user work for 1s *)
      Cpu.system cpu 1_000_000.0);
  Engine.run e;
  (* User: 1s progress, then frozen 1s, then 1s more = 3s total. *)
  Alcotest.(check (float 1e-6)) "user delayed by system" 3.0 !user_done

let test_cpu_zero_work () =
  let e, cpu = mk_cpu () in
  let t = ref (-1.0) in
  Proc.spawn e (fun () ->
      Cpu.user cpu 0.0;
      t := Engine.now e);
  Engine.run e;
  Alcotest.(check (float feps)) "zero work instant" 0.0 !t

let test_cpu_utilization () =
  let e, cpu = mk_cpu () in
  Proc.spawn e (fun () -> Cpu.system cpu 1_000_000.0);
  Engine.run e;
  Engine.run_until e 2.0;
  Alcotest.(check (float 1e-6)) "busy 1s of 2s" 0.5 (Cpu.utilization cpu)

let test_cpu_negative_rejected () =
  let e, cpu = mk_cpu () in
  let raised = ref false in
  Proc.spawn e (fun () ->
      try Cpu.user cpu (-5.0) with Invalid_argument _ -> raised := true);
  Engine.run e;
  Alcotest.(check bool) "negative rejected" true !raised

(* --- Disk -------------------------------------------------------------- *)

let test_disk_service_range () =
  let e = Engine.create () in
  let d =
    Disk.create e ~rng:(Rng.create ~seed:1) ~min_time:0.010 ~max_time:0.030 ()
  in
  let t = ref 0.0 in
  Proc.spawn e (fun () ->
      Disk.io d;
      t := Engine.now e);
  Engine.run e;
  Alcotest.(check bool) "within range" true (!t >= 0.010 && !t <= 0.030);
  Alcotest.(check int) "counted" 1 (Disk.io_count d)

let test_disk_fifo_queueing () =
  let e = Engine.create () in
  let d = Disk.create e ~rng:(Rng.create ~seed:2) ~min_time:0.020 ~max_time:0.020 () in
  let finish_times = ref [] in
  for _ = 1 to 3 do
    Proc.spawn e (fun () ->
        Disk.io d;
        finish_times := Engine.now e :: !finish_times)
  done;
  Engine.run e;
  Alcotest.(check (list (float 1e-9)))
    "serialized at 20ms" [ 0.020; 0.040; 0.060 ]
    (List.rev !finish_times)

let test_disk_utilization () =
  let e = Engine.create () in
  let d = Disk.create e ~rng:(Rng.create ~seed:3) ~min_time:0.5 ~max_time:0.5 () in
  Proc.spawn e (fun () -> Disk.io d);
  Engine.run e;
  Engine.run_until e 1.0;
  Alcotest.(check (float 1e-6)) "50% busy" 0.5 (Disk.utilization d)

let test_disk_array_spreads () =
  let e = Engine.create () in
  let da =
    Disk_array.create e ~rng:(Rng.create ~seed:4) ~disks:4 ~min_time:0.01
      ~max_time:0.01 ()
  in
  for _ = 1 to 40 do
    Proc.spawn e (fun () -> Disk_array.io da)
  done;
  Engine.run e;
  Alcotest.(check int) "all I/Os done" 40 (Disk_array.io_count da);
  (* With 4 disks and uniform choice, total time well under serialized. *)
  Alcotest.(check bool) "parallelism achieved" true (Engine.now e < 0.4)

(* --- Network ----------------------------------------------------------- *)

let test_network_transfer_time () =
  let e = Engine.create () in
  (* 8 Mbit/s: 1000 bytes = 8000 bits = 1 ms. *)
  let n = Network.create e ~bandwidth_mbits:8.0 in
  let t = ref 0.0 in
  Proc.spawn e (fun () ->
      Network.transfer n ~bytes:1000;
      t := Engine.now e);
  Engine.run e;
  Alcotest.(check (float 1e-9)) "1ms" 0.001 !t;
  Alcotest.(check int) "messages" 1 (Network.messages n);
  Alcotest.(check int) "bytes" 1000 (Network.bytes_sent n)

let test_network_fifo () =
  let e = Engine.create () in
  let n = Network.create e ~bandwidth_mbits:8.0 in
  let finish = ref [] in
  for _ = 1 to 3 do
    Proc.spawn e (fun () ->
        Network.transfer n ~bytes:1000;
        finish := Engine.now e :: !finish)
  done;
  Engine.run e;
  Alcotest.(check (list (float 1e-9)))
    "serialized" [ 0.001; 0.002; 0.003 ] (List.rev !finish)

let test_network_zero_bytes () =
  let e = Engine.create () in
  let n = Network.create e ~bandwidth_mbits:8.0 in
  let done_ = ref false in
  Proc.spawn e (fun () ->
      Network.transfer n ~bytes:0;
      done_ := true);
  Engine.run e;
  Alcotest.(check bool) "zero-byte ok" true !done_

let suite =
  [
    Alcotest.test_case "cpu system service time" `Quick test_cpu_system_service_time;
    Alcotest.test_case "cpu system FIFO" `Quick test_cpu_system_fifo;
    Alcotest.test_case "cpu processor sharing" `Quick test_cpu_user_processor_sharing;
    Alcotest.test_case "cpu unequal user jobs" `Quick test_cpu_user_unequal_jobs;
    Alcotest.test_case "cpu system preempts user" `Quick test_cpu_system_preempts_user;
    Alcotest.test_case "cpu zero work" `Quick test_cpu_zero_work;
    Alcotest.test_case "cpu utilization" `Quick test_cpu_utilization;
    Alcotest.test_case "cpu rejects negative work" `Quick test_cpu_negative_rejected;
    Alcotest.test_case "disk service range" `Quick test_disk_service_range;
    Alcotest.test_case "disk FIFO queueing" `Quick test_disk_fifo_queueing;
    Alcotest.test_case "disk utilization" `Quick test_disk_utilization;
    Alcotest.test_case "disk array spreads load" `Quick test_disk_array_spreads;
    Alcotest.test_case "network transfer time" `Quick test_network_transfer_time;
    Alcotest.test_case "network FIFO" `Quick test_network_fifo;
    Alcotest.test_case "network zero bytes" `Quick test_network_zero_bytes;
  ]

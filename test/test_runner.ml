(* End-to-end tests of the full closed system: short measured runs for
   every protocol and workload, checking liveness, determinism, and the
   qualitative relationships the paper's analysis relies on.  Windows
   are kept short; the calibrated reproduction lives in bench/. *)

open Oodb_core

let quick_run ?(algo = Algo.PS_AA) ?(which = Workload.Presets.Hotcold)
    ?(locality = Workload.Presets.Low) ?(write_prob = 0.1) ?(seed = 42)
    ?(warmup = 10.0) ?(measure = 30.0) () =
  let cfg = Config.default in
  let params =
    Workload.Presets.make which ~db_pages:cfg.Config.db_pages
      ~objects_per_page:cfg.Config.objects_per_page
      ~num_clients:cfg.Config.num_clients ~locality ~write_prob
  in
  Runner.run ~seed ~warmup ~measure ~cfg ~algo ~params ()

let test_all_protocols_live () =
  List.iter
    (fun algo ->
      let r = quick_run ~algo () in
      Alcotest.(check bool)
        (Algo.to_string algo ^ " commits transactions")
        true (r.Runner.commits > 50);
      Alcotest.(check bool)
        (Algo.to_string algo ^ " throughput positive")
        true
        (r.Runner.throughput > 0.0);
      Alcotest.(check bool)
        (Algo.to_string algo ^ " response sane")
        true
        (r.Runner.resp_mean > 0.0 && r.Runner.resp_mean < 30.0))
    Algo.all

let test_all_workloads_live () =
  List.iter
    (fun which ->
      let r = quick_run ~which ~locality:Workload.Presets.High () in
      Alcotest.(check bool)
        (Workload.Presets.name_to_string which ^ " commits")
        true (r.Runner.commits > 30))
    Workload.Presets.all

let test_determinism () =
  let a = quick_run ~measure:20.0 () and b = quick_run ~measure:20.0 () in
  Alcotest.(check int) "same seed, same commits" a.Runner.commits b.Runner.commits;
  Alcotest.(check int) "same messages" a.Runner.messages b.Runner.messages;
  let c = quick_run ~measure:20.0 ~seed:7 () in
  Alcotest.(check bool) "different seed differs" true
    (c.Runner.commits <> a.Runner.commits || c.Runner.messages <> a.Runner.messages)

let test_read_only_equivalence () =
  (* At write probability 0 every page-transfer protocol degenerates to
     the same behaviour; OS differs only by its object-at-a-time
     fetches (strictly more messages, lower throughput). *)
  let results =
    List.map (fun algo -> (algo, quick_run ~algo ~write_prob:0.0 ())) Algo.all
  in
  let tput a = (List.assoc a results).Runner.throughput in
  let ps = tput Algo.PS in
  List.iter
    (fun a ->
      Alcotest.(check bool)
        (Algo.to_string a ^ " matches PS when read-only")
        true
        (abs_float (tput a -. ps) /. ps < 0.02))
    [ Algo.PS_OO; Algo.PS_OA; Algo.PS_AA ];
  Alcotest.(check bool) "OS slower when read-only" true (tput Algo.OS < ps);
  List.iter
    (fun (a, r) ->
      Alcotest.(check int)
        (Algo.to_string a ^ " no deadlocks read-only")
        0 r.Runner.deadlocks)
    results

let test_no_contention_private () =
  (* PRIVATE has no data contention: no deadlocks, no callback blocking,
     and PS-AA issues page-grain write grants only. *)
  let r =
    quick_run ~which:Workload.Presets.Private_ ~locality:Workload.Presets.High
      ~write_prob:0.3 ()
  in
  Alcotest.(check int) "no deadlocks" 0 r.Runner.deadlocks;
  Alcotest.(check int) "no aborts" 0 r.Runner.aborts;
  Alcotest.(check int) "no object grants" 0 r.Runner.object_write_grants;
  Alcotest.(check bool) "page grants happen" true (r.Runner.page_write_grants > 0)

let test_ps_aa_beats_ps_under_false_sharing () =
  (* Interleaved PRIVATE is pure false sharing: fine-grained protocols
     must beat the page-grain PS. *)
  let ps =
    quick_run ~algo:Algo.PS ~which:Workload.Presets.Interleaved_private
      ~locality:Workload.Presets.High ~write_prob:0.2 ()
  in
  let oo =
    quick_run ~algo:Algo.PS_OO ~which:Workload.Presets.Interleaved_private
      ~locality:Workload.Presets.High ~write_prob:0.2 ()
  in
  Alcotest.(check bool) "PS-OO beats PS under false sharing" true
    (oo.Runner.throughput > ps.Runner.throughput)

let test_os_message_heavy () =
  (* The object server pays at least one round trip per object: far more
     messages per commit than the page server at decent locality. *)
  let os = quick_run ~algo:Algo.OS ~locality:Workload.Presets.High () in
  let ps = quick_run ~algo:Algo.PS ~locality:Workload.Presets.High () in
  Alcotest.(check bool) "OS needs more messages" true
    (os.Runner.msgs_per_commit > 1.5 *. ps.Runner.msgs_per_commit)

let test_deescalations_only_under_ps_aa () =
  List.iter
    (fun algo ->
      let r = quick_run ~algo ~write_prob:0.2 ~measure:20.0 () in
      if algo = Algo.PS_AA then
        Alcotest.(check bool) "PS-AA de-escalates" true (r.Runner.deescalations > 0)
      else
        Alcotest.(check int)
          (Algo.to_string algo ^ " never de-escalates")
          0 r.Runner.deescalations)
    Algo.all

let test_hicon_contention () =
  (* HICON must show dramatically more data contention than HOTCOLD:
     more blocking per committed transaction and a higher abort ratio. *)
  let hicon = quick_run ~which:Workload.Presets.Hicon ~algo:Algo.PS ~write_prob:0.3 () in
  let hotcold = quick_run ~which:Workload.Presets.Hotcold ~algo:Algo.PS ~write_prob:0.3 () in
  let per_commit (r : Runner.result) what =
    float_of_int what /. float_of_int (max 1 r.Runner.commits)
  in
  Alcotest.(check bool) "more lock waits per commit under HICON" true
    (per_commit hicon hicon.Runner.lock_waits
    > per_commit hotcold hotcold.Runner.lock_waits);
  Alcotest.(check bool) "higher abort ratio under HICON" true
    (per_commit hicon hicon.Runner.aborts
    > per_commit hotcold hotcold.Runner.aborts)

let test_utilizations_bounded () =
  List.iter
    (fun algo ->
      let r = quick_run ~algo ~write_prob:0.2 ~measure:20.0 () in
      List.iter
        (fun (what, v) ->
          if v < 0.0 || v > 1.0 +. 1e-9 then
            Alcotest.failf "%s %s utilization out of range: %f"
              (Algo.to_string algo) what v)
        [
          ("server cpu", r.Runner.server_cpu_util);
          ("client cpu", r.Runner.client_cpu_util);
          ("disk", r.Runner.disk_util);
          ("net", r.Runner.net_util);
        ])
    Algo.all

let test_scaled_config_runs () =
  (* A short scaled (x9) run must work end to end. *)
  let cfg = Config.scaled Config.default ~factor:9 in
  let params =
    Workload.Presets.make Workload.Presets.Hotcold ~db_pages:cfg.Config.db_pages
      ~objects_per_page:cfg.Config.objects_per_page
      ~num_clients:cfg.Config.num_clients ~trans_size:90
      ~locality:Workload.Presets.Low ~write_prob:0.1
  in
  let r =
    Runner.run ~warmup:20.0 ~measure:30.0 ~cfg ~algo:Algo.PS_AA ~params ()
  in
  Alcotest.(check bool) "scaled run commits" true (r.Runner.commits > 5)

let suite =
  [
    Alcotest.test_case "all protocols live" `Slow test_all_protocols_live;
    Alcotest.test_case "all workloads live" `Slow test_all_workloads_live;
    Alcotest.test_case "determinism" `Slow test_determinism;
    Alcotest.test_case "read-only equivalence" `Slow test_read_only_equivalence;
    Alcotest.test_case "PRIVATE: no contention" `Slow test_no_contention_private;
    Alcotest.test_case "false sharing favours fine grain" `Slow
      test_ps_aa_beats_ps_under_false_sharing;
    Alcotest.test_case "OS is message-heavy" `Slow test_os_message_heavy;
    Alcotest.test_case "only PS-AA de-escalates" `Slow
      test_deescalations_only_under_ps_aa;
    Alcotest.test_case "HICON contention" `Slow test_hicon_contention;
    Alcotest.test_case "utilizations bounded" `Slow test_utilizations_bounded;
    Alcotest.test_case "scaled configuration runs" `Slow test_scaled_config_runs;
  ]

open Simcore

(* The Equeue contract the engine's determinism rests on: entries drain
   in exact (time, seq) lexicographic order, whatever mix of heap
   (push_at) and ring (push_now) entries is queued, including ties at
   the same timestamp. *)

let test_arbitration () =
  let q = Equeue.create () in
  let log = ref [] in
  let tag id () = log := id :: !log in
  ignore (Equeue.push_at q ~time:1.0 (tag "h1") : int);
  ignore (Equeue.push_now q (tag "r0") : int);
  (* Same instant as the ring entry but a later seq: must pop after. *)
  ignore (Equeue.push_at q ~time:0.0 (tag "h0") : int);
  ignore (Equeue.push_now q (tag "r1") : int);
  Equeue.drain q;
  Alcotest.(check (list string))
    "(time, seq) arbitration" [ "r0"; "h0"; "r1"; "h1" ] (List.rev !log);
  Alcotest.(check (float 0.0)) "clock at last pop" 1.0 (Equeue.clock q)

let test_ring_guard () =
  let q = Equeue.create () in
  Equeue.set_clock q 5.0;
  ignore (Equeue.push_now q (fun () -> ()) : int);
  Equeue.set_clock q 1.0;
  Alcotest.(check bool) "receded clock rejected" true
    (try
       ignore (Equeue.push_now q (fun () -> ()) : int);
       false
     with Invalid_argument _ -> true)

(* Reference model: the live set as an association list; pop takes the
   minimum by (time, seq).  The property drives the queue with a random
   script of tie-heavy pushes (offsets 0..3 seconds, so many entries
   share a timestamp), zero-delay pushes interleaved with pops, then
   drains, checking every popped id and the clock against the model. *)
let prop_drain_order =
  QCheck.Test.make ~name:"equeue drains in exact (time, seq) order"
    ~count:300
    QCheck.(list (pair (int_bound 2) (int_bound 3)))
    (fun ops ->
      let q = Equeue.create () in
      let live = ref [] in (* (time, seq, id) *)
      let log = ref [] in
      let next_id = ref 0 in
      let ok = ref true in
      let fresh () =
        let id = !next_id in
        incr next_id;
        id
      in
      let do_pop () =
        if not (Equeue.is_empty q) then begin
          let t, s, id =
            List.fold_left
              (fun (bt, bs, bid) (t, s, id) ->
                if t < bt || (t = bt && s < bs) then (t, s, id)
                else (bt, bs, bid))
              (infinity, max_int, -1) !live
          in
          live := List.filter (fun (_, s', _) -> s' <> s) !live;
          (Equeue.pop_min q) ();
          (match !log with
          | got :: _ -> if got <> id then ok := false
          | [] -> ok := false);
          if Equeue.clock q <> t then ok := false
        end
      in
      List.iter
        (fun (kind, bucket) ->
          match kind with
          | 0 ->
            (* Future (or same-instant) heap entry, tie-heavy times. *)
            let time = Equeue.clock q +. float_of_int bucket in
            let id = fresh () in
            let seq = Equeue.push_at q ~time (fun () -> log := id :: !log) in
            live := (time, seq, id) :: !live
          | 1 ->
            let time = Equeue.clock q in
            let id = fresh () in
            let seq = Equeue.push_now q (fun () -> log := id :: !log) in
            live := (time, seq, id) :: !live
          | _ -> do_pop ())
        ops;
      while not (Equeue.is_empty q) do
        do_pop ()
      done;
      !ok && !live = [] && List.length !log = !next_id)

(* Timer churn: cancelling most of a large batch of timers must shrink
   [Engine.pending] immediately and keep the physical queue footprint
   within a constant factor of the live count — the lazy purge may keep
   dead entries around, but never more than half the footprint (plus
   the 64-entry purge floor). *)
let test_cancel_storm () =
  let e = Engine.create () in
  let fired = ref 0 in
  let live = ref 0 in
  for round = 1 to 50 do
    let tms =
      List.init 100 (fun i ->
          Engine.after e
            (float_of_int ((round * 100) + i))
            (fun () -> incr fired))
    in
    List.iteri (fun i tm -> if i mod 10 <> 0 then Engine.cancel tm) tms;
    live := !live + 10;
    Alcotest.(check int) "pending tracks live timers" !live (Engine.pending e);
    Alcotest.(check bool) "footprint bounded by live count" true
      (Engine.queue_footprint e <= (2 * Engine.pending e) + 128)
  done;
  Engine.run e;
  Alcotest.(check int) "survivors fired" 500 !fired;
  Alcotest.(check int) "nothing pending" 0 (Engine.pending e)

let suite =
  [
    Alcotest.test_case "ring/heap arbitration" `Quick test_arbitration;
    Alcotest.test_case "ring rejects receded clock" `Quick test_ring_guard;
    QCheck_alcotest.to_alcotest prop_drain_order;
    Alcotest.test_case "after/cancel storm stays bounded" `Quick
      test_cancel_storm;
  ]

(* Telemetry hardening: histogram quantile/merge properties, timeline
   ring semantics, Perfetto exporter conformance, and the golden
   byte-identity guarantee (timeline + percentiles on must not perturb
   the simulation). *)

open Oodb_core
module H = Telemetry.Histogram
module T = Telemetry.Timeline

(* --- Histogram units --------------------------------------------------- *)

let test_bucket_bounds () =
  let h = H.create () in
  for i = 0 to H.num_buckets h - 2 do
    Alcotest.(check (float 1e-12))
      (Printf.sprintf "bucket %d upper edge = bucket %d lower edge" i (i + 1))
      (H.bucket_hi h i)
      (H.bucket_lo h (i + 1))
  done;
  let g = H.growth_factor h in
  Alcotest.(check bool)
    "growth factor ~ 2.6% for 90 buckets/decade" true
    (g > 1.02 && g < 1.03);
  for i = 0 to H.num_buckets h - 1 do
    let ratio = H.bucket_hi h i /. H.bucket_lo h i in
    if abs_float (ratio -. g) > 1e-9 then
      Alcotest.failf "bucket %d width ratio %.12f <> growth factor %.12f" i
        ratio g
  done

let test_empty () =
  let h = H.create () in
  Alcotest.(check bool) "empty" true (H.is_empty h);
  Alcotest.(check int) "count 0" 0 (H.count h);
  (* 0.0, not nan: Runner.result values are compared with structural
     equality in the determinism tests, and nan <> nan. *)
  Alcotest.(check (float 0.0)) "quantile of empty is 0" 0.0 (H.quantile h 0.5);
  Alcotest.(check (float 0.0)) "mean of empty is 0" 0.0 (H.mean h);
  Alcotest.(check (float 0.0)) "min of empty is 0" 0.0 (H.min_value h)

let test_single_value () =
  let h = H.create () in
  H.record h 0.0123;
  List.iter
    (fun q ->
      Alcotest.(check (float 0.0))
        (Printf.sprintf "q=%.2f of a single sample is that sample" q)
        0.0123 (H.quantile h q))
    [ 0.0; 0.25; 0.5; 0.99; 1.0 ]

let test_out_of_range_exact () =
  let h = H.create () in
  H.record h 1e-9;
  Alcotest.(check (float 0.0)) "underflow reports exact min" 1e-9
    (H.quantile h 0.5);
  let h2 = H.create () in
  H.record h2 5e4;
  Alcotest.(check (float 0.0)) "overflow reports exact max" 5e4
    (H.quantile h2 0.5);
  let h3 = H.create () in
  H.record h3 (-3.0);
  Alcotest.(check int) "negative sample recorded (clamped)" 1 (H.count h3);
  Alcotest.(check (float 0.0)) "negative clamps to 0" 0.0 (H.min_value h3);
  H.record h3 nan;
  Alcotest.(check int) "NaN dropped" 1 (H.count h3)

let test_merge_geometry_mismatch () =
  let a = H.create () and b = H.create ~buckets_per_decade:10 () in
  Alcotest.check_raises "geometry mismatch rejected"
    (Invalid_argument "Histogram.merge: bucket geometries differ") (fun () ->
      H.merge ~into:a b)

let test_reset_and_copy () =
  let h = H.create () in
  List.iter (H.record h) [ 0.001; 0.01; 0.1 ];
  let c = H.copy h in
  H.record h 1.0;
  Alcotest.(check int) "copy is independent" 3 (H.count c);
  Alcotest.(check int) "original keeps recording" 4 (H.count h);
  H.reset h;
  Alcotest.(check bool) "reset empties" true (H.is_empty h);
  Alcotest.(check (float 0.0)) "reset quantile 0" 0.0 (H.quantile h 0.9)

(* --- Histogram properties (QCheck) ------------------------------------ *)

(* Log-uniform samples spanning the full regular bucket range
   [lo, hi) = [1e-6, 1e4). *)
let sample_gen =
  QCheck.map (fun u -> 1e-6 *. (10.0 ** (u *. 10.0)))
    (QCheck.float_bound_exclusive 1.0)

let samples_gen lo hi =
  QCheck.list_of_size (QCheck.Gen.int_range lo hi) sample_gen

let exact_quantile sorted q =
  let n = Array.length sorted in
  let r = int_of_float (Float.ceil (q *. float_of_int n)) in
  let r = if r < 1 then 1 else if r > n then n else r in
  sorted.(r - 1)

let prop_quantile_vs_exact =
  QCheck.Test.make ~name:"histogram quantile within one bucket of exact"
    ~count:300 (samples_gen 1 300) (fun xs ->
      let h = H.create () in
      List.iter (H.record h) xs;
      let sorted = Array.of_list xs in
      Array.sort compare sorted;
      let g = H.growth_factor h in
      List.for_all
        (fun q ->
          let exact = exact_quantile sorted q in
          let est = H.quantile h q in
          (* One bucket of relative error, plus float slop for samples
             landing within an ulp of a bucket edge. *)
          est >= exact *. (1.0 -. 1e-9) && est <= exact *. g *. (1.0 +. 1e-9))
        [ 0.0; 0.1; 0.5; 0.9; 0.95; 0.99; 1.0 ])

let same_estimates a b =
  H.count a = H.count b
  && H.min_value a = H.min_value b
  && H.max_value a = H.max_value b
  && List.for_all (fun q -> H.quantile a q = H.quantile b q)
       [ 0.0; 0.1; 0.25; 0.5; 0.75; 0.9; 0.99; 1.0 ]
  &&
  let buckets h =
    let acc = ref [] in
    H.iter_buckets h (fun ~lo ~hi ~count -> acc := (lo, hi, count) :: !acc);
    !acc
  in
  buckets a = buckets b

let of_list xs =
  let h = H.create () in
  List.iter (H.record h) xs;
  h

let prop_merge_associative_commutative =
  QCheck.Test.make
    ~name:"merge associative + commutative + record-order invariant"
    ~count:200
    (QCheck.triple (samples_gen 0 60) (samples_gen 0 60) (samples_gen 0 60))
    (fun (a, b, c) ->
      (* (a+b)+c vs a+(b+c) *)
      let ab_c =
        let h = of_list a in
        H.merge ~into:h (of_list b);
        H.merge ~into:h (of_list c);
        h
      in
      let a_bc =
        let bc = of_list b in
        H.merge ~into:bc (of_list c);
        let h = of_list a in
        H.merge ~into:h bc;
        h
      in
      (* b+a vs a+b *)
      let ba =
        let h = of_list b in
        H.merge ~into:h (of_list a);
        h
      in
      let ab =
        let h = of_list a in
        H.merge ~into:h (of_list b);
        h
      in
      (* recording the concatenation directly, in either order *)
      let rec_ab = of_list (a @ b) and rec_ba = of_list (b @ a) in
      same_estimates ab_c a_bc && same_estimates ba ab
      && same_estimates rec_ab ab
      && same_estimates rec_ba ab)

(* --- Timeline ring ----------------------------------------------------- *)

let test_ring_wrap () =
  let t = T.create ~capacity:8 () in
  let trk = T.define_track t "trk" in
  let n = T.intern t "tick" in
  for i = 1 to 20 do
    T.instant t ~track:trk ~name:n (float_of_int i)
  done;
  Alcotest.(check int) "recorded counts everything" 20 (T.recorded t);
  Alcotest.(check int) "length capped at capacity" 8 (T.length t);
  Alcotest.(check int) "dropped = recorded - length" 12 (T.dropped t);
  let times = ref [] in
  T.iter t (fun ~kind:_ ~track:_ ~name:_ ~arg:_ ~t0 ~t1:_ ->
      times := t0 :: !times);
  Alcotest.(check (list (float 0.0)))
    "iter yields the tail, oldest first"
    [ 13.; 14.; 15.; 16.; 17.; 18.; 19.; 20. ]
    (List.rev !times);
  Alcotest.(check (float 0.0)) "last_time" 20.0 (T.last_time t);
  T.clear t;
  Alcotest.(check int) "clear empties" 0 (T.length t)

let test_span_entries () =
  let t = T.create ~capacity:16 () in
  let trk = T.define_track t "a" in
  let nm = T.intern t "work" in
  T.span_begin t ~track:trk ~name:nm ~arg:7 1.0;
  T.span_end t ~track:trk 2.5;
  T.complete t ~track:trk ~name:nm ~t0:3.0 ~t1:4.0 ();
  let seen = ref [] in
  T.iter t (fun ~kind ~track ~name ~arg ~t0 ~t1 ->
      seen := (kind, track, name, arg, t0, t1) :: !seen);
  match List.rev !seen with
  | [ (T.Begin, _, n1, 7, 1.0, _); (T.End, _, _, _, 2.5, _);
      (T.Complete, _, n2, -1, 3.0, 4.0) ] ->
    Alcotest.(check string) "interned name survives" "work" (T.name_of t n1);
    Alcotest.(check int) "complete reuses the interned id" n1 n2
  | l -> Alcotest.failf "unexpected entry sequence (%d entries)" (List.length l)

let test_dump_format () =
  let t = T.create ~capacity:4 () in
  let trk = T.define_track t "server" in
  let nm = T.intern t "commit" in
  T.instant t ~track:trk ~name:nm ~arg:42 1.25;
  let d = T.dump t in
  Alcotest.(check bool) "dump has header" true
    (String.length d > 0 && String.sub d 0 9 = "timeline:");
  let contains s sub =
    let n = String.length s and m = String.length sub in
    let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "dump names the track" true (contains d "server");
  Alcotest.(check bool) "dump names the event" true (contains d "commit")

(* --- Minimal JSON parser (no JSON library in the image) ---------------- *)

type json =
  | JNull
  | JBool of bool
  | JNum of float
  | JStr of string
  | JList of json list
  | JObj of (string * json) list

exception Bad_json of string

let parse_json (s : string) : json =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let fail msg = raise (Bad_json (Printf.sprintf "%s at byte %d" msg !pos)) in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance ();
      skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some x when x = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %C" c)
  in
  let literal word v =
    String.iter expect word;
    v
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' -> (
        advance ();
        match peek () with
        | Some 'n' -> advance (); Buffer.add_char buf '\n'; go ()
        | Some 't' -> advance (); Buffer.add_char buf '\t'; go ()
        | Some 'r' -> advance (); Buffer.add_char buf '\r'; go ()
        | Some 'b' -> advance (); Buffer.add_char buf '\b'; go ()
        | Some 'f' -> advance (); Buffer.add_char buf '\012'; go ()
        | Some (('"' | '\\' | '/') as c) -> advance (); Buffer.add_char buf c; go ()
        | Some 'u' ->
          advance ();
          if !pos + 4 > n then fail "truncated \\u escape";
          let code = int_of_string ("0x" ^ String.sub s !pos 4) in
          pos := !pos + 4;
          Buffer.add_char buf (if code < 128 then Char.chr code else '?');
          go ()
        | _ -> fail "bad escape")
      | Some c ->
        advance ();
        Buffer.add_char buf c;
        go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let is_num_char = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while (match peek () with Some c -> is_num_char c | None -> false) do
      advance ()
    done;
    if !pos = start then fail "expected number";
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> f
    | None -> fail "malformed number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then (advance (); JObj [])
      else
        let rec members acc =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' -> advance (); members ((k, v) :: acc)
          | Some '}' -> advance (); JObj (List.rev ((k, v) :: acc))
          | _ -> fail "expected , or } in object"
        in
        members []
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then (advance (); JList [])
      else
        let rec elements acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' -> advance (); elements (v :: acc)
          | Some ']' -> advance (); JList (List.rev (v :: acc))
          | _ -> fail "expected , or ] in array"
        in
        elements []
    | Some '"' -> JStr (parse_string ())
    | Some 't' -> literal "true" (JBool true)
    | Some 'f' -> literal "false" (JBool false)
    | Some 'n' -> literal "null" JNull
    | Some _ -> JNum (parse_number ())
    | None -> fail "unexpected end of input"
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

let obj_field o k =
  match o with
  | JObj kvs -> List.assoc_opt k kvs
  | _ -> None

let str_field o k =
  match obj_field o k with Some (JStr s) -> Some s | _ -> None

let num_field o k =
  match obj_field o k with Some (JNum f) -> Some f | _ -> None

(* --- Perfetto exporter units ------------------------------------------ *)

let trace_events json =
  match obj_field json "traceEvents" with
  | Some (JList evs) -> evs
  | _ -> Alcotest.fail "trace has no traceEvents array"

let test_export_unclosed_begin () =
  let t = T.create ~capacity:16 () in
  let trk = T.define_track t "c" in
  let nm = T.intern t "txn" in
  T.span_begin t ~track:trk ~name:nm 1.0;
  T.instant t ~track:trk ~name:nm 5.0;
  let json = parse_json (Telemetry.Perfetto.to_json t) in
  let evs = trace_events json in
  let bs, es =
    List.fold_left
      (fun (b, e) ev ->
        match str_field ev "ph" with
        | Some "B" -> (b + 1, e)
        | Some "E" -> (b, e + 1)
        | _ -> (b, e))
      (0, 0) evs
  in
  Alcotest.(check int) "one B" 1 bs;
  Alcotest.(check int) "synthetic E closes it" 1 es;
  (* The synthetic end lands at the latest recorded time (5.0 s). *)
  let last_e =
    List.filter (fun ev -> str_field ev "ph" = Some "E") evs |> List.rev
    |> List.hd
  in
  Alcotest.(check (float 1e-6))
    "synthetic end at last_time (us)" 5e6
    (Option.get (num_field last_e "ts"))

let test_export_orphan_end_dropped () =
  let t = T.create ~capacity:4 () in
  let trk = T.define_track t "c" in
  let nm = T.intern t "txn" in
  T.span_begin t ~track:trk ~name:nm 1.0;
  (* Push the Begin out of the ring... *)
  for i = 2 to 6 do
    T.instant t ~track:trk ~name:nm (float_of_int i)
  done;
  (* ...then close it: the End's Begin is gone. *)
  T.span_end t ~track:trk 7.0;
  let json = parse_json (Telemetry.Perfetto.to_json t) in
  let evs = trace_events json in
  List.iter
    (fun ev ->
      match str_field ev "ph" with
      | Some "E" -> Alcotest.fail "orphan E leaked into the trace"
      | Some "B" -> Alcotest.fail "overwritten B leaked into the trace"
      | _ -> ())
    evs

(* --- Exporter conformance on a crash-storm run ------------------------- *)

(* Validate the whole pipeline on a run where recovery epochs matter:
   crash storms open "down" spans, transactions abort mid-flight, the
   ring wraps.  The trace must still be valid JSON with matched,
   non-overlapping, monotone spans per track. *)
let conformance_run () =
  let spec = Option.get (Experiments.find "fig3") in
  let cfg =
    {
      (Experiments.cfg_of spec) with
      Config.timeline = true;
      faults = Faults.storm ~rate:0.05;
    }
  in
  let params = Experiments.params_of spec ~write_prob:0.1 in
  let job =
    Job.make ~sweep:"telemetry-conformance" ~label:"storm" ~cfg
      ~algo:Algo.PS_OO ~params ~warmup:3.0 ~measure:25.0 ()
  in
  Job.run job

let test_exporter_conformance () =
  let r = conformance_run () in
  let tl =
    match r.Runner.timeline with
    | Some t -> t
    | None -> Alcotest.fail "cfg.timeline did not attach a recorder"
  in
  Alcotest.(check bool) "storm produced crashes" true (r.Runner.crashes > 0);
  let json = parse_json (Telemetry.Perfetto.to_json tl) in
  let evs = trace_events json in
  Alcotest.(check bool) "trace has events" true (List.length evs > 100);
  (* Per-track scan, in array order: monotone timestamps, balanced
     B/E nesting, serialized X spans.  %.3f-us printing can reorder
     equal-to-within-a-nanosecond stamps, hence the epsilon. *)
  let eps = 0.01 (* us *) in
  let by_tid = Hashtbl.create 32 in
  let down_spans = ref 0 in
  List.iter
    (fun ev ->
      match (str_field ev "ph", num_field ev "tid") with
      | Some "M", _ -> ()
      | Some ph, Some tid ->
        let ts =
          match num_field ev "ts" with
          | Some ts -> ts
          | None -> Alcotest.failf "event without ts (ph=%s)" ph
        in
        if ph = "B" && str_field ev "name" = Some "down" then
          incr down_spans;
        let last_ts, depth, busy_until =
          match Hashtbl.find_opt by_tid tid with
          | Some s -> s
          | None -> (neg_infinity, 0, neg_infinity)
        in
        if ts < last_ts -. eps then
          Alcotest.failf "tid %.0f: ts %.3f precedes %.3f" tid ts last_ts;
        let depth =
          match ph with
          | "B" -> depth + 1
          | "E" ->
            if depth = 0 then
              Alcotest.failf "tid %.0f: E with no open B at %.3f" tid ts;
            depth - 1
          | _ -> depth
        in
        let busy_until =
          if ph = "X" then begin
            let dur =
              match num_field ev "dur" with
              | Some d -> d
              | None -> Alcotest.failf "X without dur at %.3f" ts
            in
            if ts < busy_until -. eps then
              Alcotest.failf "tid %.0f: X at %.3f overlaps busy-until %.3f"
                tid ts busy_until;
            ts +. dur
          end
          else busy_until
        in
        Hashtbl.replace by_tid tid (ts, depth, busy_until)
      | _ -> Alcotest.fail "event without ph/tid")
    evs;
  Hashtbl.iter
    (fun tid (_, depth, _) ->
      if depth <> 0 then
        Alcotest.failf "tid %.0f: %d spans left open after synthetic closes"
          tid depth)
    by_tid;
  Alcotest.(check bool) "crash recovery epochs appear as down spans" true
    (!down_spans > 0)

(* --- Golden byte-identity with telemetry on ---------------------------- *)

(* The timeline recorder, like the oracle, is pure observation.  The
   fig3 reference point must render byte-identically to the golden
   capture with the recorder attached and percentiles computed. *)
let test_timeline_on_byte_identity () =
  let series =
    Harness.Sweep.run_spec ~time_scale:0.1 ~timeline:true ~jobs:1
      (Test_faults.fig3_point ())
  in
  Alcotest.(check string)
    "timeline on: fig3 reference point is byte-identical to telemetry off"
    Test_faults.golden_fig3_point
    (Test_faults.render_series series);
  (* And the recorder did actually run. *)
  List.iter
    (fun (p : Experiments.point) ->
      List.iter
        (fun ((a : Algo.t), (r : Runner.result)) ->
          match r.Runner.timeline with
          | Some tl ->
            if T.recorded tl = 0 then
              Alcotest.failf "%s: timeline attached but empty"
                (Algo.to_string a)
          | None ->
            Alcotest.failf "%s: no timeline attached" (Algo.to_string a))
        p.Experiments.results)
    series.Experiments.points;
  (* Percentile fields are derived from the same run: sane and ordered. *)
  let _, (r : Runner.result) =
    List.hd (List.hd series.Experiments.points).Experiments.results
  in
  Alcotest.(check bool) "p50 <= p90 <= p99 <= max" true
    (r.Runner.resp_p50 <= r.Runner.resp_p90
    && r.Runner.resp_p90 <= r.Runner.resp_p99
    && r.Runner.resp_p99
       <= H.max_value r.Runner.hists.Metrics.h_response +. 1e-12)

let suite =
  [
    Alcotest.test_case "histogram bucket bounds" `Quick test_bucket_bounds;
    Alcotest.test_case "histogram empty edges" `Quick test_empty;
    Alcotest.test_case "histogram single value" `Quick test_single_value;
    Alcotest.test_case "histogram out-of-range exact" `Quick
      test_out_of_range_exact;
    Alcotest.test_case "histogram merge geometry mismatch" `Quick
      test_merge_geometry_mismatch;
    Alcotest.test_case "histogram reset and copy" `Quick test_reset_and_copy;
    QCheck_alcotest.to_alcotest prop_quantile_vs_exact;
    QCheck_alcotest.to_alcotest prop_merge_associative_commutative;
    Alcotest.test_case "timeline ring wrap" `Quick test_ring_wrap;
    Alcotest.test_case "timeline span entries" `Quick test_span_entries;
    Alcotest.test_case "timeline dump format" `Quick test_dump_format;
    Alcotest.test_case "perfetto closes unclosed spans" `Quick
      test_export_unclosed_begin;
    Alcotest.test_case "perfetto drops orphan ends" `Quick
      test_export_orphan_end_dropped;
    Alcotest.test_case "perfetto conformance under crash storm" `Slow
      test_exporter_conformance;
    Alcotest.test_case "timeline-on golden byte-identity" `Slow
      test_timeline_on_byte_identity;
  ]

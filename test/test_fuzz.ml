(* Randomized stress testing of the full protocol stack.

   For each protocol (and the extension modes), run many short random
   workloads with hand-generated transaction mixes and verify:
   - the system quiesces (every submitted transaction commits),
   - the kernel's update invariants never fired (they raise),
   - the post-quiescence audit holds (no locks, no waiters, copy tables
     exactly mirroring the caches).

   The transaction generator deliberately concentrates accesses on a
   tiny page range to force heavy conflicts, callbacks, de-escalations,
   merges, and deadlocks — far denser contention than the paper's
   workloads. *)

open Oodb_core
open Storage
open Simcore

let mk_sys ~algo ~clients ~cfg ~seed =
  let cfg = { cfg with Config.num_clients = clients } in
  let params =
    Workload.Presets.make Workload.Presets.Uniform ~db_pages:cfg.Config.db_pages
      ~objects_per_page:cfg.Config.objects_per_page ~num_clients:clients
      ~locality:Workload.Presets.Low ~write_prob:0.0
  in
  Model.create ~cfg ~algo ~params ~seed

(* A short transaction over a hot 4-page range: high collision odds. *)
let random_txn rng =
  let n_ops = 1 + Rng.int rng 10 in
  Array.init n_ops (fun _ ->
      let page = Rng.int rng 4 in
      let slot = Rng.int rng 6 in
      {
        Workload.Refstring.oid = Ids.Oid.make ~page ~slot;
        write = Rng.bool rng ~p:0.4;
      })

(* Reference strings access each object once; dedup per transaction. *)
let dedup ops =
  let seen = Hashtbl.create 16 in
  Array.of_list
    (List.filter
       (fun (op : Workload.Refstring.op) ->
         if Hashtbl.mem seen op.oid then false
         else begin
           Hashtbl.add seen op.oid ();
           true
         end)
       (Array.to_list ops))

let audit sys =
  if Locking.Lock_table.lock_count sys.Model.servers.(0).plocks <> 0 then
    failwith "audit: page locks leaked";
  if Locking.Lock_table.lock_count sys.Model.servers.(0).olocks <> 0 then
    failwith "audit: object locks leaked";
  if
    Locking.Lock_table.waiter_count sys.Model.servers.(0).plocks
    + Locking.Lock_table.waiter_count sys.Model.servers.(0).olocks
    <> 0
  then failwith "audit: queued requests leaked";
  if Locking.Waits_for.waiting_count sys.Model.servers.(0).wfg <> 0 then
    failwith "audit: waits-for entries leaked";
  let cached_pages = ref 0 and cached_objects = ref 0 in
  let cs = sys.Model.clients in
  for cid = 0 to cs.Model.n - 1 do
    if cs.Model.running.(cid) <> None then failwith "audit: transaction stuck";
    if Algo.page_grain_copies sys.Model.algo then
      Lru.iter cs.Model.cache.(cid) (fun p _ ->
          incr cached_pages;
          (* At quiescence the copy tables are an exact mirror: one
             reference per cached copy, none in flight. *)
          if
            Locking.Copy_table.refs sys.Model.servers.(0).pcopies p ~client:cid
            <> 1
          then failwith "audit: cached page not registered exactly once")
    else if sys.Model.algo = Algo.OS then
      Lru.iter cs.Model.ocache.(cid) (fun o _ ->
          incr cached_objects;
          if
            Locking.Copy_table.refs sys.Model.servers.(0).ocopies o ~client:cid
            <> 1
          then failwith "audit: cached object not registered exactly once")
    else
      (* PS-OO: every available object of every cached page holds
         exactly one reference; marked slots hold none. *)
      Lru.iter cs.Model.cache.(cid) (fun p entry ->
          for slot = 0 to sys.Model.cfg.Config.objects_per_page - 1 do
            let o = Ids.Oid.make ~page:p ~slot in
            let expect =
              if Ids.Int_set.mem slot entry.Model.unavailable then 0 else 1
            in
            incr cached_objects;
            let got =
              Locking.Copy_table.refs sys.Model.servers.(0).ocopies o
                ~client:cid
            in
            if got <> expect then
              failwith
                (Printf.sprintf
                   "audit: PS-OO object %d.%d at client %d has %d refs, \
                    expected %d"
                   p slot cid got expect)
          done)
  done;
  (* No registrations beyond the cached copies. *)
  if Algo.page_grain_copies sys.Model.algo then begin
    if Locking.Copy_table.copies sys.Model.servers.(0).pcopies <> !cached_pages then
      failwith "audit: stale page registrations"
  end

let fuzz_once ~algo ~cfg ~seed =
  let clients = 6 in
  let sys = mk_sys ~algo ~clients ~cfg ~seed in
  let rng = Rng.create ~seed:(seed * 7919) in
  let remaining = ref 0 in
  (* Each client runs its transactions strictly one after another (the
     model's single-transaction-per-client discipline), with random
     pauses; clients overlap with each other freely. *)
  for client = 0 to clients - 1 do
    let txns =
      List.filter
        (fun ops -> Array.length ops > 0)
        (List.init 10 (fun _ -> dedup (random_txn rng)))
    in
    remaining := !remaining + List.length txns;
    let delays = List.map (fun _ -> Rng.float rng 0.3) txns in
    let rec submit = function
      | [] -> ()
      | (ops, delay) :: rest ->
        Engine.schedule_after sys.Model.engine delay (fun () ->
            Client.run_one sys ~client ops (fun () ->
                decr remaining;
                submit rest))
    in
    submit (List.combine txns delays)
  done;
  (* The conflict storm should settle in well under a million events; a
     runaway protocol bug fails loudly via the budget guard instead of
     hanging the suite. *)
  Engine.run_until ~max_events:2_000_000 sys.Model.engine 300.0;
  if !remaining <> 0 then
    failwith
      (Printf.sprintf "fuzz: %d transactions never finished (algo %s seed %d)"
         !remaining (Algo.to_string algo) seed);
  audit sys;
  (* Evidence that the storm actually produced protocol activity. *)
  Metrics.callback_blocks sys.Model.metrics
  + Metrics.deadlocks sys.Model.metrics
  + Metrics.lock_waits sys.Model.metrics
  + Metrics.merges sys.Model.metrics
  + Metrics.client_merges sys.Model.metrics

let fuzz_algo algo () =
  let activity = ref 0 in
  for seed = 1 to 25 do
    activity := !activity + fuzz_once ~algo ~cfg:Config.default ~seed
  done;
  (* The conflict storm must actually have caused contention events,
     otherwise the harness is not testing anything. *)
  Alcotest.(check bool) "storm produced contention" true (!activity > 50)

let fuzz_extension_modes () =
  let configs =
    [
      ("redo", { Config.default with Config.commit_mode = Config.Redo_at_server });
      ("token", { Config.default with Config.update_mode = Config.Write_token });
      ( "overflow",
        { Config.default with Config.size_change_prob = 0.5; overflow_prob = 0.3 }
      );
      ("group", { Config.default with Config.os_group_size = 10 });
    ]
  in
  List.iter
    (fun (label, cfg) ->
      List.iter
        (fun algo ->
          for seed = 1 to 8 do
            try ignore (fuzz_once ~algo ~cfg ~seed : int)
            with Failure msg ->
              failwith
                (Printf.sprintf "%s [mode %s, algo %s, seed %d]" msg label
                   (Algo.to_string algo) seed)
          done)
        Algo.all)
    configs

let fuzz_tiny_caches () =
  (* A pathologically small client cache forces constant dirty
     evictions and refetches mid-transaction. *)
  let cfg = { Config.default with Config.client_buf_frac = 0.004 (* 5 pages *) } in
  List.iter
    (fun algo ->
      for seed = 1 to 10 do
        ignore (fuzz_once ~algo ~cfg ~seed : int)
      done)
    Algo.all

let suite =
  List.map
    (fun algo ->
      Alcotest.test_case
        (Printf.sprintf "random conflict storm (%s)" (Algo.to_string algo))
        `Quick (fuzz_algo algo))
    Algo.all
  @ [
      Alcotest.test_case "extension modes under storm" `Slow
        fuzz_extension_modes;
      Alcotest.test_case "tiny client caches" `Slow fuzz_tiny_caches;
    ]

(* Integration tests of the five protocols: controlled two-client
   scenarios that check the paper's Section 3 behaviours — purges,
   unavailable marking, adaptive callbacks, escalation/de-escalation,
   blocking, deadlock recovery, and merge accounting — plus a full
   post-quiescence audit of lock and copy-table state.

   Every update made during these runs is additionally checked by the
   kernel's own invariants (no concurrent updates to one object; every
   update covered by a server write lock). *)

open Oodb_core
open Storage

let oid page slot = Ids.Oid.make ~page ~slot
let op ?(write = false) o = { Workload.Refstring.oid = o; write }
let read_op p s = op (oid p s)
let write_op p s = op ~write:true (oid p s)

let mk_sys ?(clients = 2) algo =
  let cfg = { Config.default with Config.num_clients = clients } in
  let params =
    Workload.Presets.make Workload.Presets.Uniform ~db_pages:cfg.Config.db_pages
      ~objects_per_page:cfg.Config.objects_per_page ~num_clients:clients
      ~locality:Workload.Presets.Low ~write_prob:0.0
  in
  Model.create ~cfg ~algo ~params ~seed:11

let run_all sys txns =
  (* Launch one transaction per (client, ops) pair and run to
     completion. *)
  let remaining = ref (List.length txns) in
  List.iter
    (fun (client, ops) ->
      Client.run_one sys ~client (Array.of_list ops) (fun () -> decr remaining))
    txns;
  Simcore.Engine.run_until sys.Model.engine 60.0;
  Alcotest.(check int) "all transactions committed" 0 !remaining

let run_staggered sys txns =
  (* Like run_all but starting each transaction [delay] seconds apart. *)
  let remaining = ref (List.length txns) in
  List.iter
    (fun (delay, client, ops) ->
      Simcore.Engine.schedule_after sys.Model.engine delay (fun () ->
          Client.run_one sys ~client (Array.of_list ops) (fun () ->
              decr remaining)))
    txns;
  Simcore.Engine.run_until sys.Model.engine 60.0;
  Alcotest.(check int) "all transactions committed" 0 !remaining

(* After quiescence: no locks, no waiters, no running transactions, and
   the copy tables exactly mirror the client caches. *)
let audit sys =
  Alcotest.(check int) "no page locks" 0
    (Locking.Lock_table.lock_count sys.Model.servers.(0).plocks);
  Alcotest.(check int) "no object locks" 0
    (Locking.Lock_table.lock_count sys.Model.servers.(0).olocks);
  Alcotest.(check int) "no queued requests" 0
    (Locking.Lock_table.waiter_count sys.Model.servers.(0).plocks
    + Locking.Lock_table.waiter_count sys.Model.servers.(0).olocks);
  Alcotest.(check int) "no waiting txns" 0
    (Locking.Waits_for.waiting_count sys.Model.servers.(0).wfg);
  let cs = sys.Model.clients in
  for cid = 0 to cs.Model.n - 1 do
    Alcotest.(check bool) "client idle" true (cs.Model.running.(cid) = None);
    (* Page-grain copy tracking must match the cache exactly. *)
    if Algo.page_grain_copies sys.Model.algo then
      Lru.iter cs.Model.cache.(cid) (fun p _ ->
          if
            not
              (Locking.Copy_table.holds sys.Model.servers.(0).pcopies p
                 ~client:cid)
          then Alcotest.failf "cached page %d not registered" p);
    if sys.Model.algo = Algo.OS then
      Lru.iter cs.Model.ocache.(cid) (fun o _ ->
          if
            not
              (Locking.Copy_table.holds sys.Model.servers.(0).ocopies o
                 ~client:cid)
          then
            Alcotest.failf "cached object %d.%d not registered" o.Ids.Oid.page
              o.Ids.Oid.slot)
  done

let cache_entry sys client p =
  Lru.peek sys.Model.clients.Model.cache.(client) p
let caches_page sys client p = cache_entry sys client p <> None

let slot_unavailable sys client p s =
  match cache_entry sys client p with
  | Some e -> Ids.Int_set.mem s e.Model.unavailable
  | None -> false

(* --- PS: page-grain callbacks purge whole pages -------------------------- *)

let test_ps_callback_purges_page () =
  let sys = mk_sys Algo.PS in
  run_staggered sys
    [
      (0.0, 1, [ read_op 5 0; read_op 5 1 ]);
      (* reader caches page 5 *)
      (1.0, 0, [ read_op 5 2; write_op 5 2 ]);
      (* writer updates another object *)
    ];
  Alcotest.(check bool) "reader's copy purged (false sharing!)" false
    (caches_page sys 1 5);
  Alcotest.(check bool) "writer keeps its copy" true (caches_page sys 0 5);
  Alcotest.(check int) "one page-grain write grant" 1
    (Metrics.page_write_grants sys.Model.metrics);
  audit sys

(* --- OS: object-grain purges leave other objects cached ------------------- *)

let test_os_callback_purges_object_only () =
  let sys = mk_sys Algo.OS in
  run_staggered sys
    [
      (0.0, 1, [ read_op 5 0; read_op 5 1 ]);
      (1.0, 0, [ read_op 5 0; write_op 5 0 ]);
    ];
  let ocache1 = sys.Model.clients.Model.ocache.(1) in
  Alcotest.(check bool) "victim object purged" false
    (Lru.mem ocache1 (oid 5 0));
  Alcotest.(check bool) "other object survives" true
    (Lru.mem ocache1 (oid 5 1));
  audit sys

(* --- PS-OO: marks objects, never purges pages ----------------------------- *)

let test_ps_oo_marks_object () =
  let sys = mk_sys Algo.PS_OO in
  run_staggered sys
    [
      (0.0, 1, [ read_op 5 0; read_op 5 1 ]);
      (1.0, 0, [ read_op 5 0; write_op 5 0 ]);
    ];
  Alcotest.(check bool) "page stays cached" true (caches_page sys 1 5);
  Alcotest.(check bool) "victim slot unavailable" true
    (slot_unavailable sys 1 5 0);
  Alcotest.(check bool) "other slot still available" false
    (slot_unavailable sys 1 5 1);
  audit sys

(* --- PS-OA: purges the page when not in use, marks when it is ------------- *)

let test_ps_oa_purges_idle_page () =
  let sys = mk_sys Algo.PS_OA in
  run_staggered sys
    [
      (0.0, 1, [ read_op 5 0 ]);
      (* reader finishes, page idle in its cache *)
      (1.0, 0, [ read_op 5 1; write_op 5 1 ]);
    ];
  Alcotest.(check bool) "idle page purged whole" false (caches_page sys 1 5);
  audit sys

let test_ps_oa_marks_in_use_page () =
  let sys = mk_sys Algo.PS_OA in
  (* Client 1 holds page 5 in use (long transaction over cold pages)
     while client 0 updates object 5.1. *)
  let browse = List.init 40 (fun i -> read_op (100 + i) 0) in
  run_staggered sys
    [
      (0.0, 1, (read_op 5 0 :: browse));
      (0.05, 0, [ read_op 5 1; write_op 5 1 ]);
    ];
  (* The callback happened while page 5 was in use at client 1: the
     entry survives with slot 1 marked; the local transaction has
     committed by now, which does not clear the mark. *)
  Alcotest.(check bool) "page survives" true (caches_page sys 1 5);
  Alcotest.(check bool) "slot marked" true (slot_unavailable sys 1 5 1);
  audit sys

(* --- PS-AA: escalation and de-escalation ---------------------------------- *)

let test_ps_aa_escalates_when_alone () =
  let sys = mk_sys Algo.PS_AA in
  run_all sys [ (0, [ read_op 5 0; write_op 5 0; read_op 5 1; write_op 5 1 ]) ];
  Alcotest.(check int) "page-grain grant" 1
    (Metrics.page_write_grants sys.Model.metrics);
  Alcotest.(check int) "no extra object grants" 0
    (Metrics.object_write_grants sys.Model.metrics);
  audit sys

let test_ps_aa_object_grant_when_shared () =
  let sys = mk_sys Algo.PS_AA in
  let browse = List.init 40 (fun i -> read_op (100 + i) 0) in
  run_staggered sys
    [
      (0.0, 1, (read_op 5 0 :: browse));
      (* page in use at client 1 *)
      (0.05, 0, [ read_op 5 1; write_op 5 1 ]);
    ];
  Alcotest.(check int) "object-grain grant" 1
    (Metrics.object_write_grants sys.Model.metrics);
  Alcotest.(check int) "no page grant" 0
    (Metrics.page_write_grants sys.Model.metrics);
  audit sys

let test_ps_aa_deescalation () =
  let sys = mk_sys Algo.PS_AA in
  let browse = List.init 40 (fun i -> read_op (100 + i) 0) in
  run_staggered sys
    [
      (* writer escalates to a page lock, then keeps browsing *)
      (0.0, 0, (read_op 5 0 :: write_op 5 0 :: browse));
      (* reader of a different object forces de-escalation *)
      (0.1, 1, [ read_op 5 9 ]);
    ];
  Alcotest.(check int) "one de-escalation" 1
    (Metrics.deescalations sys.Model.metrics);
  audit sys

let test_ps_aa_reescalates_after_contention_gone () =
  let sys = mk_sys Algo.PS_AA in
  let browse = List.init 40 (fun i -> read_op (100 + i) 0) in
  (* Phase 1: contention on page 5 (object grant).  Phase 2: the reader
     is long gone; a fresh writer purges everywhere and escalates. *)
  run_staggered sys
    [
      (0.0, 1, (read_op 5 0 :: browse));
      (0.05, 0, [ read_op 5 1; write_op 5 1 ]);
      (30.0, 0, [ read_op 5 2; write_op 5 2 ]);
    ];
  Alcotest.(check int) "re-escalated to page grant" 1
    (Metrics.page_write_grants sys.Model.metrics);
  audit sys

(* --- Blocking reads -------------------------------------------------------- *)

let test_reader_blocks_behind_writer () =
  (* Under every protocol, a read of a write-locked object must wait for
     the writer's commit (no dirty reads). *)
  List.iter
    (fun algo ->
      let sys = mk_sys algo in
      let browse = List.init 30 (fun i -> read_op (100 + i) 0) in
      let writer_committed = ref 0.0 and reader_committed = ref 0.0 in
      Client.run_one sys ~client:0
        (Array.of_list ((read_op 5 0 :: write_op 5 0 :: browse)))
        (fun () -> writer_committed := Simcore.Engine.now sys.Model.engine);
      Simcore.Engine.schedule_after sys.Model.engine 0.05 (fun () ->
          Client.run_one sys ~client:1
            [| read_op 5 0 |]
            (fun () -> reader_committed := Simcore.Engine.now sys.Model.engine));
      Simcore.Engine.run_until sys.Model.engine 60.0;
      Alcotest.(check bool)
        (Algo.to_string algo ^ ": both committed")
        true
        (!writer_committed > 0.0 && !reader_committed > 0.0);
      Alcotest.(check bool)
        (Algo.to_string algo ^ ": reader waited for writer commit")
        true
        (!reader_committed >= !writer_committed);
      audit sys)
    Algo.all

(* --- Concurrent updates to one page (merging) ------------------------------ *)

let test_concurrent_page_updates_merge () =
  (* Object-grain protocols allow two clients to update different
     objects of the same page concurrently; the server must merge. *)
  List.iter
    (fun algo ->
      let sys = mk_sys algo in
      let browse c = List.init 20 (fun i -> read_op (100 + (60 * c) + i) 0) in
      run_staggered sys
        [
          (0.0, 0, (read_op 5 0 :: write_op 5 0 :: browse 0));
          (0.01, 1, (read_op 5 9 :: write_op 5 9 :: browse 1));
        ];
      Alcotest.(check bool)
        (Algo.to_string algo ^ ": merging happened")
        true
        (Metrics.merges sys.Model.metrics > 0);
      audit sys)
    [ Algo.PS_OO; Algo.PS_OA; Algo.PS_AA ]

let test_ps_serializes_page_writers () =
  (* Under PS the same scenario must NOT merge: the page lock serializes
     the two writers. *)
  let sys = mk_sys Algo.PS in
  let browse c = List.init 20 (fun i -> read_op (100 + (60 * c) + i) 0) in
  run_staggered sys
    [
      (0.0, 0, (read_op 5 0 :: write_op 5 0 :: browse 0));
      (0.01, 1, (read_op 5 9 :: write_op 5 9 :: browse 1));
    ];
  Alcotest.(check int) "no merges" 0 (Metrics.merges sys.Model.metrics);
  Alcotest.(check int) "two page grants" 2
    (Metrics.page_write_grants sys.Model.metrics);
  audit sys

(* --- Deadlock recovery ------------------------------------------------------ *)

let test_deadlock_recovery () =
  (* Classic crossing writers: t0 updates a then b; t1 updates b then a.
     One will abort and restart; both must eventually commit. *)
  List.iter
    (fun algo ->
      let sys = mk_sys algo in
      let pad = List.init 10 (fun i -> read_op (200 + i) 0) in
      run_staggered sys
        [
          (0.0, 0, (read_op 5 0 :: write_op 5 0 :: pad) @ [ read_op 7 0; write_op 7 0 ]);
          (0.0, 1, (read_op 7 0 :: write_op 7 0 :: pad) @ [ read_op 5 0; write_op 5 0 ]);
        ];
      Alcotest.(check bool)
        (Algo.to_string algo ^ ": deadlock detected and resolved")
        true
        (Locking.Waits_for.deadlocks sys.Model.servers.(0).wfg >= 1);
      audit sys)
    Algo.all

(* --- Unavailable objects force a refetch that blocks ------------------------ *)

let test_marked_object_refetch () =
  let sys = mk_sys Algo.PS_OO in
  let browse = List.init 30 (fun i -> read_op (100 + i) 0) in
  run_staggered sys
    [
      (0.0, 1, (read_op 5 1 :: browse));
      (* keeps page 5 in use *)
      (0.05, 0, [ read_op 5 0; write_op 5 0 ]);
      (* marks 5.0 at client 1 *)
      (20.0, 1, [ read_op 5 0 ]);
      (* must refetch page 5 *)
    ];
  (* The refetch gives client 1 a fresh, fully available copy. *)
  Alcotest.(check bool) "slot available again" false
    (slot_unavailable sys 1 5 0);
  audit sys

let suite =
  [
    Alcotest.test_case "PS callback purges page" `Quick test_ps_callback_purges_page;
    Alcotest.test_case "OS callback purges object only" `Quick
      test_os_callback_purges_object_only;
    Alcotest.test_case "PS-OO marks object" `Quick test_ps_oo_marks_object;
    Alcotest.test_case "PS-OA purges idle page" `Quick test_ps_oa_purges_idle_page;
    Alcotest.test_case "PS-OA marks in-use page" `Quick test_ps_oa_marks_in_use_page;
    Alcotest.test_case "PS-AA escalates when alone" `Quick
      test_ps_aa_escalates_when_alone;
    Alcotest.test_case "PS-AA object grant when shared" `Quick
      test_ps_aa_object_grant_when_shared;
    Alcotest.test_case "PS-AA de-escalation" `Quick test_ps_aa_deescalation;
    Alcotest.test_case "PS-AA re-escalates" `Quick
      test_ps_aa_reescalates_after_contention_gone;
    Alcotest.test_case "reader blocks behind writer (all)" `Quick
      test_reader_blocks_behind_writer;
    Alcotest.test_case "concurrent page updates merge" `Quick
      test_concurrent_page_updates_merge;
    Alcotest.test_case "PS serializes page writers" `Quick
      test_ps_serializes_page_writers;
    Alcotest.test_case "deadlock recovery (all)" `Quick test_deadlock_recovery;
    Alcotest.test_case "marked object refetched" `Quick test_marked_object_refetch;
  ]

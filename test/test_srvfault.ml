(* Server crash & recovery tests.

   Five layers of assurance:
   - unit behaviour of the server-fault profile fields (validation
     bounds, deterministic crash schedules, inert knobs staying inert);
   - direct crash orchestration: [Crash.crash_server] leaves no
     volatile state behind (the audit's invariant 7 re-checked by
     hand), the surviving partition keeps committing while the other
     is down, and a restarted server rebuilds its callback state and
     reopens;
   - server-crash-storm conformance: every protocol at 2 and 4
     partitions under a pure server-crash storm with the
     serializability oracle attached and the audit re-run after every
     fault — crashes must actually strike, clients must keep
     committing, and retries must flow;
   - the sabotage knob: restarting without copy-table reconstruction
     must produce a history the oracle rejects (proving the oracle, not
     the state audit, is the backstop for recovery bugs);
   - timeline visibility: a crashing run records the down span and the
     recovery-phase instants (replay, copy-reconstruction, reopen). *)

open Oodb_core

(* --- Profile unit behaviour ----------------------------------------------- *)

let test_validation () =
  Faults.validate
    { Faults.off with Faults.srv_crash_rate = 0.5; log_flush_interval = 0.25 };
  let rejects p what =
    Alcotest.(check bool) what true
      (try
         Faults.validate p;
         false
       with Invalid_argument _ -> true)
  in
  rejects
    { Faults.off with Faults.srv_crash_rate = -0.1 }
    "negative server crash rate rejected";
  rejects
    { Faults.off with Faults.srv_restart_delay = -1.0 }
    "negative server restart delay rejected";
  rejects
    { Faults.off with Faults.log_flush_interval = 0.0 }
    "zero log-flush interval rejected";
  rejects
    { Faults.off with Faults.retrans_giveaway = 0 }
    "zero retransmission giveaway rejected";
  (* The storm extension turns server crashes on, at a quarter of the
     client rate. *)
  Alcotest.(check bool) "storm includes server crashes" true
    ((Faults.storm ~rate:0.04).Faults.srv_crash_rate > 0.0);
  Alcotest.(check bool) "zero-rate storm has no server crashes" true
    ((Faults.storm ~rate:0.0).Faults.srv_crash_rate = 0.0)

let test_srv_delays_deterministic () =
  let delays seed =
    let f =
      Faults.create
        ~profile:{ Faults.off with Faults.srv_crash_rate = 0.5 }
        ~seed
    in
    List.init 50 (fun _ -> Faults.next_srv_crash_delay f)
  in
  Alcotest.(check bool) "reproducible inter-crash times" true
    (delays 4 = delays 4);
  Alcotest.(check bool) "different seed, different schedule" true
    (delays 4 <> delays 5);
  List.iter
    (fun d ->
      if d <= 0.0 then Alcotest.fail "non-positive inter-crash delay")
    (delays 4)

(* With the crash rate at zero the other server-fault knobs are inert:
   no flush fiber, no driver, no extra draw — byte-identical results. *)
let test_inert_knobs_identity () =
  let spec = Option.get (Experiments.find "fig3") in
  let cfg = Experiments.cfg_of spec in
  let params = Experiments.params_of spec ~write_prob:0.1 in
  let mk cfg =
    Job.make ~sweep:"srvfault-ident" ~label:"wp=0.10" ~cfg ~algo:Algo.PS_AA
      ~params ~warmup:3.0 ~measure:12.0 ()
  in
  let plain = Job.run (mk cfg) in
  let tweaked =
    Job.run
      (mk
         {
           cfg with
           Config.faults =
             {
               Faults.off with
               Faults.srv_restart_delay = 9.0;
               log_flush_interval = 0.1;
               retrans_giveaway = 3;
             };
         })
  in
  Alcotest.(check bool)
    "srv knobs without a crash rate leave results byte-identical" true
    (plain = tweaked)

(* --- Crash orchestration -------------------------------------------------- *)

let mk_running_sys ~algo ~servers ~partition ~params_of ~seed =
  let cfg = { Config.default with Config.servers; partition } in
  let params = params_of cfg in
  let sys = Model.create ~cfg ~algo ~params ~seed in
  Netlayer.install_edge_exchange sys;
  Audit.install sys;
  Client.start sys;
  sys

let fig3_params cfg =
  let spec = Option.get (Experiments.find "fig3") in
  ignore spec;
  Workload.Presets.make Workload.Presets.Hotcold
    ~db_pages:cfg.Config.db_pages
    ~objects_per_page:cfg.Config.objects_per_page
    ~num_clients:cfg.Config.num_clients ~locality:Workload.Presets.Low
    ~write_prob:0.1

let test_crash_purges_server () =
  let sys =
    mk_running_sys ~algo:Algo.PS_AA ~servers:2 ~partition:Config.Hash
      ~params_of:fig3_params ~seed:7
  in
  Simcore.Engine.run_until sys.Model.engine 10.0;
  Crash.crash_server sys 1;
  let sv = sys.Model.servers.(1) in
  Alcotest.(check bool) "server down" true (sv.Model.srv_state = Model.Srv_down);
  Alcotest.(check int) "page locks purged" 0
    (Locking.Lock_table.lock_count sv.Model.plocks);
  Alcotest.(check int) "object locks purged" 0
    (Locking.Lock_table.lock_count sv.Model.olocks);
  for cid = 0 to sys.Model.clients.Model.n - 1 do
    Alcotest.(check int)
      (Printf.sprintf "client %d page copies purged" cid)
      0
      (Locking.Copy_table.client_copies sv.Model.pcopies ~client:cid);
    Alcotest.(check int)
      (Printf.sprintf "client %d object copies purged" cid)
      0
      (Locking.Copy_table.client_copies sv.Model.ocopies ~client:cid)
  done;
  Alcotest.(check int) "write tokens returned" 0
    (Hashtbl.length sv.Model.token_owner);
  Alcotest.(check int) "buffer pool cold" 0
    (Storage.Buffer_pool.size sv.Model.sbuffer);
  (* Invariant 7 holds, and the rest of the state is consistent. *)
  Audit.check sys ~context:"unit-srv-crash";
  (* The restart must run inside a fiber: replay and reconstruction
     charge CPU and disk time. *)
  Simcore.Proc.spawn sys.Model.engine (fun () ->
      Simcore.Proc.hold sys.Model.engine 2.0;
      Crash.restart_server sys 1);
  Simcore.Engine.run_until sys.Model.engine 60.0;
  sys.Model.live <- false;
  Alcotest.(check bool) "server reopened" true
    (sv.Model.srv_state = Model.Srv_up);
  Alcotest.(check bool) "recovery latency recorded" true
    (Faults.srv_recoveries sys.Model.faults >= 1);
  Audit.check sys ~context:"unit-srv-recovered"

(* Partial-partition degradation: each client's accesses are confined
   to one half of the database (PRIVATE's shared cold half would span
   the down partition, so regions are overridden), and the halves map
   one-to-one onto the two range partitions.  Crashing server 1 must
   leave the lower-half clients committing at full speed while the
   upper-half clients stall until the reopen. *)
let test_partition_isolation () =
  let params_of cfg =
    let base =
      Workload.Presets.make Workload.Presets.Private_
        ~db_pages:cfg.Config.db_pages
        ~objects_per_page:cfg.Config.objects_per_page
        ~num_clients:cfg.Config.num_clients ~locality:Workload.Presets.Low
        ~write_prob:0.1
    in
    let half = cfg.Config.db_pages / 2 in
    let clients =
      Array.mapi
        (fun cid (pc : Workload.Wparams.per_client) ->
          let region =
            if cid mod 2 = 0 then { Workload.Wparams.first = 0; last = half - 1 }
            else { Workload.Wparams.first = half; last = cfg.Config.db_pages - 1 }
          in
          {
            pc with
            Workload.Wparams.hot_region = Some region;
            cold_region = region;
            hot_access_prob = 1.0;
          })
        base.Workload.Wparams.clients
    in
    { base with Workload.Wparams.name = "SPLIT"; clients }
  in
  let sys =
    mk_running_sys ~algo:Algo.PS_AA ~servers:2 ~partition:Config.Range
      ~params_of ~seed:8
  in
  Simcore.Engine.run_until sys.Model.engine 10.0;
  let commits_before = Metrics.commits sys.Model.metrics in
  Alcotest.(check bool) "warmed up: commits flowing" true (commits_before > 0);
  Crash.crash_server sys 1;
  Simcore.Engine.run_until sys.Model.engine 25.0;
  let commits_during = Metrics.commits sys.Model.metrics in
  Audit.check sys ~context:"unit-down-window";
  Alcotest.(check bool)
    "surviving partition keeps committing during the outage" true
    (commits_during > commits_before);
  Simcore.Proc.spawn sys.Model.engine (fun () -> Crash.restart_server sys 1);
  Simcore.Engine.run_until sys.Model.engine 60.0;
  let commits_after = Metrics.commits sys.Model.metrics in
  sys.Model.live <- false;
  Alcotest.(check bool) "whole population commits again after reopen" true
    (commits_after > commits_during);
  Audit.check sys ~context:"unit-reopened"

(* --- Server-crash-storm conformance ---------------------------------------- *)

(* Pure server-crash storms (client faults off) over the fig3 workload
   with the serializability oracle attached; the audit hook re-verifies
   every invariant after each crash and each recovery.  [max_events]
   turns a livelock into a loud failure instead of a hang. *)
let srv_storm_run ~algo ~servers ~seed ~rate =
  let spec = Option.get (Experiments.find "fig3") in
  let cfg =
    {
      (Experiments.cfg_of spec) with
      Config.servers;
      oracle = true;
      faults = { Faults.off with Faults.srv_crash_rate = rate };
    }
  in
  let params = Experiments.params_of spec ~write_prob:0.2 in
  Runner.run ~seed ~max_events:5_000_000 ~warmup:5.0 ~measure:40.0 ~cfg ~algo
    ~params ()

let srv_conformance algo () =
  let crashes = ref 0 and recoveries = ref 0 and retries = ref 0 in
  List.iter
    (fun (servers, seed, rate) ->
      let r = srv_storm_run ~algo ~servers ~seed ~rate in
      crashes := !crashes + r.Runner.srv_crashes;
      recoveries := !recoveries + r.Runner.srv_recoveries;
      retries := !retries + r.Runner.retries;
      Alcotest.(check bool)
        (Printf.sprintf "commits at servers=%d rate=%.2f (seed %d)" servers
           rate seed)
        true
        (r.Runner.commits > 0))
    [ (2, 21, 0.05); (4, 22, 0.05) ];
  (* The storm must actually kill servers and force retries, or the
     oracle and audit prove nothing about recovery. *)
  Alcotest.(check bool) "storm crashed servers" true (!crashes > 0);
  Alcotest.(check bool) "servers recovered" true (!recoveries > 0);
  Alcotest.(check bool) "down-server retries flowed" true (!retries > 0)

(* --- Sabotage: the oracle is the backstop ---------------------------------- *)

(* Skipping copy-table reconstruction leaves stale cached copies
   uncovered, so post-recovery writers miss callbacks and the history
   goes non-serializable.  The state-level checks are deliberately
   disarmed under this knob; the serializability oracle must be the
   component that catches it. *)
let test_sabotage_trips_oracle () =
  let spec = Option.get (Experiments.find "fig3") in
  let cfg =
    {
      (Experiments.cfg_of spec) with
      Config.servers = 2;
      oracle = true;
      srv_skip_reconstruction = true;
      faults = { Faults.off with Faults.srv_crash_rate = 0.05 };
    }
  in
  let params = Experiments.params_of spec ~write_prob:0.2 in
  match
    Runner.run ~seed:23 ~max_events:20_000_000 ~warmup:10.0 ~measure:120.0
      ~cfg ~algo:Algo.PS_AA ~params ()
  with
  | _ -> Alcotest.fail "oracle accepted a run without copy reconstruction"
  | exception Runner.Oracle_failed (msg, _dump) ->
    Alcotest.(check bool) "violation names a serializability cycle" true
      (String.length msg > 0)

(* --- Timeline visibility --------------------------------------------------- *)

let test_timeline_records_outage () =
  let spec = Option.get (Experiments.find "fig3") in
  let cfg =
    {
      (Experiments.cfg_of spec) with
      Config.servers = 2;
      timeline = true;
      faults = { Faults.off with Faults.srv_crash_rate = 0.05 };
    }
  in
  let params = Experiments.params_of spec ~write_prob:0.1 in
  let r =
    Runner.run ~seed:24 ~max_events:5_000_000 ~warmup:5.0 ~measure:40.0 ~cfg
      ~algo:Algo.PS_AA ~params ()
  in
  Alcotest.(check bool) "storm crashed a server" true (r.Runner.srv_crashes > 0);
  let tl = Option.get r.Runner.timeline in
  let seen = Hashtbl.create 16 in
  Telemetry.Timeline.iter tl
    (fun ~kind:_ ~track:_ ~name ~arg:_ ~t0:_ ~t1:_ ->
      if name >= 0 then
        Hashtbl.replace seen (Telemetry.Timeline.name_of tl name) ());
  List.iter
    (fun n ->
      Alcotest.(check bool) (Printf.sprintf "timeline records %S" n) true
        (Hashtbl.mem seen n))
    [ "crash"; "down"; "replay"; "copy-reconstruction"; "reopen" ]

let suite =
  [
    Alcotest.test_case "profile validation" `Quick test_validation;
    Alcotest.test_case "crash schedule deterministic" `Quick
      test_srv_delays_deterministic;
    Alcotest.test_case "inert knobs byte-identity" `Slow
      test_inert_knobs_identity;
    Alcotest.test_case "crash purges all volatile state" `Quick
      test_crash_purges_server;
    Alcotest.test_case "surviving partition keeps committing" `Quick
      test_partition_isolation;
  ]
  @ List.map
      (fun algo ->
        Alcotest.test_case
          (Printf.sprintf "server-crash storm, oracle+audit (%s)"
             (Algo.to_string algo))
          `Slow (srv_conformance algo))
      Algo.all
  @ [
      Alcotest.test_case "sabotaged recovery trips the oracle" `Slow
        test_sabotage_trips_oracle;
      Alcotest.test_case "timeline records the outage" `Slow
        test_timeline_records_outage;
    ]

(* CSV schema round-trip: every row of both exporters must carry
   exactly as many fields as its header — including the percentile
   columns — so downstream plotting scripts never mis-align. *)

open Oodb_core

let split_csv line = String.split_on_char ',' line

let lines s =
  String.split_on_char '\n' s |> List.filter (fun l -> l <> "")

let check_arity ~what csv =
  match lines csv with
  | [] -> Alcotest.failf "%s: empty CSV" what
  | header :: rows ->
    let width = List.length (split_csv header) in
    Alcotest.(check bool) (what ^ ": header non-trivial") true (width > 10);
    List.iteri
      (fun i row ->
        Alcotest.(check int)
          (Printf.sprintf "%s: row %d arity matches header" what i)
          width
          (List.length (split_csv row)))
      rows;
    (header, rows)

let contains_field header f = List.mem f (split_csv header)

(* One small real run, reused for every cell: the schema, not the
   numbers, is under test. *)
let result =
  lazy
    (let cfg = Config.default in
     let params =
       Workload.Presets.make Workload.Presets.Hotcold
         ~db_pages:cfg.Config.db_pages
         ~objects_per_page:cfg.Config.objects_per_page
         ~num_clients:cfg.Config.num_clients ~locality:Workload.Presets.Low
         ~write_prob:0.1
     in
     Runner.run ~warmup:3.0 ~measure:10.0 ~cfg ~algo:Algo.PS_AA ~params ())

let mk_series () =
  let spec =
    { (Option.get (Experiments.find "fig3")) with
      Experiments.write_probs = [ 0.05; 0.1 ] }
  in
  let r = Lazy.force result in
  let point write_prob =
    {
      Experiments.write_prob;
      results = List.map (fun a -> (a, { r with Runner.algo = a })) Algo.all;
    }
  in
  { Experiments.spec; points = List.map point spec.Experiments.write_probs }

let mk_fault_series () =
  let r = Lazy.force result in
  let rates = [ 0.0; 0.01 ] in
  let point rate =
    {
      Experiments.rate;
      fresults = List.map (fun a -> (a, { r with Runner.algo = a })) Algo.all;
    }
  in
  { Experiments.frates = rates; fpoints = List.map point rates }

let test_series_csv () =
  let series = mk_series () in
  let csv = Report.series_to_csv series in
  let header, rows = check_arity ~what:"series_to_csv" csv in
  Alcotest.(check int) "one row per (wp, algo) cell"
    (2 * List.length Algo.all)
    (List.length rows);
  List.iter
    (fun f ->
      Alcotest.(check bool)
        (Printf.sprintf "header has %s" f)
        true
        (contains_field header f))
    [
      "figure"; "write_prob"; "algo"; "throughput"; "resp_ms";
      "resp_p50_ms"; "resp_p90_ms"; "resp_p99_ms"; "lock_wait_p99_ms";
      "cb_round_p99_ms";
    ];
  (* The percentile cells are real numbers, parseable and ordered. *)
  let idx name =
    let rec go i = function
      | [] -> Alcotest.failf "no %s column" name
      | f :: _ when f = name -> i
      | _ :: rest -> go (i + 1) rest
    in
    go 0 (split_csv header)
  in
  let p50_i = idx "resp_p50_ms" and p99_i = idx "resp_p99_ms" in
  List.iter
    (fun row ->
      let fields = Array.of_list (split_csv row) in
      let p50 = float_of_string fields.(p50_i)
      and p99 = float_of_string fields.(p99_i) in
      Alcotest.(check bool) "p50 <= p99 in CSV" true (p50 <= p99))
    rows

let test_fault_series_csv () =
  let csv = Report.fault_series_to_csv (mk_fault_series ()) in
  let header, rows = check_arity ~what:"fault_series_to_csv" csv in
  Alcotest.(check int) "one row per (rate, algo) cell"
    (2 * List.length Algo.all)
    (List.length rows);
  List.iter
    (fun f ->
      Alcotest.(check bool)
        (Printf.sprintf "header has %s" f)
        true
        (contains_field header f))
    [
      "rate"; "algo"; "throughput"; "faults_injected"; "recoveries";
      "resp_p50_ms"; "resp_p99_ms"; "lock_wait_p99_ms";
    ]

let test_percentile_report_renders () =
  let r = Lazy.force result in
  let s = Format.asprintf "%a" Report.pp_percentiles r in
  let contains sub =
    let n = String.length s and m = String.length sub in
    let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "mentions response percentiles" true
    (contains "response p50/p90/p99");
  Alcotest.(check bool) "mentions lock wait" true (contains "lock wait p99");
  let series = mk_series () in
  let sp = Format.asprintf "%a" Report.pp_series_percentiles series in
  Alcotest.(check bool) "series percentiles render" true
    (String.length sp > 100)

let test_merged_hists () =
  let series = mk_series () in
  let merged = Report.merged_response_hists series in
  Alcotest.(check int) "one merged histogram per algorithm"
    (List.length Algo.all) (List.length merged);
  let r = Lazy.force result in
  let per_cell =
    Telemetry.Histogram.count r.Runner.hists.Metrics.h_response
  in
  List.iter
    (fun ((a : Algo.t), h) ->
      Alcotest.(check int)
        (Printf.sprintf "%s: merged count = sum of cells" (Algo.to_string a))
        (2 * per_cell)
        (Telemetry.Histogram.count h))
    merged

let suite =
  [
    Alcotest.test_case "series CSV arity + percentile columns" `Quick
      test_series_csv;
    Alcotest.test_case "fault series CSV arity" `Quick test_fault_series_csv;
    Alcotest.test_case "percentile reports render" `Quick
      test_percentile_report_renders;
    Alcotest.test_case "merged histograms across a series" `Quick
      test_merged_hists;
  ]

open Workload
open Storage

let cfg_db = 1250
let opp = 20

let mk_params ?(which = Presets.Hotcold) ?(locality = Presets.Low)
    ?(write_prob = 0.2) ?(clients = 10) () =
  Presets.make which ~db_pages:cfg_db ~objects_per_page:opp
    ~num_clients:clients ~locality ~write_prob

let gen ?(seed = 1) ?(client = 0) params =
  Refstring.generate ~rng:(Simcore.Rng.create ~seed) ~params ~client
    ~objects_per_page:opp

(* --- Refstring ----------------------------------------------------------- *)

let test_distinct_pages () =
  let params = mk_params () in
  let t = gen params in
  let pages = Refstring.pages t in
  Alcotest.(check int) "trans_size pages" params.Wparams.trans_size
    (List.length pages);
  Alcotest.(check int) "distinct" (List.length pages)
    (List.length (List.sort_uniq compare pages))

let test_locality_range () =
  let params = mk_params () in
  let t = gen params in
  let by_page = Hashtbl.create 32 in
  Array.iter
    (fun (op : Refstring.op) ->
      let p = op.oid.Ids.Oid.page in
      Hashtbl.replace by_page p (1 + Option.value ~default:0 (Hashtbl.find_opt by_page p)))
    t;
  Hashtbl.iter
    (fun _ k ->
      if k < params.Wparams.page_locality.Wparams.lo
         || k > params.Wparams.page_locality.Wparams.hi
      then Alcotest.failf "page with %d objects outside locality range" k)
    by_page

let test_objects_distinct () =
  let params = mk_params () in
  let t = gen params in
  let oids = Array.to_list (Array.map (fun (op : Refstring.op) -> op.oid) t) in
  Alcotest.(check int) "no duplicate objects" (List.length oids)
    (List.length (List.sort_uniq Ids.Oid.compare oids))

let test_write_probability_extremes () =
  let p0 = mk_params ~write_prob:0.0 () in
  let t0 = gen p0 in
  Alcotest.(check int) "no writes at wp=0" 0 (Refstring.write_count t0);
  let p1 = mk_params ~write_prob:1.0 () in
  let t1 = gen p1 in
  Alcotest.(check int) "all writes at wp=1" (Refstring.object_count t1)
    (Refstring.write_count t1)

let test_clustered_pattern () =
  let params = { (mk_params ()) with Wparams.access_pattern = Wparams.Clustered } in
  let t = gen params in
  (* In a clustered string, each page's references are contiguous. *)
  let seen_done = Hashtbl.create 32 in
  let current = ref (-1) in
  Array.iter
    (fun (op : Refstring.op) ->
      let p = op.oid.Ids.Oid.page in
      if p <> !current then begin
        if Hashtbl.mem seen_done p then Alcotest.fail "page revisited";
        if !current >= 0 then Hashtbl.replace seen_done !current ();
        current := p
      end)
    t

let test_hot_cold_split () =
  let params = mk_params ~write_prob:0.0 () in
  (* client 3's hot region is pages 150..199 *)
  let hot = ref 0 and total = ref 0 in
  for seed = 1 to 40 do
    let t = gen ~seed ~client:3 params in
    Array.iter
      (fun (op : Refstring.op) ->
        incr total;
        let p = op.oid.Ids.Oid.page in
        if p >= 150 && p <= 199 then incr hot)
      t
  done;
  let frac = float_of_int !hot /. float_of_int !total in
  (* 80% of page picks are hot; cold picks can also land in the hot
     range (cold = whole DB), so expect a bit above 0.8. *)
  Alcotest.(check bool) "hot fraction near 0.8" true (frac > 0.7 && frac < 0.95)

let test_determinism () =
  let params = mk_params () in
  let a = gen ~seed:9 params and b = gen ~seed:9 params in
  Alcotest.(check bool) "same seed same string" true (a = b);
  let c = gen ~seed:10 params in
  Alcotest.(check bool) "different seed differs" true (a <> c)

let test_private_cold_read_only () =
  let params = mk_params ~which:Presets.Private_ ~locality:Presets.High
      ~write_prob:1.0 () in
  for seed = 1 to 20 do
    let t = gen ~seed params in
    Array.iter
      (fun (op : Refstring.op) ->
        if op.write && op.oid.Ids.Oid.page >= cfg_db / 2 then
          Alcotest.fail "write in the read-only cold region")
      t
  done

let test_private_hot_disjoint () =
  let params = mk_params ~which:Presets.Private_ ~locality:Presets.High () in
  (* Hot regions of different clients never overlap. *)
  Array.iteri
    (fun i (c : Wparams.per_client) ->
      Array.iteri
        (fun j (c' : Wparams.per_client) ->
          if i < j then
            match (c.hot_region, c'.hot_region) with
            | Some a, Some b ->
              if not (a.Wparams.last < b.Wparams.first || b.Wparams.last < a.Wparams.first)
              then Alcotest.fail "hot regions overlap"
            | _ -> Alcotest.fail "missing hot region")
        params.Wparams.clients)
    params.Wparams.clients

let test_avg_objects_per_txn () =
  (* Both locality settings average ~120 objects per transaction. *)
  List.iter
    (fun locality ->
      let params = mk_params ~locality () in
      let total = ref 0 in
      let n = 60 in
      for seed = 1 to n do
        total := !total + Refstring.object_count (gen ~seed params)
      done;
      let avg = float_of_int !total /. float_of_int n in
      Alcotest.(check bool)
        (Printf.sprintf "avg near 120 (got %.1f)" avg)
        true
        (avg > 105.0 && avg < 135.0))
    [ Presets.Low; Presets.High ]

(* --- Interleave ---------------------------------------------------------- *)

let remap = Interleave.remap ~hot_pages_per_client:25 ~objects_per_page:20 ~num_clients:10

let test_interleave_cold_unchanged () =
  let o = Ids.Oid.make ~page:700 ~slot:3 in
  Alcotest.(check bool) "cold identity" true (Ids.Oid.equal o (remap o))

let test_interleave_combined_region () =
  (* Client 0 (pages 0-24) and client 1 (pages 25-49) combine into 0-49;
     client 0 gets slots 0-9, client 1 slots 10-19. *)
  for page = 0 to 24 do
    for slot = 0 to 19 do
      let m = remap (Ids.Oid.make ~page ~slot) in
      if m.Ids.Oid.page < 0 || m.Ids.Oid.page > 49 then
        Alcotest.fail "left combined region";
      if m.Ids.Oid.slot > 9 then Alcotest.fail "client 0 must map to top half"
    done
  done;
  for page = 25 to 49 do
    for slot = 0 to 19 do
      let m = remap (Ids.Oid.make ~page ~slot) in
      if m.Ids.Oid.page < 0 || m.Ids.Oid.page > 49 then
        Alcotest.fail "left combined region";
      if m.Ids.Oid.slot < 10 then Alcotest.fail "client 1 must map to bottom half"
    done
  done

let test_interleave_injective () =
  let seen = Hashtbl.create 1024 in
  for page = 0 to 249 do
    for slot = 0 to 19 do
      let m = remap (Ids.Oid.make ~page ~slot) in
      if Hashtbl.mem seen m then Alcotest.fail "remap not injective";
      Hashtbl.add seen m ()
    done
  done;
  Alcotest.(check int) "bijection onto hot area" (250 * 20) (Hashtbl.length seen)

let test_interleave_doubles_pages () =
  (* One original page spreads over exactly two combined pages. *)
  let pages =
    List.sort_uniq compare
      (List.concat_map
         (fun slot -> [ (remap (Ids.Oid.make ~page:3 ~slot)).Ids.Oid.page ])
         (List.init 20 Fun.id))
  in
  Alcotest.(check int) "two pages" 2 (List.length pages)

let prop_interleave_in_range =
  QCheck.Test.make ~name:"interleave stays within the paired hot area" ~count:500
    QCheck.(pair (int_range 0 249) (int_range 0 19))
    (fun (page, slot) ->
      let m = remap (Ids.Oid.make ~page ~slot) in
      let pair_base = page / 25 land lnot 1 * 25 in
      m.Ids.Oid.page >= pair_base
      && m.Ids.Oid.page < pair_base + 50
      && m.Ids.Oid.slot >= 0 && m.Ids.Oid.slot < 20)

(* --- Presets / validation ------------------------------------------------ *)

let test_validate_rejects_bad_region () =
  let params = mk_params () in
  let bad =
    { params with
      Wparams.clients =
        Array.map
          (fun c -> { c with Wparams.cold_region = { Wparams.first = 0; last = 2000 } })
          params.Wparams.clients }
  in
  Alcotest.(check bool) "rejected" true
    (try
       Wparams.validate bad ~db_pages:cfg_db ~objects_per_page:opp;
       false
     with Invalid_argument _ -> true)

let test_validate_rejects_big_locality () =
  let params = mk_params () in
  let bad = { params with Wparams.page_locality = { Wparams.lo = 1; hi = 30 } } in
  Alcotest.(check bool) "rejected" true
    (try
       Wparams.validate bad ~db_pages:cfg_db ~objects_per_page:opp;
       false
     with Invalid_argument _ -> true)

let test_preset_regions () =
  let p = mk_params ~which:Presets.Hicon () in
  (match p.Wparams.clients.(0).Wparams.hot_region with
  | Some r ->
    Alcotest.(check int) "HICON hot size" 250 (Wparams.region_size r)
  | None -> Alcotest.fail "HICON needs a hot region");
  let u = mk_params ~which:Presets.Uniform () in
  Alcotest.(check bool) "UNIFORM has no hot region" true
    (u.Wparams.clients.(0).Wparams.hot_region = None)

let test_preset_scaling () =
  (* Scaled x9 database keeps region proportions. *)
  let p =
    Presets.make Presets.Hotcold ~db_pages:(cfg_db * 9) ~objects_per_page:opp
      ~num_clients:10 ~locality:Presets.Low ~write_prob:0.1
  in
  match p.Wparams.clients.(2).Wparams.hot_region with
  | Some r -> Alcotest.(check int) "hot scales x9" 450 (Wparams.region_size r)
  | None -> Alcotest.fail "expected hot region"

let test_name_roundtrip () =
  List.iter
    (fun w ->
      Alcotest.(check bool) "roundtrip" true
        (Presets.name_of_string (Presets.name_to_string w) = Some w))
    Presets.all

let prop_refstring_within_db =
  QCheck.Test.make ~name:"refstring objects stay within the database" ~count:100
    QCheck.(pair (int_range 0 9) (int_range 0 10000))
    (fun (client, seed) ->
      let params = mk_params ~which:Presets.Interleaved_private
          ~locality:Presets.High () in
      let t = gen ~seed ~client params in
      Array.for_all
        (fun (op : Refstring.op) ->
          op.oid.Ids.Oid.page >= 0 && op.oid.Ids.Oid.page < cfg_db
          && op.oid.Ids.Oid.slot >= 0 && op.oid.Ids.Oid.slot < opp)
        t)

let suite =
  [
    Alcotest.test_case "distinct pages" `Quick test_distinct_pages;
    Alcotest.test_case "locality range" `Quick test_locality_range;
    Alcotest.test_case "objects distinct" `Quick test_objects_distinct;
    Alcotest.test_case "write probability extremes" `Quick
      test_write_probability_extremes;
    Alcotest.test_case "clustered pattern" `Quick test_clustered_pattern;
    Alcotest.test_case "hot/cold split" `Quick test_hot_cold_split;
    Alcotest.test_case "determinism" `Quick test_determinism;
    Alcotest.test_case "PRIVATE cold is read-only" `Quick
      test_private_cold_read_only;
    Alcotest.test_case "PRIVATE hot regions disjoint" `Quick
      test_private_hot_disjoint;
    Alcotest.test_case "average objects per txn" `Quick test_avg_objects_per_txn;
    Alcotest.test_case "interleave: cold unchanged" `Quick
      test_interleave_cold_unchanged;
    Alcotest.test_case "interleave: combined region halves" `Quick
      test_interleave_combined_region;
    Alcotest.test_case "interleave: injective" `Quick test_interleave_injective;
    Alcotest.test_case "interleave: doubles pages" `Quick
      test_interleave_doubles_pages;
    QCheck_alcotest.to_alcotest prop_interleave_in_range;
    Alcotest.test_case "validate rejects bad region" `Quick
      test_validate_rejects_bad_region;
    Alcotest.test_case "validate rejects big locality" `Quick
      test_validate_rejects_big_locality;
    Alcotest.test_case "preset regions" `Quick test_preset_regions;
    Alcotest.test_case "preset scaling" `Quick test_preset_scaling;
    Alcotest.test_case "preset name roundtrip" `Quick test_name_roundtrip;
    QCheck_alcotest.to_alcotest prop_refstring_within_db;
  ]

open Workload
open Storage

let cfg_db = 1250
let opp = 20

let mk_params ?(which = Presets.Hotcold) ?(locality = Presets.Low)
    ?(write_prob = 0.2) ?(clients = 10) () =
  Presets.make which ~db_pages:cfg_db ~objects_per_page:opp
    ~num_clients:clients ~locality ~write_prob

let gen ?(seed = 1) ?(client = 0) params =
  Refstring.generate ~rng:(Simcore.Rng.create ~seed) ~params ~client
    ~objects_per_page:opp

(* --- Refstring ----------------------------------------------------------- *)

let test_distinct_pages () =
  let params = mk_params () in
  let t = gen params in
  let pages = Refstring.pages t in
  Alcotest.(check int) "trans_size pages" params.Wparams.trans_size
    (List.length pages);
  Alcotest.(check int) "distinct" (List.length pages)
    (List.length (List.sort_uniq compare pages))

let test_locality_range () =
  let params = mk_params () in
  let t = gen params in
  let by_page = Hashtbl.create 32 in
  Array.iter
    (fun (op : Refstring.op) ->
      let p = op.oid.Ids.Oid.page in
      Hashtbl.replace by_page p (1 + Option.value ~default:0 (Hashtbl.find_opt by_page p)))
    t;
  Hashtbl.iter
    (fun _ k ->
      if k < params.Wparams.page_locality.Wparams.lo
         || k > params.Wparams.page_locality.Wparams.hi
      then Alcotest.failf "page with %d objects outside locality range" k)
    by_page

let test_objects_distinct () =
  let params = mk_params () in
  let t = gen params in
  let oids = Array.to_list (Array.map (fun (op : Refstring.op) -> op.oid) t) in
  Alcotest.(check int) "no duplicate objects" (List.length oids)
    (List.length (List.sort_uniq Ids.Oid.compare oids))

let test_write_probability_extremes () =
  let p0 = mk_params ~write_prob:0.0 () in
  let t0 = gen p0 in
  Alcotest.(check int) "no writes at wp=0" 0 (Refstring.write_count t0);
  let p1 = mk_params ~write_prob:1.0 () in
  let t1 = gen p1 in
  Alcotest.(check int) "all writes at wp=1" (Refstring.object_count t1)
    (Refstring.write_count t1)

let test_clustered_pattern () =
  let params = { (mk_params ()) with Wparams.access_pattern = Wparams.Clustered } in
  let t = gen params in
  (* In a clustered string, each page's references are contiguous. *)
  let seen_done = Hashtbl.create 32 in
  let current = ref (-1) in
  Array.iter
    (fun (op : Refstring.op) ->
      let p = op.oid.Ids.Oid.page in
      if p <> !current then begin
        if Hashtbl.mem seen_done p then Alcotest.fail "page revisited";
        if !current >= 0 then Hashtbl.replace seen_done !current ();
        current := p
      end)
    t

let test_hot_cold_split () =
  let params = mk_params ~write_prob:0.0 () in
  (* client 3's hot region is pages 150..199 *)
  let hot = ref 0 and total = ref 0 in
  for seed = 1 to 40 do
    let t = gen ~seed ~client:3 params in
    Array.iter
      (fun (op : Refstring.op) ->
        incr total;
        let p = op.oid.Ids.Oid.page in
        if p >= 150 && p <= 199 then incr hot)
      t
  done;
  let frac = float_of_int !hot /. float_of_int !total in
  (* 80% of page picks are hot; cold picks can also land in the hot
     range (cold = whole DB), so expect a bit above 0.8. *)
  Alcotest.(check bool) "hot fraction near 0.8" true (frac > 0.7 && frac < 0.95)

let test_determinism () =
  let params = mk_params () in
  let a = gen ~seed:9 params and b = gen ~seed:9 params in
  Alcotest.(check bool) "same seed same string" true (a = b);
  let c = gen ~seed:10 params in
  Alcotest.(check bool) "different seed differs" true (a <> c)

let test_private_cold_read_only () =
  let params = mk_params ~which:Presets.Private_ ~locality:Presets.High
      ~write_prob:1.0 () in
  for seed = 1 to 20 do
    let t = gen ~seed params in
    Array.iter
      (fun (op : Refstring.op) ->
        if op.write && op.oid.Ids.Oid.page >= cfg_db / 2 then
          Alcotest.fail "write in the read-only cold region")
      t
  done

let test_private_hot_disjoint () =
  let params = mk_params ~which:Presets.Private_ ~locality:Presets.High () in
  (* Hot regions of different clients never overlap. *)
  Array.iteri
    (fun i (c : Wparams.per_client) ->
      Array.iteri
        (fun j (c' : Wparams.per_client) ->
          if i < j then
            match (c.hot_region, c'.hot_region) with
            | Some a, Some b ->
              if not (a.Wparams.last < b.Wparams.first || b.Wparams.last < a.Wparams.first)
              then Alcotest.fail "hot regions overlap"
            | _ -> Alcotest.fail "missing hot region")
        params.Wparams.clients)
    params.Wparams.clients

let test_avg_objects_per_txn () =
  (* Both locality settings average ~120 objects per transaction. *)
  List.iter
    (fun locality ->
      let params = mk_params ~locality () in
      let total = ref 0 in
      let n = 60 in
      for seed = 1 to n do
        total := !total + Refstring.object_count (gen ~seed params)
      done;
      let avg = float_of_int !total /. float_of_int n in
      Alcotest.(check bool)
        (Printf.sprintf "avg near 120 (got %.1f)" avg)
        true
        (avg > 105.0 && avg < 135.0))
    [ Presets.Low; Presets.High ]

(* --- Interleave ---------------------------------------------------------- *)

let remap = Interleave.remap ~hot_pages_per_client:25 ~objects_per_page:20 ~num_clients:10

let test_interleave_cold_unchanged () =
  let o = Ids.Oid.make ~page:700 ~slot:3 in
  Alcotest.(check bool) "cold identity" true (Ids.Oid.equal o (remap o))

let test_interleave_combined_region () =
  (* Client 0 (pages 0-24) and client 1 (pages 25-49) combine into 0-49;
     client 0 gets slots 0-9, client 1 slots 10-19. *)
  for page = 0 to 24 do
    for slot = 0 to 19 do
      let m = remap (Ids.Oid.make ~page ~slot) in
      if m.Ids.Oid.page < 0 || m.Ids.Oid.page > 49 then
        Alcotest.fail "left combined region";
      if m.Ids.Oid.slot > 9 then Alcotest.fail "client 0 must map to top half"
    done
  done;
  for page = 25 to 49 do
    for slot = 0 to 19 do
      let m = remap (Ids.Oid.make ~page ~slot) in
      if m.Ids.Oid.page < 0 || m.Ids.Oid.page > 49 then
        Alcotest.fail "left combined region";
      if m.Ids.Oid.slot < 10 then Alcotest.fail "client 1 must map to bottom half"
    done
  done

let test_interleave_injective () =
  let seen = Hashtbl.create 1024 in
  for page = 0 to 249 do
    for slot = 0 to 19 do
      let m = remap (Ids.Oid.make ~page ~slot) in
      if Hashtbl.mem seen m then Alcotest.fail "remap not injective";
      Hashtbl.add seen m ()
    done
  done;
  Alcotest.(check int) "bijection onto hot area" (250 * 20) (Hashtbl.length seen)

let test_interleave_doubles_pages () =
  (* One original page spreads over exactly two combined pages. *)
  let pages =
    List.sort_uniq compare
      (List.concat_map
         (fun slot -> [ (remap (Ids.Oid.make ~page:3 ~slot)).Ids.Oid.page ])
         (List.init 20 Fun.id))
  in
  Alcotest.(check int) "two pages" 2 (List.length pages)

let prop_interleave_in_range =
  QCheck.Test.make ~name:"interleave stays within the paired hot area" ~count:500
    QCheck.(pair (int_range 0 249) (int_range 0 19))
    (fun (page, slot) ->
      let m = remap (Ids.Oid.make ~page ~slot) in
      let pair_base = page / 25 land lnot 1 * 25 in
      m.Ids.Oid.page >= pair_base
      && m.Ids.Oid.page < pair_base + 50
      && m.Ids.Oid.slot >= 0 && m.Ids.Oid.slot < 20)

(* --- Presets / validation ------------------------------------------------ *)

let test_validate_rejects_bad_region () =
  let params = mk_params () in
  let bad =
    { params with
      Wparams.clients =
        Array.map
          (fun c -> { c with Wparams.cold_region = { Wparams.first = 0; last = 2000 } })
          params.Wparams.clients }
  in
  Alcotest.(check bool) "rejected" true
    (try
       Wparams.validate bad ~db_pages:cfg_db ~objects_per_page:opp;
       false
     with Invalid_argument _ -> true)

let test_validate_rejects_big_locality () =
  let params = mk_params () in
  let bad = { params with Wparams.page_locality = { Wparams.lo = 1; hi = 30 } } in
  Alcotest.(check bool) "rejected" true
    (try
       Wparams.validate bad ~db_pages:cfg_db ~objects_per_page:opp;
       false
     with Invalid_argument _ -> true)

let test_preset_regions () =
  let p = mk_params ~which:Presets.Hicon () in
  (match p.Wparams.clients.(0).Wparams.hot_region with
  | Some r ->
    Alcotest.(check int) "HICON hot size" 250 (Wparams.region_size r)
  | None -> Alcotest.fail "HICON needs a hot region");
  let u = mk_params ~which:Presets.Uniform () in
  Alcotest.(check bool) "UNIFORM has no hot region" true
    (u.Wparams.clients.(0).Wparams.hot_region = None)

let test_preset_scaling () =
  (* Scaled x9 database keeps region proportions. *)
  let p =
    Presets.make Presets.Hotcold ~db_pages:(cfg_db * 9) ~objects_per_page:opp
      ~num_clients:10 ~locality:Presets.Low ~write_prob:0.1
  in
  match p.Wparams.clients.(2).Wparams.hot_region with
  | Some r -> Alcotest.(check int) "hot scales x9" 450 (Wparams.region_size r)
  | None -> Alcotest.fail "expected hot region"

let test_name_roundtrip () =
  List.iter
    (fun w ->
      Alcotest.(check bool) "roundtrip" true
        (Presets.name_of_string (Presets.name_to_string w) = Some w))
    Presets.all

let prop_refstring_within_db =
  QCheck.Test.make ~name:"refstring objects stay within the database" ~count:100
    QCheck.(pair (int_range 0 9) (int_range 0 10000))
    (fun (client, seed) ->
      let params = mk_params ~which:Presets.Interleaved_private
          ~locality:Presets.High () in
      let t = gen ~seed ~client params in
      Array.for_all
        (fun (op : Refstring.op) ->
          op.oid.Ids.Oid.page >= 0 && op.oid.Ids.Oid.page < cfg_db
          && op.oid.Ids.Oid.slot >= 0 && op.oid.Ids.Oid.slot < opp)
        t)

(* --- Generic object-base workloads --------------------------------------- *)

(* Small bases keep the property battery fast; the structural
   invariants don't depend on population size. *)
let small_spec =
  QCheck.Gen.(
    int_range 50 3000 >>= fun objects ->
    int_range 1 (min 10 objects) >>= fun classes ->
    int_range 1 6 >>= fun fanout ->
    int_range 1 (min 12 objects) >>= fun depth ->
    return { Objbase.classes; objects; fanout; depth })

let arb_spec =
  QCheck.make small_spec ~print:(fun (s : Objbase.spec) ->
      Printf.sprintf "{classes=%d; objects=%d; fanout=%d; depth=%d}" s.classes
        s.objects s.fanout s.depth)

let prop_objbase_deterministic =
  QCheck.Test.make ~name:"objbase: same (spec, seed) builds identical base"
    ~count:30 arb_spec (fun spec ->
      let a = Objbase.generate spec ~seed:7 in
      let b = Objbase.generate spec ~seed:7 in
      a.Objbase.class_of = b.Objbase.class_of
      && a.Objbase.refs = b.Objbase.refs
      && a.Objbase.roots = b.Objbase.roots
      && a.Objbase.instances = b.Objbase.instances)

let prop_objbase_no_dangling =
  QCheck.Test.make ~name:"objbase: no dangling references, one level down"
    ~count:30 arb_spec (fun spec ->
      let b = Objbase.generate spec ~seed:11 in
      let n = Objbase.num_objects b in
      Array.for_all Fun.id
        (Array.mapi
           (fun obj targets ->
             Array.for_all
               (fun t ->
                 t >= 0 && t < n
                 && Objbase.level_of spec t = Objbase.level_of spec obj + 1)
               targets)
           b.Objbase.refs))

let prop_objbase_partition =
  QCheck.Test.make
    ~name:"objbase: class instances partition the population" ~count:30
    arb_spec (fun spec ->
      let b = Objbase.generate spec ~seed:3 in
      let total =
        Array.fold_left (fun acc m -> acc + Array.length m) 0
          b.Objbase.instances
      in
      total = Objbase.num_objects b
      && Array.length b.Objbase.roots > 0
      && Objbase.max_depth b <= spec.Objbase.depth)

let prop_placement_bijection =
  QCheck.Test.make ~name:"placement: every policy is a bijection" ~count:20
    arb_spec (fun spec ->
      let b = Objbase.generate spec ~seed:5 in
      List.for_all
        (fun policy ->
          let pos = Placement.layout policy b ~seed:9 in
          let sorted = Array.copy pos in
          Array.sort compare sorted;
          sorted = Array.init (Objbase.num_objects b) Fun.id)
        Placement.all)

let test_objbase_fanout_empirical () =
  let spec = { Objbase.classes = 10; objects = 5000; fanout = 3; depth = 8 } in
  let b = Objbase.generate spec ~seed:42 in
  let mean = Objbase.mean_fanout b in
  Alcotest.(check bool)
    (Printf.sprintf "mean fanout near 3 (got %.2f)" mean)
    true
    (mean > 2.6 && mean < 3.4);
  Alcotest.(check int) "max depth reaches the graph depth" 8
    (Objbase.max_depth b)

let test_placement_quality_ordering () =
  let spec = { Objbase.classes = 10; objects = 5000; fanout = 3; depth = 8 } in
  let b = Objbase.generate spec ~seed:42 in
  let q policy =
    let pos = Placement.layout policy b ~seed:1 in
    Placement.quality b ~pos ~objects_per_page:opp
  in
  let qd = q Placement.Dfs_ref and qs = q Placement.Scatter in
  Alcotest.(check bool)
    (Printf.sprintf "dfs quality %.3f beats scatter %.3f" qd qs)
    true (qd > qs +. 0.1);
  List.iter
    (fun policy ->
      let v = q policy in
      Alcotest.(check bool) "quality in [0,1]" true (v >= 0.0 && v <= 1.0))
    Placement.all

let test_placement_name_roundtrip () =
  List.iter
    (fun p ->
      Alcotest.(check bool) "roundtrip" true
        (Placement.of_string (Placement.name p) = Some p))
    Placement.all

(* --- Zipf ----------------------------------------------------------------- *)

let test_zipf_pmf_sums_to_one () =
  List.iter
    (fun theta ->
      let z = Zipf.make ~n:200 ~theta in
      let sum = ref 0.0 in
      for k = 0 to 199 do
        sum := !sum +. Zipf.pmf z k
      done;
      Alcotest.(check bool)
        (Printf.sprintf "pmf sums to 1 at theta %.1f" theta)
        true
        (abs_float (!sum -. 1.0) < 1e-9))
    [ 0.0; 0.8; 1.0; 2.5 ]

let test_zipf_uniform_at_zero () =
  let z = Zipf.make ~n:10 ~theta:0.0 in
  let rng = Simcore.Rng.create ~seed:17 in
  let counts = Array.make 10 0 in
  let draws = 10_000 in
  for _ = 1 to draws do
    let k = Zipf.draw z rng in
    counts.(k) <- counts.(k) + 1
  done;
  Array.iteri
    (fun k c ->
      if c < 800 || c > 1200 then
        Alcotest.failf "theta=0 rank %d drawn %d/10000 times (expected ~1000)"
          k c)
    counts

let test_zipf_skew_empirical () =
  let z = Zipf.make ~n:100 ~theta:1.2 in
  let rng = Simcore.Rng.create ~seed:23 in
  let counts = Array.make 100 0 in
  let draws = 20_000 in
  for _ = 1 to draws do
    let k = Zipf.draw z rng in
    counts.(k) <- counts.(k) + 1
  done;
  (* Empirical frequency of the hottest rank matches its pmf within
     ±15% relative, and the ranking is hot-to-cold overall. *)
  let f0 = float_of_int counts.(0) /. float_of_int draws in
  let p0 = Zipf.pmf z 0 in
  Alcotest.(check bool)
    (Printf.sprintf "rank-0 frequency %.4f near pmf %.4f" f0 p0)
    true
    (abs_float (f0 -. p0) /. p0 < 0.15);
  Alcotest.(check bool) "rank 0 hotter than rank 50" true
    (counts.(0) > counts.(50))

let test_zipf_one_draw_either_way () =
  (* Exactly one RNG draw per sample regardless of theta: streams
     stay aligned when only the skew knob changes. *)
  let probe theta =
    let rng = Simcore.Rng.create ~seed:31 in
    let z = Zipf.make ~n:50 ~theta in
    ignore (Zipf.draw z rng);
    Simcore.Rng.int rng 1_000_000
  in
  Alcotest.(check int) "stream position independent of theta" (probe 0.0)
    (probe 2.0)

(* --- Generic transaction generation --------------------------------------- *)

let mk_generic ?(objects = 2_000) ?(policy = Placement.Dfs_ref) ?(theta = 0.0)
    ?mix ?(write_prob = 0.2) ?(seed = 5) () =
  Generic.make ~objects ~policy ~theta ?mix ~write_prob ~db_pages:cfg_db
    ~objects_per_page:opp ~seed ()

let prop_generic_ops_valid =
  QCheck.Test.make
    ~name:"generic: transactions are non-empty, distinct, within the db"
    ~count:60
    QCheck.(triple (int_range 0 2) (int_range 0 1) (int_range 0 100_000))
    (fun (policy_idx, theta_idx, seed) ->
      let policy = List.nth Placement.all policy_idx in
      let theta = if theta_idx = 0 then 0.0 else 0.8 in
      let g = mk_generic ~policy ~theta () in
      let rng = Simcore.Rng.create ~seed in
      let ops = Generic.generate g ~rng in
      let oids = Array.map fst ops in
      Array.length ops > 0
      && Array.for_all
           (fun (o : Ids.Oid.t) ->
             o.Ids.Oid.page >= 0 && o.Ids.Oid.page < cfg_db
             && o.Ids.Oid.slot >= 0 && o.Ids.Oid.slot < opp)
           oids
      && Array.length oids
         = List.length
             (List.sort_uniq Ids.Oid.compare (Array.to_list oids)))

let prop_generic_deterministic =
  QCheck.Test.make
    ~name:"generic: rebuilt description + same rng replays the same txn"
    ~count:30
    QCheck.(int_range 0 100_000)
    (fun seed ->
      (* Two independently built values of the same description — as two
         pool workers would build them — generate identical streams. *)
      let a = mk_generic ~theta:0.8 () and b = mk_generic ~theta:0.8 () in
      Generic.name a = Generic.name b
      && Generic.quality a = Generic.quality b
      && Generic.generate a ~rng:(Simcore.Rng.create ~seed)
         = Generic.generate b ~rng:(Simcore.Rng.create ~seed))

let test_generic_mix_extremes () =
  let rng = Simcore.Rng.create ~seed:77 in
  (* All-match mix: read-only transactions. *)
  let m =
    mk_generic ~mix:{ Generic.traversal = 0; match_ = 100; update = 0 } ()
  in
  for _ = 1 to 50 do
    let ops = Generic.generate m ~rng in
    Array.iter
      (fun (_, write) ->
        if write then Alcotest.fail "match transactions must be read-only")
      ops
  done;
  (* All-update mix: write-only transactions. *)
  let u =
    mk_generic ~mix:{ Generic.traversal = 0; match_ = 0; update = 100 } ()
  in
  for _ = 1 to 50 do
    let ops = Generic.generate u ~rng in
    Array.iter
      (fun (_, write) ->
        if not write then Alcotest.fail "update transactions must write")
      ops
  done;
  (* All-traversal at write_prob 0: reads only. *)
  let t =
    mk_generic
      ~mix:{ Generic.traversal = 100; match_ = 0; update = 0 }
      ~write_prob:0.0 ()
  in
  for _ = 1 to 50 do
    let ops = Generic.generate t ~rng in
    Array.iter
      (fun (_, write) ->
        if write then Alcotest.fail "wp=0 traversal must not write")
      ops
  done

let test_generic_refstring_dispatch () =
  (* Presets.ocb routes Refstring.generate through the generic
     generator: same rng seed, same ops. *)
  let params =
    Presets.ocb ~objects:2_000 ~db_pages:cfg_db ~objects_per_page:opp
      ~num_clients:4 ~write_prob:0.2 ~seed:5 ()
  in
  let g = Option.get params.Wparams.generic in
  let via_refstring =
    Refstring.generate ~rng:(Simcore.Rng.create ~seed:41) ~params ~client:2
      ~objects_per_page:opp
  in
  let direct = Generic.generate g ~rng:(Simcore.Rng.create ~seed:41) in
  Alcotest.(check int) "same length" (Array.length direct)
    (Array.length via_refstring);
  Array.iteri
    (fun i (op : Refstring.op) ->
      let oid, write = direct.(i) in
      if not (Ids.Oid.equal op.oid oid) || op.write <> write then
        Alcotest.fail "dispatch altered the generic stream")
    via_refstring

let test_generic_zipf_concentrates () =
  (* At theta=2 the update mix hammers few distinct objects; at
     theta=0 it spreads out.  Count distinct oids over many txns. *)
  let distinct theta =
    let g =
      mk_generic ~theta
        ~mix:{ Generic.traversal = 0; match_ = 0; update = 100 }
        ()
    in
    let rng = Simcore.Rng.create ~seed:13 in
    let seen = Hashtbl.create 512 in
    for _ = 1 to 200 do
      Array.iter (fun (o, _) -> Hashtbl.replace seen o ()) (Generic.generate g ~rng)
    done;
    Hashtbl.length seen
  in
  let hot = distinct 2.0 and flat = distinct 0.0 in
  Alcotest.(check bool)
    (Printf.sprintf "skewed update set %d well below uniform %d" hot flat)
    true
    (hot * 4 < flat)

(* --- Validation paths ------------------------------------------------------ *)

let contains_substring s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let rejects_with what substring f =
  match f () with
  | exception Invalid_argument msg ->
    if not (contains_substring msg substring) then
      Alcotest.failf "%s: error %S does not mention %S" what msg substring
  | _ -> Alcotest.failf "%s: accepted" what

let test_generic_validation_errors () =
  let mk ?classes ?objects ?fanout ?depth ?theta ?mix ?traversal_depth
      ?write_prob () =
    Generic.make ?classes ?objects ?fanout ?depth ?theta ?mix ?traversal_depth
      ?write_prob ~db_pages:cfg_db ~objects_per_page:opp ~seed:1 ()
  in
  rejects_with "zero fanout" "fan-out" (fun () -> mk ~fanout:0 ());
  rejects_with "huge fanout" "fan-out" (fun () -> mk ~fanout:65 ());
  rejects_with "zero depth" "depth" (fun () -> mk ~depth:0 ());
  rejects_with "classes > objects" "class count" (fun () ->
      mk ~classes:50 ~objects:10 ~depth:2 ());
  rejects_with "theta out of range" "Zipf" (fun () -> mk ~theta:5.0 ());
  rejects_with "empty mix" "mix" (fun () ->
      mk ~mix:{ Generic.traversal = 0; match_ = 0; update = 0 } ());
  rejects_with "negative mix" "mix" (fun () ->
      mk ~mix:{ Generic.traversal = -1; match_ = 2; update = 1 } ());
  rejects_with "traversal deeper than graph" "traversal depth" (fun () ->
      mk ~depth:4 ~traversal_depth:9 ());
  rejects_with "write_prob out of range" "write probability" (fun () ->
      mk ~write_prob:1.5 ());
  rejects_with "base exceeds database" "does not fit" (fun () ->
      mk ~objects:((cfg_db * opp) + 1) ())

let test_arrival_validation_errors () =
  rejects_with "amp 1.0" "amplitude" (fun () ->
      Arrival.validate
        { Arrival.off with Arrival.diurnal_period = 10.0; diurnal_amp = 1.0 });
  rejects_with "amp without period" "period" (fun () ->
      Arrival.validate { Arrival.off with Arrival.diurnal_amp = 0.5 });
  rejects_with "boost 200" "boost" (fun () ->
      Arrival.validate
        { Arrival.off with Arrival.flash_duration = 5.0; flash_boost = 200.0 });
  rejects_with "negative period" "period" (fun () ->
      Arrival.validate { Arrival.off with Arrival.diurnal_period = -1.0 })

let test_arrival_shapes () =
  Alcotest.(check (float 1e-12)) "off is identity" 1.0
    (Arrival.rate_factor Arrival.off ~now:123.0);
  let a =
    {
      Arrival.diurnal_period = 40.0;
      diurnal_amp = 0.5;
      flash_at = 100.0;
      flash_duration = 10.0;
      flash_boost = 3.0;
    }
  in
  Arrival.validate a;
  Alcotest.(check (float 1e-9)) "diurnal peak" 1.5
    (Arrival.rate_factor a ~now:10.0);
  Alcotest.(check (float 1e-9)) "diurnal trough" 0.5
    (Arrival.rate_factor a ~now:30.0);
  (* now=100: diurnal sin(5*pi)=0, inside the flash window -> 3x. *)
  Alcotest.(check (float 1e-9)) "flash window boosts" 3.0
    (Arrival.rate_factor a ~now:100.0);
  (* now=110: the window [100,110) is over; diurnal trough again. *)
  Alcotest.(check (float 1e-9)) "flash window closes" 0.5
    (Arrival.rate_factor a ~now:110.0);
  Alcotest.(check (float 1e-9)) "think divides by the factor" 2.0
    (Arrival.think a ~base:3.0 ~now:10.0)

let test_preset_capacity_rejection () =
  (* The PR-8 population bound still produces its friendly error when
     reached through the unchanged preset path. *)
  rejects_with "HOTCOLD capacity" "at most" (fun () ->
      Presets.make Presets.Hotcold ~db_pages:cfg_db ~objects_per_page:opp
        ~num_clients:26 ~locality:Presets.Low ~write_prob:0.1);
  rejects_with "ocb population fits" "does not fit" (fun () ->
      Presets.ocb ~objects:((cfg_db * opp) + 1) ~db_pages:cfg_db
        ~objects_per_page:opp ~num_clients:5 ~write_prob:0.1 ())

let suite =
  [
    Alcotest.test_case "distinct pages" `Quick test_distinct_pages;
    Alcotest.test_case "locality range" `Quick test_locality_range;
    Alcotest.test_case "objects distinct" `Quick test_objects_distinct;
    Alcotest.test_case "write probability extremes" `Quick
      test_write_probability_extremes;
    Alcotest.test_case "clustered pattern" `Quick test_clustered_pattern;
    Alcotest.test_case "hot/cold split" `Quick test_hot_cold_split;
    Alcotest.test_case "determinism" `Quick test_determinism;
    Alcotest.test_case "PRIVATE cold is read-only" `Quick
      test_private_cold_read_only;
    Alcotest.test_case "PRIVATE hot regions disjoint" `Quick
      test_private_hot_disjoint;
    Alcotest.test_case "average objects per txn" `Quick test_avg_objects_per_txn;
    Alcotest.test_case "interleave: cold unchanged" `Quick
      test_interleave_cold_unchanged;
    Alcotest.test_case "interleave: combined region halves" `Quick
      test_interleave_combined_region;
    Alcotest.test_case "interleave: injective" `Quick test_interleave_injective;
    Alcotest.test_case "interleave: doubles pages" `Quick
      test_interleave_doubles_pages;
    QCheck_alcotest.to_alcotest prop_interleave_in_range;
    Alcotest.test_case "validate rejects bad region" `Quick
      test_validate_rejects_bad_region;
    Alcotest.test_case "validate rejects big locality" `Quick
      test_validate_rejects_big_locality;
    Alcotest.test_case "preset regions" `Quick test_preset_regions;
    Alcotest.test_case "preset scaling" `Quick test_preset_scaling;
    Alcotest.test_case "preset name roundtrip" `Quick test_name_roundtrip;
    QCheck_alcotest.to_alcotest prop_refstring_within_db;
    QCheck_alcotest.to_alcotest prop_objbase_deterministic;
    QCheck_alcotest.to_alcotest prop_objbase_no_dangling;
    QCheck_alcotest.to_alcotest prop_objbase_partition;
    QCheck_alcotest.to_alcotest prop_placement_bijection;
    Alcotest.test_case "objbase: empirical fanout and depth" `Quick
      test_objbase_fanout_empirical;
    Alcotest.test_case "placement: quality ordering" `Quick
      test_placement_quality_ordering;
    Alcotest.test_case "placement: name roundtrip" `Quick
      test_placement_name_roundtrip;
    Alcotest.test_case "zipf: pmf sums to one" `Quick test_zipf_pmf_sums_to_one;
    Alcotest.test_case "zipf: uniform at theta 0" `Quick
      test_zipf_uniform_at_zero;
    Alcotest.test_case "zipf: empirical skew" `Quick test_zipf_skew_empirical;
    Alcotest.test_case "zipf: one rng draw either way" `Quick
      test_zipf_one_draw_either_way;
    QCheck_alcotest.to_alcotest prop_generic_ops_valid;
    QCheck_alcotest.to_alcotest prop_generic_deterministic;
    Alcotest.test_case "generic: mix extremes" `Quick test_generic_mix_extremes;
    Alcotest.test_case "generic: refstring dispatch" `Quick
      test_generic_refstring_dispatch;
    Alcotest.test_case "generic: zipf concentrates updates" `Quick
      test_generic_zipf_concentrates;
    Alcotest.test_case "generic: validation errors" `Quick
      test_generic_validation_errors;
    Alcotest.test_case "arrival: validation errors" `Quick
      test_arrival_validation_errors;
    Alcotest.test_case "arrival: traffic shapes" `Quick test_arrival_shapes;
    Alcotest.test_case "presets: capacity rejections" `Quick
      test_preset_capacity_rejection;
  ]

(* Cluster-sweep and generic-workload conformance tests.

   Four layers:
   - the faulted golden: a fig3 storm cell rendered at full float
     precision must be byte-identical to the capture taken before the
     generic workload layer landed — proof that the new Wparams fields
     and the Refstring/Client dispatch leave preset runs untouched even
     under fault injection;
   - sweep plumbing: job shape, series reassembly, CSV schema;
   - physics: declustering shifts the page-grain callback rate and
     costs PS throughput while the object-grain protocols hold;
   - conformance: generic mixes on 1 and 2 servers under a fault storm
     stay serializable (oracle attached, audit always on) for all five
     protocols. *)

open Oodb_core

(* --- Golden byte-identity under a fault storm ----------------------------- *)

(* Captured at the parent commit (pre-generic-workload) with this exact
   job description: fig3 cell, wp=0.1, Faults.storm rate 0.02, warmup
   3s, measure 12s.  31 fields at %.17g: any extra RNG draw or
   reordered event in the preset path shows up here. *)
let render (r : Runner.result) =
  Printf.sprintf
    "%s|%.17g|%.17g|%.17g|%d|%d|%d|%d|%d|%.17g|%.17g|%d|%.17g|%.17g|%.17g|%.17g|%d|%.17g|%d|%d|%d|%d|%d|%d|%d|%d|%d|%d|%.17g|%.17g|%.17g"
    (Algo.to_string r.Runner.algo) r.Runner.throughput r.Runner.resp_mean
    r.Runner.resp_ci90 r.Runner.resp_batches r.Runner.commits r.Runner.aborts
    r.Runner.deadlocks r.Runner.messages r.Runner.msgs_per_commit
    r.Runner.kbytes_per_commit r.Runner.disk_ios r.Runner.server_cpu_util
    r.Runner.client_cpu_util r.Runner.disk_util r.Runner.net_util
    r.Runner.lock_waits r.Runner.avg_lock_wait r.Runner.callback_blocks
    r.Runner.merges r.Runner.deescalations r.Runner.page_write_grants
    r.Runner.object_write_grants r.Runner.overflows r.Runner.token_waits
    r.Runner.token_bounces r.Runner.crashes r.Runner.retransmits
    r.Runner.resp_p50 r.Runner.resp_p99 r.Runner.lock_wait_p99

let golden_storm =
  [
    "PS|9.5|1.1120748278840511|0.45242677798773173|4|114|13|13|7291|63.956140350877192|102.86622807017544|888|0.50034986111093038|0.18937386301664144|0.75151785224079393|0.10128213333333354|45|0.24848146987186062|57|0|0|1214|0|0|0|0|1|138|0.85769589859089446|3.8805107322101797|1.5225248334680845";
    "OS|6.083333333333333|2.1558051965587035|2.6693771469076699|2|73|1|1|15940|218.35616438356163|75.804473458904113|651|0.93881095715768759|0.23967878114085259|0.5411906380019551|0.047655449223491776|4|0.3324121317705222|10|0|0|0|870|0|0|0|1|322|1.584893192461114|5.5861655079462764|0.75771386562429921";
    "PS-OO|6.5|1.4667951648703197|0.49970881170940051|3|78|11|0|5769|73.961538461538467|139.25445713141025|778|0.40852222703355107|0.14277164246069524|0.6540169717058355|0.093679766666664721|3|0.28891406813538661|2|30|0|0|1007|0|0|0|5|248|0.83603069365146476|8.1143536697796002|0.52228404859176969";
    "PS-OA|11.083333333333334|0.89081823165733565|0.29007027944281316|5|133|1|1|8827|66.368421052631575|100.86278195488721|1041|0.59892611111088023|0.21938236338731437|0.88277557223115943|0.1160597333333408|10|0.26134341192161309|10|39|0|0|1653|0|0|0|3|195|0.75470595669689122|4.1900791057866646|0.73140324517551925";
    "PS-AA|9.1666666666666661|1.2453207839646536|0.50445770071320428|4|110|11|1|6967|63.336363636363636|100.85230823863637|827|0.47282535338913617|0.17938122137201093|0.69702652295138112|0.095477366666663954|12|0.27866372463426725|9|23|28|1063|76|0|0|0|2|201|0.6812920690579608|4.2986623470822805|1.2137926453021706";
  ]

let test_storm_golden () =
  let spec = Option.get (Experiments.find "fig3") in
  let cfg =
    { (Experiments.cfg_of spec) with Config.faults = Faults.storm ~rate:0.02 }
  in
  let params = Experiments.params_of spec ~write_prob:0.1 in
  List.iter2
    (fun algo golden ->
      let j =
        Job.make ~sweep:"cluster-golden" ~label:("storm " ^ Algo.to_string algo)
          ~cfg ~algo ~params ~warmup:3.0 ~measure:12.0 ()
      in
      Alcotest.(check string)
        (Printf.sprintf "faulted %s cell byte-identical to parent"
           (Algo.to_string algo))
        golden
        (render (Job.run j)))
    Algo.all golden_storm

(* --- Sweep plumbing -------------------------------------------------------- *)

let test_cluster_jobs_shape () =
  let jobs = Experiments.cluster_jobs () in
  let cells = Experiments.cluster_cells () in
  Alcotest.(check int) "cells x algos jobs"
    (List.length cells * List.length Algo.all)
    (List.length jobs);
  (* Policy-major ordering with distinct labels. *)
  let labels = List.map (fun (j : Job.t) -> j.Job.label) jobs in
  Alcotest.(check int) "labels distinct" (List.length labels)
    (List.length (List.sort_uniq compare labels));
  let first = List.hd jobs in
  Alcotest.(check bool) "first cell is the best-clustered policy" true
    (first.Job.label = Printf.sprintf "dfs z=0.00 %-5s" "PS")

let tiny_series () =
  let jobs = Experiments.cluster_jobs ~time_scale:0.02 () in
  Experiments.cluster_series_of_results (List.map Job.run jobs)

let test_cluster_series_and_csv () =
  let s = tiny_series () in
  Alcotest.(check int) "one point per cell"
    (List.length (Experiments.cluster_cells ()))
    (List.length s.Experiments.cpoints);
  List.iter
    (fun (p : Experiments.cluster_point) ->
      Alcotest.(check bool) "quality in range" true
        (p.Experiments.cquality >= 0.0 && p.Experiments.cquality <= 1.0);
      Alcotest.(check int) "five protocols" (List.length Algo.all)
        (List.length p.Experiments.cresults))
    s.Experiments.cpoints;
  (* dfs cells carry strictly better clustering quality than scatter. *)
  let quality_of policy =
    (List.find
       (fun (p : Experiments.cluster_point) -> p.Experiments.cpolicy = policy)
       s.Experiments.cpoints)
      .Experiments.cquality
  in
  Alcotest.(check bool) "dfs clusters better than scatter" true
    (quality_of Workload.Placement.Dfs_ref
    > quality_of Workload.Placement.Scatter +. 0.1);
  let csv = Report.cluster_series_to_csv s in
  let lines = String.split_on_char '\n' (String.trim csv) in
  Alcotest.(check string) "csv header"
    "policy,theta,quality,algo,throughput,resp_ms,commits,aborts,deadlocks,callback_blocks,msgs_per_commit,resp_p50_ms,resp_p99_ms,lock_wait_p99_ms"
    (List.hd lines);
  Alcotest.(check int) "csv rows"
    (List.length (Experiments.cluster_cells ()) * List.length Algo.all)
    (List.length (List.tl lines));
  (* The table renderer accepts the series. *)
  let b = Buffer.create 256 in
  let ppf = Format.formatter_of_buffer b in
  Report.pp_cluster_series ppf s;
  Format.pp_print_flush ppf ();
  Alcotest.(check bool) "table mentions the sweep" true
    (Buffer.length b > 0)

(* --- Clustering physics ---------------------------------------------------- *)

(* Page-grain PS pays for declustering: moving the same object base
   from the depth-first layout to the level-sequential one (quality
   0.27 -> 0.00) raises its callback-block rate per commit and costs
   throughput.  Margins are wide — at full scale the shift is ~1.7x on
   callbacks and ~1.7x on throughput. *)
let cluster_cell ~policy ~algo =
  let params = Experiments.cluster_params ~policy ~theta:0.0 in
  let j =
    Job.make ~sweep:"cluster-physics"
      ~label:(Workload.Placement.name policy ^ " " ^ Algo.to_string algo)
      ~cfg:Config.default ~algo ~params ~warmup:10.0 ~measure:60.0 ()
  in
  Job.run j

let test_declustering_hurts_page_grain () =
  let dfs = cluster_cell ~policy:Workload.Placement.Dfs_ref ~algo:Algo.PS in
  let seq = cluster_cell ~policy:Workload.Placement.Sequential ~algo:Algo.PS in
  let rate (r : Runner.result) =
    float_of_int r.Runner.callback_blocks /. float_of_int (max 1 r.Runner.commits)
  in
  Alcotest.(check bool)
    (Printf.sprintf "PS callback rate shifts up (%.2f -> %.2f)" (rate dfs)
       (rate seq))
    true
    (rate seq > 1.2 *. rate dfs);
  Alcotest.(check bool)
    (Printf.sprintf "PS throughput drops (%.2f -> %.2f tps)"
       dfs.Runner.throughput seq.Runner.throughput)
    true
    (seq.Runner.throughput < 0.8 *. dfs.Runner.throughput)

let test_object_grain_holds () =
  let dfs = cluster_cell ~policy:Workload.Placement.Dfs_ref ~algo:Algo.OS in
  let seq = cluster_cell ~policy:Workload.Placement.Sequential ~algo:Algo.OS in
  (* OS locks and calls back at object grain; placement moves its
     throughput by a few percent, not the tens PS loses. *)
  Alcotest.(check bool)
    (Printf.sprintf "OS throughput holds (%.2f -> %.2f tps)"
       dfs.Runner.throughput seq.Runner.throughput)
    true
    (seq.Runner.throughput > 0.85 *. dfs.Runner.throughput)

(* --- Oracle + audit conformance -------------------------------------------- *)

(* Generic mixes under a client-fault storm on one and two servers:
   every protocol keeps committing and the recorded history stays
   conflict-serializable (the audit re-checks invariants after every
   injected fault; the oracle checks the full history at end of run). *)
let generic_storm_run ~algo ~servers ~policy ~theta ~mix ~seed =
  let cfg =
    {
      Config.default with
      Config.servers;
      faults = Faults.storm ~rate:0.02;
      oracle = true;
    }
  in
  let params =
    Workload.Presets.ocb ~objects:4_000 ~policy ~theta ~mix
      ~db_pages:cfg.Config.db_pages
      ~objects_per_page:cfg.Config.objects_per_page
      ~num_clients:cfg.Config.num_clients ~write_prob:0.2 ~seed:7 ()
  in
  Runner.run ~seed ~max_events:3_000_000 ~warmup:3.0 ~measure:15.0 ~cfg ~algo
    ~params ()

let conformance algo () =
  List.iteri
    (fun i (servers, policy, theta) ->
      let mix =
        if i mod 2 = 0 then { Workload.Generic.traversal = 50; match_ = 20; update = 30 }
        else Workload.Generic.default_mix
      in
      let r = generic_storm_run ~algo ~servers ~policy ~theta ~mix ~seed:(i + 1) in
      Alcotest.(check bool)
        (Printf.sprintf "commits on %d server(s), %s" servers
           (Workload.Placement.name policy))
        true (r.Runner.commits > 0))
    [
      (1, Workload.Placement.Dfs_ref, 0.8);
      (2, Workload.Placement.Scatter, 0.0);
    ]

let suite =
  [
    Alcotest.test_case "faulted storm cell golden" `Quick test_storm_golden;
    Alcotest.test_case "cluster jobs shape" `Quick test_cluster_jobs_shape;
    Alcotest.test_case "cluster series + csv schema" `Quick
      test_cluster_series_and_csv;
    Alcotest.test_case "declustering hurts page grain" `Quick
      test_declustering_hurts_page_grain;
    Alcotest.test_case "object grain holds" `Quick test_object_grain_holds;
    Alcotest.test_case "conformance PS" `Quick (conformance Algo.PS);
    Alcotest.test_case "conformance OS" `Quick (conformance Algo.OS);
    Alcotest.test_case "conformance PS-OO" `Quick (conformance Algo.PS_OO);
    Alcotest.test_case "conformance PS-OA" `Quick (conformance Algo.PS_OA);
    Alcotest.test_case "conformance PS-AA" `Quick (conformance Algo.PS_AA);
  ]

(* Fault-injection subsystem tests.

   Four layers of assurance:
   - unit behaviour of the [Faults] profiles and streams (off draws
     nothing, storms are deterministic in the seed);
   - the golden byte-identity property: with every fault knob off, a
     reference fig3 cell reproduces the pre-fault-layer output exactly,
     field for field at full float precision;
   - crash-storm fuzzing: under aggressive crash/loss/stall storms every
     protocol keeps committing and the always-on [Audit] (which runs
     after every injected fault) never fires;
   - direct crash orchestration: [Crash.crash_client] reclaims all
     server-side state for the site, and the auditor actually detects
     deliberately corrupted states (the checks are not vacuous). *)

open Oodb_core
open Storage

(* --- Faults unit behaviour ----------------------------------------------- *)

let test_profiles () =
  Alcotest.(check bool) "off is off" true (Faults.is_off Faults.off);
  Alcotest.(check bool) "zero-rate storm is off" true
    (Faults.is_off (Faults.storm ~rate:0.0));
  Alcotest.(check bool) "storm is on" false
    (Faults.is_off (Faults.storm ~rate:0.01));
  Faults.validate (Faults.storm ~rate:0.1);
  let rejects p what =
    Alcotest.(check bool) what true
      (try
         Faults.validate p;
         false
       with Invalid_argument _ -> true)
  in
  rejects
    { Faults.off with Faults.crash_rate = -1.0 }
    "negative crash rate rejected";
  rejects
    { Faults.off with Faults.msg_loss_prob = 1.0 }
    "certain message loss rejected";
  rejects
    { Faults.off with Faults.retrans_backoff = 0.5 }
    "shrinking backoff rejected"

let test_off_draws_nothing () =
  let f = Faults.create ~profile:Faults.off ~seed:3 in
  Alcotest.(check bool) "off instance disabled" false (Faults.enabled f);
  for _ = 1 to 200 do
    if Faults.draw_msg_loss f || Faults.draw_msg_dup f || Faults.draw_disk_stall f
    then Alcotest.fail "off profile injected a fault"
  done;
  Alcotest.(check int) "no faults counted" 0 (Faults.injected f)

let test_storm_deterministic () =
  let draws seed =
    let f = Faults.create ~profile:(Faults.storm ~rate:0.3) ~seed in
    let ds =
      List.init 300 (fun _ ->
          ( Faults.draw_msg_loss f,
            Faults.draw_msg_dup f,
            Faults.draw_disk_stall f ))
    in
    (ds, Faults.injected f)
  in
  Alcotest.(check bool) "same seed, same fault schedule" true
    (draws 9 = draws 9);
  Alcotest.(check bool) "different seed, different schedule" true
    (draws 9 <> draws 10);
  Alcotest.(check bool) "storm actually injects" true (snd (draws 9) > 0)

let test_crash_delays_deterministic () =
  let delays seed =
    let f = Faults.create ~profile:(Faults.storm ~rate:0.5) ~seed in
    List.init 50 (fun _ -> Faults.next_crash_delay f)
  in
  Alcotest.(check bool) "reproducible inter-crash times" true
    (delays 4 = delays 4);
  List.iter
    (fun d ->
      if d <= 0.0 then Alcotest.fail "non-positive inter-crash delay")
    (delays 4)

(* --- Golden byte-identity with faults off -------------------------------- *)

(* Captured at this exact configuration (fig3 spec restricted to
   wp=0.1, time_scale 0.1, sequential).  Every float is printed at full
   precision: any drift — an extra RNG draw, a reordered event, a
   perturbed metric — shows up here.

   Regenerated when the copy-in-transit race was closed (the server now
   re-checks the page write lock before registering and shipping a
   fetched copy): the PS and PS-AA rows shifted because page-grain
   writers in this cell had been racing fetches; OS, PS-OO and PS-OA
   are byte-identical to the pre-fix capture. *)
let golden_fig3_point =
  "PS|9.75|1.3103009006014497|0.76933195413913524|4|117|8|8|6748|57.675213675213676|94.623931623931625|929|0.46814572330791226|0.17900728535754609|0.76713760644133222|0.094510933333330369|43|0.26475277650992679|36|0|0|1169|0|0|0|0\n\
   OS|6.666666666666667|1.7405722133476869|1.0855214857122097|3|80|1|1|16019|200.23750000000001|69.562890624999994|686|0.95078118072810625|0.24342390421695598|0.56777900794747116|0.047501899999994761|9|0.4599150933235378|7|0|0|0|874|0|0|0\n\
   PS-OO|11.333333333333334|0.95990206930704547|0.43929284268381674|5|136|1|1|9155|67.316176470588232|94.946691176470594|1048|0.61706073277284756|0.22515346424287536|0.87501662049220019|0.11021808149693457|15|0.2738549596729723|11|58|0|0|1652|0|0|0\n\
   PS-OA|12.666666666666666|0.87661233463733779|0.3744948986183555|6|152|0|0|9009|59.26973684210526|89.370065789473685|1062|0.61390277777754232|0.23307217549018344|0.89050642795850599|0.11588876259058682|14|0.19289623704346953|5|44|0|0|1714|0|0|0\n\
   PS-AA|11.583333333333334|0.8764852129696501|0.37620849856466981|5|139|1|1|8466|60.906474820143885|95.370503597122308|1081|0.58151541666645279|0.22004940457101846|0.9093096892565421|0.11312213333333947|13|0.40266025414688056|12|48|47|1410|67|0|0|0\n"

let render_series (series : Experiments.series) =
  let buf = Buffer.create 1024 in
  List.iter
    (fun (p : Experiments.point) ->
      List.iter
        (fun (a, (r : Runner.result)) ->
          Buffer.add_string buf
            (Printf.sprintf
               "%s|%.17g|%.17g|%.17g|%d|%d|%d|%d|%d|%.17g|%.17g|%d|%.17g|%.17g|%.17g|%.17g|%d|%.17g|%d|%d|%d|%d|%d|%d|%d|%d\n"
               (Algo.to_string a) r.Runner.throughput r.Runner.resp_mean
               r.Runner.resp_ci90 r.Runner.resp_batches r.Runner.commits
               r.Runner.aborts r.Runner.deadlocks r.Runner.messages
               r.Runner.msgs_per_commit r.Runner.kbytes_per_commit
               r.Runner.disk_ios r.Runner.server_cpu_util
               r.Runner.client_cpu_util r.Runner.disk_util r.Runner.net_util
               r.Runner.lock_waits r.Runner.avg_lock_wait
               r.Runner.callback_blocks r.Runner.merges r.Runner.deescalations
               r.Runner.page_write_grants r.Runner.object_write_grants
               r.Runner.overflows r.Runner.token_waits r.Runner.token_bounces))
        p.Experiments.results)
    series.Experiments.points;
  Buffer.contents buf

let fig3_point () =
  let spec = Option.get (Experiments.find "fig3") in
  { spec with Experiments.write_probs = [ 0.1 ] }

let test_fault_free_byte_identity () =
  let series = Harness.Sweep.run_spec ~time_scale:0.1 ~jobs:1 (fig3_point ()) in
  Alcotest.(check string)
    "fault knobs off: fig3 reference point is byte-identical to pre-PR"
    golden_fig3_point (render_series series)

(* The serializability oracle is pure observation: it draws nothing
   from the random streams and schedules nothing, so attaching it must
   leave every figure byte-identical. *)
let test_oracle_on_byte_identity () =
  let series =
    Harness.Sweep.run_spec ~time_scale:0.1 ~oracle:true ~jobs:1 (fig3_point ())
  in
  Alcotest.(check string)
    "oracle on: fig3 reference point is byte-identical to oracle off"
    golden_fig3_point (render_series series)

(* A storm at rate zero is indistinguishable from no fault layer at all:
   no stream consulted, no event scheduled.  The job key ignores the
   configuration, so both jobs use the same seed. *)
let test_zero_rate_storm_identity () =
  let spec = fig3_point () in
  let cfg = Experiments.cfg_of spec in
  let params = Experiments.params_of spec ~write_prob:0.1 in
  let mk cfg =
    Job.make ~sweep:"fault-ident" ~label:"wp=0.10" ~cfg ~algo:Algo.PS_AA
      ~params ~warmup:3.0 ~measure:12.0 ()
  in
  let plain = Job.run (mk cfg) in
  let zero =
    Job.run (mk { cfg with Config.faults = Faults.storm ~rate:0.0 })
  in
  Alcotest.(check bool) "storm rate 0.0 == faults off, byte for byte" true
    (plain = zero)

(* --- Crash-storm fuzz ----------------------------------------------------- *)

(* Aggressive storms over the fig3 workload: clients crash mid-protocol,
   messages drop and duplicate, disks stall.  The audit hook re-verifies
   every invariant after each injected fault; any violation raises
   [Audit.Violation] and fails the test.  The [max_events] budget turns
   a livelock (e.g. a retransmission that never converges) into a loud
   failure instead of a hang. *)
let storm_run ~algo ~seed ~rate =
  let cfg = { Config.default with Config.faults = Faults.storm ~rate } in
  let spec = Option.get (Experiments.find "fig3") in
  let params = Experiments.params_of spec ~write_prob:0.2 in
  Runner.run ~seed ~max_events:3_000_000 ~warmup:5.0 ~measure:30.0 ~cfg ~algo
    ~params ()

let fuzz_storm algo () =
  let injected = ref 0 and crashes = ref 0 in
  List.iter
    (fun (seed, rate) ->
      let r = storm_run ~algo ~seed ~rate in
      injected := !injected + r.Runner.faults_injected;
      crashes := !crashes + r.Runner.crashes;
      Alcotest.(check bool)
        (Printf.sprintf "commits under storm %.2f (seed %d)" rate seed)
        true
        (r.Runner.commits > 0))
    [ (1, 0.02); (2, 0.05) ];
  (* The storm must actually exercise the fault paths, or the audit
     proves nothing. *)
  Alcotest.(check bool) "storm injected faults" true (!injected > 0);
  Alcotest.(check bool) "storm crashed clients" true (!crashes > 0)

(* --- Crash orchestration and audit sensitivity ---------------------------- *)

let mk_running_sys ~algo ~seed =
  let spec = Option.get (Experiments.find "fig3") in
  let cfg = Experiments.cfg_of spec in
  let params = Experiments.params_of spec ~write_prob:0.1 in
  let sys = Model.create ~cfg ~algo ~params ~seed in
  Audit.install sys;
  Client.start sys;
  sys

let test_crash_reclaims_state () =
  let sys = mk_running_sys ~algo:Algo.PS_AA ~seed:5 in
  Simcore.Engine.run_until sys.Model.engine 10.0;
  Crash.crash_client sys 0;
  let cs = sys.Model.clients in
  Alcotest.(check bool) "client down" false cs.Model.up.(0);
  Alcotest.(check bool)
    "no running transaction" true
    (cs.Model.running.(0) = None);
  Alcotest.(check int) "page cache dropped" 0 (Lru.size cs.Model.cache.(0));
  Alcotest.(check int) "object cache dropped" 0 (Lru.size cs.Model.ocache.(0));
  Alcotest.(check int) "page copies purged" 0
    (Locking.Copy_table.client_copies sys.Model.servers.(0).pcopies ~client:0);
  Alcotest.(check int) "object copies purged" 0
    (Locking.Copy_table.client_copies sys.Model.servers.(0).ocopies ~client:0);
  Audit.check sys ~context:"unit-crash";
  (* The rest of the population keeps running while the site is down. *)
  Simcore.Engine.run_until sys.Model.engine 15.0;
  Audit.check sys ~context:"unit-down-window";
  Crash.restart_client sys 0;
  Simcore.Engine.run_until sys.Model.engine 60.0;
  sys.Model.live <- false;
  (* [crashed_at] is cleared at the first commit of the restarted
     incarnation, so this asserts the client actually recovered. *)
  Alcotest.(check bool) "restarted client committed again" true
    (cs.Model.crashed_at.(0) = None);
  Alcotest.(check bool) "recovery latency recorded" true
    (Faults.recoveries sys.Model.faults >= 1)

(* The auditor must reject corrupted states, otherwise the storm tests
   are vacuous. *)
let test_audit_detects_corruption () =
  let sys = mk_running_sys ~algo:Algo.PS_AA ~seed:6 in
  Simcore.Engine.run_until sys.Model.engine 10.0;
  sys.Model.live <- false;
  let expect_violation what corrupt restore =
    corrupt ();
    (match Audit.check sys ~context:"negative-test" with
    | () -> Alcotest.fail ("audit accepted " ^ what)
    | exception Audit.Violation _ -> ());
    restore ()
  in
  let cs = sys.Model.clients in
  Alcotest.(check bool)
    "client has cached pages" true
    (Lru.size cs.Model.cache.(0) > 0);
  expect_violation "a down client with live state"
    (fun () -> cs.Model.up.(0) <- false)
    (fun () -> cs.Model.up.(0) <- true);
  (* Unregistering a live client's copies breaks callback coverage. *)
  expect_violation "a cached page with no copy registration"
    (fun () ->
      ignore
        (Locking.Copy_table.purge_client sys.Model.servers.(0).pcopies ~client:0
          : int))
    (fun () -> ());
  Audit.check sys ~context:"pre-corruption state was clean (up flag restored)"
    ~coverage_of:1

let suite =
  [
    Alcotest.test_case "profiles and validation" `Quick test_profiles;
    Alcotest.test_case "off profile draws nothing" `Quick
      test_off_draws_nothing;
    Alcotest.test_case "storm schedule deterministic" `Quick
      test_storm_deterministic;
    Alcotest.test_case "crash delays deterministic" `Quick
      test_crash_delays_deterministic;
    Alcotest.test_case "fault-free golden byte-identity" `Slow
      test_fault_free_byte_identity;
    Alcotest.test_case "oracle-on golden byte-identity" `Slow
      test_oracle_on_byte_identity;
    Alcotest.test_case "zero-rate storm identity" `Slow
      test_zero_rate_storm_identity;
  ]
  @ List.map
      (fun algo ->
        Alcotest.test_case
          (Printf.sprintf "crash storm, audited (%s)" (Algo.to_string algo))
          `Slow (fuzz_storm algo))
      Algo.all
  @ [
      Alcotest.test_case "crash reclaims server state" `Quick
        test_crash_reclaims_state;
      Alcotest.test_case "audit detects corruption" `Quick
        test_audit_detects_corruption;
    ]

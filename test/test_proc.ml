open Simcore

let test_spawn_runs () =
  let e = Engine.create () in
  let ran = ref false in
  Proc.spawn e (fun () -> ran := true);
  Engine.run e;
  Alcotest.(check bool) "fiber ran" true !ran

let test_hold_advances_time () =
  let e = Engine.create () in
  let t = ref 0.0 in
  Proc.spawn e (fun () ->
      Proc.hold e 2.5;
      t := Engine.now e);
  Engine.run e;
  Alcotest.(check (float 1e-12)) "time advanced" 2.5 !t

let test_sequential_holds () =
  let e = Engine.create () in
  let log = ref [] in
  Proc.spawn e (fun () ->
      Proc.hold e 1.0;
      log := Engine.now e :: !log;
      Proc.hold e 1.0;
      log := Engine.now e :: !log);
  Engine.run e;
  Alcotest.(check (list (float 1e-12))) "cumulative" [ 1.0; 2.0 ] (List.rev !log)

let test_concurrent_fibers () =
  let e = Engine.create () in
  let log = ref [] in
  Proc.spawn e (fun () ->
      Proc.hold e 2.0;
      log := "slow" :: !log);
  Proc.spawn e (fun () ->
      Proc.hold e 1.0;
      log := "fast" :: !log);
  Engine.run e;
  Alcotest.(check (list string)) "interleave" [ "fast"; "slow" ] (List.rev !log)

let test_suspend_resume_value () =
  let e = Engine.create () in
  let resumer = ref None in
  let got = ref 0 in
  Proc.spawn e (fun () ->
      got := Proc.suspend e (fun r -> resumer := Some r));
  Engine.run e;
  (match !resumer with
  | Some r -> r (Ok 42)
  | None -> Alcotest.fail "never suspended");
  Engine.run e;
  Alcotest.(check int) "resumed with value" 42 !got

let test_suspend_resume_error () =
  let e = Engine.create () in
  let resumer = ref None in
  let caught = ref false in
  Proc.spawn e (fun () ->
      try ignore (Proc.suspend e (fun r -> resumer := Some r) : int)
      with Proc.Cancelled -> caught := true);
  Engine.run e;
  (Option.get !resumer) (Error Proc.Cancelled);
  Engine.run e;
  Alcotest.(check bool) "exception delivered" true !caught

let test_double_resume_rejected () =
  let e = Engine.create () in
  let resumer = ref None in
  Proc.spawn e (fun () -> ignore (Proc.suspend e (fun r -> resumer := Some r) : int));
  Engine.run e;
  let r = Option.get !resumer in
  r (Ok 1);
  Alcotest.(check bool) "second resume raises" true
    (try
       r (Ok 2);
       false
     with Invalid_argument _ -> true)

let test_yield_ordering () =
  let e = Engine.create () in
  let log = ref [] in
  Proc.spawn e (fun () ->
      log := "a1" :: !log;
      Proc.yield e;
      log := "a2" :: !log);
  Proc.spawn e (fun () -> log := "b" :: !log);
  Engine.run e;
  Alcotest.(check (list string)) "yield lets others run" [ "a1"; "b"; "a2" ]
    (List.rev !log)

let test_ivar_basic () =
  let e = Engine.create () in
  let iv = Ivar.create e in
  let got = ref 0 in
  Proc.spawn e (fun () -> got := Ivar.read iv);
  Proc.spawn e (fun () ->
      Proc.hold e 1.0;
      Ivar.fill iv 7);
  Engine.run e;
  Alcotest.(check int) "read after fill" 7 !got

let test_ivar_read_when_full () =
  let e = Engine.create () in
  let iv = Ivar.create e in
  Ivar.fill iv 5;
  let got = ref 0 in
  Proc.spawn e (fun () -> got := Ivar.read iv);
  Engine.run e;
  Alcotest.(check int) "immediate" 5 !got

let test_ivar_multiple_readers () =
  let e = Engine.create () in
  let iv = Ivar.create e in
  let sum = ref 0 in
  for _ = 1 to 3 do
    Proc.spawn e (fun () -> sum := !sum + Ivar.read iv)
  done;
  Proc.spawn e (fun () -> Ivar.fill iv 10);
  Engine.run e;
  Alcotest.(check int) "all woken" 30 !sum

let test_ivar_double_fill () =
  let e = Engine.create () in
  let iv = Ivar.create e in
  Ivar.fill iv 1;
  Alcotest.(check bool) "double fill raises" true
    (try
       Ivar.fill iv 2;
       false
     with Invalid_argument _ -> true)

let test_mailbox_fifo () =
  let e = Engine.create () in
  let mb = Mailbox.create e in
  let got = ref [] in
  Proc.spawn e (fun () ->
      for _ = 1 to 3 do
        got := Mailbox.recv mb :: !got
      done);
  Proc.spawn e (fun () ->
      Mailbox.send mb 1;
      Mailbox.send mb 2;
      Proc.hold e 1.0;
      Mailbox.send mb 3);
  Engine.run e;
  Alcotest.(check (list int)) "fifo" [ 1; 2; 3 ] (List.rev !got)

let test_mailbox_blocking_recv () =
  let e = Engine.create () in
  let mb = Mailbox.create e in
  let t = ref 0.0 in
  Proc.spawn e (fun () ->
      ignore (Mailbox.recv mb);
      t := Engine.now e);
  Proc.spawn e (fun () ->
      Proc.hold e 3.0;
      Mailbox.send mb ());
  Engine.run e;
  Alcotest.(check (float 1e-12)) "blocked until send" 3.0 !t

let test_gather () =
  let e = Engine.create () in
  let g = Gather.create e 3 in
  let got = ref [] in
  Proc.spawn e (fun () -> got := Gather.wait g);
  for i = 1 to 3 do
    Proc.spawn e (fun () ->
        Proc.hold e (float_of_int i);
        Gather.add g i)
  done;
  Engine.run e;
  Alcotest.(check (list int)) "arrival order" [ 1; 2; 3 ] !got

let test_gather_empty () =
  let e = Engine.create () in
  let g = Gather.create e 0 in
  let done_ = ref false in
  Proc.spawn e (fun () ->
      ignore (Gather.wait g);
      done_ := true);
  Engine.run e;
  Alcotest.(check bool) "empty gather returns" true !done_

let test_gather_overflow () =
  let e = Engine.create () in
  let g = Gather.create e 1 in
  Gather.add g 1;
  Alcotest.(check bool) "overflow raises" true
    (try
       Gather.add g 2;
       false
     with Invalid_argument _ -> true)

let test_many_fibers () =
  let e = Engine.create () in
  let n = 1000 in
  let completed = ref 0 in
  for i = 1 to n do
    Proc.spawn e (fun () ->
        Proc.hold e (float_of_int (i mod 17) /. 10.0);
        incr completed)
  done;
  Engine.run e;
  Alcotest.(check int) "all completed" n !completed

let suite =
  [
    Alcotest.test_case "spawn runs" `Quick test_spawn_runs;
    Alcotest.test_case "hold advances time" `Quick test_hold_advances_time;
    Alcotest.test_case "sequential holds" `Quick test_sequential_holds;
    Alcotest.test_case "concurrent fibers" `Quick test_concurrent_fibers;
    Alcotest.test_case "suspend/resume value" `Quick test_suspend_resume_value;
    Alcotest.test_case "suspend/resume error" `Quick test_suspend_resume_error;
    Alcotest.test_case "double resume rejected" `Quick test_double_resume_rejected;
    Alcotest.test_case "yield ordering" `Quick test_yield_ordering;
    Alcotest.test_case "ivar basic" `Quick test_ivar_basic;
    Alcotest.test_case "ivar read when full" `Quick test_ivar_read_when_full;
    Alcotest.test_case "ivar multiple readers" `Quick test_ivar_multiple_readers;
    Alcotest.test_case "ivar double fill" `Quick test_ivar_double_fill;
    Alcotest.test_case "mailbox fifo" `Quick test_mailbox_fifo;
    Alcotest.test_case "mailbox blocking recv" `Quick test_mailbox_blocking_recv;
    Alcotest.test_case "gather" `Quick test_gather;
    Alcotest.test_case "gather empty" `Quick test_gather_empty;
    Alcotest.test_case "gather overflow" `Quick test_gather_overflow;
    Alcotest.test_case "1000 fibers" `Quick test_many_fibers;
  ]

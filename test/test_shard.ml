(* The partitioned-server topology: distributed deadlock detection over
   linked per-server waits-for graphs, cross-partition cancel/purge,
   edge-exchange accounting, and end-to-end conformance of sharded runs
   (oracle + audit, with and without fault storms).  servers=1 identity
   against the singleton topology is covered here too; the byte-level
   goldens in Test_faults/Test_telemetry pin it against the seed. *)

open Oodb_core

(* --- Distributed deadlock detection (unit) -------------------------------- *)

(* A two-transaction cycle split across two partitions: txn 1 waits at
   server 0 for txn 2, which waits at server 1 for txn 1.  Neither
   graph alone contains a cycle — each holds a single edge — so only
   the union traversal can find it. *)
let test_cross_server_cycle () =
  let open Locking.Waits_for in
  (* Unlinked control: the same two edges in two solo graphs are
     invisible to per-graph detection. *)
  let s0 = create () and s1 = create () in
  List.iter
    (fun g ->
      begin_txn g 1 ~start:1.0;
      begin_txn g 2 ~start:2.0)
    [ s0; s1 ];
  set_wait s0 1 ~blockers:[ 2 ] ~cancel:(fun () -> ());
  set_wait s1 2 ~blockers:[ 1 ] ~cancel:(fun () -> ());
  Alcotest.(check int) "solo graph 0 sees no cycle" 0
    (check_deadlock s0 ~from:1);
  Alcotest.(check int) "solo graph 1 sees no cycle" 0
    (check_deadlock s1 ~from:2);
  Alcotest.(check bool) "solo any_cycle blind to the split cycle" true
    (any_cycle s0 = None && any_cycle s1 = None);
  (* Linked cluster: the same state, now detected and broken. *)
  let g0 = create () and g1 = create () in
  link [| g0; g1 |];
  List.iter
    (fun g ->
      begin_txn g 1 ~start:1.0;
      begin_txn g 2 ~start:2.0)
    [ g0; g1 ];
  let cancelled = ref [] in
  set_wait g0 1 ~blockers:[ 2 ] ~cancel:(fun () -> cancelled := 1 :: !cancelled);
  Alcotest.(check int) "half a cycle is not a deadlock" 0
    (check_deadlock g0 ~from:1);
  set_wait g1 2 ~blockers:[ 1 ] ~cancel:(fun () -> cancelled := 2 :: !cancelled);
  Alcotest.(check int) "closing edge detected across partitions" 1
    (check_deadlock g1 ~from:2);
  (* Youngest (txn 2, started later) loses; its wait was at g1, so the
     victim is attributed to that partition. *)
  Alcotest.(check (list int)) "youngest transaction cancelled" [ 2 ] !cancelled;
  Alcotest.(check int) "victim counted at its partition" 1 (deadlocks g1);
  Alcotest.(check int) "no victim charged to the other partition" 0
    (deadlocks g0);
  Alcotest.(check bool) "survivor still waiting" true (is_waiting g0 1);
  Alcotest.(check bool) "victim's wait gone cluster-wide" false
    (is_waiting g0 2)

(* A cycle confined to one partition behaves exactly as in the solo
   topology, link or no link. *)
let test_single_server_cycle_unchanged () =
  let open Locking.Waits_for in
  let run mk =
    let g, detect_on, members = mk () in
    (* Start times are replicated to every member, as Client does. *)
    List.iter
      (fun m ->
        begin_txn m 1 ~start:1.0;
        begin_txn m 2 ~start:2.0)
      members;
    let cancelled = ref [] in
    set_wait g 1 ~blockers:[ 2 ] ~cancel:(fun () ->
        cancelled := 1 :: !cancelled);
    set_wait g 2 ~blockers:[ 1 ] ~cancel:(fun () ->
        cancelled := 2 :: !cancelled);
    let victims = check_deadlock detect_on ~from:2 in
    (victims, !cancelled)
  in
  let solo = run (fun () -> let g = create () in (g, g, [ g ])) in
  let linked =
    run (fun () ->
        let g0 = create () and g1 = create () in
        link [| g0; g1 |];
        (* Both waits land in g0; detection may run from either member. *)
        (g0, g1, [ g0; g1 ]))
  in
  Alcotest.(check bool) "linked cluster = solo graph on a local cycle" true
    (solo = linked);
  Alcotest.(check (pair int (list int))) "one victim, the youngest"
    (1, [ 2 ]) solo

let test_cancel_and_clear_across_partitions () =
  let open Locking.Waits_for in
  let g0 = create () and g1 = create () in
  link [| g0; g1 |];
  List.iter
    (fun g ->
      begin_txn g 1 ~start:1.0;
      begin_txn g 2 ~start:2.0)
    [ g0; g1 ];
  let cancelled = ref false in
  set_wait g1 1 ~blockers:[ 2 ] ~cancel:(fun () -> cancelled := true);
  (* Crash recovery cancels through whatever member it holds — here g0,
     while the wait is registered at g1. *)
  Alcotest.(check bool) "wait visible through the peer" true (is_waiting g0 1);
  cancel_wait g0 1;
  Alcotest.(check bool) "cancel thunk ran" true !cancelled;
  Alcotest.(check bool) "wait gone from the owning partition" false
    (is_waiting g1 1);
  Alcotest.(check int) "owning graph empty" 0 (waiting_count g1);
  (* clear_wait (grant path) also resolves through the union, without
     invoking the cancel thunk. *)
  let cancelled2 = ref false in
  set_wait g1 2 ~blockers:[ 1 ] ~cancel:(fun () -> cancelled2 := true);
  clear_wait g0 2;
  Alcotest.(check bool) "grant does not run the cancel thunk" false !cancelled2;
  Alcotest.(check bool) "granted wait gone" false (is_waiting g1 2)

(* The edge-exchange hook fires once per edge actually gained by the
   hooked graph: on set_wait, on a novel add_blocker, never on a
   duplicate, and never for edges landing on a peer. *)
let test_edge_exchange_hook () =
  let open Locking.Waits_for in
  let g0 = create () and g1 = create () in
  link [| g0; g1 |];
  List.iter
    (fun g ->
      begin_txn g 1 ~start:1.0;
      begin_txn g 2 ~start:2.0;
      begin_txn g 3 ~start:3.0)
    [ g0; g1 ];
  let fired = ref 0 in
  set_exchange_hook g1 (fun _ -> incr fired);
  set_wait g0 1 ~blockers:[ 2 ] ~cancel:(fun () -> ());
  Alcotest.(check int) "peer edge does not fire the hook" 0 !fired;
  set_wait g1 2 ~blockers:[ 3 ] ~cancel:(fun () -> ());
  Alcotest.(check int) "set_wait fires once" 1 !fired;
  (* add_blocker routes to the graph owning the wait, whichever member
     receives the call. *)
  add_blocker g0 2 1;
  Alcotest.(check int) "novel blocker fires once" 2 !fired;
  add_blocker g0 2 1;
  Alcotest.(check int) "duplicate blocker is silent" 2 !fired;
  add_blocker g0 1 3;
  Alcotest.(check int) "peer add_blocker still silent" 2 !fired

(* --- servers=1 identity ---------------------------------------------------- *)

let fig3_cell ~servers ~partition =
  let spec = Option.get (Experiments.find "fig3") in
  let cfg =
    { (Experiments.cfg_of spec) with Config.servers; partition }
  in
  let params = Experiments.params_of spec ~write_prob:0.1 in
  Job.run
    (Job.make ~sweep:"shard-test" ~label:"cell" ~cfg ~algo:Algo.PS_AA ~params
       ~warmup:4.0 ~measure:12.0 ())

(* At one server every page maps to partition 0 under either policy, so
   the placement knob must be invisible — same event schedule, same
   result record. *)
let test_servers1_hash_eq_range () =
  let hash = fig3_cell ~servers:1 ~partition:Config.Hash in
  let range = fig3_cell ~servers:1 ~partition:Config.Range in
  Alcotest.(check bool) "servers=1: hash == range, field for field" true
    (hash = range)

(* --- Parallel-harness identity at servers>1 ------------------------------- *)

let test_sharded_jobs_identity () =
  let spec =
    let s = Option.get (Experiments.find "fig3") in
    { s with Experiments.write_probs = [ 0.1 ] }
  in
  let seq =
    Harness.Sweep.run_spec ~time_scale:0.1 ~servers:3 ~jobs:1 spec
  in
  let par =
    Harness.Sweep.run_spec ~time_scale:0.1 ~servers:3 ~jobs:4 spec
  in
  Alcotest.(check bool)
    "servers=3: --jobs 1 and --jobs 4 give identical results" true
    (seq.Experiments.points = par.Experiments.points)

(* --- Sharded conformance --------------------------------------------------- *)

(* The full correctness net over a partitioned server: serializability
   oracle on, audit re-checked after every injected fault, crash/loss/
   dup/stall storms raging.  Any invariant breach or non-serializable
   history raises and fails the test. *)
let storm_run ~algo ~servers ~partition ~seed ~rate =
  let spec = Option.get (Experiments.find "fig3") in
  let cfg =
    {
      (Experiments.cfg_of spec) with
      Config.servers;
      partition;
      oracle = true;
      faults = Faults.storm ~rate;
    }
  in
  let params = Experiments.params_of spec ~write_prob:0.2 in
  Runner.run ~seed ~max_events:3_000_000 ~warmup:5.0 ~measure:30.0 ~cfg ~algo
    ~params ()

let conformance algo () =
  let forwards = ref 0 and exchanges = ref 0 and injected = ref 0 in
  List.iter
    (fun (servers, partition, seed, rate) ->
      let r = storm_run ~algo ~servers ~partition ~seed ~rate in
      forwards := !forwards + r.Runner.cb_forwards;
      exchanges := !exchanges + r.Runner.edge_exchanges;
      injected := !injected + r.Runner.faults_injected;
      Alcotest.(check bool)
        (Printf.sprintf "commits at servers=%d rate=%.2f (seed %d)" servers
           rate seed)
        true
        (r.Runner.commits > 0);
      Alcotest.(check int)
        (Printf.sprintf "result reports %d servers" servers)
        servers r.Runner.n_servers)
    [
      (2, Config.Hash, 11, 0.0);
      (2, Config.Hash, 12, 0.02);
      (3, Config.Range, 13, 0.02);
      (4, Config.Hash, 14, 0.05);
    ];
  (* The sweep must actually exercise the cross-server paths, or the
     oracle and audit prove nothing about them. *)
  Alcotest.(check bool) "callbacks crossed partitions" true (!forwards > 0);
  Alcotest.(check bool) "edge exchanges reached the coordinator" true
    (!exchanges > 0);
  Alcotest.(check bool) "storms injected faults" true (!injected > 0)

(* End-to-end: a contended sharded run detects and breaks deadlocks
   while the audit holds every graph acyclic between events — detection
   over the union is keeping pace with cross-partition waits. *)
let test_sharded_deadlocks_broken () =
  let spec = Option.get (Experiments.find "fig8") in
  (* HICON: 90% of accesses hit one shared hot page *)
  let cfg =
    { (Experiments.cfg_of spec) with Config.servers = 2; oracle = true }
  in
  let params = Experiments.params_of spec ~write_prob:0.5 in
  let r =
    Runner.run ~seed:9 ~max_events:3_000_000 ~warmup:5.0 ~measure:40.0 ~cfg
      ~algo:Algo.PS_OO ~params ()
  in
  Alcotest.(check bool) "run makes progress" true (r.Runner.commits > 0);
  Alcotest.(check bool) "deadlocks detected and broken" true
    (r.Runner.deadlocks > 0)

let suite =
  [
    Alcotest.test_case "cross-server cycle found only by the union" `Quick
      test_cross_server_cycle;
    Alcotest.test_case "single-server cycle unchanged by linking" `Quick
      test_single_server_cycle_unchanged;
    Alcotest.test_case "cancel/clear resolve across partitions" `Quick
      test_cancel_and_clear_across_partitions;
    Alcotest.test_case "edge-exchange hook per novel edge" `Quick
      test_edge_exchange_hook;
    Alcotest.test_case "servers=1: hash == range" `Slow
      test_servers1_hash_eq_range;
    Alcotest.test_case "servers=3: jobs=1 == jobs=4" `Slow
      test_sharded_jobs_identity;
    Alcotest.test_case "sharded conformance: PS-AA under storms" `Slow
      (conformance Algo.PS_AA);
    Alcotest.test_case "sharded conformance: PS-OO under storms" `Slow
      (conformance Algo.PS_OO);
    Alcotest.test_case "sharded conformance: OS under storms" `Slow
      (conformance Algo.OS);
    Alcotest.test_case "sharded run breaks deadlocks" `Slow
      test_sharded_deadlocks_broken;
  ]

open Simcore

let feps = 1e-9

let check_float msg expected actual =
  Alcotest.(check (float feps)) msg expected actual

let test_welford_basic () =
  let w = Stats.Welford.create () in
  List.iter (Stats.Welford.add w) [ 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 ];
  Alcotest.(check int) "count" 8 (Stats.Welford.count w);
  check_float "mean" 5.0 (Stats.Welford.mean w);
  Alcotest.(check (float 1e-6)) "variance" (32.0 /. 7.0) (Stats.Welford.variance w);
  check_float "min" 2.0 (Stats.Welford.min w);
  check_float "max" 9.0 (Stats.Welford.max w);
  check_float "sum" 40.0 (Stats.Welford.sum w)

let test_welford_empty () =
  let w = Stats.Welford.create () in
  check_float "mean empty" 0.0 (Stats.Welford.mean w);
  check_float "variance empty" 0.0 (Stats.Welford.variance w);
  Alcotest.(check bool) "min inf" true (Stats.Welford.min w = infinity)

let test_welford_single () =
  let w = Stats.Welford.create () in
  Stats.Welford.add w 3.5;
  check_float "mean" 3.5 (Stats.Welford.mean w);
  check_float "variance single" 0.0 (Stats.Welford.variance w)

let test_welford_reset () =
  let w = Stats.Welford.create () in
  Stats.Welford.add w 10.0;
  Stats.Welford.reset w;
  Alcotest.(check int) "count after reset" 0 (Stats.Welford.count w);
  Stats.Welford.add w 2.0;
  check_float "mean after reset" 2.0 (Stats.Welford.mean w)

let test_counter () =
  let c = Stats.Counter.create () in
  Stats.Counter.incr c;
  Stats.Counter.add c 4;
  Alcotest.(check int) "value" 5 (Stats.Counter.value c);
  Stats.Counter.reset c;
  Alcotest.(check int) "reset" 0 (Stats.Counter.value c)

let test_time_weighted () =
  let tw = Stats.Time_weighted.create ~now:0.0 in
  Stats.Time_weighted.update tw ~now:0.0 1.0;
  Stats.Time_weighted.update tw ~now:4.0 0.0;
  (* busy 4s of 8s *)
  check_float "utilization 0.5" 0.5 (Stats.Time_weighted.average tw ~now:8.0)

let test_time_weighted_levels () =
  let tw = Stats.Time_weighted.create ~now:0.0 in
  Stats.Time_weighted.update tw ~now:0.0 2.0;
  Stats.Time_weighted.update tw ~now:5.0 4.0;
  (* 2*5 + 4*5 = 30 over 10 *)
  check_float "avg multi-level" 3.0 (Stats.Time_weighted.average tw ~now:10.0)

let test_time_weighted_reset () =
  let tw = Stats.Time_weighted.create ~now:0.0 in
  Stats.Time_weighted.update tw ~now:0.0 1.0;
  Stats.Time_weighted.reset tw ~now:10.0;
  (* signal stays 1.0 after reset *)
  check_float "after reset" 1.0 (Stats.Time_weighted.average tw ~now:12.0)

let test_t90 () =
  Alcotest.(check (float 0.001)) "df=1" 6.314 (Stats.t90 1);
  Alcotest.(check (float 0.001)) "df=10" 1.812 (Stats.t90 10);
  Alcotest.(check (float 0.001)) "df large" 1.645 (Stats.t90 500);
  Alcotest.(check bool) "df=0 infinite" true (Stats.t90 0 = infinity)

let test_batch_means () =
  let b = Stats.Batch_means.create ~batch_size:10 in
  (* 100 observations of a constant: CI must be 0-width. *)
  for _ = 1 to 100 do
    Stats.Batch_means.add b 5.0
  done;
  Alcotest.(check int) "batches" 10 (Stats.Batch_means.num_batches b);
  check_float "mean" 5.0 (Stats.Batch_means.mean b);
  check_float "ci" 0.0 (Stats.Batch_means.ci90_half_width b)

let test_batch_means_partial () =
  let b = Stats.Batch_means.create ~batch_size:10 in
  List.iter (Stats.Batch_means.add b) [ 1.0; 2.0; 3.0 ];
  Alcotest.(check int) "no complete batch" 0 (Stats.Batch_means.num_batches b);
  check_float "falls back to raw mean" 2.0 (Stats.Batch_means.mean b);
  Alcotest.(check bool) "ci undefined" true
    (Stats.Batch_means.ci90_half_width b = infinity)

let test_batch_means_ci_shrinks () =
  (* Alternating values: more batches -> tighter CI. *)
  let ci n =
    let b = Stats.Batch_means.create ~batch_size:4 in
    for i = 1 to n do
      Stats.Batch_means.add b (if i mod 2 = 0 then 1.0 else 3.0)
    done;
    Stats.Batch_means.ci90_half_width b
  in
  Alcotest.(check bool) "shrinks with data" true (ci 400 <= ci 40)

(* --- Closed-form checks ---------------------------------------------- *)

(* The sample variance of 1..n is n(n+1)/12 exactly. *)
let test_welford_closed_form () =
  List.iter
    (fun n ->
      let w = Stats.Welford.create () in
      for i = 1 to n do
        Stats.Welford.add w (float_of_int i)
      done;
      let nf = float_of_int n in
      check_float
        (Printf.sprintf "mean of 1..%d" n)
        ((nf +. 1.0) /. 2.0) (Stats.Welford.mean w);
      check_float
        (Printf.sprintf "variance of 1..%d" n)
        (nf *. (nf +. 1.0) /. 12.0)
        (Stats.Welford.variance w))
    [ 2; 5; 12; 100 ]

(* With batch_size 1 every observation is its own batch, so the CI has
   the textbook closed form t90(n-1) * s / sqrt(n) with s the sample
   standard deviation of 1..n.  The chosen n values hit the first,
   middle and last rows of the t-table and the normal tail beyond it. *)
let test_batch_means_closed_form () =
  List.iter
    (fun (n, t) ->
      let b = Stats.Batch_means.create ~batch_size:1 in
      for i = 1 to n do
        Stats.Batch_means.add b (float_of_int i)
      done;
      Alcotest.(check int) "batches" n (Stats.Batch_means.num_batches b);
      let nf = float_of_int n in
      let s = sqrt (nf *. (nf +. 1.0) /. 12.0) in
      let expect = t *. s /. sqrt nf in
      check_float
        (Printf.sprintf "ci90 closed form, n=%d" n)
        expect
        (Stats.Batch_means.ci90_half_width b);
      check_float
        (Printf.sprintf "relative ci90, n=%d" n)
        (expect /. ((nf +. 1.0) /. 2.0))
        (Stats.Batch_means.relative_ci90 b))
    [ (2, 6.314); (11, 1.812); (31, 1.697); (32, 1.645) ]

(* A two-level stream whose batches alternate between a and b: the
   batch means have sample variance m((a-b)/2)^2/(m-1) for m batches. *)
let test_batch_means_alternating () =
  let a = 3.0 and b = 7.0 in
  let batch_size = 4 and m = 10 in
  let bm = Stats.Batch_means.create ~batch_size in
  for batch = 1 to m do
    for _ = 1 to batch_size do
      Stats.Batch_means.add bm (if batch mod 2 = 0 then b else a)
    done
  done;
  Alcotest.(check int) "batches" m (Stats.Batch_means.num_batches bm);
  check_float "mean" ((a +. b) /. 2.0) (Stats.Batch_means.mean bm);
  let mf = float_of_int m in
  let var = mf *. (((a -. b) /. 2.0) ** 2.0) /. (mf -. 1.0) in
  let expect = Stats.t90 (m - 1) *. sqrt (var /. mf) in
  check_float "ci90" expect (Stats.Batch_means.ci90_half_width bm)

let prop_welford_matches_naive =
  QCheck.Test.make ~name:"welford matches naive mean/variance" ~count:200
    QCheck.(list_of_size (QCheck.Gen.int_range 2 60) (float_bound_exclusive 1000.0))
    (fun xs ->
      let w = Stats.Welford.create () in
      List.iter (Stats.Welford.add w) xs;
      let n = float_of_int (List.length xs) in
      let mean = List.fold_left ( +. ) 0.0 xs /. n in
      let var =
        List.fold_left (fun acc x -> acc +. ((x -. mean) ** 2.0)) 0.0 xs
        /. (n -. 1.0)
      in
      abs_float (Stats.Welford.mean w -. mean) < 1e-6
      && abs_float (Stats.Welford.variance w -. var) < 1e-4)

let suite =
  [
    Alcotest.test_case "welford basic" `Quick test_welford_basic;
    Alcotest.test_case "welford empty" `Quick test_welford_empty;
    Alcotest.test_case "welford single" `Quick test_welford_single;
    Alcotest.test_case "welford reset" `Quick test_welford_reset;
    Alcotest.test_case "counter" `Quick test_counter;
    Alcotest.test_case "time-weighted 0/1" `Quick test_time_weighted;
    Alcotest.test_case "time-weighted levels" `Quick test_time_weighted_levels;
    Alcotest.test_case "time-weighted reset" `Quick test_time_weighted_reset;
    Alcotest.test_case "t90 table" `Quick test_t90;
    Alcotest.test_case "batch means constant" `Quick test_batch_means;
    Alcotest.test_case "batch means partial" `Quick test_batch_means_partial;
    Alcotest.test_case "batch means CI shrinks" `Quick test_batch_means_ci_shrinks;
    Alcotest.test_case "welford closed form (1..n)" `Quick
      test_welford_closed_form;
    Alcotest.test_case "batch means CI closed form" `Quick
      test_batch_means_closed_form;
    Alcotest.test_case "batch means alternating stream" `Quick
      test_batch_means_alternating;
    QCheck_alcotest.to_alcotest prop_welford_matches_naive;
  ]

open Simcore

let test_determinism () =
  let a = Rng.create ~seed:123 and b = Rng.create ~seed:123 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.bits64 a) (Rng.bits64 b)
  done

let test_seed_sensitivity () =
  let a = Rng.create ~seed:1 and b = Rng.create ~seed:2 in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Rng.bits64 a = Rng.bits64 b then incr same
  done;
  Alcotest.(check bool) "different streams" true (!same < 4)

let test_split_independent () =
  let parent = Rng.create ~seed:9 in
  let child = Rng.split parent in
  let xs = List.init 32 (fun _ -> Rng.bits64 parent) in
  let ys = List.init 32 (fun _ -> Rng.bits64 child) in
  Alcotest.(check bool) "streams differ" true (xs <> ys)

let test_copy () =
  let a = Rng.create ~seed:5 in
  ignore (Rng.bits64 a);
  let b = Rng.copy a in
  Alcotest.(check int64) "copy replays" (Rng.bits64 a) (Rng.bits64 b)

let test_int_bounds () =
  let r = Rng.create ~seed:7 in
  for _ = 1 to 10_000 do
    let v = Rng.int r 13 in
    if v < 0 || v >= 13 then Alcotest.fail "out of range"
  done

let test_int_in_bounds () =
  let r = Rng.create ~seed:8 in
  for _ = 1 to 10_000 do
    let v = Rng.int_in r ~lo:5 ~hi:9 in
    if v < 5 || v > 9 then Alcotest.fail "out of range"
  done

let test_int_coverage () =
  let r = Rng.create ~seed:11 in
  let seen = Array.make 6 false in
  for _ = 1 to 1000 do
    seen.(Rng.int r 6) <- true
  done;
  Alcotest.(check bool) "all values hit" true (Array.for_all Fun.id seen)

let test_float_bounds () =
  let r = Rng.create ~seed:12 in
  for _ = 1 to 10_000 do
    let v = Rng.float r 2.5 in
    if v < 0.0 || v >= 2.5 then Alcotest.fail "out of range"
  done

let test_uniform_mean () =
  let r = Rng.create ~seed:13 in
  let n = 50_000 in
  let sum = ref 0.0 in
  for _ = 1 to n do
    sum := !sum +. Rng.uniform r ~lo:10.0 ~hi:30.0
  done;
  let mean = !sum /. float_of_int n in
  Alcotest.(check bool) "mean near 20" true (abs_float (mean -. 20.0) < 0.3)

let test_exponential_mean () =
  let r = Rng.create ~seed:14 in
  let n = 50_000 in
  let sum = ref 0.0 in
  for _ = 1 to n do
    sum := !sum +. Rng.exponential r ~mean:4.0
  done;
  let mean = !sum /. float_of_int n in
  Alcotest.(check bool) "mean near 4" true (abs_float (mean -. 4.0) < 0.2)

let test_bool_prob () =
  let r = Rng.create ~seed:15 in
  let n = 50_000 in
  let hits = ref 0 in
  for _ = 1 to n do
    if Rng.bool r ~p:0.3 then incr hits
  done;
  let frac = float_of_int !hits /. float_of_int n in
  Alcotest.(check bool) "p near 0.3" true (abs_float (frac -. 0.3) < 0.02)

let test_bool_extremes () =
  let r = Rng.create ~seed:16 in
  for _ = 1 to 100 do
    if Rng.bool r ~p:0.0 then Alcotest.fail "p=0 returned true"
  done;
  for _ = 1 to 100 do
    if not (Rng.bool r ~p:1.0) then Alcotest.fail "p=1 returned false"
  done

let test_shuffle_permutation () =
  let r = Rng.create ~seed:17 in
  let arr = Array.init 50 Fun.id in
  Rng.shuffle r arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "permutation" (Array.init 50 Fun.id) sorted

let test_sample_without_replacement () =
  let r = Rng.create ~seed:18 in
  (* Both the dense (2k >= n) and sparse paths. *)
  List.iter
    (fun (k, n) ->
      let s = Rng.sample_without_replacement r ~k ~n in
      Alcotest.(check int) "count" k (Array.length s);
      let uniq = List.sort_uniq compare (Array.to_list s) in
      Alcotest.(check int) "distinct" k (List.length uniq);
      Array.iter (fun v -> if v < 0 || v >= n then Alcotest.fail "range") s)
    [ (5, 8); (8, 8); (3, 1000); (0, 10) ]

let test_invalid_args () =
  let r = Rng.create ~seed:19 in
  Alcotest.check_raises "int 0" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Rng.int r 0));
  Alcotest.check_raises "empty range" (Invalid_argument "Rng.int_in: empty range")
    (fun () -> ignore (Rng.int_in r ~lo:3 ~hi:2));
  Alcotest.check_raises "k > n"
    (Invalid_argument "Rng.sample_without_replacement: k > n") (fun () ->
      ignore (Rng.sample_without_replacement r ~k:4 ~n:3))

let prop_sample_distinct =
  QCheck.Test.make ~name:"sample_without_replacement distinct in range"
    ~count:200
    QCheck.(pair (int_range 0 40) (int_range 1 60))
    (fun (k, n) ->
      QCheck.assume (k <= n);
      let r = Rng.create ~seed:(k + (n * 100)) in
      let s = Rng.sample_without_replacement r ~k ~n in
      Array.length s = k
      && List.length (List.sort_uniq compare (Array.to_list s)) = k
      && Array.for_all (fun v -> v >= 0 && v < n) s)

let suite =
  [
    Alcotest.test_case "determinism" `Quick test_determinism;
    Alcotest.test_case "seed sensitivity" `Quick test_seed_sensitivity;
    Alcotest.test_case "split independence" `Quick test_split_independent;
    Alcotest.test_case "copy" `Quick test_copy;
    Alcotest.test_case "int bounds" `Quick test_int_bounds;
    Alcotest.test_case "int_in bounds" `Quick test_int_in_bounds;
    Alcotest.test_case "int coverage" `Quick test_int_coverage;
    Alcotest.test_case "float bounds" `Quick test_float_bounds;
    Alcotest.test_case "uniform mean" `Quick test_uniform_mean;
    Alcotest.test_case "exponential mean" `Quick test_exponential_mean;
    Alcotest.test_case "bool probability" `Quick test_bool_prob;
    Alcotest.test_case "bool extremes" `Quick test_bool_extremes;
    Alcotest.test_case "shuffle is a permutation" `Quick test_shuffle_permutation;
    Alcotest.test_case "sample without replacement" `Quick
      test_sample_without_replacement;
    Alcotest.test_case "invalid arguments" `Quick test_invalid_args;
    QCheck_alcotest.to_alcotest prop_sample_distinct;
  ]

(* Serializability oracle and cross-protocol conformance harness.

   Four layers:
   - checker unit tests over hand-built histories: accepts serial
     executions, rejects write-skew cycles (with a witness naming the
     transactions and objects), dirty reads, unrecoverable reads, and
     commit-order contradictions;
   - a deterministic injected-bug scenario: three explicit transactions
     under PS-OO with the callback-drop sabotage knob, producing a
     stale read the oracle must flag as a cycle;
   - a sabotaged full run (every protocol path live) that must raise
     [Runner.Oracle_failed], proving the end-to-end wiring fails loudly;
   - the conformance sweep: every real protocol, oracle attached, under
     fault storms across a seed matrix — all histories serializable. *)

open Oodb_core
open Storage

let oid ~page ~slot = Ids.Oid.make ~page ~slot
let x = oid ~page:3 ~slot:0
let y = oid ~page:7 ~slot:0

let expect_violation what f =
  match f () with
  | () -> Alcotest.fail (what ^ ": checker accepted the history")
  | exception Oracle.Checker.Violation msg -> msg

let contains msg sub =
  let n = String.length msg and k = String.length sub in
  let rec go i = i + k <= n && (String.sub msg i k = sub || go (i + 1)) in
  go 0

let check_witness ~what msg subs =
  List.iter
    (fun sub ->
      Alcotest.(check bool)
        (Printf.sprintf "%s: witness %S mentions %S" what msg sub)
        true (contains msg sub))
    subs

(* --- Checker unit tests ------------------------------------------------ *)

let test_serial_accepted () =
  let h = Oracle.History.create ~clients:2 in
  (* txn 1 reads x, writes y; txn 2 then reads y (seeing v1), writes x:
     perfectly serial in commit order. *)
  Oracle.History.begin_txn h ~tid:1 ~client:0;
  Oracle.History.read h ~tid:1 ~oid:x;
  Oracle.History.write h ~tid:1 ~oid:y;
  Oracle.History.commit h ~tid:1;
  Oracle.History.begin_txn h ~tid:2 ~client:1;
  Oracle.History.read h ~tid:2 ~oid:y;
  Oracle.History.write h ~tid:2 ~oid:x;
  Oracle.History.commit h ~tid:2;
  Oracle.Checker.check h;
  Alcotest.(check int) "two commits" 2 (Oracle.History.committed_count h);
  Alcotest.(check int) "four ops" 4 (Oracle.History.op_count h)

let test_write_skew_cycle () =
  let h = Oracle.History.create ~clients:2 in
  (* Classic write skew: both read the initial versions, then each
     overwrites what the other read. *)
  Oracle.History.begin_txn h ~tid:1 ~client:0;
  Oracle.History.read h ~tid:1 ~oid:x;
  Oracle.History.write h ~tid:1 ~oid:y;
  Oracle.History.begin_txn h ~tid:2 ~client:1;
  Oracle.History.read h ~tid:2 ~oid:y;
  Oracle.History.write h ~tid:2 ~oid:x;
  Oracle.History.commit h ~tid:1;
  Oracle.History.commit h ~tid:2;
  let msg = expect_violation "write skew" (fun () -> Oracle.Checker.check h) in
  check_witness ~what:"write skew" msg
    [ "serializability cycle"; "txn 1"; "txn 2"; "rw"; "3.0"; "7.0" ]

let test_dirty_read_pending () =
  let h = Oracle.History.create ~clients:2 in
  Oracle.History.begin_txn h ~tid:1 ~client:0;
  Oracle.History.write h ~tid:1 ~oid:x;
  Oracle.History.ship h ~tid:1 ~oid:x;
  (* client 1 fetches the page while txn 1's update sits uncommitted at
     the server, reads it, and commits; txn 1 never finishes. *)
  Oracle.History.begin_txn h ~tid:2 ~client:1;
  Oracle.History.install_copy h ~client:1 ~oid:x;
  Oracle.History.read h ~tid:2 ~oid:x;
  Oracle.History.commit h ~tid:2;
  let msg = expect_violation "dirty read" (fun () -> Oracle.Checker.check h) in
  check_witness ~what:"dirty read" msg
    [ "dirty read"; "txn 2"; "txn 1"; "never committed" ]

let test_unrecoverable_read () =
  let h = Oracle.History.create ~clients:2 in
  Oracle.History.begin_txn h ~tid:1 ~client:0;
  Oracle.History.write h ~tid:1 ~oid:x;
  Oracle.History.ship h ~tid:1 ~oid:x;
  Oracle.History.begin_txn h ~tid:2 ~client:1;
  Oracle.History.install_copy h ~client:1 ~oid:x;
  Oracle.History.read h ~tid:2 ~oid:x;
  Oracle.History.abort h ~tid:1;
  Oracle.History.commit h ~tid:2;
  let msg =
    expect_violation "unrecoverable" (fun () -> Oracle.Checker.check h)
  in
  check_witness ~what:"unrecoverable" msg
    [ "recoverability"; "txn 2"; "aborted txn 1" ]

let test_abort_rolls_back_server () =
  let h = Oracle.History.create ~clients:2 in
  (* Same shape, but the reader fetches after the abort: the server
     shadow must have rolled back to the initial version, so the read
     is clean. *)
  Oracle.History.begin_txn h ~tid:1 ~client:0;
  Oracle.History.write h ~tid:1 ~oid:x;
  Oracle.History.ship h ~tid:1 ~oid:x;
  Oracle.History.abort h ~tid:1;
  Oracle.History.begin_txn h ~tid:2 ~client:1;
  Oracle.History.install_copy h ~client:1 ~oid:x;
  Oracle.History.read h ~tid:2 ~oid:x;
  Oracle.History.commit h ~tid:2;
  Oracle.Checker.check h

let test_commit_order_violation () =
  let h = Oracle.History.create ~clients:2 in
  (* txn 1 reads the initial x, txn 2 overwrites x and commits FIRST,
     then txn 1 commits: acyclic (equivalent serial order 1 < 2) but
     under strict two-phase locking txn 2 could never have taken the
     write lock while txn 1's read lock was live — a lost-lock bug. *)
  Oracle.History.begin_txn h ~tid:1 ~client:0;
  Oracle.History.read h ~tid:1 ~oid:x;
  Oracle.History.begin_txn h ~tid:2 ~client:1;
  Oracle.History.write h ~tid:2 ~oid:x;
  Oracle.History.commit h ~tid:2;
  Oracle.History.commit h ~tid:1;
  let msg =
    expect_violation "commit order" (fun () -> Oracle.Checker.check h)
  in
  check_witness ~what:"commit order" msg
    [ "contradicts commit order"; "txn 1"; "txn 2"; "rw" ]

let test_read_before_writer_committed () =
  let h = Oracle.History.create ~clients:2 in
  (* txn 2 observes txn 1's version before txn 1's commit point, and
     both commit (writer first): the graph is clean but the read was
     still dirty when it happened — cascade-freedom violation. *)
  Oracle.History.begin_txn h ~tid:1 ~client:0;
  Oracle.History.write h ~tid:1 ~oid:x;
  Oracle.History.ship h ~tid:1 ~oid:x;
  Oracle.History.begin_txn h ~tid:2 ~client:1;
  Oracle.History.install_copy h ~client:1 ~oid:x;
  Oracle.History.read h ~tid:2 ~oid:x;
  Oracle.History.commit h ~tid:1;
  Oracle.History.commit h ~tid:2;
  let msg = expect_violation "ACA" (fun () -> Oracle.Checker.check h) in
  check_witness ~what:"ACA" msg
    [ "dirty read"; "txn 2"; "before its writer txn 1 committed" ]

let test_read_own_write_ignored () =
  let h = Oracle.History.create ~clients:1 in
  Oracle.History.begin_txn h ~tid:1 ~client:0;
  Oracle.History.write h ~tid:1 ~oid:x;
  Oracle.History.read h ~tid:1 ~oid:x;
  (* no dependency *)
  Oracle.History.commit h ~tid:1;
  Oracle.Checker.check h;
  Alcotest.(check int) "own-write read not recorded" 1
    (Oracle.History.op_count h)

let test_dump_renders () =
  let h = Oracle.History.create ~clients:2 in
  Oracle.History.begin_txn h ~tid:1 ~client:0;
  Oracle.History.read h ~tid:1 ~oid:x;
  Oracle.History.write h ~tid:1 ~oid:y;
  Oracle.History.commit h ~tid:1;
  let dump = Oracle.History.dump h in
  check_witness ~what:"dump" dump
    [ "history: 1 txns, 1 committed, 2 ops"; "txn 1 (client 0) committed #1";
      "r 3.0 = v0"; "w 7.0 -> v1" ]

(* --- Deterministic injected-bug scenario ------------------------------- *)

let mk_sys ~algo ~cfg ~seed =
  let params =
    Workload.Presets.make Workload.Presets.Hotcold
      ~db_pages:cfg.Config.db_pages
      ~objects_per_page:cfg.Config.objects_per_page
      ~num_clients:cfg.Config.num_clients ~locality:Workload.Presets.Low
      ~write_prob:0.2
  in
  Model.create ~cfg ~algo ~params ~seed

let run_txn sys ~client ops =
  let done_ = ref false in
  Client.run_one sys ~client
    (Array.of_list
       (List.map
          (fun (oid, write) -> { Workload.Refstring.oid; write })
          ops))
    (fun () -> done_ := true);
  Simcore.Engine.run sys.Model.engine;
  Alcotest.(check bool) "transaction ran to completion" true !done_

(* A dropped Mark_obj callback leaves client 0 a stale-but-available
   copy of x.  Its next transaction reads stale x and overwrites y that
   the stale writer's transaction read: an rw/rw cycle between two
   COMMITTED transactions — invisible to the state audit (the stale
   copy is still consistently registered), caught only by the oracle. *)
let test_dropped_callback_cycle () =
  let cfg =
    { Config.default with Config.num_clients = 2; oracle = true;
      cb_drop_every = 1 }
  in
  let sys = mk_sys ~algo:Algo.PS_OO ~cfg ~seed:1 in
  run_txn sys ~client:0 [ (x, false) ];        (* txn 1: cache x *)
  run_txn sys ~client:1 [ (y, false); (x, true) ];  (* txn 2 *)
  run_txn sys ~client:0 [ (x, false); (y, true) ];  (* txn 3: stale x *)
  (* The cache/copy-table audit accepts the sabotaged state... *)
  Audit.check ~context:"sabotage" sys;
  let h = Option.get sys.Model.oracle in
  Alcotest.(check int) "three commits" 3 (Oracle.History.committed_count h);
  (* ...but the oracle does not. *)
  let msg =
    expect_violation "dropped callback" (fun () -> Oracle.Checker.check h)
  in
  check_witness ~what:"dropped callback" msg
    [ "serializability cycle"; "txn 2"; "txn 3"; "3.0" ];
  check_witness ~what:"dropped callback dump" (Oracle.History.dump h)
    [ "txn 3 (client 0)"; "r 3.0 = v0" ]

(* The same three transactions with callbacks delivered are clean. *)
let test_delivered_callback_clean () =
  let cfg = { Config.default with Config.num_clients = 2; oracle = true } in
  let sys = mk_sys ~algo:Algo.PS_OO ~cfg ~seed:1 in
  run_txn sys ~client:0 [ (x, false) ];
  run_txn sys ~client:1 [ (y, false); (x, true) ];
  run_txn sys ~client:0 [ (x, false); (y, true) ];
  let h = Option.get sys.Model.oracle in
  Oracle.Checker.check h;
  Alcotest.(check int) "three commits" 3 (Oracle.History.committed_count h)

(* --- End-to-end: a sabotaged full run fails loudly --------------------- *)

let sabotage_run ~algo () =
  let spec = Option.get (Experiments.find "fig3") in
  let cfg =
    { (Experiments.cfg_of spec) with Config.oracle = true; cb_drop_every = 1 }
  in
  let params = Experiments.params_of spec ~write_prob:0.2 in
  match
    Runner.run ~seed:1 ~max_events:3_000_000 ~warmup:2.0 ~measure:20.0 ~cfg
      ~algo ~params ()
  with
  | (_ : Runner.result) ->
    Alcotest.fail
      (Printf.sprintf "%s run with dropped callbacks passed the oracle"
         (Algo.to_string algo))
  | exception Runner.Oracle_failed (msg, dump) ->
    check_witness ~what:"sabotaged run" msg
      [ "serializability oracle"; "txn"; Algo.to_string algo; "seed 1" ];
    check_witness ~what:"sabotaged dump" dump [ "history:"; "committed #" ]

(* --- Conformance sweep: all protocols, faults on, oracle on ------------ *)

let conformance_run ~algo ~seed ~rate =
  let spec = Option.get (Experiments.find "fig3") in
  let cfg =
    { Config.default with Config.faults = Faults.storm ~rate; oracle = true }
  in
  let params = Experiments.params_of spec ~write_prob:0.2 in
  Runner.run ~seed ~max_events:3_000_000 ~warmup:5.0 ~measure:30.0 ~cfg ~algo
    ~params ()

let conformance ~algo () =
  List.iter
    (fun (seed, rate) ->
      let r = conformance_run ~algo ~seed ~rate in
      Alcotest.(check bool)
        (Printf.sprintf "commits under storm %.2f (seed %d)" rate seed)
        true
        (r.Runner.commits > 0);
      Alcotest.(check bool) "oracle recorded operations" true
        (r.Runner.oracle_ops > 0);
      Alcotest.(check bool) "oracle checked commits" true
        (r.Runner.oracle_commits > 0))
    [ (1, 0.0); (2, 0.02); (3, 0.05) ]

(* --- Job plumbing ------------------------------------------------------ *)

let test_with_oracle_keeps_seed () =
  let spec = Option.get (Experiments.find "fig3") in
  let j = List.hd (Experiments.jobs_of_spec spec) in
  let j' = Job.with_oracle j in
  Alcotest.(check bool) "oracle set" true j'.Job.cfg.Config.oracle;
  Alcotest.(check int) "seed unchanged" (Job.seed j) (Job.seed j');
  Alcotest.(check string) "description unchanged" (Job.describe j)
    (Job.describe j')

let suite =
  [
    Alcotest.test_case "serial history accepted" `Quick test_serial_accepted;
    Alcotest.test_case "write-skew cycle detected with witness" `Quick
      test_write_skew_cycle;
    Alcotest.test_case "dirty read of a pending writer" `Quick
      test_dirty_read_pending;
    Alcotest.test_case "committed read of an aborted writer" `Quick
      test_unrecoverable_read;
    Alcotest.test_case "abort rolls the server shadow back" `Quick
      test_abort_rolls_back_server;
    Alcotest.test_case "serial-but-wrong commit order rejected" `Quick
      test_commit_order_violation;
    Alcotest.test_case "read before writer's commit rejected" `Quick
      test_read_before_writer_committed;
    Alcotest.test_case "reads of own writes carry no edge" `Quick
      test_read_own_write_ignored;
    Alcotest.test_case "dump renders the history" `Quick test_dump_renders;
    Alcotest.test_case "dropped callback -> cycle (deterministic)" `Quick
      test_dropped_callback_cycle;
    Alcotest.test_case "same scenario, callbacks delivered -> clean" `Quick
      test_delivered_callback_clean;
    Alcotest.test_case "with_oracle keeps the seed" `Quick
      test_with_oracle_keeps_seed;
  ]
  @ List.map
      (fun algo ->
        Alcotest.test_case
          (Printf.sprintf "sabotaged run fails loudly (%s)"
             (Algo.to_string algo))
          `Slow
          (sabotage_run ~algo))
      [ Algo.PS; Algo.PS_OO ]
  @ List.map
      (fun algo ->
        Alcotest.test_case
          (Printf.sprintf "conformance under faults (%s)" (Algo.to_string algo))
          `Slow (conformance ~algo))
      Algo.all

(* Tests of the Section 6 extension models: redo-at-server commit
   processing, the write-token alternative to merging, grouped-object
   transfer for OS, and the size-change/overflow model. *)

open Oodb_core
open Storage

let oid page slot = Ids.Oid.make ~page ~slot
let op ?(write = false) o = { Workload.Refstring.oid = o; write }
let read_op p s = op (oid p s)
let write_op p s = op ~write:true (oid p s)

let mk_sys ?(clients = 2) ?(cfg = Config.default) algo =
  let cfg = { cfg with Config.num_clients = clients } in
  let params =
    Workload.Presets.make Workload.Presets.Uniform ~db_pages:cfg.Config.db_pages
      ~objects_per_page:cfg.Config.objects_per_page ~num_clients:clients
      ~locality:Workload.Presets.Low ~write_prob:0.0
  in
  Model.create ~cfg ~algo ~params ~seed:11

let run_staggered sys txns =
  let remaining = ref (List.length txns) in
  List.iter
    (fun (delay, client, ops) ->
      Simcore.Engine.schedule_after sys.Model.engine delay (fun () ->
          Client.run_one sys ~client (Array.of_list ops) (fun () ->
              decr remaining)))
    txns;
  Simcore.Engine.run_until sys.Model.engine 60.0;
  Alcotest.(check int) "all transactions committed" 0 !remaining

(* --- Redo-at-server -------------------------------------------------------- *)

let test_redo_commits_without_page_shipping () =
  let cfg = { Config.default with Config.commit_mode = Config.Redo_at_server } in
  let sys = mk_sys ~cfg Algo.PS_AA in
  run_staggered sys
    [ (0.0, 0, [ read_op 5 0; write_op 5 0; read_op 5 1; write_op 5 1 ]) ];
  (* One commit-data message (the log), much smaller than a page. *)
  Alcotest.(check int) "one log message" 1
    (Metrics.messages_of sys.Model.metrics Metrics.M_commit_data);
  Alcotest.(check bool) "log smaller than a page payload" true
    (Metrics.bytes sys.Model.metrics
    < 10 * Config.page_msg_bytes Config.default)

let test_redo_cheaper_bytes_than_ship () =
  let run mode =
    let cfg = { Config.default with Config.commit_mode = mode } in
    let sys = mk_sys ~cfg Algo.PS in
    run_staggered sys
      [ (0.0, 0, [ read_op 5 0; write_op 5 0; read_op 6 0; write_op 6 0 ]) ];
    Metrics.bytes sys.Model.metrics
  in
  Alcotest.(check bool) "redo ships fewer bytes" true
    (run Config.Redo_at_server < run Config.Ship_pages)

let test_redo_no_merges () =
  let cfg = { Config.default with Config.commit_mode = Config.Redo_at_server } in
  let sys = mk_sys ~cfg Algo.PS_OO in
  let browse c = List.init 20 (fun i -> read_op (100 + (60 * c) + i) 0) in
  run_staggered sys
    [
      (0.0, 0, read_op 5 0 :: write_op 5 0 :: browse 0);
      (0.01, 1, read_op 5 9 :: write_op 5 9 :: browse 1);
    ];
  Alcotest.(check int) "no page merges under redo" 0
    (Metrics.merges sys.Model.metrics)

(* --- Write token ------------------------------------------------------------ *)

let test_token_serializes_page_updaters () =
  let cfg = { Config.default with Config.update_mode = Config.Write_token } in
  let sys = mk_sys ~cfg Algo.PS_OO in
  let browse c = List.init 20 (fun i -> read_op (100 + (60 * c) + i) 0) in
  run_staggered sys
    [
      (0.0, 0, read_op 5 0 :: write_op 5 0 :: browse 0);
      (0.01, 1, read_op 5 9 :: write_op 5 9 :: browse 1);
    ];
  Alcotest.(check int) "no merges under write token" 0
    (Metrics.merges sys.Model.metrics);
  Alcotest.(check bool) "second writer waited for the token" true
    (Metrics.token_waits sys.Model.metrics >= 1)

let test_token_bounce_between_transactions () =
  let cfg = { Config.default with Config.update_mode = Config.Write_token } in
  let sys = mk_sys ~cfg Algo.PS_OO in
  (* Sequential transactions at different clients updating the same
     page: the token transfer is conflict-free but bounces the page. *)
  run_staggered sys
    [
      (0.0, 0, [ read_op 5 0; write_op 5 0 ]);
      (10.0, 1, [ read_op 5 9; write_op 5 9 ]);
    ];
  Alcotest.(check bool) "token bounced" true
    (Metrics.token_bounces sys.Model.metrics >= 1);
  Alcotest.(check int) "no waiting (owner idle)" 0
    (Metrics.token_waits sys.Model.metrics)

let test_token_full_run_invariants () =
  (* A contended full run under the token discipline must stay live and
     keep the kernel invariants (they are asserted inside the kernel). *)
  let cfg = { Config.default with Config.update_mode = Config.Write_token } in
  let params =
    Workload.Presets.make Workload.Presets.Hotcold ~db_pages:cfg.Config.db_pages
      ~objects_per_page:cfg.Config.objects_per_page
      ~num_clients:cfg.Config.num_clients ~locality:Workload.Presets.Low
      ~write_prob:0.2
  in
  let r = Runner.run ~warmup:5.0 ~measure:20.0 ~cfg ~algo:Algo.PS_OO ~params () in
  Alcotest.(check bool) "commits under token mode" true (r.Runner.commits > 30);
  Alcotest.(check int) "never merges" 0 r.Runner.merges

(* --- Grouped-object server --------------------------------------------------- *)

let test_group_fetch_caches_neighbours () =
  let cfg = { Config.default with Config.os_group_size = 20 } in
  let sys = mk_sys ~cfg Algo.OS in
  run_staggered sys [ (0.0, 0, [ read_op 5 3 ]) ];
  (* The whole page-worth of objects arrived with one fetch. *)
  let ocache0 = sys.Model.clients.Model.ocache.(0) in
  let cached =
    List.length
      (List.filter (fun s -> Lru.mem ocache0 (oid 5 s)) (List.init 20 Fun.id))
  in
  Alcotest.(check int) "group members cached" 20 cached;
  Alcotest.(check int) "one read request" 1
    (Metrics.messages_of sys.Model.metrics Metrics.M_read_req)

let test_group_fetch_skips_locked () =
  let cfg = { Config.default with Config.os_group_size = 20 } in
  let sys = mk_sys ~cfg Algo.OS in
  let browse = List.init 30 (fun i -> read_op (100 + i) 0) in
  run_staggered sys
    [
      (0.0, 1, read_op 5 0 :: write_op 5 0 :: browse);
      (* holds X(5.0) *)
      (0.05, 0, [ read_op 5 3 ]);
    ];
  (* Client 0's group fetch of page 5 must not have received the
     write-locked object 5.0 (it was not purged at client 1 either). *)
  Alcotest.(check bool) "group fetch ran" true
    (Lru.mem sys.Model.clients.Model.ocache.(0) (oid 5 3))

let test_group_reduces_messages () =
  let run g =
    let cfg = { Config.default with Config.os_group_size = g } in
    let params =
      Workload.Presets.make Workload.Presets.Hotcold
        ~db_pages:cfg.Config.db_pages
        ~objects_per_page:cfg.Config.objects_per_page
        ~num_clients:cfg.Config.num_clients ~locality:Workload.Presets.High
        ~write_prob:0.0
    in
    let r = Runner.run ~warmup:5.0 ~measure:20.0 ~cfg ~algo:Algo.OS ~params () in
    r.Runner.msgs_per_commit
  in
  Alcotest.(check bool) "grouping saves messages" true (run 20 < run 1 /. 2.0)

(* --- Overflow model ----------------------------------------------------------- *)

let test_overflow_counts () =
  let cfg =
    { Config.default with Config.size_change_prob = 1.0; overflow_prob = 1.0 }
  in
  let sys = mk_sys ~cfg Algo.PS in
  run_staggered sys
    [ (0.0, 0, [ read_op 5 0; write_op 5 0; read_op 5 1; write_op 5 1 ]) ];
  (* Every installed update overflowed. *)
  Alcotest.(check int) "two overflows" 2 (Metrics.overflows sys.Model.metrics)

let test_no_overflow_by_default () =
  let sys = mk_sys Algo.PS in
  run_staggered sys [ (0.0, 0, [ read_op 5 0; write_op 5 0 ]) ];
  Alcotest.(check int) "no overflows" 0 (Metrics.overflows sys.Model.metrics)

let test_config_validation () =
  List.iter
    (fun cfg ->
      Alcotest.(check bool) "rejected" true
        (try
           Config.validate cfg;
           false
         with Invalid_argument _ -> true))
    [
      { Config.default with Config.os_group_size = 0 };
      { Config.default with Config.os_group_size = 21 };
      { Config.default with Config.size_change_prob = 1.5 };
      { Config.default with Config.overflow_prob = -0.1 };
    ]

let suite =
  [
    Alcotest.test_case "redo: commits without page shipping" `Quick
      test_redo_commits_without_page_shipping;
    Alcotest.test_case "redo: fewer bytes than ship-pages" `Quick
      test_redo_cheaper_bytes_than_ship;
    Alcotest.test_case "redo: no merges" `Quick test_redo_no_merges;
    Alcotest.test_case "token: serializes page updaters" `Quick
      test_token_serializes_page_updaters;
    Alcotest.test_case "token: bounces between transactions" `Quick
      test_token_bounce_between_transactions;
    Alcotest.test_case "token: full run invariants" `Slow
      test_token_full_run_invariants;
    Alcotest.test_case "group: fetch caches neighbours" `Quick
      test_group_fetch_caches_neighbours;
    Alcotest.test_case "group: fetch skips locked" `Quick
      test_group_fetch_skips_locked;
    Alcotest.test_case "group: reduces messages" `Slow test_group_reduces_messages;
    Alcotest.test_case "overflow: counts" `Quick test_overflow_counts;
    Alcotest.test_case "overflow: off by default" `Quick test_no_overflow_by_default;
    Alcotest.test_case "config validation" `Quick test_config_validation;
  ]

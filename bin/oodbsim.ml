(* Command-line interface for running one simulation configuration —
   or a small sweep of them: pick a protocol, a workload, a locality
   setting and one or more write probabilities, and get the full metric
   report per point.  Multiple points run in parallel over a domain
   pool (--jobs); every point is described as a harness Job, so its
   random stream depends only on the description, not on scheduling. *)

open Cmdliner
open Oodb_core

let algo_conv =
  let parse s =
    match Algo.of_string s with
    | Some a -> Ok a
    | None ->
      Error
        (`Msg
          (Printf.sprintf "unknown algorithm %S (expected PS, OS, PS-OO, PS-OA, PS-AA)" s))
  in
  Arg.conv (parse, fun ppf a -> Algo.pp ppf a)

let workload_conv =
  let parse s =
    match Workload.Presets.name_of_string s with
    | Some w -> Ok w
    | None ->
      Error
        (`Msg
          (Printf.sprintf
             "unknown workload %S (expected HOTCOLD, UNIFORM, HICON, PRIVATE, \
              INTERLEAVED-PRIVATE)"
             s))
  in
  Arg.conv
    (parse, fun ppf w -> Format.pp_print_string ppf (Workload.Presets.name_to_string w))

let partition_conv =
  let parse = function
    | "hash" -> Ok Oodb_core.Config.Hash
    | "range" -> Ok Oodb_core.Config.Range
    | s -> Error (`Msg (Printf.sprintf "unknown partition policy %S (hash|range)" s))
  in
  Arg.conv
    ( parse,
      fun ppf p ->
        Format.pp_print_string ppf
          (match p with Oodb_core.Config.Hash -> "hash" | Oodb_core.Config.Range -> "range") )

let placement_conv =
  let parse s =
    match Workload.Placement.of_string s with
    | Some p -> Ok p
    | None ->
      Error
        (`Msg
          (Printf.sprintf "unknown placement policy %S (seq|dfs|scatter)" s))
  in
  Arg.conv
    (parse, fun ppf p -> Format.pp_print_string ppf (Workload.Placement.name p))

(* "60/20/20" — traversal/match/update weights. *)
let mix_conv =
  let parse s =
    match String.split_on_char '/' s with
    | [ a; b; c ] -> (
      match (int_of_string_opt a, int_of_string_opt b, int_of_string_opt c) with
      | Some traversal, Some match_, Some update ->
        Ok { Workload.Generic.traversal; match_; update }
      | _ -> Error (`Msg (Printf.sprintf "bad mix %S (expected T/M/U)" s)))
    | _ -> Error (`Msg (Printf.sprintf "bad mix %S (expected T/M/U)" s))
  in
  Arg.conv
    ( parse,
      fun ppf (m : Workload.Generic.mix) ->
        Format.fprintf ppf "%d/%d/%d" m.traversal m.match_ m.update )

(* "period:amp", e.g. "60:0.5". *)
let diurnal_conv =
  let parse s =
    match String.split_on_char ':' s with
    | [ p; a ] -> (
      match (float_of_string_opt p, float_of_string_opt a) with
      | Some period, Some amp -> Ok (period, amp)
      | _ -> Error (`Msg (Printf.sprintf "bad diurnal %S (expected PERIOD:AMP)" s)))
    | _ -> Error (`Msg (Printf.sprintf "bad diurnal %S (expected PERIOD:AMP)" s))
  in
  Arg.conv (parse, fun ppf (p, a) -> Format.fprintf ppf "%g:%g" p a)

(* "at:duration:boost", e.g. "40:20:3". *)
let flash_conv =
  let parse s =
    match String.split_on_char ':' s with
    | [ at; d; b ] -> (
      match
        (float_of_string_opt at, float_of_string_opt d, float_of_string_opt b)
      with
      | Some at, Some duration, Some boost -> Ok (at, duration, boost)
      | _ ->
        Error (`Msg (Printf.sprintf "bad flash %S (expected AT:DURATION:BOOST)" s)))
    | _ ->
      Error (`Msg (Printf.sprintf "bad flash %S (expected AT:DURATION:BOOST)" s))
  in
  Arg.conv (parse, fun ppf (a, d, b) -> Format.fprintf ppf "%g:%g:%g" a d b)

let locality_conv =
  let parse = function
    | "low" -> Ok Workload.Presets.Low
    | "high" -> Ok Workload.Presets.High
    | s -> Error (`Msg (Printf.sprintf "unknown locality %S (low|high)" s))
  in
  Arg.conv
    ( parse,
      fun ppf l ->
        Format.pp_print_string ppf
          (match l with Workload.Presets.Low -> "low" | Workload.Presets.High -> "high") )

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Sys.mkdir dir 0o755 with Sys_error _ -> ()
  end

(* On oracle failure, write each violating cell's full history next to
   the error message so the run can be analysed offline (CI uploads the
   directory as an artifact). *)
let write_oracle_dumps ~dump_dir failures =
  match dump_dir with
  | None -> ()
  | Some dir ->
    List.iter
      (fun (f : Harness.Pool.failure) ->
        match f.Harness.Pool.error with
        | Runner.Oracle_failed (msg, dump) ->
          mkdir_p dir;
          let path =
            Filename.concat dir
              (Printf.sprintf "oracle-%d.txt" f.Harness.Pool.index)
          in
          let oc = open_out path in
          output_string oc (msg ^ "\n\n" ^ dump);
          close_out oc;
          Format.eprintf "oracle dump written to %s@." path
        | _ -> ())
      failures

(* One trace file per sweep point: "t.json" stays "t.json" for a single
   point and becomes "t-wp0.100.json" etc. when sweeping, so points
   don't clobber each other. *)
let timeline_path base ~multi ~label =
  if not multi then base
  else
    let dir = Filename.dirname base in
    let file = Filename.basename base in
    let stem, ext =
      match Filename.extension file with
      | "" -> (file, ".json")
      | e -> (Filename.remove_extension file, e)
    in
    Filename.concat dir (Printf.sprintf "%s-%s%s" stem label ext)

let run algo workload locality write_probs clients db_scale servers partition
    seed njobs warmup measure verbose trace oracle oracle_dump_dir
    timeline_file percentiles crash_rate restart_delay msg_loss msg_dup
    disk_stall srv_crash_rate srv_restart_delay log_flush
    skip_reconstruction max_events generic objects classes fanout graph_depth
    placement zipf mix traversal_depth match_size update_size think diurnal
    flash =
  if trace then Oodb_core.Trace.setup ~level:(Some Logs.Debug);
  let write_probs = if write_probs = [] then [ 0.1 ] else write_probs in
  let faults =
    {
      Faults.off with
      Faults.crash_rate;
      restart_delay;
      msg_loss_prob = msg_loss;
      msg_dup_prob = msg_dup;
      disk_stall_prob = disk_stall;
      srv_crash_rate;
      srv_restart_delay;
      log_flush_interval = log_flush;
    }
  in
  Faults.validate faults;
  let cfg =
    Config.scaled
      {
        Config.default with
        num_clients = clients;
        servers;
        partition;
        faults;
        oracle;
        srv_skip_reconstruction = skip_reconstruction;
        timeline = timeline_file <> None;
      }
      ~factor:db_scale
  in
  let est = Config.memory_estimate_bytes cfg in
  if est > 4 * 1024 * 1024 * 1024 then
    Format.eprintf
      "oodbsim: warning: %d clients need roughly %d GB of memory at these \
       cache sizes@."
      cfg.Config.num_clients
      (est / (1024 * 1024 * 1024));
  let jobs =
    try
      Config.validate cfg;
      let arrival =
        match (diurnal, flash) with
        | None, None -> None
        | _ ->
          let a = Workload.Arrival.off in
          let a =
            match diurnal with
            | None -> a
            | Some (diurnal_period, diurnal_amp) ->
              { a with Workload.Arrival.diurnal_period; diurnal_amp }
          in
          let a =
            match flash with
            | None -> a
            | Some (flash_at, flash_duration, flash_boost) ->
              { a with Workload.Arrival.flash_at; flash_duration; flash_boost }
          in
          Some a
      in
      let mk_params write_prob =
        if generic then
          Workload.Presets.ocb ?objects ?classes ?fanout ?depth:graph_depth
            ?policy:placement ?theta:zipf ?mix ?traversal_depth ?match_size
            ?update_size ~think_time:think ?arrival ~db_pages:cfg.Config.db_pages
            ~objects_per_page:cfg.Config.objects_per_page
            ~num_clients:cfg.Config.num_clients ~write_prob ()
        else
          let params =
            Workload.Presets.make ~think_time:think workload
              ~db_pages:cfg.Config.db_pages
              ~objects_per_page:cfg.Config.objects_per_page
              ~num_clients:cfg.Config.num_clients ~locality ~write_prob
          in
          (* Traffic shapes compose with the presets too; [None] keeps
             the paper's constant arrival rate. *)
          Option.iter Workload.Arrival.validate arrival;
          { params with Workload.Wparams.arrival }
      in
      List.map
        (fun write_prob ->
          let params = mk_params write_prob in
          Job.make ~base_seed:seed ?max_events ~sweep:"oodbsim"
            ~label:(Printf.sprintf "wp=%.3f" write_prob)
            ~cfg ~algo ~params ~warmup ~measure ())
        write_probs
    with Invalid_argument msg ->
      Format.eprintf "oodbsim: %s@." msg;
      exit 2
  in
  let results =
    try Harness.Pool.run ~jobs:njobs jobs
    with Harness.Pool.Sweep_failed failures as e ->
      List.iter
        (fun (f : Harness.Pool.failure) ->
          Format.eprintf "%s: %s@." f.Harness.Pool.description
            (Printexc.to_string f.Harness.Pool.error))
        failures;
      write_oracle_dumps ~dump_dir:oracle_dump_dir failures;
      raise e
  in
  let multi = List.length jobs > 1 in
  List.iter2
    (fun (j : Job.t) r ->
      if multi then Format.printf "--- %s ---@." j.Job.label;
      Format.printf "%a@." Runner.pp_result r;
      if percentiles then Format.printf "%a@." Report.pp_percentiles r;
      match (timeline_file, r.Runner.timeline) with
      | Some base, Some tl ->
        let label =
          Printf.sprintf "wp%s"
            (Scanf.sscanf j.Job.label "wp=%s" (fun s -> s))
        in
        let path = timeline_path base ~multi ~label in
        let dropped = Telemetry.Perfetto.write_file tl ~path in
        Format.printf "timeline: %d events -> %s%s@."
          (Telemetry.Timeline.length tl)
          path
          (if dropped > 0 then
             Printf.sprintf " (%d spans truncated by ring wrap)" dropped
           else "")
      | _ -> ())
    jobs results;
  if verbose then begin
    Format.printf "@.system parameters:@.%a@." Config.pp cfg;
    Format.printf "@.workloads at this configuration:@.%a@."
      Report.pp_workload_table cfg
  end

let algo_t =
  Arg.(value & opt algo_conv Algo.PS_AA & info [ "a"; "algo" ] ~doc:"Protocol")

let workload_t =
  Arg.(
    value
    & opt workload_conv Workload.Presets.Hotcold
    & info [ "w"; "workload" ] ~doc:"Workload preset")

let locality_t =
  Arg.(
    value
    & opt locality_conv Workload.Presets.Low
    & info [ "l"; "locality" ] ~doc:"Page locality (low|high)")

let wp_t =
  Arg.(
    value & opt_all float []
    & info [ "p"; "write-prob" ]
        ~doc:
          "Per-object write probability (repeatable for a sweep; default \
           0.1)")

let clients_t =
  let mb_per_1k =
    Config.memory_estimate_bytes { Config.default with Config.num_clients = 1000 }
    / (1024 * 1024)
  in
  Arg.(
    value & opt int 10
    & info [ "c"; "clients" ]
        ~doc:
          (Printf.sprintf
             "Client workstations. Sparse sharing tables keep server-side \
              costs proportional to actual copy holders, so populations in \
              the tens of thousands are routine; budget roughly %d MB of \
              memory per 1000 clients at the default cache sizes. The \
              per-client-hot-region presets (HOTCOLD, PRIVATE) support at \
              most 25/50 clients; use UNIFORM or HICON beyond that."
             mb_per_1k))

let scale_t =
  Arg.(value & opt int 1 & info [ "scale" ] ~doc:"Database/buffer scale factor")

let servers_t =
  Arg.(
    value & opt int 1
    & info [ "servers" ] ~docv:"N"
        ~doc:
          "Number of partitioned page servers (default 1, the paper's \
           singleton topology; each server owns the pages its partition \
           maps to, with cross-server callback forwarding and distributed \
           deadlock detection)")

let partition_t =
  Arg.(
    value
    & opt partition_conv Oodb_core.Config.Hash
    & info [ "partition" ]
        ~doc:
          "Page-to-server placement policy: $(b,hash) (page mod servers) or \
           $(b,range) (contiguous page ranges)")

let seed_t =
  Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Base random seed")

let jobs_t =
  Arg.(
    value
    & opt int (Harness.Pool.default_jobs ())
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:"Worker domains when sweeping several write probabilities")

let warmup_t =
  Arg.(value & opt float 30.0 & info [ "warmup" ] ~doc:"Warm-up (sim seconds)")

let measure_t =
  Arg.(
    value & opt float 120.0 & info [ "measure" ] ~doc:"Measurement (sim seconds)")

let verbose_t =
  Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Also print parameter tables")

let trace_t =
  Arg.(
    value & flag
    & info [ "trace" ] ~doc:"Stream kernel events (commits, de-escalations, callbacks) to stderr")

let oracle_t =
  Arg.(
    value & flag
    & info [ "oracle" ]
        ~doc:
          "Record the transaction history and check it for \
           conflict-serializability, commit-order consistency and \
           recoverability at end of run (fails loudly with a witness on \
           violation; results are unchanged)")

let oracle_dump_dir_t =
  Arg.(
    value
    & opt (some string) None
    & info [ "oracle-dump-dir" ] ~docv:"DIR"
        ~doc:
          "On an oracle violation, write the full recorded history of each \
           failing cell into DIR (created if needed)")

let timeline_t =
  Arg.(
    value
    & opt (some string) None
    & info [ "timeline" ] ~docv:"FILE"
        ~doc:
          "Record a binary event timeline (transactions, crashes, CPU/disk/\
           network activity, callbacks) and write it as a Chrome/Perfetto \
           trace.json to FILE; sweeps write one file per point \
           (FILE-wp0.100.json).  Results are unchanged.")

let percentiles_t =
  Arg.(
    value & flag
    & info [ "percentiles" ]
        ~doc:
          "Also print histogram-derived latency percentiles: response \
           p50/p90/p99, lock-wait and callback round-trip p99, and per \
           message class p99")

let crash_rate_t =
  Arg.(
    value & opt float 0.0
    & info [ "crash-rate" ]
        ~doc:
          "Mean client crashes per simulated second per client \
           (exponential inter-crash times; 0 = never)")

let restart_delay_t =
  Arg.(
    value
    & opt float Faults.off.Faults.restart_delay
    & info [ "restart-delay" ]
        ~doc:"Client downtime before a cold restart (sim seconds)")

let msg_loss_t =
  Arg.(
    value & opt float 0.0
    & info [ "msg-loss" ]
        ~doc:
          "Probability a message transmission is lost (retransmitted \
           after a timeout with exponential backoff)")

let msg_dup_t =
  Arg.(
    value & opt float 0.0
    & info [ "msg-dup" ]
        ~doc:"Probability a delivered message is duplicated")

let disk_stall_t =
  Arg.(
    value & opt float 0.0
    & info [ "disk-stall" ]
        ~doc:"Probability a disk I/O stalls transiently before service")

let srv_crash_rate_t =
  Arg.(
    value & opt float 0.0
    & info [ "srv-crash-rate" ]
        ~doc:
          "Mean server crashes per simulated second per server \
           (exponential inter-crash times; 0 = never).  A crashed server \
           loses all volatile state but keeps its flushed redo log; on \
           restart it replays the log and rebuilds callback state from \
           surviving clients before reopening.")

let srv_restart_delay_t =
  Arg.(
    value
    & opt float Faults.off.Faults.srv_restart_delay
    & info [ "srv-restart-delay" ]
        ~doc:"Server downtime before restart begins (sim seconds)")

let log_flush_t =
  Arg.(
    value
    & opt float Faults.off.Faults.log_flush_interval
    & info [ "log-flush" ]
        ~doc:
          "Redo-log flush period (sim seconds): the durability point a \
           crashed server replays from; shorter means less replay work \
           on restart")

let skip_reconstruction_t =
  Arg.(
    value & flag
    & info [ "skip-reconstruction" ]
        ~doc:
          "SABOTAGE: restart servers without rebuilding the callback \
           copy tables from surviving clients, so stale cached copies \
           go unnoticed.  Exists to prove the serializability oracle \
           catches the resulting anomalies; pair with --oracle.")

let generic_t =
  Arg.(
    value & flag
    & info [ "generic" ]
        ~doc:
          "Use the OCB-style generic object-base workload instead of a \
           preset: a seed-deterministic class/reference graph laid out by a \
           clustering policy, driven by a traversal/match/update transaction \
           mix.  The $(b,--workload)/$(b,--locality) presets are ignored; \
           shape it with $(b,--objects), $(b,--classes), $(b,--fanout), \
           $(b,--graph-depth), $(b,--placement), $(b,--zipf), $(b,--mix), \
           $(b,--traversal-depth), $(b,--match-size), $(b,--update-size).")

let objects_t =
  Arg.(
    value
    & opt (some int) None
    & info [ "objects" ] ~docv:"N"
        ~doc:"Generic workload: object-base size (default 25000)")

let classes_t =
  Arg.(
    value
    & opt (some int) None
    & info [ "classes" ] ~docv:"N"
        ~doc:"Generic workload: number of classes (default 20)")

let fanout_t =
  Arg.(
    value
    & opt (some int) None
    & info [ "fanout" ] ~docv:"N"
        ~doc:
          "Generic workload: mean inter-object references per non-leaf \
           object (default 3)")

let graph_depth_t =
  Arg.(
    value
    & opt (some int) None
    & info [ "graph-depth" ] ~docv:"N"
        ~doc:"Generic workload: reference-graph depth in levels (default 8)")

let placement_t =
  Arg.(
    value
    & opt (some placement_conv) None
    & info [ "placement" ] ~docv:"POLICY"
        ~doc:
          "Generic workload: object-placement (clustering) policy — \
           $(b,seq) (creation order), $(b,dfs) (depth-first by reference, \
           the default) or $(b,scatter) (random, worst-case clustering)")

let zipf_t =
  Arg.(
    value
    & opt (some float) None
    & info [ "zipf" ] ~docv:"THETA"
        ~doc:
          "Generic workload: Zipf skew of hotspot object/root selection \
           (0 = uniform, the default; larger = hotter)")

let mix_t =
  Arg.(
    value
    & opt (some mix_conv) None
    & info [ "mix" ] ~docv:"T/M/U"
        ~doc:
          "Generic workload: relative weights of traversal, match and \
           update transactions (default 60/20/20)")

let traversal_depth_t =
  Arg.(
    value
    & opt (some int) None
    & info [ "traversal-depth" ] ~docv:"N"
        ~doc:"Generic workload: levels walked by a traversal (default 6)")

let match_size_t =
  Arg.(
    value
    & opt (some int) None
    & info [ "match-size" ] ~docv:"N"
        ~doc:"Generic workload: instances read by a match (default 20)")

let update_size_t =
  Arg.(
    value
    & opt (some int) None
    & info [ "update-size" ] ~docv:"N"
        ~doc:"Generic workload: objects written by an update (default 8)")

let think_t =
  Arg.(
    value & opt float 0.0
    & info [ "think" ] ~docv:"SECONDS"
        ~doc:
          "Think time between a client's transactions (sim seconds; \
           default 0, the paper's closed zero-think loop)")

let diurnal_t =
  Arg.(
    value
    & opt (some diurnal_conv) None
    & info [ "diurnal" ] ~docv:"PERIOD:AMP"
        ~doc:
          "Sinusoidal arrival-rate modulation: one cycle every PERIOD sim \
           seconds with amplitude AMP in [0,1) (think times divide by the \
           instantaneous rate factor)")

let flash_t =
  Arg.(
    value
    & opt (some flash_conv) None
    & info [ "flash" ] ~docv:"AT:DURATION:BOOST"
        ~doc:
          "Flash crowd: multiply the arrival rate by BOOST during \
           [AT, AT+DURATION) sim seconds")

let max_events_t =
  Arg.(
    value
    & opt (some int) None
    & info [ "max-events" ] ~docv:"N"
        ~doc:
          "Abort the run after N engine events (liveness bound for \
           fault-storm fuzzing in CI)")

let cmd =
  let doc =
    "simulate a page/object-server OODBMS under fine-grained sharing \
     protocols (Carey, Franklin & Zaharioudakis, SIGMOD 1994)"
  in
  Cmd.v
    (Cmd.info "oodbsim" ~doc)
    Term.(
      const run $ algo_t $ workload_t $ locality_t $ wp_t $ clients_t $ scale_t
      $ servers_t $ partition_t $ seed_t $ jobs_t $ warmup_t $ measure_t $ verbose_t $ trace_t $ oracle_t
      $ oracle_dump_dir_t $ timeline_t $ percentiles_t $ crash_rate_t
      $ restart_delay_t $ msg_loss_t $ msg_dup_t $ disk_stall_t
      $ srv_crash_rate_t $ srv_restart_delay_t $ log_flush_t
      $ skip_reconstruction_t $ max_events_t $ generic_t $ objects_t
      $ classes_t $ fanout_t $ graph_depth_t $ placement_t $ zipf_t $ mix_t
      $ traversal_depth_t $ match_size_t $ update_size_t $ think_t $ diurnal_t
      $ flash_t)

let () = exit (Cmd.eval cmd)

(* Regenerate the paper's figures.  Each figure id (fig3..fig14) runs the
   full (write probability x algorithm) sweep — fanned out over a domain
   pool (--jobs) — and prints the throughput table; fig5 is analytic;
   "table1"/"table2" print the parameter tables.  CSV output per figure
   is written when --csv-dir is given. *)

open Cmdliner
open Oodb_core

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    let parent = Filename.dirname dir in
    if parent <> dir then mkdir_p parent;
    try Sys.mkdir dir 0o755
    with Sys_error _ when Sys.is_directory dir -> ()
  end

let write_csv ~dir ~id csv =
  let path = Filename.concat dir (id ^ ".csv") in
  match open_out path with
  | exception Sys_error msg ->
    Format.eprintf "error: cannot write CSV file %s (%s)@." path msg;
    false
  | oc ->
    output_string oc csv;
    close_out oc;
    Format.printf "wrote %s@." path;
    true

(* One trace per cell: ID-wp0.10-PS-AA.json (or -rate0.005- for the
   fault sweep).  Only called when --timeline enabled the recorder, so
   every result carries one. *)
let write_timeline ~dir ~id ~coord algo (r : Runner.result) =
  match r.Runner.timeline with
  | None -> ()
  | Some tl ->
    let path =
      Filename.concat dir
        (Printf.sprintf "%s-%s-%s.json" id coord (Algo.to_string algo))
    in
    let dropped = Telemetry.Perfetto.write_file tl ~path in
    Format.printf "  timeline: %d events -> %s%s@."
      (Telemetry.Timeline.length tl)
      path
      (if dropped > 0 then
         Printf.sprintf " (%d spans truncated by ring wrap)" dropped
       else "")

let write_series_timelines ~dir ~id (series : Experiments.series) =
  mkdir_p dir;
  List.iter
    (fun (p : Experiments.point) ->
      List.iter
        (fun (algo, r) ->
          write_timeline ~dir ~id
            ~coord:(Printf.sprintf "wp%.2f" p.Experiments.write_prob)
            algo r)
        p.Experiments.results)
    series.Experiments.points

let write_shard_timelines ~dir (series : Experiments.shard_series) =
  mkdir_p dir;
  List.iter
    (fun (p : Experiments.shard_point) ->
      List.iter
        (fun (algo, r) ->
          write_timeline ~dir ~id:"shardsweep"
            ~coord:(Printf.sprintf "srv%d" p.Experiments.servers)
            algo r)
        p.Experiments.sresults)
    series.Experiments.spoints

let write_fault_timelines ~dir (series : Experiments.fault_series) =
  mkdir_p dir;
  List.iter
    (fun (p : Experiments.fault_point) ->
      List.iter
        (fun (algo, r) ->
          write_timeline ~dir ~id:"faultsweep"
            ~coord:(Printf.sprintf "rate%.3f" p.Experiments.rate)
            algo r)
        p.Experiments.fresults)
    series.Experiments.fpoints

let write_srvfault_timelines ~dir (series : Experiments.srvfault_series) =
  mkdir_p dir;
  List.iter
    (fun (p : Experiments.srvfault_point) ->
      List.iter
        (fun (algo, r) ->
          write_timeline ~dir ~id:"srvfaultsweep"
            ~coord:(Printf.sprintf "srate%.3f" p.Experiments.srate)
            algo r)
        p.Experiments.svresults)
    series.Experiments.svpoints

let write_cluster_timelines ~dir (series : Experiments.cluster_series) =
  mkdir_p dir;
  List.iter
    (fun (p : Experiments.cluster_point) ->
      List.iter
        (fun (algo, r) ->
          write_timeline ~dir ~id:"clustersweep"
            ~coord:
              (Printf.sprintf "%s-z%.2f"
                 (Workload.Placement.name p.Experiments.cpolicy)
                 p.Experiments.ctheta)
            algo r)
        p.Experiments.cresults)
    series.Experiments.cpoints

let run_figure ?(time_scale = 1.0) ?(oracle = false) ?timeline_dir
    ?(percentiles = false) ~njobs ~csv_dir ~detail id =
  match id with
  | "table1" ->
    Format.printf "%a@." Config.pp Config.default;
    true
  | "table2" ->
    Format.printf "%a@." Report.pp_workload_table Config.default;
    true
  | "fig5" ->
    Format.printf "%a@." Report.pp_figure5 (Experiments.figure5 ());
    true
  | "faultsweep" ->
    let progress j r =
      Format.printf "  %s@.%!" (Experiments.progress_line j r)
    in
    let jobs =
      Experiments.fault_jobs ~time_scale ~oracle
        ~timeline:(timeline_dir <> None) ()
    in
    let results = Harness.Pool.run ~jobs:njobs ~progress jobs in
    let series = Experiments.fault_series_of_results results in
    Format.printf "%a@." Report.pp_fault_series series;
    Option.iter (fun dir -> write_fault_timelines ~dir series) timeline_dir;
    (match csv_dir with
    | None -> true
    | Some dir ->
      write_csv ~dir ~id:"faultsweep" (Report.fault_series_to_csv series))
  | "srvfaultsweep" ->
    let progress j r =
      Format.printf "  %s@.%!" (Experiments.progress_line j r)
    in
    let jobs =
      Experiments.srvfault_jobs ~time_scale ~oracle
        ~timeline:(timeline_dir <> None) ()
    in
    let results = Harness.Pool.run ~jobs:njobs ~progress jobs in
    let series = Experiments.srvfault_series_of_results results in
    Format.printf "%a@." Report.pp_srvfault_series series;
    Option.iter (fun dir -> write_srvfault_timelines ~dir series) timeline_dir;
    (match csv_dir with
    | None -> true
    | Some dir ->
      write_csv ~dir ~id:"srvfaultsweep" (Report.srvfault_series_to_csv series))
  | "clustersweep" ->
    let progress j r =
      Format.printf "  %s@.%!" (Experiments.progress_line j r)
    in
    let jobs =
      Experiments.cluster_jobs ~time_scale ~oracle
        ~timeline:(timeline_dir <> None) ()
    in
    let results = Harness.Pool.run ~jobs:njobs ~progress jobs in
    let series = Experiments.cluster_series_of_results results in
    Format.printf "%a@." Report.pp_cluster_series series;
    Option.iter (fun dir -> write_cluster_timelines ~dir series) timeline_dir;
    (match csv_dir with
    | None -> true
    | Some dir ->
      write_csv ~dir ~id:"clustersweep" (Report.cluster_series_to_csv series))
  | "shardsweep" ->
    let progress j r =
      Format.printf "  %s@.%!" (Experiments.progress_line j r)
    in
    let jobs =
      Experiments.shard_jobs ~time_scale ~oracle
        ~timeline:(timeline_dir <> None) ()
    in
    let results = Harness.Pool.run ~jobs:njobs ~progress jobs in
    let series = Experiments.shard_series_of_results results in
    Format.printf "%a@." Report.pp_shard_series series;
    Option.iter (fun dir -> write_shard_timelines ~dir series) timeline_dir;
    (match csv_dir with
    | None -> true
    | Some dir ->
      write_csv ~dir ~id:"shardsweep" (Report.shard_series_to_csv series))
  | id -> (
    match Experiments.find id with
    | None ->
      Format.printf "unknown experiment id %S@." id;
      false
    | Some spec ->
      let progress line = Format.printf "  %s@.%!" line in
      let series =
        Harness.Sweep.run_spec ~time_scale ~oracle
          ~timeline:(timeline_dir <> None) ~jobs:njobs ~progress spec
      in
      Format.printf "%a@." Report.pp_series series;
      if percentiles then
        Format.printf "%a@." Report.pp_series_percentiles series;
      if detail then Format.printf "%a@." Report.pp_series_detail series;
      Option.iter (fun dir -> write_series_timelines ~dir ~id series)
        timeline_dir;
      (match csv_dir with
      | None -> true
      | Some dir -> write_csv ~dir ~id (Report.series_to_csv series)))

let all_ids =
  [ "table1"; "table2"; "fig3"; "fig4"; "fig5"; "fig6"; "fig7"; "fig8";
    "fig9"; "fig10"; "fig11"; "fig12"; "fig13"; "fig14"; "faultsweep";
    "shardsweep"; "srvfaultsweep"; "clustersweep" ]

let run ids time_scale oracle timeline_dir percentiles njobs csv_dir detail =
  let ids = if ids = [] then all_ids else ids in
  match
    Option.iter
      (fun dir ->
        try mkdir_p dir
        with Sys_error msg ->
          raise
            (Sys_error
               (Printf.sprintf "cannot create CSV directory %s (%s)" dir msg)))
      csv_dir
  with
  | exception Sys_error msg ->
    Format.eprintf "error: %s@." msg;
    1
  | () ->
    let ok =
      List.fold_left
        (fun ok id ->
          run_figure ~time_scale ~oracle ?timeline_dir ~percentiles ~njobs
            ~csv_dir ~detail id
          && ok)
        true ids
    in
    if ok then 0 else 1

let ids_t =
  Arg.(
    value & pos_all string []
    & info [] ~docv:"ID"
        ~doc:
          "Experiment ids (fig3..fig14, table1, table2, faultsweep, \
           shardsweep, srvfaultsweep, clustersweep); all when omitted")

let time_scale_t =
  Arg.(
    value & opt float 1.0
    & info [ "time-scale" ]
        ~doc:"Multiply warm-up and measurement windows (0.25 = quick look)")

let oracle_t =
  Arg.(
    value & flag
    & info [ "oracle" ]
        ~doc:
          "Attach the serializability oracle to every cell: record and \
           check each run's transaction history (figures are unchanged; a \
           violation fails the sweep with a witness)")

let timeline_dir_t =
  Arg.(
    value
    & opt (some string) None
    & info [ "timeline" ] ~docv:"DIR"
        ~doc:
          "Record a binary event timeline in every cell and write one \
           Chrome/Perfetto trace.json per cell into DIR (created if \
           missing); figures are unchanged")

let percentiles_t =
  Arg.(
    value & flag
    & info [ "percentiles" ]
        ~doc:
          "After each figure's throughput table, print the response-time \
           p50/p90/p99 per cell and a per-algorithm summary of the \
           histograms merged across the sweep")

let jobs_t =
  Arg.(
    value
    & opt int (Harness.Pool.default_jobs ())
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "Worker domains running simulation cells in parallel (default: \
           cores - 1).  Results are byte-identical for any N; $(b,--jobs 1) \
           is the sequential path.")

let csv_dir_t =
  Arg.(
    value
    & opt (some string) None
    & info [ "csv-dir" ]
        ~doc:
          "Also write one CSV per figure into this directory (created \
           recursively if missing)")

let detail_t =
  Arg.(value & flag & info [ "detail" ] ~doc:"Print per-cell auxiliary metrics")

let cmd =
  Cmd.v
    (Cmd.info "experiments"
       ~doc:"regenerate the tables and figures of the SIGMOD'94 paper")
    Term.(
      const run $ ids_t $ time_scale_t $ oracle_t $ timeline_dir_t
      $ percentiles_t $ jobs_t $ csv_dir_t $ detail_t)

let () = exit (Cmd.eval' cmd)

(* Regenerate the paper's figures.  Each figure id (fig3..fig14) runs the
   full (write probability x algorithm) sweep and prints the throughput
   table; fig5 is analytic; "table1"/"table2" print the parameter
   tables.  CSV output per figure is written when --csv-dir is given. *)

open Cmdliner
open Oodb_core

let run_figure ?(time_scale = 1.0) ~csv_dir ~detail id =
  match id with
  | "table1" -> Format.printf "%a@." Config.pp Config.default
  | "table2" -> Format.printf "%a@." Report.pp_workload_table Config.default
  | "fig5" -> Format.printf "%a@." Report.pp_figure5 (Experiments.figure5 ())
  | id -> (
    match Experiments.find id with
    | None -> Format.printf "unknown experiment id %S@." id
    | Some spec ->
      let progress line = Format.printf "  %s@.%!" line in
      let series = Experiments.run_spec ~time_scale ~progress spec in
      Format.printf "%a@." Report.pp_series series;
      if detail then Format.printf "%a@." Report.pp_series_detail series;
      Option.iter
        (fun dir ->
          let path = Filename.concat dir (id ^ ".csv") in
          let oc = open_out path in
          output_string oc (Report.series_to_csv series);
          close_out oc;
          Format.printf "wrote %s@." path)
        csv_dir)

let all_ids =
  [ "table1"; "table2"; "fig3"; "fig4"; "fig5"; "fig6"; "fig7"; "fig8";
    "fig9"; "fig10"; "fig11"; "fig12"; "fig13"; "fig14" ]

let run ids time_scale csv_dir detail =
  let ids = if ids = [] then all_ids else ids in
  Option.iter
    (fun d -> if not (Sys.file_exists d) then Sys.mkdir d 0o755)
    csv_dir;
  List.iter (run_figure ~time_scale ~csv_dir ~detail) ids

let ids_t =
  Arg.(
    value & pos_all string []
    & info [] ~docv:"ID"
        ~doc:"Experiment ids (fig3..fig14, table1, table2); all when omitted")

let time_scale_t =
  Arg.(
    value & opt float 1.0
    & info [ "time-scale" ]
        ~doc:"Multiply warm-up and measurement windows (0.25 = quick look)")

let csv_dir_t =
  Arg.(
    value
    & opt (some string) None
    & info [ "csv-dir" ] ~doc:"Also write one CSV per figure into this directory")

let detail_t =
  Arg.(value & flag & info [ "detail" ] ~doc:"Print per-cell auxiliary metrics")

let cmd =
  Cmd.v
    (Cmd.info "experiments"
       ~doc:"regenerate the tables and figures of the SIGMOD'94 paper")
    Term.(const run $ ids_t $ time_scale_t $ csv_dir_t $ detail_t)

let () = exit (Cmd.eval cmd)

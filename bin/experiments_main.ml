(* Regenerate the paper's figures.  Each figure id (fig3..fig14) runs the
   full (write probability x algorithm) sweep — fanned out over a domain
   pool (--jobs) — and prints the throughput table; fig5 is analytic;
   "table1"/"table2" print the parameter tables.  CSV output per figure
   is written when --csv-dir is given. *)

open Cmdliner
open Oodb_core

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    let parent = Filename.dirname dir in
    if parent <> dir then mkdir_p parent;
    try Sys.mkdir dir 0o755
    with Sys_error _ when Sys.is_directory dir -> ()
  end

let write_csv ~dir ~id csv =
  let path = Filename.concat dir (id ^ ".csv") in
  match open_out path with
  | exception Sys_error msg ->
    Format.eprintf "error: cannot write CSV file %s (%s)@." path msg;
    false
  | oc ->
    output_string oc csv;
    close_out oc;
    Format.printf "wrote %s@." path;
    true

let run_figure ?(time_scale = 1.0) ?(oracle = false) ~njobs ~csv_dir ~detail id =
  match id with
  | "table1" ->
    Format.printf "%a@." Config.pp Config.default;
    true
  | "table2" ->
    Format.printf "%a@." Report.pp_workload_table Config.default;
    true
  | "fig5" ->
    Format.printf "%a@." Report.pp_figure5 (Experiments.figure5 ());
    true
  | "faultsweep" ->
    let progress j r =
      Format.printf "  %s@.%!" (Experiments.progress_line j r)
    in
    let jobs = Experiments.fault_jobs ~time_scale ~oracle () in
    let results = Harness.Pool.run ~jobs:njobs ~progress jobs in
    let series = Experiments.fault_series_of_results results in
    Format.printf "%a@." Report.pp_fault_series series;
    (match csv_dir with
    | None -> true
    | Some dir ->
      write_csv ~dir ~id:"faultsweep" (Report.fault_series_to_csv series))
  | id -> (
    match Experiments.find id with
    | None ->
      Format.printf "unknown experiment id %S@." id;
      false
    | Some spec ->
      let progress line = Format.printf "  %s@.%!" line in
      let series =
        Harness.Sweep.run_spec ~time_scale ~oracle ~jobs:njobs ~progress spec
      in
      Format.printf "%a@." Report.pp_series series;
      if detail then Format.printf "%a@." Report.pp_series_detail series;
      (match csv_dir with
      | None -> true
      | Some dir -> write_csv ~dir ~id (Report.series_to_csv series)))

let all_ids =
  [ "table1"; "table2"; "fig3"; "fig4"; "fig5"; "fig6"; "fig7"; "fig8";
    "fig9"; "fig10"; "fig11"; "fig12"; "fig13"; "fig14"; "faultsweep" ]

let run ids time_scale oracle njobs csv_dir detail =
  let ids = if ids = [] then all_ids else ids in
  match
    Option.iter
      (fun dir ->
        try mkdir_p dir
        with Sys_error msg ->
          raise
            (Sys_error
               (Printf.sprintf "cannot create CSV directory %s (%s)" dir msg)))
      csv_dir
  with
  | exception Sys_error msg ->
    Format.eprintf "error: %s@." msg;
    1
  | () ->
    let ok =
      List.fold_left
        (fun ok id ->
          run_figure ~time_scale ~oracle ~njobs ~csv_dir ~detail id && ok)
        true ids
    in
    if ok then 0 else 1

let ids_t =
  Arg.(
    value & pos_all string []
    & info [] ~docv:"ID"
        ~doc:
          "Experiment ids (fig3..fig14, table1, table2, faultsweep); all \
           when omitted")

let time_scale_t =
  Arg.(
    value & opt float 1.0
    & info [ "time-scale" ]
        ~doc:"Multiply warm-up and measurement windows (0.25 = quick look)")

let oracle_t =
  Arg.(
    value & flag
    & info [ "oracle" ]
        ~doc:
          "Attach the serializability oracle to every cell: record and \
           check each run's transaction history (figures are unchanged; a \
           violation fails the sweep with a witness)")

let jobs_t =
  Arg.(
    value
    & opt int (Harness.Pool.default_jobs ())
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "Worker domains running simulation cells in parallel (default: \
           cores - 1).  Results are byte-identical for any N; $(b,--jobs 1) \
           is the sequential path.")

let csv_dir_t =
  Arg.(
    value
    & opt (some string) None
    & info [ "csv-dir" ]
        ~doc:
          "Also write one CSV per figure into this directory (created \
           recursively if missing)")

let detail_t =
  Arg.(value & flag & info [ "detail" ] ~doc:"Print per-cell auxiliary metrics")

let cmd =
  Cmd.v
    (Cmd.info "experiments"
       ~doc:"regenerate the tables and figures of the SIGMOD'94 paper")
    Term.(
      const run $ ids_t $ time_scale_t $ oracle_t $ jobs_t $ csv_dir_t
      $ detail_t)

let () = exit (Cmd.eval' cmd)

(* A CAD-style engineering-design session (the paper's PRIVATE
   workload): every designer updates a private working set and reads a
   shared, read-only library.  There is no data contention at all, so
   the winner is decided purely by message economy — the scenario
   Section 5.5 uses to show why adaptivity matters even without
   conflicts.

     dune exec examples/cad_private.exe *)

open Oodb_core

let () =
  let cfg = Config.default in
  Format.printf
    "PRIVATE workload (per-designer hot region, shared read-only library)@.";
  Format.printf "write probability sweep, throughput in tps:@.@.";
  Format.printf "%8s" "wp";
  List.iter (fun a -> Format.printf "%9s" (Algo.to_string a)) Algo.all;
  Format.printf "   %s@." "PS-AA grants";
  List.iter
    (fun wp ->
      let params =
        Workload.Presets.make Workload.Presets.Private_ ~db_pages:cfg.db_pages
          ~objects_per_page:cfg.objects_per_page ~num_clients:cfg.num_clients
          ~locality:Workload.Presets.High ~write_prob:wp
      in
      Format.printf "%8.2f" wp;
      let grants = ref "" in
      List.iter
        (fun algo ->
          let r = Runner.run ~measure:100.0 ~cfg ~algo ~params () in
          Format.printf "%9.2f" r.throughput;
          if algo = Algo.PS_AA then
            grants :=
              Printf.sprintf "%d page / %d obj" r.page_write_grants
                r.object_write_grants)
        Algo.all;
      Format.printf "   %s@." !grants;
      Format.print_flush ())
    [ 0.0; 0.1; 0.2; 0.4 ];
  Format.printf
    "@.With no sharing, PS-AA always escalates to page locks (see the@.\
     grants column), matching PS, while the static object-lock variants@.\
     pay one message per updated object.@."

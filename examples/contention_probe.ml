(* HICON stress probe: all ten clients hammer the same skewed hot
   region.  Section 5.4 shows the one regime where the basic page
   server beats PS-AA: high page locality plus high write probability,
   where page conflicts almost always imply object conflicts, so
   fine-grained locking only adds deadlocks.  This example reproduces
   that crossover and prints the abort/deadlock evidence.

     dune exec examples/contention_probe.exe *)

open Oodb_core

let () =
  let cfg = Config.default in
  Format.printf "HICON, high page locality: PS vs PS-AA@.@.";
  Format.printf "%8s %14s %14s %22s@." "wp" "PS tps" "PS-AA tps"
    "PS/PS-AA deadlocks";
  List.iter
    (fun wp ->
      let params =
        Workload.Presets.make Workload.Presets.Hicon ~db_pages:cfg.db_pages
          ~objects_per_page:cfg.objects_per_page ~num_clients:cfg.num_clients
          ~locality:Workload.Presets.High ~write_prob:wp
      in
      let ps = Runner.run ~measure:100.0 ~cfg ~algo:Algo.PS ~params () in
      let aa = Runner.run ~measure:100.0 ~cfg ~algo:Algo.PS_AA ~params () in
      Format.printf "%8.2f %14.2f %14.2f %15d / %d@." wp ps.throughput
        aa.throughput ps.deadlocks aa.deadlocks;
      Format.print_flush ())
    [ 0.05; 0.1; 0.2; 0.3; 0.5 ];
  Format.printf
    "@.Under extreme contention with high locality, most page conflicts@.\
     are also object conflicts: PS-AA's object locks cannot add@.\
     concurrency, and its later lock acquisition causes more deadlocks.@."

(* Quickstart: simulate the paper's HOTCOLD workload under the basic
   page server (PS) and the fully adaptive page server (PS-AA), and
   compare their throughput.

     dune exec examples/quickstart.exe *)

open Oodb_core

let () =
  (* 1. System parameters: Table 1 of the paper (10 clients, 4 KB pages,
        1250-page database, 20 objects per page, ...). *)
  let cfg = Config.default in

  (* 2. A workload: each client directs 80% of its accesses to its own
        50-page hot region, reads ~120 objects per transaction, and
        updates each object it reads with probability 0.15. *)
  let params =
    Workload.Presets.make Workload.Presets.Hotcold ~db_pages:cfg.db_pages
      ~objects_per_page:cfg.objects_per_page ~num_clients:cfg.num_clients
      ~locality:Workload.Presets.Low ~write_prob:0.15
  in

  (* 3. Run the closed-system simulation for each protocol and report. *)
  Format.printf
    "HOTCOLD, low locality, write probability 0.15 (120 s simulated):@.@.";
  List.iter
    (fun algo ->
      let r = Runner.run ~cfg ~algo ~params () in
      Format.printf "  %-6s %6.2f tps   response %4.0f ms   %5.1f msgs/commit@."
        (Algo.to_string algo) r.throughput (1000.0 *. r.resp_mean)
        r.msgs_per_commit)
    [ Algo.PS; Algo.PS_AA ];
  Format.printf
    "@.PS-AA avoids PS's false sharing by de-escalating to object locks@.\
     only on contended pages, while still shipping whole pages.@."

(* A microscope on PS-AA's adaptive locking: two hand-built transactions
   on one page, driven step by step, showing escalation (page write
   lock granted when nobody shares), de-escalation (a reader forces the
   holder down to object locks), and the final lock state.

     dune exec examples/adaptive_trace.exe *)

open Oodb_core
open Storage

let oid page slot = Ids.Oid.make ~page ~slot
let op ?(write = false) o = { Workload.Refstring.oid = o; write }

(* Advance the clock in small steps until a condition holds. *)
let run_until_cond engine ~deadline cond =
  let t = ref (Simcore.Engine.now engine) in
  while (not (cond ())) && !t < deadline do
    t := !t +. 0.001;
    Simcore.Engine.run_until engine !t
  done

let dump_locks label sys =
  let page_holder =
    match Locking.Lock_table.holder sys.Model.servers.(0).plocks 0 with
    | Some t -> Printf.sprintf "txn %d" t
    | None -> "-"
  in
  let obj_locks =
    List.concat_map
      (fun slot ->
        match Locking.Lock_table.holder sys.Model.servers.(0).olocks (oid 0 slot) with
        | Some t -> [ Printf.sprintf "0.%d->txn %d" slot t ]
        | None -> [])
      [ 0; 1; 2; 3; 4; 5 ]
  in
  Format.printf "  [%s]@.    page 0 write lock: %s; object locks: %s@." label
    page_holder
    (if obj_locks = [] then "-" else String.concat ", " obj_locks)

let () =
  let cfg = { Config.default with num_clients = 2 } in
  (* Any workload params will do: transactions are supplied by hand. *)
  let params =
    Workload.Presets.make Workload.Presets.Uniform ~db_pages:cfg.db_pages
      ~objects_per_page:cfg.objects_per_page ~num_clients:2
      ~locality:Workload.Presets.Low ~write_prob:0.0
  in
  let sys = Model.create ~cfg ~algo:Algo.PS_AA ~params ~seed:7 in
  let engine = sys.Model.engine in

  Format.printf "PS-AA adaptive locking walkthrough (page 0, 2 clients)@.@.";

  (* Writer at client 0: updates three objects on page 0, then browses
     60 cold pages, which keeps its transaction open long enough for a
     reader to interfere. *)
  let browse =
    Array.init 60 (fun i -> op (oid (100 + i) 0))
  in
  let writer_ops =
    Array.append
      [| op (oid 0 0); op ~write:true (oid 0 0);
         op (oid 0 1); op ~write:true (oid 0 1);
         op (oid 0 2); op ~write:true (oid 0 2) |]
      browse
  in
  let writer_done = ref false in
  Client.run_one sys ~client:0 writer_ops (fun () -> writer_done := true);
  run_until_cond engine ~deadline:1.0 (fun () ->
      match sys.Model.clients.Model.running.(0) with
      | Some t -> Ids.Oid_set.cardinal t.Model.updated >= 3
      | None -> false);
  dump_locks "after client 0's three updates" sys;
  Format.printf
    "    -> escalated: one page-grain write lock covers all three updates@.@.";

  (* Reader at client 1 touches a different object on page 0: the
     server asks client 0 to de-escalate. *)
  let reader_done = ref false in
  Client.run_one sys ~client:1 [| op (oid 0 9) |] (fun () ->
      reader_done := true);
  run_until_cond engine ~deadline:2.0 (fun () -> !reader_done);
  dump_locks "after client 1 reads object 0.9" sys;
  Format.printf
    "    -> de-escalated: the page lock became per-object locks,@.\
    \       and the reader proceeded without blocking the writer@.@.";

  run_until_cond engine ~deadline:10.0 (fun () -> !writer_done);
  dump_locks "after both transactions committed" sys;
  Format.printf "@.writer committed: %b, reader committed: %b@." !writer_done
    !reader_done;
  Format.printf "de-escalations observed: %d@."
    (Metrics.deescalations sys.Model.metrics)

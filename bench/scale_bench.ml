(* Population-scaling benchmark: the UNIFORM cell (PS-AA, write
   probability 0.1) at 100, 1k, 10k and 50k client workstations,
   reporting simulator events/sec (host cost), resident bytes per
   client (memory cost of the population) and the simulated response
   p99 (model-side effect of the load).

   Each population offers the same load instead of the same duty
   cycle: think_time = 0.05 * n seconds, so transactions arrive at
   ~20/s regardless of n and the population phases in across one think
   interval (see Client.client_loop).  A client's start offset,
   think_time * cid / n = 0.05 * cid, is population-independent, so
   every cell runs the *identical* transaction schedule — commits and
   p99 match across populations by construction — and the only thing
   that grows with n is exactly what this benchmark guards: per-client
   resident state and the population-wide bookkeeping (sharing tables,
   audits, crash sweeps).  A cell whose events/sec degrades with n is
   a population-scaling regression, not a contention artefact.

   Each line of output is a JSON object; paste the numbers into
   BENCH_scale.json (see that file for the recording convention).

   SCALE_BENCH_MEASURE scales the simulated measurement window in
   seconds (default 30; CI smoke uses less).  SCALE_BENCH_POPS is a
   comma-separated population list (default "100,1000,10000,50000").

   Regenerating BENCH_scale.json:

     dune build bench/scale_bench.exe
     for i in 1 2 3 4 5; do
       SCALE_BENCH_MEASURE=30 ./_build/default/bench/scale_bench.exe
     done

   Take the best events_per_sec per population (best-of-5 suppresses
   scheduler noise on a busy 1-core container).  The 25-client
   regression gate instead alternates the parent commit's oodbsim
   binary (built in a worktree) run-for-run against the new one on the
   fig3 reference cell, whose event schedule is byte-identical across
   the two builds, making wall time the only degree of freedom. *)

open Oodb_core

let measure_s =
  match Sys.getenv_opt "SCALE_BENCH_MEASURE" with
  | Some s -> (try max 1.0 (float_of_string s) with _ -> 30.0)
  | None -> 30.0

let pops =
  match Sys.getenv_opt "SCALE_BENCH_POPS" with
  | Some s ->
    List.filter_map int_of_string_opt (String.split_on_char ',' s)
  | None -> [ 100; 1000; 10_000; 50_000 ]

let warmup_s = 5.0
let seed = 42

let cell ~clients =
  (* The paper's Table 1 server (30 MIPS, 2 disks, 80 Mbit/s) saturates
     below 10 txns/s; here the server hardware is scaled up so the cell
     measures the cost of the population, not a full disk queue. *)
  let cfg =
    {
      Config.default with
      Config.num_clients = clients;
      server_mips = 1500.0;
      server_disks = 128;
      network_mbits = 2000.0;
    }
  in
  let think_time = 0.05 *. float_of_int clients in
  let params =
    Workload.Presets.(
      make Uniform ~think_time ~db_pages:cfg.Config.db_pages
        ~objects_per_page:cfg.Config.objects_per_page ~num_clients:clients
        ~locality:Low ~write_prob:0.1)
  in
  let sys = Model.create ~cfg ~algo:Algo.PS_AA ~params ~seed in
  Netlayer.install_edge_exchange sys;
  Client.start sys;
  Crash.install sys;
  let engine = sys.Model.engine in
  Gc.full_major ();
  let t0 = Unix.gettimeofday () in
  Simcore.Engine.run_until engine warmup_s;
  Metrics.reset sys.Model.metrics ~now:warmup_s;
  Simcore.Engine.run_until engine (warmup_s +. measure_s);
  let wall_s = Unix.gettimeofday () -. t0 in
  sys.Model.live <- false;
  let m = sys.Model.metrics in
  let commits = Metrics.commits m in
  assert (commits > 0);
  let events = Simcore.Engine.events_processed engine in
  (* Resident heap cost of the population: everything still live after
     a full major collection, divided by n.  The caches, RNGs, response
     stats and sharing-table rows dominate; fiber stacks live outside
     the OCaml heap and are not counted.  [sys] must be kept reachable
     past the stat or the collector frees the very state being
     measured. *)
  Gc.full_major ();
  let live_words = (Gc.stat ()).Gc.live_words in
  let bytes_per_client = live_words * 8 / clients in
  ignore (Sys.opaque_identity sys);
  Printf.printf
    "{\"bench\": \"scale_cell\", \"clients\": %d, \"events\": %d, \
     \"wall_s\": %.4f, \"events_per_sec\": %.0f, \"commits\": %d, \
     \"bytes_per_client\": %d, \"resp_p99_ms\": %.1f}\n\
     %!"
    clients events wall_s
    (float_of_int events /. wall_s)
    commits bytes_per_client
    (1000.0 *. Metrics.response_quantile m 0.99)

let () =
  Printf.printf
    "# scale_bench: measure=%.0fs sim (SCALE_BENCH_MEASURE to change), \
     pops=%s (SCALE_BENCH_POPS to change)\n\
     %!"
    measure_s
    (String.concat "," (List.map string_of_int pops));
  List.iter (fun clients -> cell ~clients) pops

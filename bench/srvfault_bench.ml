(* Server-fault benchmark: the fig3 reference cell (PS-AA, write
   probability 0.1) on a 2-way partitioned server at increasing server
   crash rates, reporting simulator events/sec (host-side cost of the
   fault machinery) alongside the simulated throughput, response p99
   and the crash/recovery counts (model-side availability effect).

   Each line of output is a JSON object; paste the numbers into
   BENCH_srvfault.json (see that file for the recording convention).

   SRVFAULT_BENCH_MEASURE scales the simulated measurement window in
   seconds (default 60; CI smoke uses 5).

   Regenerating BENCH_srvfault.json:

     dune build bench/srvfault_bench.exe
     for i in 1 2 3 4 5; do
       SRVFAULT_BENCH_MEASURE=120 ./_build/default/bench/srvfault_bench.exe
     done

   Take the best events_per_sec per rate (best-of-5 suppresses
   scheduler noise on a busy 1-core container).  rate=0 doubles as the
   overhead check: the crash drivers are not even installed there, so
   its schedule is byte-identical to a build without the fault layer
   and any wall-time delta is measurement noise. *)

open Oodb_core

let measure_s =
  match Sys.getenv_opt "SRVFAULT_BENCH_MEASURE" with
  | Some s -> (try max 1.0 (float_of_string s) with _ -> 60.0)
  | None -> 60.0

let warmup_s = 5.0
let seed = 42
let servers = 2

let cell ~rate =
  let spec = Option.get (Experiments.find "fig3") in
  let cfg =
    {
      (Experiments.cfg_of spec) with
      Config.servers;
      faults = { Faults.off with Faults.srv_crash_rate = rate };
    }
  in
  let params = Experiments.params_of spec ~write_prob:0.1 in
  let sys = Model.create ~cfg ~algo:Algo.PS_AA ~params ~seed in
  Netlayer.install_edge_exchange sys;
  Client.start sys;
  Crash.install sys;
  let engine = sys.Model.engine in
  Gc.full_major ();
  let t0 = Unix.gettimeofday () in
  Simcore.Engine.run_until engine warmup_s;
  Metrics.reset sys.Model.metrics ~now:warmup_s;
  Faults.reset_counters sys.Model.faults;
  Simcore.Engine.run_until engine (warmup_s +. measure_s);
  let wall_s = Unix.gettimeofday () -. t0 in
  sys.Model.live <- false;
  let m = sys.Model.metrics in
  let commits = Metrics.commits m in
  assert (commits > 0);
  let events = Simcore.Engine.events_processed engine in
  Printf.printf
    "{\"bench\": \"srvfault_cell\", \"rate\": %.3f, \"events\": %d, \
     \"wall_s\": %.4f, \"events_per_sec\": %.0f, \"commits\": %d, \"tps\": \
     %.2f, \"resp_p99_ms\": %.1f, \"srv_crashes\": %d, \"srv_recoveries\": \
     %d, \"srv_recovery_ms\": %.0f, \"retries\": %d}\n\
     %!"
    rate events wall_s
    (float_of_int events /. wall_s)
    commits
    (Metrics.throughput m ~now:(warmup_s +. measure_s))
    (1000.0 *. Metrics.response_quantile m 0.99)
    (Faults.srv_crashes sys.Model.faults)
    (Faults.srv_recoveries sys.Model.faults)
    (1000.0 *. Faults.srv_recovery_mean sys.Model.faults)
    (Metrics.retries m)

let () =
  Printf.printf
    "# srvfault_bench: measure=%.0fs sim, servers=%d \
     (SRVFAULT_BENCH_MEASURE to change)\n\
     %!"
    measure_s servers;
  List.iter (fun rate -> cell ~rate) [ 0.0; 0.01; 0.02; 0.05 ]

(* Telemetry overhead benchmarks.

   The latency histograms are always on, and the timeline hooks sit on
   the hot protocol paths guarded by one option check — this bench
   pins down what that costs:

   - hist-record:        raw Histogram.record throughput (one log10,
                         one array slot, four scalar updates).
   - fig3-cell:          the representative simulation cell with
                         telemetry off (the default path every
                         experiment takes).
   - fig3-cell-timeline: the same cell with the timeline recorder
                         attached, plus a Perfetto serialization of
                         the resulting ring.

   Each line of output is a JSON object; paste the numbers into
   BENCH_telemetry.json (same best-of-5 convention as
   BENCH_engine.json).  The off-path claim to verify against
   BENCH_engine.json is the fig3_cell row: its events_per_sec must
   stay within noise of the value recorded there before the telemetry
   layer existed.

   TELEMETRY_BENCH_N scales hist-record (default 2_000_000). *)

let n_samples =
  match Sys.getenv_opt "TELEMETRY_BENCH_N" with
  | Some s -> (try max 1000 (int_of_string s) with _ -> 2_000_000)
  | None -> 2_000_000

type sample = {
  name : string;
  events : int;
  wall_s : float;
  minor_words_per_event : float;
}

let pp_sample { name; events; wall_s; minor_words_per_event } =
  let rate = float_of_int events /. wall_s in
  Printf.printf
    "{\"bench\": %S, \"events\": %d, \"wall_s\": %.4f, \"events_per_sec\": \
     %.0f, \"minor_words_per_event\": %.2f}\n%!"
    name events wall_s rate minor_words_per_event

let measure name f =
  Gc.full_major ();
  let mw0 = Gc.minor_words () in
  let t0 = Unix.gettimeofday () in
  let events = f () in
  let wall_s = Unix.gettimeofday () -. t0 in
  let mw = Gc.minor_words () -. mw0 in
  pp_sample
    {
      name;
      events;
      wall_s;
      minor_words_per_event = mw /. float_of_int (max 1 events);
    }

(* Same inline splitmix as engine_bench: deterministic, allocation-free. *)
let mix state =
  let z = Int64.add !state 0x9e3779b97f4a7c15L in
  state := z;
  let z =
    Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30))
      0xbf58476d1ce4e5b9L
  in
  let z =
    Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27))
      0x94d049bb133111ebL
  in
  Int64.logxor z (Int64.shift_right_logical z 31)

let hist_record () =
  let h = Telemetry.Histogram.create () in
  let state = ref 42L in
  for _ = 1 to n_samples do
    (* log-ish spread over the regular bucket range *)
    let bits = Int64.to_int (Int64.logand (mix state) 0xfffffL) in
    Telemetry.Histogram.record h (float_of_int (1 + bits) *. 1e-6)
  done;
  assert (Telemetry.Histogram.count h = n_samples);
  n_samples

let fig3_cell ~timeline () =
  let spec = Option.get (Oodb_core.Experiments.find "fig3") in
  let cfg = { (Oodb_core.Experiments.cfg_of spec) with Oodb_core.Config.timeline } in
  let params = Oodb_core.Experiments.params_of spec ~write_prob:0.1 in
  let r =
    Oodb_core.Runner.run ~warmup:2.0 ~measure:5.0 ~cfg
      ~algo:Oodb_core.Algo.PS_AA ~params ()
  in
  assert (r.Oodb_core.Runner.commits > 0);
  (if timeline then
     (* Include serialization, the other cost a --timeline user pays. *)
     match r.Oodb_core.Runner.timeline with
     | Some tl ->
       assert (String.length (Telemetry.Perfetto.to_json tl) > 0)
     | None -> assert false);
  r.Oodb_core.Runner.commits

let () =
  Printf.printf "# telemetry_bench: N=%d (TELEMETRY_BENCH_N to change)\n%!"
    n_samples;
  measure "hist_record" hist_record;
  measure "fig3_cell" (fig3_cell ~timeline:false);
  measure "fig3_cell_timeline" (fig3_cell ~timeline:true)

(* Profiling aid: decompose the engine_bench ping_pong cost layer by
   layer — raw effect perform/continue, bare zero-delay engine chain,
   yield (one fiber, then two alternating), full mailbox ping-pong —
   so a regression can be attributed to the layer that caused it.
   Prints best-of-5 ns/op per layer; ping_pong here mirrors the
   engine_bench scenario (ns/op x 2 = ns/event). *)
open Simcore

let time name f =
  let best = ref infinity in
  let n = ref 0 in
  for _ = 1 to 5 do
    Gc.full_major ();
    let t0 = Unix.gettimeofday () in
    n := f ();
    let t1 = Unix.gettimeofday () in
    if t1 -. t0 < !best then best := t1 -. t0
  done;
  Printf.printf "%-20s %9.1f ns/op (%d ops, best %.4f s)\n%!" name
    (!best /. float_of_int !n *. 1e9)
    !n !best

(* 1. raw effects: perform + immediate continue, no engine *)
type _ Effect.t += Ping : unit Effect.t

let raw_effects n =
  let open Effect.Deep in
  let count = ref 0 in
  let body () =
    while !count < n do
      incr count;
      Effect.perform Ping
    done
  in
  match_with body ()
    {
      retc = (fun () -> ());
      exnc = raise;
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Ping -> Some (fun (k : (a, unit) continuation) -> continue k ())
          | _ -> None);
    };
  n

(* 2. engine ring only: schedule_now chain *)
let ring n =
  let e = Engine.create () in
  let count = ref 0 in
  let rec tick () =
    incr count;
    if !count < n then Engine.schedule_now e tick
  in
  Engine.schedule_now e tick;
  Engine.run e;
  n

(* 3. proc yield: suspend + schedule_now + continue *)
let yield_chain n =
  let e = Engine.create () in
  let count = ref 0 in
  Proc.spawn e (fun () ->
      while !count < n do
        incr count;
        Proc.yield e
      done);
  Engine.run e;
  n

(* 3b. two fibers alternating via yield: same stack rotation as
   ping_pong, no mailbox *)
let yield_duet n =
  let e = Engine.create () in
  let count = ref 0 in
  let body () = while !count < n do incr count; Proc.yield e done in
  Proc.spawn e body;
  Proc.spawn e body;
  Engine.run e;
  n

(* 4. full ping_pong (as in engine_bench) *)
let ping_pong n =
  let e = Engine.create () in
  let a = Mailbox.create e and b = Mailbox.create e in
  let rounds = n / 4 in
  Proc.spawn e (fun () ->
      for _ = 1 to rounds do
        Mailbox.send b 1;
        ignore (Mailbox.recv a)
      done);
  Proc.spawn e (fun () ->
      for _ = 1 to rounds do
        ignore (Mailbox.recv b);
        Mailbox.send a 2
      done);
  Engine.run e;
  n

let () =
  let n = 2_000_000 in
  time "raw_effects" (fun () -> raw_effects n);
  time "ring(schedule_now)" (fun () -> ring n);
  time "yield_chain" (fun () -> yield_chain n);
  time "yield_duet" (fun () -> yield_duet n);
  time "ping_pong" (fun () -> ping_pong n)

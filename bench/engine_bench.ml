(* Engine microbenchmarks: events/sec and allocation per event for the
   discrete-event core, independent of the full figure sweeps.

   Scenarios:
   - heap-churn:   a classic hold model; K outstanding events, each
                   firing schedules a successor at now + pseudorandom dt,
                   so every event is one heap push + one pop.
   - ring-churn:   a self-rescheduling zero-delay chain, the path every
                   Proc resumption / yield / Mailbox wakeup takes.
   - ping-pong:    two fibers bouncing a message through two mailboxes;
                   each round trip is two suspend/resume cycles.
   - cancel-storm: arm K timers, cancel 90%, drain; exercises the
                   cancellation/purge path of long fault runs.
   - fig3-cell:    one representative simulation cell (PS-AA, write
                   probability 0.1, short windows) as the end-to-end
                   sanity check that micro wins survive in context.

   Each line of output is a JSON object; paste the numbers into
   BENCH_engine.json (see that file for the recording convention).

   ENGINE_BENCH_N scales the per-scenario event counts (default
   300_000; CI smoke uses a few thousand).

   Regenerating BENCH_engine.json:

     dune build bench/engine_bench.exe
     for i in 1 2 3 4 5; do
       ENGINE_BENCH_N=2000000 ./_build/default/bench/engine_bench.exe
     done

   Take the best events_per_sec per scenario (best-of-5 suppresses
   scheduler noise, which is +/- 30% on a busy 1-core container) and
   the matching minor_words_per_event.  For a before/after comparison,
   build the baseline commit in a worktree with this same file copied
   in, and alternate the two binaries run-for-run so both see the same
   machine conditions.  The BENCH_MINOR_MB row comes from the harness
   sweep (which routes through Harness.Pool, where the knob applies):

     time dune exec bin/experiments_main.exe -- fig3 --time-scale 0.1 --jobs 1
     BENCH_MINOR_MB=8 time dune exec bin/experiments_main.exe -- fig3 \
       --time-scale 0.1 --jobs 1 *)

open Simcore

let n_events =
  match Sys.getenv_opt "ENGINE_BENCH_N" with
  | Some s -> (try max 1000 (int_of_string s) with _ -> 300_000)
  | None -> 300_000

(* Cheap deterministic dt stream; Rng would also do, but an inline
   splitmix keeps the bench self-contained and allocation-free. *)
let mix state =
  let z = Int64.add !state 0x9e3779b97f4a7c15L in
  state := z;
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30))
      0xbf58476d1ce4e5b9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27))
      0x94d049bb133111ebL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let next_dt state =
  let bits = Int64.to_int (Int64.logand (mix state) 0xfffffL) in
  float_of_int (1 + bits) *. 1e-6

type sample = {
  name : string;
  events : int;
  wall_s : float;
  minor_words_per_event : float;
}

let pp_sample { name; events; wall_s; minor_words_per_event } =
  let rate = float_of_int events /. wall_s in
  Printf.printf
    "{\"bench\": %S, \"events\": %d, \"wall_s\": %.4f, \"events_per_sec\": \
     %.0f, \"minor_words_per_event\": %.2f}\n%!"
    name events wall_s rate minor_words_per_event

let measure name f =
  Gc.full_major ();
  let mw0 = Gc.minor_words () in
  let t0 = Unix.gettimeofday () in
  let events = f () in
  let wall_s = Unix.gettimeofday () -. t0 in
  let mw = Gc.minor_words () -. mw0 in
  pp_sample
    {
      name;
      events;
      wall_s;
      minor_words_per_event = mw /. float_of_int (max 1 events);
    }

let heap_churn () =
  let e = Engine.create () in
  let state = ref 42L in
  let fired = ref 0 in
  let rec tick () =
    incr fired;
    if !fired + 1000 <= n_events then
      Engine.schedule_after e (next_dt state) tick
  in
  for _ = 1 to 1000 do
    Engine.schedule_after e (next_dt state) tick
  done;
  Engine.run e;
  Engine.events_processed e

let ring_churn () =
  let e = Engine.create () in
  let fired = ref 0 in
  let rec tick () =
    incr fired;
    if !fired < n_events then Engine.schedule_after e 0.0 tick
  in
  Engine.schedule_after e 0.0 tick;
  Engine.run e;
  Engine.events_processed e

let ping_pong () =
  let e = Engine.create () in
  let a = Mailbox.create e and b = Mailbox.create e in
  let rounds = n_events / 4 in
  Proc.spawn e (fun () ->
      for _ = 1 to rounds do
        Mailbox.send a 1;
        ignore (Mailbox.recv b : int)
      done);
  Proc.spawn e (fun () ->
      for _ = 1 to rounds do
        let v = Mailbox.recv a in
        Mailbox.send b v
      done);
  Engine.run e;
  Engine.events_processed e

let cancel_storm () =
  let e = Engine.create () in
  let rounds = max 1 (n_events / 10_000) in
  let per_round = 10_000 in
  for _ = 1 to rounds do
    let timers =
      List.init per_round (fun i ->
          Engine.after e (1e-3 +. (float_of_int i *. 1e-6)) (fun () -> ()))
    in
    List.iteri
      (fun i tm -> if i mod 10 <> 0 then Engine.cancel tm)
      timers;
    Engine.run_until e (Engine.now e +. 1.0)
  done;
  rounds * per_round

let fig3_cell () =
  let spec = Option.get (Oodb_core.Experiments.find "fig3") in
  let cfg = Oodb_core.Experiments.cfg_of spec in
  let params = Oodb_core.Experiments.params_of spec ~write_prob:0.1 in
  let r =
    Oodb_core.Runner.run ~warmup:2.0 ~measure:5.0 ~cfg
      ~algo:Oodb_core.Algo.PS_AA ~params ()
  in
  (* Tie the figure to something real so the cell can't be optimized
     into a no-op: commits must be positive for the run to count. *)
  assert (r.Oodb_core.Runner.commits > 0);
  r.Oodb_core.Runner.commits

let () =
  Printf.printf "# engine_bench: N=%d (ENGINE_BENCH_N to change)\n%!" n_events;
  measure "heap_churn" heap_churn;
  measure "ring_churn" ring_churn;
  measure "ping_pong" ping_pong;
  measure "cancel_storm" cancel_storm;
  measure "fig3_cell" fig3_cell

(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (Section 5) and registers one Bechamel timing test per
   table/figure.

   - The REPRODUCTION part runs the full (write probability x algorithm)
     sweep behind each figure and prints the throughput tables the paper
     plots.  Sweeps are described as harness jobs and fanned out over a
     domain pool: `BENCH_JOBS` (default: cores - 1) sets the worker
     count, and results are byte-identical for any setting.
     `BENCH_TIME_SCALE` (default 1.0) scales the simulated
     warm-up/measurement windows: set 0.1 for a quick smoke pass.
     `BENCH_FIGS="fig3 fig4"` restricts the set.
   - The TIMING part (skipped when `BENCH_SKIP_TIMING` is set) uses
     Bechamel to measure the wall-clock cost of one representative
     simulation cell per figure. *)

open Bechamel
open Toolkit
open Oodb_core

let time_scale =
  match Sys.getenv_opt "BENCH_TIME_SCALE" with
  | Some s -> (try float_of_string s with _ -> 1.0)
  | None -> 1.0

let figure_filter =
  match Sys.getenv_opt "BENCH_FIGS" with
  | None | Some "" -> None
  | Some s -> Some (String.split_on_char ' ' s)

let njobs =
  match Sys.getenv_opt "BENCH_JOBS" with
  | Some s -> ( try max 1 (int_of_string s) with _ -> Harness.Pool.default_jobs ())
  | None -> Harness.Pool.default_jobs ()

let pool_run jobs = Harness.Pool.run ~jobs:njobs jobs

let wanted id =
  match figure_filter with None -> true | Some ids -> List.mem id ids

(* --- Paper-vs-measured annotations ------------------------------------- *)

let expectation = function
  | "fig3" ->
    "paper: PS-AA best once updates appear; PS-OA next; PS suffers false \
     sharing; PS-OO pays per-object callbacks; OS worst (message-bound)"
  | "fig4" ->
    "paper: high locality removes PS's contention problem; PS ~ PS-AA at \
     top, object-grain variants fall behind on message overhead"
  | "fig6" ->
    "paper: PS degrades below OS beyond wp~0.1; PS-AA slightly above \
     PS-OA, then PS-OO"
  | "fig7" ->
    "paper: like fig4 - only PS-AA tracks PS at high write probabilities"
  | "fig8" -> "paper: like fig6 with everything amplified by contention"
  | "fig9" ->
    "paper: the one case where PS beats PS-AA at high write probability \
     (page conflicts imply object conflicts; PS-AA only adds deadlocks)"
  | "fig10" ->
    "paper: no contention - PS and PS-AA (page-grain grants) on top; \
     PS-OA/PS-OO pay object write-lock messages; OS worst"
  | "fig11" ->
    "paper: pure false sharing - PS-OO competitive/best over part of the \
     range; page-callback variants ping-pong hot pages"
  | "fig12" | "fig13" | "fig14" ->
    "paper: x9 scaling preserves the relative ordering (results shown \
     normalized to PS-AA)"
  | _ -> ""

(* --- Reproduction tables ------------------------------------------------ *)

let print_tables () =
  if wanted "table1" then begin
    Format.printf "=== Table 1: system and overhead parameters ===@.";
    Format.printf "%a@.@." Config.pp Config.default
  end;
  if wanted "table2" then begin
    Format.printf "=== Table 2: workload parameters ===@.";
    Format.printf "%a@.@." Report.pp_workload_table Config.default
  end;
  if wanted "fig5" then begin
    Format.printf "=== Figure 5 (analytic) ===@.";
    Format.printf "%a@.@." Report.pp_figure5 (Experiments.figure5 ())
  end

let run_figures () =
  List.iter
    (fun (spec : Experiments.spec) ->
      if wanted spec.id then begin
        Format.printf "=== %s: %s ===@." spec.id spec.title;
        let note = expectation spec.id in
        if note <> "" then Format.printf "(%s)@." note;
        let t0 = Unix.gettimeofday () in
        let series = Harness.Sweep.run_spec ~time_scale ~jobs:njobs spec in
        Format.printf "%a@." Report.pp_series series;
        Format.printf "[%s took %.1fs wall]@.@." spec.id
          (Unix.gettimeofday () -. t0);
        Format.print_flush ()
      end)
    Experiments.all

(* --- Bechamel timing tests ---------------------------------------------- *)

(* One representative cell per figure: PS-AA at write probability 0.1,
   with a deliberately short simulated window so a Bechamel sample is
   cheap. *)
let cell_test (spec : Experiments.spec) =
  let cfg = Experiments.cfg_of spec in
  let params = Experiments.params_of spec ~write_prob:0.1 in
  Test.make ~name:spec.id
    (Staged.stage (fun () ->
         ignore
           (Runner.run ~warmup:2.0 ~measure:5.0 ~cfg ~algo:Algo.PS_AA ~params
              () : Runner.result)))

let table_test name f = Test.make ~name (Staged.stage f)

let timing_tests () =
  let figure_tests = List.map cell_test Experiments.all in
  let aux =
    [
      table_test "table1" (fun () ->
          ignore (Format.asprintf "%a" Config.pp Config.default : string));
      table_test "table2" (fun () ->
          ignore
            (Format.asprintf "%a" Report.pp_workload_table Config.default
              : string));
      table_test "fig5" (fun () ->
          ignore (Experiments.figure5 () : (int * (float * float) list) list));
    ]
  in
  Test.make_grouped ~name:"oodb" (aux @ figure_tests)

let run_timing () =
  Format.printf "=== Bechamel timings (one PS-AA cell per figure) ===@.";
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:50 ~quota:(Time.second 1.0) ~stabilize:false
      ~kde:None ()
  in
  let raw = Benchmark.all cfg instances (timing_tests ()) in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows = Hashtbl.fold (fun name v acc -> (name, v) :: acc) results [] in
  List.iter
    (fun (name, ols_result) ->
      match Analyze.OLS.estimates ols_result with
      | Some [ ns ] ->
        Format.printf "%-24s %10.3f ms/run@." name (ns /. 1e6)
      | Some _ | None -> Format.printf "%-24s (no estimate)@." name)
    (List.sort compare rows)

let run_sensitivity () =
  Format.printf "=== Section 5.6.2 sensitivity sweeps ===@.";
  let t0 = Unix.gettimeofday () in
  List.iter
    (fun table ->
      Format.printf "%a@." Sensitivity.pp_rows table;
      Format.print_flush ())
    (Sensitivity.all ~time_scale ~run:pool_run ());
  Format.printf "[sensitivity took %.1fs wall]@.@." (Unix.gettimeofday () -. t0)

let run_ablations () =
  Format.printf "=== Ablations (Section 6 variants and design choices) ===@.";
  let t0 = Unix.gettimeofday () in
  List.iter
    (fun table ->
      Format.printf "%a@." Extensions.Ablations.pp_rows table;
      Format.print_flush ())
    (Extensions.Ablations.all ~time_scale ~run:pool_run ());
  Format.printf "[ablations took %.1fs wall]@.@." (Unix.gettimeofday () -. t0)

let () =
  Format.printf
    "Fine-Grained Sharing in a Page Server OODBMS - reproduction benches@.";
  Format.printf
    "time scale %.2f (BENCH_TIME_SCALE to change), %d worker domain(s) \
     (BENCH_JOBS to change)@.@."
    time_scale njobs;
  print_tables ();
  run_figures ();
  if Sys.getenv_opt "BENCH_SKIP_SENSITIVITY" = None then run_sensitivity ();
  if Sys.getenv_opt "BENCH_SKIP_ABLATIONS" = None then run_ablations ();
  if Sys.getenv_opt "BENCH_SKIP_TIMING" = None then run_timing ()

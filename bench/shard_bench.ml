(* Sharded-server benchmark: the fig3 reference cell (PS-AA, write
   probability 0.1) at 1, 2 and 4 partitioned servers, reporting
   simulator events/sec (host-side cost of the topology) alongside the
   simulated throughput and response p99 (model-side effect).

   Each line of output is a JSON object; paste the numbers into
   BENCH_shard.json (see that file for the recording convention).

   SHARD_BENCH_MEASURE scales the simulated measurement window in
   seconds (default 60; CI smoke uses 5).

   Regenerating BENCH_shard.json:

     dune build bench/shard_bench.exe
     for i in 1 2 3 4 5; do
       SHARD_BENCH_MEASURE=120 ./_build/default/bench/shard_bench.exe
     done

   Take the best events_per_sec per servers count (best-of-5 suppresses
   scheduler noise on a busy 1-core container).  For the regression
   check against the unsharded code, build the pre-shard commit's
   oodbsim in a worktree and alternate it run-for-run against the new
   binary at --servers 1 on the same cell, so both see the same machine
   conditions; the servers=1 event schedule is byte-identical, making
   wall time the only degree of freedom. *)

open Oodb_core

let measure_s =
  match Sys.getenv_opt "SHARD_BENCH_MEASURE" with
  | Some s -> (try max 1.0 (float_of_string s) with _ -> 60.0)
  | None -> 60.0

let warmup_s = 5.0
let seed = 42

let cell ~servers =
  let spec = Option.get (Experiments.find "fig3") in
  let cfg = { (Experiments.cfg_of spec) with Config.servers } in
  let params = Experiments.params_of spec ~write_prob:0.1 in
  let sys = Model.create ~cfg ~algo:Algo.PS_AA ~params ~seed in
  Netlayer.install_edge_exchange sys;
  Client.start sys;
  Crash.install sys;
  let engine = sys.Model.engine in
  Gc.full_major ();
  let t0 = Unix.gettimeofday () in
  Simcore.Engine.run_until engine warmup_s;
  Metrics.reset sys.Model.metrics ~now:warmup_s;
  Simcore.Engine.run_until engine (warmup_s +. measure_s);
  let wall_s = Unix.gettimeofday () -. t0 in
  sys.Model.live <- false;
  let m = sys.Model.metrics in
  let commits = Metrics.commits m in
  assert (commits > 0);
  let events = Simcore.Engine.events_processed engine in
  Printf.printf
    "{\"bench\": \"shard_cell\", \"servers\": %d, \"events\": %d, \"wall_s\": \
     %.4f, \"events_per_sec\": %.0f, \"commits\": %d, \"tps\": %.2f, \
     \"resp_p99_ms\": %.1f}\n\
     %!"
    servers events wall_s
    (float_of_int events /. wall_s)
    commits
    (Metrics.throughput m ~now:(warmup_s +. measure_s))
    (1000.0 *. Metrics.response_quantile m 0.99)

let () =
  Printf.printf
    "# shard_bench: measure=%.0fs sim (SHARD_BENCH_MEASURE to change)\n%!"
    measure_s;
  List.iter (fun servers -> cell ~servers) [ 1; 2; 4 ]

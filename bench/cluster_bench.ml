(* Clustering-sensitivity benchmark: the generic OCB cell (write
   probability 0.2, theta 0) for every protocol under each placement
   policy, reporting simulator events/sec (host-side cost of the
   generic generator) alongside simulated throughput, response p99 and
   callback blocks (model-side effect of clustering quality).

   Each line of output is a JSON object; paste the numbers into
   BENCH_cluster.json (see that file for the recording convention).

   CLUSTER_BENCH_MEASURE scales the simulated measurement window in
   seconds (default 60; CI smoke uses 5).

   Regenerating BENCH_cluster.json:

     dune build bench/cluster_bench.exe
     for i in 1 2 3; do
       CLUSTER_BENCH_MEASURE=120 ./_build/default/bench/cluster_bench.exe
     done

   Take the best events_per_sec per cell; tps/resp_p99/cb_blocks are
   deterministic per cell, so any run supplies them.  The ordering to
   check: page-grain PS loses the most throughput from dfs to scatter,
   the object-grain protocols (OS, PS-OO) the least. *)

open Oodb_core

let measure_s =
  match Sys.getenv_opt "CLUSTER_BENCH_MEASURE" with
  | Some s -> (try max 1.0 (float_of_string s) with _ -> 60.0)
  | None -> 60.0

let warmup_s = 5.0
let seed = 42

let cell ~policy ~algo =
  let cfg = Config.default in
  let params = Experiments.cluster_params ~policy ~theta:0.0 in
  let quality =
    match params.Workload.Wparams.generic with
    | Some g -> Workload.Generic.quality g
    | None -> assert false
  in
  let sys = Model.create ~cfg ~algo ~params ~seed in
  Netlayer.install_edge_exchange sys;
  Client.start sys;
  Crash.install sys;
  let engine = sys.Model.engine in
  Gc.full_major ();
  let t0 = Unix.gettimeofday () in
  Simcore.Engine.run_until engine warmup_s;
  Metrics.reset sys.Model.metrics ~now:warmup_s;
  Simcore.Engine.run_until engine (warmup_s +. measure_s);
  let wall_s = Unix.gettimeofday () -. t0 in
  sys.Model.live <- false;
  let m = sys.Model.metrics in
  let commits = Metrics.commits m in
  assert (commits > 0);
  let events = Simcore.Engine.events_processed engine in
  Printf.printf
    "{\"bench\": \"cluster_cell\", \"policy\": \"%s\", \"quality\": %.4f, \
     \"algo\": \"%s\", \"events\": %d, \"wall_s\": %.4f, \"events_per_sec\": \
     %.0f, \"commits\": %d, \"tps\": %.2f, \"resp_p99_ms\": %.1f, \
     \"cb_blocks\": %d}\n\
     %!"
    (Workload.Placement.name policy)
    quality (Algo.to_string algo) events wall_s
    (float_of_int events /. wall_s)
    commits
    (Metrics.throughput m ~now:(warmup_s +. measure_s))
    (1000.0 *. Metrics.response_quantile m 0.99)
    (Metrics.callback_blocks m)

let () =
  Printf.printf
    "# cluster_bench: measure=%.0fs sim (CLUSTER_BENCH_MEASURE to change)\n%!"
    measure_s;
  List.iter
    (fun policy ->
      List.iter (fun algo -> cell ~policy ~algo) Algo.all)
    Experiments.cluster_policies

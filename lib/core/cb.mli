(** Client-side handling of callback requests (Section 3).

    A callback behaves like a lock request against the client's local
    locks: if the target conflicts with the transaction running at the
    client, the callback blocks until that transaction terminates (the
    waits-for graph gets an edge from the remote writer to the local
    transaction, so distributed deadlocks through callbacks are
    detected).  The four kinds implement the four protocols' policies:

    - [Purge_page] (PS): purge the whole page;
    - [Purge_obj] (OS): purge the object;
    - [Mark_obj] (PS-OO): mark just the object unavailable;
    - [Adaptive] (PS-OA, PS-AA): purge the page when no object on it is
      in use, otherwise mark the object. *)

open Storage

type kind =
  | Purge_page of Ids.page
  | Purge_obj of Ids.Oid.t
  | Mark_obj of Ids.Oid.t
  | Adaptive of Ids.Oid.t

type result =
  | Purged  (** whole page (or the object, for OS) dropped *)
  | Marked  (** only the target object made unavailable *)
  | Not_cached  (** the copy was already gone *)

val handle :
  Model.sys ->
  sv:Model.server ->
  client:int ->
  writer:Locking.Lock_types.txn ->
  kind ->
  result
(** Process one callback at [client] on behalf of the waiting [writer]
    transaction, whose wait is registered at [sv] — the server owning
    the contested page.  May block the calling fiber behind the
    client's running transaction; the resulting waits-for edge is added
    to [sv]'s graph. *)

(** Simulation output metrics.

    The primary metric is throughput (committed transactions per
    second); response times carry 90% batch-means confidence intervals
    as in Section 5.1.  The auxiliary counters cover the quantities the
    paper's analysis refers to: message counts by class, disk I/Os,
    lock waits, deadlock aborts, callbacks, merges, and PS-AA
    de-escalations. *)

type msg_class =
  | M_read_req
  | M_read_reply
  | M_write_req
  | M_write_reply
  | M_callback
  | M_callback_reply
  | M_deescalate
  | M_deescalate_reply
  | M_dirty_data  (** dirty page/object shipped outside commit *)
  | M_commit_data  (** dirty data shipped at commit *)
  | M_commit
  | M_commit_reply
  | M_abort
  | M_abort_reply
  | M_cb_forward
      (** callback forwarded owner-server → home-server (servers > 1) *)
  | M_edge_exchange
      (** waits-for edge shipped server → deadlock coordinator
          (servers > 1) *)
  | M_recover
      (** server-restart recovery traffic: reconnect requests and
          client copy-table reports (the only class a recovering
          server admits) *)

val msg_class_name : msg_class -> string
val all_msg_classes : msg_class list

val class_index : msg_class -> int
(** Dense index, in [all_msg_classes] order (for the per-class
    histogram array). *)

type t

type hist_snapshot = {
  h_response : Telemetry.Histogram.t;
  h_lock_wait : Telemetry.Histogram.t;
  h_cb_round : Telemetry.Histogram.t;
  h_msg_latency : Telemetry.Histogram.t array;
      (** per message class, indexed like [all_msg_classes] *)
  h_retry_wait : Telemetry.Histogram.t;
      (** extra latency of sends that needed at least one retry before
          succeeding (timeout-to-success) *)
  h_msg_retries : int array;
      (** per-class timeout-driven resend counts, indexed like
          [all_msg_classes] *)
}
(** Copies of the always-on latency histograms (see lib/telemetry),
    decoupled from the live counters so they survive the run and can
    be merged across sweep cells. *)

val create : unit -> t

val note_msg : t -> msg_class -> bytes:int -> unit
val note_commit : t -> response:float -> unit

val note_msg_latency : t -> msg_class -> duration:float -> unit
(** Whole send latency of one logical message, retransmissions
    included (recorded once per send, unlike [note_msg] which counts
    each wire attempt). *)

val note_cb_round : t -> duration:float -> unit
(** One callback round-trip: from the server posting the callback to
    the target's acknowledgment being fully processed. *)

val note_msg_retry : t -> msg_class -> unit
(** One timeout-driven resend of a message (loss retransmission or
    down-server retry). *)

val note_retry_wait : t -> duration:float -> unit
(** A send that needed at least one retry finally succeeded after
    [duration] seconds (timeout-to-success latency). *)

val note_abort : t -> unit
val note_deadlock : t -> unit
val note_lock_wait : t -> duration:float -> unit
val note_callback_blocked : t -> unit
val note_merge : t -> objects:int -> unit
(** Server-side merge of a divergent incoming page copy. *)

val note_client_merge : t -> objects:int -> unit
(** Client-side merge when re-receiving a page it caches with
    uncommitted local updates. *)

val note_deescalation : t -> objects:int -> unit
val note_page_write_grant : t -> unit
val note_object_write_grant : t -> unit

val note_overflow : t -> unit
(** A size-changing update overflowed its page (Section 6.1 model). *)

val note_token_wait : t -> unit
(** A write blocked waiting for the page update token. *)

val note_token_bounce : t -> unit
(** The update token moved between clients, bouncing the page through
    the server. *)

val reset : t -> now:float -> unit
(** Clear everything measured so far (end of warm-up). *)

val commits : t -> int
val aborts : t -> int
val deadlocks : t -> int
val messages : t -> int
val messages_of : t -> msg_class -> int
val retries : t -> int
val retries_of : t -> msg_class -> int
val bytes : t -> int
val merges : t -> int
val client_merges : t -> int
val deescalations : t -> int
val page_write_grants : t -> int
val object_write_grants : t -> int
val lock_waits : t -> int
val callback_blocks : t -> int
val overflows : t -> int
val token_waits : t -> int
val token_bounces : t -> int

val throughput : t -> now:float -> float
(** Commits per second over the measurement window. *)

val snapshot_hists : t -> hist_snapshot

val response_quantile : t -> float -> float
(** Histogram-estimated response-time quantile (see
    {!Telemetry.Histogram.quantile} for the error bound). *)

val lock_wait_quantile : t -> float -> float
val cb_round_quantile : t -> float -> float
val retry_wait_quantile : t -> float -> float
val response_mean : t -> float
val response_ci90 : t -> float
val response_batches : t -> int
val avg_lock_wait : t -> float
val msgs_per_commit : t -> float

let algo_throughput (point : Experiments.point) algo =
  match List.assoc_opt algo point.results with
  | Some r -> r.Runner.throughput
  | None -> nan

let pp_header ppf =
  Format.fprintf ppf "%8s" "wp";
  List.iter (fun a -> Format.fprintf ppf "%9s" (Algo.to_string a)) Algo.all;
  Format.fprintf ppf "@,"

let pp_series ppf (s : Experiments.series) =
  Format.fprintf ppf "@[<v>%s: %s@," s.spec.Experiments.id
    s.spec.Experiments.title;
  Format.fprintf ppf "throughput (transactions/second)@,";
  pp_header ppf;
  List.iter
    (fun (p : Experiments.point) ->
      Format.fprintf ppf "%8.2f" p.write_prob;
      List.iter
        (fun a -> Format.fprintf ppf "%9.2f" (algo_throughput p a))
        Algo.all;
      Format.fprintf ppf "@,")
    s.points;
  if s.spec.Experiments.normalize then begin
    Format.fprintf ppf "normalized to PS-AA@,";
    pp_header ppf;
    List.iter
      (fun (p : Experiments.point) ->
        let base = algo_throughput p Algo.PS_AA in
        Format.fprintf ppf "%8.2f" p.write_prob;
        List.iter
          (fun a ->
            let v = algo_throughput p a in
            Format.fprintf ppf "%9.2f" (if base > 0.0 then v /. base else nan))
          Algo.all;
        Format.fprintf ppf "@,")
      s.points
  end;
  Format.fprintf ppf "@]"

let pp_series_detail ppf (s : Experiments.series) =
  Format.fprintf ppf "@[<v>%s details@," s.spec.Experiments.id;
  List.iter
    (fun (p : Experiments.point) ->
      List.iter
        (fun (a, (r : Runner.result)) ->
          Format.fprintf ppf
            "wp=%.2f %-6s tput=%6.2f resp=%6.0fms ci=%5.0fms msgs/c=%6.1f \
             aborts=%4d dlk=%3d srvCPU=%4.2f disk=%4.2f net=%4.2f deesc=%4d \
             merges=%4d pw/ow=%d/%d@,"
            p.write_prob (Algo.to_string a) r.throughput
            (1000.0 *. r.resp_mean) (1000.0 *. r.resp_ci90) r.msgs_per_commit
            r.aborts r.deadlocks r.server_cpu_util r.disk_util r.net_util
            r.deescalations r.merges r.page_write_grants r.object_write_grants)
        p.results)
    s.points;
  Format.fprintf ppf "@]"

(* --- Percentiles --------------------------------------------------------- *)

let pp_percentiles ppf (r : Runner.result) =
  Format.fprintf ppf
    "@[<v>percentiles (ms): response p50/p90/p99 %.0f/%.0f/%.0f, lock wait \
     p99 %.1f, callback round-trip p99 %.1f@]"
    (1000.0 *. r.resp_p50) (1000.0 *. r.resp_p90) (1000.0 *. r.resp_p99)
    (1000.0 *. r.lock_wait_p99)
    (1000.0 *. r.cb_round_p99);
  let h = r.hists.Metrics.h_msg_latency in
  let nonempty =
    List.filter
      (fun cls ->
        not (Telemetry.Histogram.is_empty h.(Metrics.class_index cls)))
      Metrics.all_msg_classes
  in
  if nonempty <> [] then begin
    Format.fprintf ppf "@\n@[<v>message-class p99 (ms):";
    List.iter
      (fun cls ->
        Format.fprintf ppf " %s=%.1f" (Metrics.msg_class_name cls)
          (1000.0
          *. Telemetry.Histogram.quantile h.(Metrics.class_index cls) 0.99))
      nonempty;
    Format.fprintf ppf "@]"
  end;
  (* Retry-wait percentiles appear only when some send actually needed a
     retry, so fault-free output is unchanged. *)
  let rw = r.hists.Metrics.h_retry_wait in
  if not (Telemetry.Histogram.is_empty rw) then begin
    Format.fprintf ppf
      "@\n@[<v>retried sends: n=%d, timeout-to-success p50/p99 %.0f/%.0f ms, \
       per class:"
      (Telemetry.Histogram.count rw)
      (1000.0 *. Telemetry.Histogram.quantile rw 0.50)
      (1000.0 *. Telemetry.Histogram.quantile rw 0.99);
    List.iter
      (fun cls ->
        let n = r.hists.Metrics.h_msg_retries.(Metrics.class_index cls) in
        if n > 0 then
          Format.fprintf ppf " %s=%d" (Metrics.msg_class_name cls) n)
      Metrics.all_msg_classes;
    Format.fprintf ppf "@]"
  end

(* Merge the per-cell response histograms of a series per algorithm, in
   point order — deterministic whatever pool executed the cells, since
   merging is order-invariant on counts and the iteration order is
   fixed by the job list. *)
let merged_response_hists (s : Experiments.series) =
  List.map
    (fun a ->
      let merged = Telemetry.Histogram.create () in
      List.iter
        (fun (p : Experiments.point) ->
          match List.assoc_opt a p.results with
          | Some r -> Telemetry.Histogram.merge ~into:merged r.Runner.hists.Metrics.h_response
          | None -> ())
        s.points;
      (a, merged))
    Algo.all

let pp_series_percentiles ppf (s : Experiments.series) =
  Format.fprintf ppf "@[<v>%s response-time percentiles (ms)@,"
    s.spec.Experiments.id;
  Format.fprintf ppf "%8s" "wp";
  List.iter
    (fun a ->
      Format.fprintf ppf "%21s" (Algo.to_string a ^ " p50/p90/p99"))
    Algo.all;
  Format.fprintf ppf "@,";
  List.iter
    (fun (p : Experiments.point) ->
      Format.fprintf ppf "%8.2f" p.write_prob;
      List.iter
        (fun a ->
          match List.assoc_opt a p.results with
          | Some r ->
            Format.fprintf ppf "%21s"
              (Printf.sprintf "%.0f/%.0f/%.0f" (1000.0 *. r.Runner.resp_p50)
                 (1000.0 *. r.Runner.resp_p90)
                 (1000.0 *. r.Runner.resp_p99))
          | None -> Format.fprintf ppf "%21s" "-")
        Algo.all;
      Format.fprintf ppf "@,")
    s.points;
  Format.fprintf ppf "merged across write probabilities@,";
  List.iter
    (fun (a, h) ->
      if not (Telemetry.Histogram.is_empty h) then
        Format.fprintf ppf
          "%-6s n=%-6d mean=%6.0fms p50=%6.0fms p90=%6.0fms p99=%6.0fms \
           max=%6.0fms@,"
          (Algo.to_string a)
          (Telemetry.Histogram.count h)
          (1000.0 *. Telemetry.Histogram.mean h)
          (1000.0 *. Telemetry.Histogram.quantile h 0.50)
          (1000.0 *. Telemetry.Histogram.quantile h 0.90)
          (1000.0 *. Telemetry.Histogram.quantile h 0.99)
          (1000.0 *. Telemetry.Histogram.max_value h))
    (merged_response_hists s);
  Format.fprintf ppf "@]"

let series_to_csv (s : Experiments.series) =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    "figure,write_prob,algo,servers,throughput,resp_ms,resp_ci_ms,commits,\
     aborts,deadlocks,msgs_per_commit,kbytes_per_commit,disk_ios,server_cpu,\
     client_cpu,disk_util,net_util,deescalations,merges,page_grants,\
     object_grants,resp_p50_ms,resp_p90_ms,resp_p99_ms,lock_wait_p99_ms,\
     cb_round_p99_ms,retries,retry_wait_p99_ms\n";
  List.iter
    (fun (p : Experiments.point) ->
      List.iter
        (fun (a, (r : Runner.result)) ->
          Buffer.add_string buf
            (Printf.sprintf
               "%s,%.3f,%s,%d,%.4f,%.1f,%.1f,%d,%d,%d,%.2f,%.2f,%d,%.3f,%.3f,%.3f,%.3f,%d,%d,%d,%d,%.1f,%.1f,%.1f,%.1f,%.1f,%d,%.1f\n"
               s.spec.Experiments.id p.write_prob (Algo.to_string a)
               r.Runner.n_servers r.Runner.throughput
               (1000.0 *. r.Runner.resp_mean)
               (1000.0 *. r.Runner.resp_ci90)
               r.Runner.commits r.Runner.aborts r.Runner.deadlocks
               r.Runner.msgs_per_commit r.Runner.kbytes_per_commit
               r.Runner.disk_ios r.Runner.server_cpu_util
               r.Runner.client_cpu_util r.Runner.disk_util r.Runner.net_util
               r.Runner.deescalations r.Runner.merges
               r.Runner.page_write_grants r.Runner.object_write_grants
               (1000.0 *. r.Runner.resp_p50)
               (1000.0 *. r.Runner.resp_p90)
               (1000.0 *. r.Runner.resp_p99)
               (1000.0 *. r.Runner.lock_wait_p99)
               (1000.0 *. r.Runner.cb_round_p99)
               r.Runner.retries
               (1000.0 *. r.Runner.retry_wait_p99)))
        p.results)
    s.points;
  Buffer.contents buf

(* --- Fault-rate sweep ---------------------------------------------------- *)

let fault_throughput (p : Experiments.fault_point) algo =
  match List.assoc_opt algo p.Experiments.fresults with
  | Some r -> r.Runner.throughput
  | None -> nan

let pp_fault_series ppf (s : Experiments.fault_series) =
  Format.fprintf ppf
    "@[<v>faultsweep: crash/loss/stall storm (HOTCOLD low, wp=0.10)@,";
  Format.fprintf ppf "throughput (transactions/second)@,";
  Format.fprintf ppf "%8s" "rate";
  List.iter (fun a -> Format.fprintf ppf "%9s" (Algo.to_string a)) Algo.all;
  Format.fprintf ppf "@,";
  List.iter
    (fun (p : Experiments.fault_point) ->
      Format.fprintf ppf "%8.3f" p.rate;
      List.iter
        (fun a -> Format.fprintf ppf "%9.2f" (fault_throughput p a))
        Algo.all;
      Format.fprintf ppf "@,")
    s.fpoints;
  Format.fprintf ppf "fault detail@,";
  List.iter
    (fun (p : Experiments.fault_point) ->
      List.iter
        (fun (a, (r : Runner.result)) ->
          Format.fprintf ppf
            "rate=%.3f %-6s tput=%6.2f commits=%5d aborts=%4d crashes=%3d \
             crash-aborts=%3d lost=%4d dup=%3d retrans=%4d stalls=%4d \
             recoveries=%3d rec=%5.0fms@,"
            p.rate (Algo.to_string a) r.Runner.throughput r.Runner.commits
            r.Runner.aborts r.Runner.crashes r.Runner.crash_aborts
            r.Runner.msg_losses r.Runner.msg_dups r.Runner.retransmits
            r.Runner.disk_stalls r.Runner.recoveries
            (1000.0 *. r.Runner.recovery_mean))
        p.fresults)
    s.fpoints;
  Format.fprintf ppf "@]"

let fault_series_to_csv (s : Experiments.fault_series) =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    "rate,algo,throughput,resp_ms,commits,aborts,deadlocks,crashes,\
     crash_aborts,msg_losses,msg_dups,retransmits,disk_stalls,\
     faults_injected,recoveries,recovery_ms,resp_p50_ms,resp_p99_ms,\
     lock_wait_p99_ms,retries,retry_wait_p99_ms\n";
  List.iter
    (fun (p : Experiments.fault_point) ->
      List.iter
        (fun (a, (r : Runner.result)) ->
          Buffer.add_string buf
            (Printf.sprintf
               "%.3f,%s,%.4f,%.1f,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%.1f,%.1f,%.1f,%.1f,%d,%.1f\n"
               p.rate (Algo.to_string a) r.Runner.throughput
               (1000.0 *. r.Runner.resp_mean)
               r.Runner.commits r.Runner.aborts r.Runner.deadlocks
               r.Runner.crashes r.Runner.crash_aborts r.Runner.msg_losses
               r.Runner.msg_dups r.Runner.retransmits r.Runner.disk_stalls
               r.Runner.faults_injected r.Runner.recoveries
               (1000.0 *. r.Runner.recovery_mean)
               (1000.0 *. r.Runner.resp_p50)
               (1000.0 *. r.Runner.resp_p99)
               (1000.0 *. r.Runner.lock_wait_p99)
               r.Runner.retries
               (1000.0 *. r.Runner.retry_wait_p99)))
        p.fresults)
    s.fpoints;
  Buffer.contents buf

(* --- Shard sweep --------------------------------------------------------- *)

let shard_throughput (p : Experiments.shard_point) algo =
  match List.assoc_opt algo p.Experiments.sresults with
  | Some r -> r.Runner.throughput
  | None -> nan

let pp_shard_series ppf (s : Experiments.shard_series) =
  Format.fprintf ppf
    "@[<v>shardsweep: partitioned page server (HOTCOLD low, wp=0.10)@,";
  Format.fprintf ppf "throughput (transactions/second)@,";
  Format.fprintf ppf "%8s" "servers";
  List.iter (fun a -> Format.fprintf ppf "%9s" (Algo.to_string a)) Algo.all;
  Format.fprintf ppf "@,";
  List.iter
    (fun (p : Experiments.shard_point) ->
      Format.fprintf ppf "%8d" p.servers;
      List.iter
        (fun a -> Format.fprintf ppf "%9.2f" (shard_throughput p a))
        Algo.all;
      Format.fprintf ppf "@,")
    s.spoints;
  Format.fprintf ppf "shard detail@,";
  List.iter
    (fun (p : Experiments.shard_point) ->
      List.iter
        (fun (a, (r : Runner.result)) ->
          Format.fprintf ppf
            "srv=%d %-6s tput=%6.2f commits=%5d aborts=%4d dlk=%3d \
             msgs/c=%6.1f fwd=%5d edges=%5d srvCPU=%4.2f disk=%4.2f \
             net=%4.2f@,"
            p.servers (Algo.to_string a) r.Runner.throughput r.Runner.commits
            r.Runner.aborts r.Runner.deadlocks r.Runner.msgs_per_commit
            r.Runner.cb_forwards r.Runner.edge_exchanges
            r.Runner.server_cpu_util r.Runner.disk_util r.Runner.net_util)
        p.sresults)
    s.spoints;
  Format.fprintf ppf "@]"

let shard_series_to_csv (s : Experiments.shard_series) =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    "servers,algo,throughput,resp_ms,commits,aborts,deadlocks,\
     msgs_per_commit,cb_forwards,edge_exchanges,disk_ios,server_cpu,\
     disk_util,net_util,resp_p50_ms,resp_p99_ms,lock_wait_p99_ms\n";
  List.iter
    (fun (p : Experiments.shard_point) ->
      List.iter
        (fun (a, (r : Runner.result)) ->
          Buffer.add_string buf
            (Printf.sprintf
               "%d,%s,%.4f,%.1f,%d,%d,%d,%.2f,%d,%d,%d,%.3f,%.3f,%.3f,%.1f,%.1f,%.1f\n"
               p.servers (Algo.to_string a) r.Runner.throughput
               (1000.0 *. r.Runner.resp_mean)
               r.Runner.commits r.Runner.aborts r.Runner.deadlocks
               r.Runner.msgs_per_commit r.Runner.cb_forwards
               r.Runner.edge_exchanges r.Runner.disk_ios
               r.Runner.server_cpu_util r.Runner.disk_util r.Runner.net_util
               (1000.0 *. r.Runner.resp_p50)
               (1000.0 *. r.Runner.resp_p99)
               (1000.0 *. r.Runner.lock_wait_p99)))
        p.sresults)
    s.spoints;
  Buffer.contents buf

(* --- Server-fault sweep -------------------------------------------------- *)

let srvfault_throughput (p : Experiments.srvfault_point) algo =
  match List.assoc_opt algo p.Experiments.svresults with
  | Some r -> r.Runner.throughput
  | None -> nan

let pp_srvfault_series ppf (s : Experiments.srvfault_series) =
  Format.fprintf ppf
    "@[<v>srvfaultsweep: server crash & recovery (HOTCOLD low, wp=0.10, 2 \
     servers)@,";
  Format.fprintf ppf "throughput (transactions/second)@,";
  Format.fprintf ppf "%8s" "srate";
  List.iter (fun a -> Format.fprintf ppf "%9s" (Algo.to_string a)) Algo.all;
  Format.fprintf ppf "@,";
  List.iter
    (fun (p : Experiments.srvfault_point) ->
      Format.fprintf ppf "%8.3f" p.srate;
      List.iter
        (fun a -> Format.fprintf ppf "%9.2f" (srvfault_throughput p a))
        Algo.all;
      Format.fprintf ppf "@,")
    s.svpoints;
  Format.fprintf ppf "server-fault detail@,";
  List.iter
    (fun (p : Experiments.srvfault_point) ->
      List.iter
        (fun (a, (r : Runner.result)) ->
          Format.fprintf ppf
            "srate=%.3f %-6s tput=%6.2f commits=%5d aborts=%4d crashes=%3d \
             recoveries=%3d rec=%6.0fms giveaways=%4d retries=%5d \
             rwait99=%5.0fms p99=%6.0fms@,"
            p.srate (Algo.to_string a) r.Runner.throughput r.Runner.commits
            r.Runner.aborts r.Runner.srv_crashes r.Runner.srv_recoveries
            (1000.0 *. r.Runner.srv_recovery_mean)
            r.Runner.srv_giveaways r.Runner.retries
            (1000.0 *. r.Runner.retry_wait_p99)
            (1000.0 *. r.Runner.resp_p99))
        p.svresults)
    s.svpoints;
  Format.fprintf ppf "@]"

let srvfault_series_to_csv (s : Experiments.srvfault_series) =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    "srate,algo,throughput,resp_ms,commits,aborts,deadlocks,srv_crashes,\
     srv_recoveries,srv_recovery_ms,srv_giveaways,retries,retry_wait_p99_ms,\
     resp_p50_ms,resp_p99_ms,lock_wait_p99_ms\n";
  List.iter
    (fun (p : Experiments.srvfault_point) ->
      List.iter
        (fun (a, (r : Runner.result)) ->
          Buffer.add_string buf
            (Printf.sprintf
               "%.3f,%s,%.4f,%.1f,%d,%d,%d,%d,%d,%.1f,%d,%d,%.1f,%.1f,%.1f,%.1f\n"
               p.srate (Algo.to_string a) r.Runner.throughput
               (1000.0 *. r.Runner.resp_mean)
               r.Runner.commits r.Runner.aborts r.Runner.deadlocks
               r.Runner.srv_crashes r.Runner.srv_recoveries
               (1000.0 *. r.Runner.srv_recovery_mean)
               r.Runner.srv_giveaways r.Runner.retries
               (1000.0 *. r.Runner.retry_wait_p99)
               (1000.0 *. r.Runner.resp_p50)
               (1000.0 *. r.Runner.resp_p99)
               (1000.0 *. r.Runner.lock_wait_p99)))
        p.svresults)
    s.svpoints;
  Buffer.contents buf

(* --- Cluster sweep -------------------------------------------------------- *)

let cluster_throughput (p : Experiments.cluster_point) algo =
  match List.assoc_opt algo p.Experiments.cresults with
  | Some r -> r.Runner.throughput
  | None -> nan

let pp_cluster_series ppf (s : Experiments.cluster_series) =
  Format.fprintf ppf
    "@[<v>clustersweep: OCB generic workload, placement x skew (wp=0.20)@,";
  Format.fprintf ppf "throughput (transactions/second)@,";
  Format.fprintf ppf "%8s%6s%6s" "policy" "z" "qual";
  List.iter (fun a -> Format.fprintf ppf "%9s" (Algo.to_string a)) Algo.all;
  Format.fprintf ppf "@,";
  List.iter
    (fun (p : Experiments.cluster_point) ->
      Format.fprintf ppf "%8s%6.2f%6.2f"
        (Workload.Placement.name p.cpolicy)
        p.ctheta p.cquality;
      List.iter
        (fun a -> Format.fprintf ppf "%9.2f" (cluster_throughput p a))
        Algo.all;
      Format.fprintf ppf "@,")
    s.cpoints;
  Format.fprintf ppf "cluster detail@,";
  List.iter
    (fun (p : Experiments.cluster_point) ->
      List.iter
        (fun (a, (r : Runner.result)) ->
          Format.fprintf ppf
            "%s z=%.2f q=%.2f %-6s tput=%6.2f commits=%5d aborts=%4d \
             dlk=%3d cb-blk=%5d msgs/c=%6.1f p99=%6.1fms@,"
            (Workload.Placement.name p.cpolicy)
            p.ctheta p.cquality (Algo.to_string a) r.Runner.throughput
            r.Runner.commits r.Runner.aborts r.Runner.deadlocks
            r.Runner.callback_blocks r.Runner.msgs_per_commit
            (1000.0 *. r.Runner.resp_p99))
        p.cresults)
    s.cpoints;
  Format.fprintf ppf "@]"

let cluster_series_to_csv (s : Experiments.cluster_series) =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    "policy,theta,quality,algo,throughput,resp_ms,commits,aborts,deadlocks,\
     callback_blocks,msgs_per_commit,resp_p50_ms,resp_p99_ms,\
     lock_wait_p99_ms\n";
  List.iter
    (fun (p : Experiments.cluster_point) ->
      List.iter
        (fun (a, (r : Runner.result)) ->
          Buffer.add_string buf
            (Printf.sprintf
               "%s,%.2f,%.4f,%s,%.4f,%.1f,%d,%d,%d,%d,%.2f,%.1f,%.1f,%.1f\n"
               (Workload.Placement.name p.cpolicy)
               p.ctheta p.cquality (Algo.to_string a) r.Runner.throughput
               (1000.0 *. r.Runner.resp_mean)
               r.Runner.commits r.Runner.aborts r.Runner.deadlocks
               r.Runner.callback_blocks r.Runner.msgs_per_commit
               (1000.0 *. r.Runner.resp_p50)
               (1000.0 *. r.Runner.resp_p99)
               (1000.0 *. r.Runner.lock_wait_p99)))
        p.cresults)
    s.cpoints;
  Buffer.contents buf

let pp_figure5 ppf curves =
  Format.fprintf ppf
    "@[<v>fig5: per-page update probability vs per-object write probability@,";
  Format.fprintf ppf "%8s" "wp";
  List.iter (fun (k, _) -> Format.fprintf ppf "%9s" (Printf.sprintf "k=%d" k)) curves;
  Format.fprintf ppf "@,";
  (match curves with
  | [] -> ()
  | (_, first) :: _ ->
    List.iteri
      (fun i (w, _) ->
        Format.fprintf ppf "%8.2f" w;
        List.iter
          (fun (_, pts) ->
            let _, v = List.nth pts i in
            Format.fprintf ppf "%9.3f" v)
          curves;
        Format.fprintf ppf "@,")
      first);
  Format.fprintf ppf "@]"

let pp_workload_table ppf cfg =
  let open Workload in
  Format.fprintf ppf "@[<v>";
  List.iter
    (fun which ->
      List.iter
        (fun locality ->
          let p =
            Presets.make which ~db_pages:cfg.Config.db_pages
              ~objects_per_page:cfg.Config.objects_per_page
              ~num_clients:cfg.Config.num_clients ~locality ~write_prob:0.0
          in
          let c0 = p.Wparams.clients.(0) in
          Format.fprintf ppf
            "%-20s %-4s transSize=%2d locality=%d-%d hot=%s hotProb=%.0f%% \
             cold=[%d,%d]%s@,"
            p.Wparams.name
            (match locality with Presets.Low -> "low" | Presets.High -> "high")
            p.Wparams.trans_size p.Wparams.page_locality.Wparams.lo
            p.Wparams.page_locality.Wparams.hi
            (match c0.Wparams.hot_region with
            | Some r -> Printf.sprintf "[%d,%d]/client" r.Wparams.first r.Wparams.last
            | None -> "none")
            (100.0 *. c0.Wparams.hot_access_prob)
            c0.Wparams.cold_region.Wparams.first
            c0.Wparams.cold_region.Wparams.last
            (if c0.Wparams.cold_write_prob = 0.0 && c0.Wparams.hot_write_prob = 0.0
             then
               match which with
               | Presets.Private_ | Presets.Interleaved_private ->
                 " (cold read-only)"
               | _ -> ""
             else ""))
        [ Presets.Low; Presets.High ])
    Presets.all;
  Format.fprintf ppf "@]"

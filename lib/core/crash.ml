open Storage
open Simcore
open Model
open Locking

let crash_client sys cid =
  let cs = sys.clients in
  if cs.up.(cid) then begin
    (* Bump the epoch first: every fiber of the old incarnation is
       suspended right now (this runs in the driver fiber), and the
       liveness guards it hits on resume must already see the change. *)
    cs.up.(cid) <- false;
    cs.epoch.(cid) <- cs.epoch.(cid) + 1;
    if cs.crashed_at.(cid) = None then
      cs.crashed_at.(cid) <- Some (Engine.now sys.engine);
    Faults.note_crash sys.faults;
    Trace.event sys "client %d crashed" cid;
    (* Closes any open txn span, then opens the "down" recovery-epoch
       span, ended by the restart hook below. *)
    Model.tl_hook sys (fun x ->
        Tl.crash x ~client:cid ~now:(Engine.now sys.engine));
    (match cs.running.(cid) with
    | Some txn ->
      Faults.note_crash_abort sys.faults;
      (* No-op if the server already committed the transaction (the
         crash then only lost the reply): committed outcomes stick. *)
      Model.oracle_hook sys (fun o -> Oracle.History.abort o ~tid:txn.tid);
      (* The wait must be cancelled before the transaction is ended:
         cancellation dequeues its pending lock/callback/token request
         and schedules the fiber's abort resumption.  The graphs are
         linked, so cancelling through any member finds the wait
         wherever it is registered. *)
      Waits_for.cancel_wait sys.servers.(0).wfg txn.tid;
      Srv.release_txn_locks sys txn;
      ignore (Model.clear_running sys cid)
    | None -> ());
    (* Callbacks blocked on the dead transaction retry immediately. *)
    let hooks = cs.end_hooks.(cid) in
    cs.end_hooks.(cid) <- [];
    List.iter (fun resume -> resume ()) hooks;
    (* The buffer pool is volatile: every cached copy is gone.  Raw
       removal, not Cache_ops.drop_* — those piggyback deregistration
       messages, but a dead workstation sends nothing; the server purges
       its registrations unilaterally below. *)
    List.iter
      (fun (p, _) -> ignore (Lru.remove cs.cache.(cid) p))
      (Lru.to_list cs.cache.(cid));
    List.iter
      (fun (o, _) -> ignore (Lru.remove cs.ocache.(cid) o))
      (Lru.to_list cs.ocache.(cid));
    Model.oracle_hook sys (fun o -> Oracle.History.purge_client o ~client:cid);
    (* Purging also clears references for copies still in transit, so a
       pending callback's resend loop terminates instead of re-calling a
       site that will never install the copy.  Every partition may hold
       registrations for the site, so sweep them all. *)
    Array.iter
      (fun sv ->
        ignore (Copy_table.purge_client sv.pcopies ~client:cid);
        ignore (Copy_table.purge_client sv.ocopies ~client:cid);
        (* Write tokens owned by the site return to the server pool. *)
        let owned =
          Hashtbl.fold
            (fun p (oc, _) acc -> if oc = cid then p :: acc else acc)
            sv.token_owner []
        in
        List.iter (Hashtbl.remove sv.token_owner) owned)
      sys.servers;
    Faults.run_hook sys.faults "client-crash"
  end

let restart_client sys cid =
  let cs = sys.clients in
  if not cs.up.(cid) then begin
    cs.up.(cid) <- true;
    Trace.event sys "client %d restarted (cold cache)" cid;
    Model.tl_hook sys (fun x ->
        Tl.restart x ~client:cid ~now:(Engine.now sys.engine));
    Client.start_one sys cid
  end

(* --- Server failure ---------------------------------------------------- *)

(* A server crash loses everything volatile — buffer pool, lock tables,
   copy tables, token ownership, its waits-for partition — and keeps
   only the durable page images plus the redo-log prefix ([versions]
   and [log_records] survive).  Every transaction with in-flight or
   recorded state at the server is doomed: its next server interaction
   observes the doom and aborts locally (presumed abort), unwinding
   through the client's normal abort-and-retry path. *)
let crash_server sys sid =
  let sv = sys.servers.(sid) in
  if sv.srv_state = Srv_up then begin
    sv.srv_state <- Srv_down;
    sv.srv_crashed_at <- Engine.now sys.engine;
    Faults.note_srv_crash sys.faults;
    Trace.event sys "server %d crashed (%d unflushed log records)" sid
      sv.log_records;
    Model.tl_hook sys (fun x -> Tl.srv_crash x ~sid ~now:(Engine.now sys.engine));
    (* Doom every transaction that touched the server — pages read or
       written there (it may hold purged locks or rely on purged
       registrations), or an RPC currently executing there.  The wait
       must be cancelled before the tables are purged: cancellation
       dequeues the pending lock/callback/token request, so the
       releases below wake nobody doomed. *)
    (* Client-array order, not hashtable order: cancelling a wait
       schedules the victim fiber's resumption, so the iteration order
       here is part of the event schedule and must stay deterministic. *)
    let cs = sys.clients in
    for cid = 0 to cs.n - 1 do
      match cs.running.(cid) with
      | Some txn
        when (not txn.doomed)
             && (txn.rpc_sid = sid || List.mem sid (Srv.participants sys txn))
        ->
        txn.doomed <- true;
        Trace.event sys "txn %d doomed by crash of server %d" txn.tid sid;
        Waits_for.cancel_wait sys.servers.(0).wfg txn.tid
      | Some _ | None -> ()
    done;
    (* Purge the volatile tables.  Lock holders are swept through the
       table's own per-transaction maps (the object-lock index entries
       of cancelled waiters unwind in their own fibers).  All queues
       are empty of waiters by now, so the releases grant nothing. *)
    let holders table =
      let acc = ref [] in
      Lock_table.iter_holders table (fun _ h -> acc := h :: !acc);
      List.sort_uniq compare !acc
    in
    List.iter
      (fun tid ->
        List.iter
          (fun o -> unindex_obj_lock sv o)
          (Lock_table.locks_of sv.olocks ~txn:tid);
        Lock_table.release_all sv.olocks ~txn:tid)
      (holders sv.olocks);
    List.iter
      (fun tid -> Lock_table.release_all sv.plocks ~txn:tid)
      (holders sv.plocks);
    Hashtbl.reset sv.token_owner;
    for cid = 0 to cs.n - 1 do
      ignore (Copy_table.purge_client sv.pcopies ~client:cid);
      ignore (Copy_table.purge_client sv.ocopies ~client:cid)
    done;
    Buffer_pool.reset sv.sbuffer;
    Faults.run_hook sys.faults "server-crash"
  end

(* Count (and, unless sabotaged, re-register) the copies an up client
   caches from the crashed server's partition, mirroring exactly the
   coverage the audit's invariant 3 demands.  No suspension occurs
   inside: the enumeration and the registrations form one atomic
   snapshot of the client's cache, so a copy installed or dropped later
   is handled by the normal install/drop bookkeeping. *)
let reconstruct_client_copies sys sv cid =
  let cs = sys.clients in
  let register = not sys.cfg.Config.srv_skip_reconstruction in
  let rows = ref 0 in
  let owned p = Model.owner_sid sys p = sv.sid in
  if Algo.page_grain_copies sys.algo then
    Lru.iter cs.cache.(cid) (fun p _ ->
        if owned p then begin
          incr rows;
          if register then Copy_table.register sv.pcopies p ~client:cid
        end)
  else if sys.algo = Algo.OS then
    Lru.iter cs.ocache.(cid) (fun o _ ->
        if owned o.Ids.Oid.page then begin
          incr rows;
          if register then Copy_table.register sv.ocopies o ~client:cid
        end)
  else
    (* PS-OO: object-grain registrations for the available slots of
       each cached page. *)
    Lru.iter cs.cache.(cid) (fun p entry ->
        if owned p then
          for slot = 0 to sys.cfg.Config.objects_per_page - 1 do
            if not (Ids.Int_set.mem slot entry.unavailable) then begin
              incr rows;
              if register then
                Copy_table.register sv.ocopies
                  (Ids.Oid.make ~page:p ~slot)
                  ~client:cid
            end
          done);
  !rows

(* Restart: replay the redo-log tail bounded by the last flush, then
   rebuild the callback state with the surviving clients' help — each
   reconnects and re-ships its copy-table rows for the partition —
   and only then reopen for normal traffic.  During the recovery the
   server admits nothing but [M_recover] messages, so no grant can
   race the reconstruction. *)
let restart_server sys sid =
  let sv = sys.servers.(sid) in
  if sv.srv_state = Srv_down then begin
    sv.srv_state <- Srv_recovering;
    (* Phase 1: redo.  One log-device read plus per-record replay CPU;
       the flush cadence bounds how much tail can have accumulated. *)
    let records = sv.log_records in
    Trace.event sys "server %d recovering: replaying %d log records" sid
      records;
    Model.tl_hook sys (fun x ->
        Tl.srv_replay x ~sid ~records ~now:(Engine.now sys.engine));
    Resources.Cpu.system sv.scpu sys.cfg.Config.disk_overhead_inst;
    Resources.Disk_array.io sv.sdisks;
    if records > 0 then
      Resources.Cpu.system sv.scpu
        (float_of_int records *. sys.cfg.Config.redo_per_object_inst);
    sv.log_records <- 0;
    (* Phase 2: client-assisted callback reconstruction.  Each up
       client is asked to reconnect and re-ship its copy-table rows;
       the registration batch is atomic with the report. *)
    let total = ref 0 in
    let cs = sys.clients in
    for cid = 0 to cs.n - 1 do
      if cs.up.(cid) then begin
        Netlayer.control sys ~cls:Metrics.M_recover ~src:(Netlayer.Server sid)
          ~dst:(Netlayer.Client cid);
        let rows = reconstruct_client_copies sys sv cid in
        total := !total + rows;
        Netlayer.objs_data sys ~cls:Metrics.M_recover
          ~src:(Netlayer.Client cid) ~dst:(Netlayer.Server sid) ~count:rows;
        if rows > 0 then
          Resources.Cpu.system sv.scpu
            (float_of_int rows *. sys.cfg.Config.register_copy_inst)
      end
    done;
    Model.tl_hook sys (fun x ->
        Tl.srv_reconstruct x ~sid ~rows:!total ~now:(Engine.now sys.engine));
    (* Phase 3: reopen. *)
    sv.srv_state <- Srv_up;
    let now = Engine.now sys.engine in
    Faults.note_srv_recovery sys.faults ~latency:(now -. sv.srv_crashed_at);
    Trace.event sys
      "server %d reopened (%d copy rows reconstructed from %d clients)" sid
      !total
      (Array.fold_left (fun n up -> if up then n + 1 else n) 0 cs.up);
    Model.tl_hook sys (fun x -> Tl.srv_reopen x ~sid ~now);
    Faults.run_hook sys.faults "server-restart"
  end

let install sys =
  let f = sys.faults in
  if Faults.crash_faults f then begin
    let cs = sys.clients in
    for cid = 0 to cs.n - 1 do
      Proc.spawn sys.engine (fun () ->
          let restart_delay = (Faults.profile f).Faults.restart_delay in
          while sys.live do
            Proc.hold sys.engine (Faults.next_crash_delay f);
            if sys.live && cs.up.(cid) then begin
              crash_client sys cid;
              Proc.hold sys.engine restart_delay;
              if sys.live then restart_client sys cid
            end
          done)
    done
  end;
  if Faults.srv_faults f then
    Array.iter
      (fun sv ->
        (* Log-flush fiber: the durability point.  Every interval the
           accumulated redo tail is forced to disk (one I/O), bounding
           what a crash can leave to replay.  The counter is zeroed at
           the force point; records arriving during the I/O belong to
           the next window. *)
        Proc.spawn sys.engine (fun () ->
            let dt = (Faults.profile f).Faults.log_flush_interval in
            while sys.live do
              Proc.hold sys.engine dt;
              if sys.live && sv.srv_state = Srv_up && sv.log_records > 0 then begin
                sv.log_records <- 0;
                Resources.Cpu.system sv.scpu sys.cfg.Config.disk_overhead_inst;
                Resources.Disk_array.io sv.sdisks
              end
            done);
        (* Crash/restart driver: crashes only strike an up server, so a
           recovery is never itself interrupted and down spans stay
           serialized per server. *)
        Proc.spawn sys.engine (fun () ->
            let restart_delay = (Faults.profile f).Faults.srv_restart_delay in
            while sys.live do
              Proc.hold sys.engine (Faults.next_srv_crash_delay f);
              if sys.live && sv.srv_state = Srv_up then begin
                crash_server sys sv.sid;
                Proc.hold sys.engine restart_delay;
                if sys.live then restart_server sys sv.sid
              end
            done))
      sys.servers

open Storage
open Simcore
open Model
open Locking

let crash_client sys cid =
  let c = sys.clients.(cid) in
  if c.up then begin
    (* Bump the epoch first: every fiber of the old incarnation is
       suspended right now (this runs in the driver fiber), and the
       liveness guards it hits on resume must already see the change. *)
    c.up <- false;
    c.epoch <- c.epoch + 1;
    if c.crashed_at = None then
      c.crashed_at <- Some (Engine.now sys.engine);
    Faults.note_crash sys.faults;
    Trace.event sys "client %d crashed" cid;
    (* Closes any open txn span, then opens the "down" recovery-epoch
       span, ended by the restart hook below. *)
    Model.tl_hook sys (fun x ->
        Tl.crash x ~client:cid ~now:(Engine.now sys.engine));
    (match c.running with
    | Some txn ->
      Faults.note_crash_abort sys.faults;
      (* No-op if the server already committed the transaction (the
         crash then only lost the reply): committed outcomes stick. *)
      Model.oracle_hook sys (fun o -> Oracle.History.abort o ~tid:txn.tid);
      (* The wait must be cancelled before the transaction is ended:
         cancellation dequeues its pending lock/callback/token request
         and schedules the fiber's abort resumption.  The graphs are
         linked, so cancelling through any member finds the wait
         wherever it is registered. *)
      Waits_for.cancel_wait sys.servers.(0).wfg txn.tid;
      Srv.release_txn_locks sys txn;
      c.running <- None
    | None -> ());
    (* Callbacks blocked on the dead transaction retry immediately. *)
    let hooks = c.end_hooks in
    c.end_hooks <- [];
    List.iter (fun resume -> resume ()) hooks;
    (* The buffer pool is volatile: every cached copy is gone.  Raw
       removal, not Cache_ops.drop_* — those piggyback deregistration
       messages, but a dead workstation sends nothing; the server purges
       its registrations unilaterally below. *)
    List.iter (fun (p, _) -> ignore (Lru.remove c.cache p)) (Lru.to_list c.cache);
    List.iter
      (fun (o, _) -> ignore (Lru.remove c.ocache o))
      (Lru.to_list c.ocache);
    Model.oracle_hook sys (fun o -> Oracle.History.purge_client o ~client:cid);
    (* Purging also clears references for copies still in transit, so a
       pending callback's resend loop terminates instead of re-calling a
       site that will never install the copy.  Every partition may hold
       registrations for the site, so sweep them all. *)
    Array.iter
      (fun sv ->
        ignore (Copy_table.purge_client sv.pcopies ~client:cid);
        ignore (Copy_table.purge_client sv.ocopies ~client:cid);
        (* Write tokens owned by the site return to the server pool. *)
        let owned =
          Hashtbl.fold
            (fun p (oc, _) acc -> if oc = cid then p :: acc else acc)
            sv.token_owner []
        in
        List.iter (Hashtbl.remove sv.token_owner) owned)
      sys.servers;
    Faults.run_hook sys.faults "client-crash"
  end

let restart_client sys cid =
  let c = sys.clients.(cid) in
  if not c.up then begin
    c.up <- true;
    Trace.event sys "client %d restarted (cold cache)" cid;
    Model.tl_hook sys (fun x ->
        Tl.restart x ~client:cid ~now:(Engine.now sys.engine));
    Client.start_one sys cid
  end

let install sys =
  let f = sys.faults in
  if Faults.crash_faults f then
    Array.iter
      (fun c ->
        Proc.spawn sys.engine (fun () ->
            let restart_delay = (Faults.profile f).Faults.restart_delay in
            while sys.live do
              Proc.hold sys.engine (Faults.next_crash_delay f);
              if sys.live && c.up then begin
                crash_client sys c.cid;
                Proc.hold sys.engine restart_delay;
                if sys.live then restart_client sys c.cid
              end
            done))
      sys.clients

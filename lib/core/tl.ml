(* Track layout and interned event names for the simulation's timeline
   recorder.  One Tl.t per run, created by Model when Config.timeline
   is set; every hook below is pure observation (see lib/telemetry).

   Track discipline keeps each track's spans non-overlapping by
   construction, which the Perfetto exporter and the conformance test
   rely on:
   - client tracks carry "txn" spans (a client runs at most one
     transaction at a time) and "down" spans (crash..restart, which
     never overlaps a txn span because the crash hook closes any open
     transaction first);
   - CPU tracks carry "busy" spans recorded on idle<->busy edges;
   - disk and network tracks carry one-shot Complete spans whose
     [start, finish] intervals the resource already serializes;
   - server tracks carry instants plus "down" spans (crash..reopen,
     serialized per server by the fault driver, so they never overlap).

   With a partitioned topology (servers > 1) each server gets its own
   instant track, CPU track, and disk tracks, prefixed "s<sid>-"; the
   singleton layout keeps the historical unprefixed names, so existing
   traces and their goldens are unchanged. *)

type t = {
  tl : Telemetry.Timeline.t;
  trk_servers : int array;  (* per-server instant track *)
  trk_server_cpus : int array;
  trk_disks : int array array;  (* per server, per disk *)
  trk_net : int;
  trk_clients : int array;
  trk_client_cpus : int array;
  mutable txn_open : bool array;  (* per client: a txn span is open *)
  n_txn : int;
  n_down : int;
  n_commit : int;
  n_abort : int;
  n_crash : int;
  n_restart : int;
  n_pw_grant : int;
  n_ow_grant : int;
  n_deesc : int;
  n_esc : int;
  n_cb : int;
  n_cb_ack : int;
  n_cb_blocked : int;
  n_cb_forward : int;
  n_replay : int;
  n_reconstruct : int;
  n_reopen : int;
}

let timeline t = t.tl
let trk_server_cpu t ~sid = t.trk_server_cpus.(sid)
let trk_client_cpus t = t.trk_client_cpus
let trk_disks t ~sid = t.trk_disks.(sid)
let trk_net t = t.trk_net

let create ?(servers = 1) ~num_clients ~disks ~capacity () =
  let tl = Telemetry.Timeline.create ~capacity () in
  let sname sid base =
    if servers = 1 then base else Printf.sprintf "s%d-%s" sid base
  in
  (* Definition order fixes the track ids: all server-side tracks in
     server order, then the network, then the clients — at servers=1
     this is byte-identical to the historical layout. *)
  let trk_servers = Array.make servers 0 in
  let trk_server_cpus = Array.make servers 0 in
  let trk_disks =
    Array.init servers (fun sid ->
        trk_servers.(sid) <-
          Telemetry.Timeline.define_track tl (sname sid "server");
        trk_server_cpus.(sid) <-
          Telemetry.Timeline.define_track tl (sname sid "server-cpu");
        Array.init disks (fun i ->
            Telemetry.Timeline.define_track tl
              (sname sid (Printf.sprintf "disk%d" i))))
  in
  let trk_net = Telemetry.Timeline.define_track tl "net" in
  let trk_clients =
    Array.init num_clients (fun i ->
        Telemetry.Timeline.define_track tl (Printf.sprintf "client%d" i))
  in
  let trk_client_cpus =
    Array.init num_clients (fun i ->
        Telemetry.Timeline.define_track tl (Printf.sprintf "client%d-cpu" i))
  in
  let n s = Telemetry.Timeline.intern tl s in
  {
    tl;
    trk_servers;
    trk_server_cpus;
    trk_disks;
    trk_net;
    trk_clients;
    trk_client_cpus;
    txn_open = Array.make num_clients false;
    n_txn = n "txn";
    n_down = n "down";
    n_commit = n "commit";
    n_abort = n "abort";
    n_crash = n "crash";
    n_restart = n "restart";
    n_pw_grant = n "page-write-grant";
    n_ow_grant = n "object-write-grant";
    n_deesc = n "deescalate";
    n_esc = n "escalate";
    n_cb = n "callback";
    n_cb_ack = n "callback-ack";
    n_cb_blocked = n "callback-blocked";
    n_cb_forward = n "callback-forward";
    n_replay = n "replay";
    n_reconstruct = n "copy-reconstruction";
    n_reopen = n "reopen";
  }

(* Client lifecycle -------------------------------------------------- *)

let txn_begin t ~client ~tid ~now =
  Telemetry.Timeline.span_begin t.tl ~track:t.trk_clients.(client) ~name:t.n_txn
    ~arg:tid now;
  t.txn_open.(client) <- true

let close_txn t ~client ~mark ~tid ~now =
  if t.txn_open.(client) then begin
    Telemetry.Timeline.span_end t.tl ~track:t.trk_clients.(client) now;
    Telemetry.Timeline.instant t.tl ~track:t.trk_clients.(client) ~name:mark
      ~arg:tid now;
    t.txn_open.(client) <- false
  end

let txn_commit t ~client ~tid ~now = close_txn t ~client ~mark:t.n_commit ~tid ~now
let txn_abort t ~client ~tid ~now = close_txn t ~client ~mark:t.n_abort ~tid ~now

let crash t ~client ~now =
  (* A crash mid-transaction closes the open txn span before the down
     span begins, so spans on the client track never overlap. *)
  close_txn t ~client ~mark:t.n_crash ~tid:(-1) ~now;
  Telemetry.Timeline.instant t.tl ~track:t.trk_clients.(client) ~name:t.n_crash
    now;
  Telemetry.Timeline.span_begin t.tl ~track:t.trk_clients.(client)
    ~name:t.n_down now

let restart t ~client ~now =
  Telemetry.Timeline.span_end t.tl ~track:t.trk_clients.(client) now;
  Telemetry.Timeline.instant t.tl ~track:t.trk_clients.(client)
    ~name:t.n_restart now

let cb_blocked t ~client ~writer ~now =
  Telemetry.Timeline.instant t.tl ~track:t.trk_clients.(client)
    ~name:t.n_cb_blocked ~arg:writer now

(* Server instants --------------------------------------------------- *)

let server_instant t ~sid name ~arg ~now =
  Telemetry.Timeline.instant t.tl ~track:t.trk_servers.(sid) ~name ~arg now

let page_write_grant t ~sid ~tid ~now =
  server_instant t ~sid t.n_pw_grant ~arg:tid ~now

let object_write_grant t ~sid ~tid ~now =
  server_instant t ~sid t.n_ow_grant ~arg:tid ~now

let deescalate t ~sid ~page ~now = server_instant t ~sid t.n_deesc ~arg:page ~now
let escalate t ~sid ~page ~now = server_instant t ~sid t.n_esc ~arg:page ~now

let callback_sent t ~sid ~target ~now =
  server_instant t ~sid t.n_cb ~arg:target ~now

let callback_ack t ~sid ~target ~now =
  server_instant t ~sid t.n_cb_ack ~arg:target ~now

let callback_forward t ~sid ~target ~now =
  server_instant t ~sid t.n_cb_forward ~arg:target ~now

(* Server failure epochs --------------------------------------------- *)

let srv_crash t ~sid ~now =
  Telemetry.Timeline.instant t.tl ~track:t.trk_servers.(sid) ~name:t.n_crash now;
  Telemetry.Timeline.span_begin t.tl ~track:t.trk_servers.(sid) ~name:t.n_down
    now

let srv_replay t ~sid ~records ~now =
  server_instant t ~sid t.n_replay ~arg:records ~now

let srv_reconstruct t ~sid ~rows ~now =
  server_instant t ~sid t.n_reconstruct ~arg:rows ~now

let srv_reopen t ~sid ~now =
  Telemetry.Timeline.span_end t.tl ~track:t.trk_servers.(sid) now;
  Telemetry.Timeline.instant t.tl ~track:t.trk_servers.(sid) ~name:t.n_reopen now

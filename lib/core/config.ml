type commit_mode = Ship_pages | Redo_at_server
type update_mode = Merge | Write_token
type partition = Hash | Range

type t = {
  num_clients : int;
  client_mips : float;
  server_mips : float;
  client_buf_frac : float;
  server_buf_frac : float;
  server_disks : int;
  min_disk_time : float;
  max_disk_time : float;
  network_mbits : float;
  page_size : int;
  db_pages : int;
  objects_per_page : int;
  fixed_msg_inst : float;
  per_byte_msg_inst : float;
  control_msg_bytes : int;
  lock_inst : float;
  register_copy_inst : float;
  disk_overhead_inst : float;
  copy_merge_inst : float;
  deescalate_inst : float;
  commit_mode : commit_mode;
  update_mode : update_mode;
  redo_per_object_inst : float;
  log_record_bytes : int;
  os_group_size : int;
  size_change_prob : float;
  overflow_prob : float;
  forward_inst : float;
  servers : int;
  partition : partition;
  faults : Faults.profile;
  oracle : bool;
  cb_drop_every : int;
  srv_skip_reconstruction : bool;
  timeline : bool;
  timeline_cap : int;
}

let default =
  {
    num_clients = 10;
    client_mips = 15.0;
    server_mips = 30.0;
    client_buf_frac = 0.25;
    server_buf_frac = 0.50;
    server_disks = 2;
    min_disk_time = 0.010;
    max_disk_time = 0.030;
    network_mbits = 80.0;
    page_size = 4096;
    db_pages = 1250;
    objects_per_page = 20;
    fixed_msg_inst = 20_000.0;
    per_byte_msg_inst = 10_000.0 /. 4096.0;
    control_msg_bytes = 256;
    lock_inst = 300.0;
    register_copy_inst = 300.0;
    disk_overhead_inst = 5_000.0;
    copy_merge_inst = 300.0;
    deescalate_inst = 300.0;
    commit_mode = Ship_pages;
    update_mode = Merge;
    redo_per_object_inst = 1_000.0;
    log_record_bytes = 256;
    os_group_size = 1;
    size_change_prob = 0.0;
    overflow_prob = 0.0;
    forward_inst = 2_000.0;
    servers = 1;
    partition = Hash;
    faults = Faults.off;
    oracle = false;
    cb_drop_every = 0;
    srv_skip_reconstruction = false;
    timeline = false;
    timeline_cap = 65536;
  }

let scaled t ~factor =
  if factor <= 0 then invalid_arg "Config.scaled: factor";
  { t with db_pages = t.db_pages * factor }

let client_buf_pages t =
  max 1 (int_of_float (t.client_buf_frac *. float_of_int t.db_pages))

let server_buf_pages t =
  max 1 (int_of_float (t.server_buf_frac *. float_of_int t.db_pages))

let client_buf_objects t = client_buf_pages t * t.objects_per_page
let object_bytes t = t.page_size / t.objects_per_page
let control_bytes t = t.control_msg_bytes
let page_msg_bytes t = t.page_size + t.control_msg_bytes
let objs_msg_bytes t ~count = (count * object_bytes t) + t.control_msg_bytes

let msg_instr t ~bytes =
  t.fixed_msg_inst +. (t.per_byte_msg_inst *. float_of_int bytes)

(* Rough worst-case resident memory per client: both caches filled to
   capacity (an LRU node, a hash bucket and an entry record per slot)
   plus the client fiber's stack and fixed per-client bookkeeping.
   Order-of-magnitude for the CLI's sizing hint, not an accounting. *)
let client_memory_bytes t =
  let slot_bytes = 128 in
  (client_buf_pages t * slot_bytes)
  + (client_buf_objects t * slot_bytes)
  + 8192

let memory_estimate_bytes t = t.num_clients * client_memory_bytes t

let validate t =
  let check b what = if not b then invalid_arg ("Config: bad " ^ what) in
  check (t.num_clients > 0) "num_clients";
  if t.num_clients > 1_000_000 then
    invalid_arg
      (Printf.sprintf
         "Config: %d clients is over the 1M-site limit (the simulator keeps \
          per-client state resident; did you mean --scale to grow the \
          database instead?)"
         t.num_clients);
  check (t.client_mips > 0.0 && t.server_mips > 0.0) "MIPS";
  check (t.client_buf_frac > 0.0 && t.client_buf_frac <= 1.0) "client_buf_frac";
  check (t.server_buf_frac > 0.0 && t.server_buf_frac <= 1.0) "server_buf_frac";
  check (t.server_disks > 0) "server_disks";
  check (t.min_disk_time >= 0.0 && t.max_disk_time >= t.min_disk_time) "disk times";
  check (t.network_mbits > 0.0) "network_mbits";
  check (t.page_size > 0) "page_size";
  check (t.db_pages > 0) "db_pages";
  check (t.objects_per_page > 0) "objects_per_page";
  check (t.page_size >= t.objects_per_page) "objects_per_page vs page_size";
  check (t.os_group_size >= 1 && t.os_group_size <= t.objects_per_page)
    "os_group_size";
  check (t.size_change_prob >= 0.0 && t.size_change_prob <= 1.0)
    "size_change_prob";
  check (t.overflow_prob >= 0.0 && t.overflow_prob <= 1.0) "overflow_prob";
  check (t.servers >= 1) "servers";
  check (t.servers <= t.db_pages) "servers vs db_pages";
  check (t.cb_drop_every >= 0) "cb_drop_every";
  check (t.timeline_cap > 0) "timeline_cap";
  Faults.validate t.faults

let pp ppf t =
  let f fmt = Format.fprintf ppf fmt in
  f "@[<v>";
  f "ClientCPU          %.0f MIPS@," t.client_mips;
  f "ServerCPU          %.0f MIPS@," t.server_mips;
  f "ClientBufSize      %.0f%% of DB (%d pages)@," (100.0 *. t.client_buf_frac)
    (client_buf_pages t);
  f "ServerBufSize      %.0f%% of DB (%d pages)@," (100.0 *. t.server_buf_frac)
    (server_buf_pages t);
  f "ServerDisks        %d disks@," t.server_disks;
  f "MinDiskTime        %.0f ms@," (1000.0 *. t.min_disk_time);
  f "MaxDiskTime        %.0f ms@," (1000.0 *. t.max_disk_time);
  f "NetworkBandwidth   %.0f Mbits/s@," t.network_mbits;
  f "NumClients         %d@," t.num_clients;
  f "PageSize           %d bytes@," t.page_size;
  f "DatabaseSize       %d pages (%.1f MB)@," t.db_pages
    (float_of_int (t.db_pages * t.page_size) /. 1048576.0);
  f "ObjectsPerPage     %d objects@," t.objects_per_page;
  f "FixedMsgInst       %.0f instructions@," t.fixed_msg_inst;
  f "PerByteMsgInst     %.0f instr per 4KB page@,"
    (t.per_byte_msg_inst *. 4096.0);
  f "ControlMsgSize     %d bytes@," t.control_msg_bytes;
  f "LockInst           %.0f instructions@," t.lock_inst;
  f "RegisterCopyInst   %.0f instructions@," t.register_copy_inst;
  f "DiskOverheadInst   %.0f instructions@," t.disk_overhead_inst;
  f "CopyMergeInst      %.0f instructions per object@," t.copy_merge_inst;
  (* Fault rows appear only when injection is on, so the default table
     stays byte-identical to the paper's Table 1 rendering. *)
  if not (Faults.is_off t.faults) then begin
    let p = t.faults in
    f "CrashRate          %.4f crashes/s per client@," p.Faults.crash_rate;
    f "RestartDelay       %.0f ms@," (1000.0 *. p.Faults.restart_delay);
    f "MsgLossProb        %.4f@," p.Faults.msg_loss_prob;
    f "MsgDupProb         %.4f@," p.Faults.msg_dup_prob;
    f "RetransTimeout     %.0f ms (x%.1f backoff, cap %.0f ms)@,"
      (1000.0 *. p.Faults.retrans_timeout)
      p.Faults.retrans_backoff
      (1000.0 *. p.Faults.retrans_max_timeout);
    f "DiskStallProb      %.4f (%.0f ms, %d retries)@,"
      p.Faults.disk_stall_prob
      (1000.0 *. p.Faults.disk_stall_time)
      p.Faults.disk_stall_retries;
    if p.Faults.srv_crash_rate > 0.0 then begin
      f "SrvCrashRate       %.4f crashes/s per server@,"
        p.Faults.srv_crash_rate;
      f "SrvRestartDelay    %.0f ms@," (1000.0 *. p.Faults.srv_restart_delay);
      f "LogFlushInterval   %.0f ms@," (1000.0 *. p.Faults.log_flush_interval);
      f "RetransGiveaway    %d attempts@," p.Faults.retrans_giveaway
    end
  end;
  (* Likewise the topology, oracle and sabotage rows: absent at
     defaults, so the singleton-server table stays byte-identical. *)
  if t.servers > 1 then begin
    f "NumServers         %d@," t.servers;
    f "Partition          %s@,"
      (match t.partition with Hash -> "hash" | Range -> "range")
  end;
  if t.oracle then f "SerializabilityOracle on@,";
  if t.cb_drop_every > 0 then f "CallbackDropEvery   %d (sabotage)@," t.cb_drop_every;
  if t.srv_skip_reconstruction then f "SkipReconstruction on (sabotage)@,";
  if t.timeline then f "Timeline           on (%d entries)@," t.timeline_cap;
  f "@]"

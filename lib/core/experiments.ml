open Workload

type spec = {
  id : string;
  title : string;
  workload : Presets.name;
  locality : Presets.locality;
  scale : int;
  trans_size : int option;
  write_probs : float list;
  normalize : bool;
  warmup : float;
  measure : float;
}

let sweep = [ 0.0; 0.02; 0.05; 0.1; 0.15; 0.2; 0.3; 0.5 ]
let sweep_scaled = [ 0.0; 0.05; 0.15; 0.3 ]

let std id title workload locality =
  {
    id;
    title;
    workload;
    locality;
    scale = 1;
    trans_size = None;
    write_probs = sweep;
    normalize = false;
    warmup = 30.0;
    measure = 120.0;
  }

let scaled id title workload =
  {
    id;
    title;
    workload;
    locality = Presets.Low;
    scale = 9;
    trans_size = Some 90;
    write_probs = sweep_scaled;
    normalize = true;
    warmup = 60.0;
    measure = 120.0;
  }

let all =
  [
    std "fig3" "HOTCOLD, low page locality (30 pages, 1-7 obj)"
      Presets.Hotcold Presets.Low;
    std "fig4" "HOTCOLD, high page locality (10 pages, 8-16 obj)"
      Presets.Hotcold Presets.High;
    std "fig6" "UNIFORM, low page locality" Presets.Uniform Presets.Low;
    std "fig7" "UNIFORM, high page locality" Presets.Uniform Presets.High;
    std "fig8" "HICON, low page locality" Presets.Hicon Presets.Low;
    std "fig9" "HICON, high page locality" Presets.Hicon Presets.High;
    std "fig10" "PRIVATE, high page locality" Presets.Private_ Presets.High;
    std "fig11" "Interleaved PRIVATE (false sharing)"
      Presets.Interleaved_private Presets.High;
    scaled "fig12" "HOTCOLD scaled x9, normalized to PS-AA" Presets.Hotcold;
    scaled "fig13" "UNIFORM scaled x9, normalized to PS-AA" Presets.Uniform;
    scaled "fig14" "HICON scaled x9, normalized to PS-AA" Presets.Hicon;
  ]

let find id = List.find_opt (fun s -> s.id = id) all

type point = { write_prob : float; results : (Algo.t * Runner.result) list }
type series = { spec : spec; points : point list }

let cfg_of spec = Config.scaled Config.default ~factor:spec.scale

let params_of spec ~write_prob =
  let cfg = cfg_of spec in
  Presets.make ?trans_size:spec.trans_size spec.workload
    ~db_pages:cfg.Config.db_pages ~objects_per_page:cfg.Config.objects_per_page
    ~num_clients:cfg.Config.num_clients ~locality:spec.locality ~write_prob

(* Jobs are listed write-probability-major, algorithm-minor;
   [series_of_results] relies on that order to reassemble points.
   [servers]/[partition] shard the page server without touching the
   seed: a job's seed derives from its description alone, so the same
   cell at a different server count replays the same client streams. *)
let jobs_of_spec ?(seed = 42) ?(time_scale = 1.0) ?(oracle = false)
    ?(timeline = false) ?(servers = 1) ?(partition = Config.Hash) spec =
  let cfg = { (cfg_of spec) with Config.oracle; timeline; servers; partition } in
  let warmup = spec.warmup *. time_scale in
  let measure = spec.measure *. time_scale in
  List.concat_map
    (fun write_prob ->
      let params = params_of spec ~write_prob in
      List.map
        (fun algo ->
          Job.make ~base_seed:seed ~sweep:spec.id
            ~label:
              (Printf.sprintf "wp=%.2f %-5s" write_prob (Algo.to_string algo))
            ~cfg ~algo ~params ~warmup ~measure ())
        Algo.all)
    spec.write_probs

let series_of_results spec results =
  let algos = List.length Algo.all in
  let rec chunk = function
    | [] -> []
    | rs ->
      let rec take n = function
        | rest when n = 0 -> ([], rest)
        | [] -> invalid_arg "Experiments.series_of_results: missing results"
        | r :: rest ->
          let chunk, rest = take (n - 1) rest in
          (r :: chunk, rest)
      in
      let point, rest = take algos rs in
      point :: chunk rest
  in
  let chunks = chunk results in
  if List.length chunks <> List.length spec.write_probs then
    invalid_arg "Experiments.series_of_results: result/write_prob mismatch";
  let points =
    List.map2
      (fun write_prob rs -> { write_prob; results = List.combine Algo.all rs })
      spec.write_probs chunks
  in
  { spec; points }

(* --- Fault-rate sweep (robustness experiment) -------------------------- *)

(* Crash/loss/stall rates per the storm profile; 0.0 is the fault-free
   reference point, which must reproduce the plain fig3 numbers. *)
let fault_rates = [ 0.0; 0.005; 0.01; 0.02; 0.05 ]

let fault_write_prob = 0.1

type fault_point = { rate : float; fresults : (Algo.t * Runner.result) list }
type fault_series = { frates : float list; fpoints : fault_point list }

(* The base cell is fig3's wp=0.1 point (HOTCOLD, low locality): enough
   conflict for crashes to strand interesting state, small enough to
   sweep quickly. *)
let fault_base () = Option.get (find "fig3")

let fault_jobs ?(seed = 42) ?(time_scale = 1.0) ?(oracle = false)
    ?(timeline = false) ?max_events () =
  let spec = fault_base () in
  let cfg = { (cfg_of spec) with Config.oracle; timeline } in
  let params = params_of spec ~write_prob:fault_write_prob in
  List.concat_map
    (fun rate ->
      let cfg = { cfg with Config.faults = Faults.storm ~rate } in
      List.map
        (fun algo ->
          Job.make ~base_seed:seed ?max_events ~sweep:"faultsweep"
            ~label:
              (Printf.sprintf "rate=%.3f %-5s" rate (Algo.to_string algo))
            ~cfg ~algo ~params ~warmup:(spec.warmup *. time_scale)
            ~measure:(spec.measure *. time_scale) ())
        Algo.all)
    fault_rates

let fault_series_of_results results =
  let algos = List.length Algo.all in
  let rec chunk = function
    | [] -> []
    | rs ->
      let rec take n = function
        | rest when n = 0 -> ([], rest)
        | [] -> invalid_arg "Experiments.fault_series_of_results: missing"
        | r :: rest ->
          let c, rest = take (n - 1) rest in
          (r :: c, rest)
      in
      let point, rest = take algos rs in
      point :: chunk rest
  in
  let chunks = chunk results in
  if List.length chunks <> List.length fault_rates then
    invalid_arg "Experiments.fault_series_of_results: result/rate mismatch";
  {
    frates = fault_rates;
    fpoints =
      List.map2
        (fun rate rs -> { rate; fresults = List.combine Algo.all rs })
        fault_rates chunks;
  }

(* --- Shard sweep (partitioned-server experiment) ----------------------- *)

(* Fig3's wp=0.1 cell rerun at increasing partition counts.  servers=1
   is the reference point and must reproduce the plain fig3 numbers. *)
let shard_counts = [ 1; 2; 4 ]

let shard_write_prob = 0.1

type shard_point = { servers : int; sresults : (Algo.t * Runner.result) list }
type shard_series = { scounts : int list; spoints : shard_point list }

let shard_base () = Option.get (find "fig3")

let shard_jobs ?(seed = 42) ?(time_scale = 1.0) ?(oracle = false)
    ?(timeline = false) ?(partition = Config.Hash) ?max_events () =
  let spec = shard_base () in
  let params = params_of spec ~write_prob:shard_write_prob in
  List.concat_map
    (fun n ->
      let cfg =
        { (cfg_of spec) with Config.oracle; timeline; servers = n; partition }
      in
      List.map
        (fun algo ->
          Job.make ~base_seed:seed ?max_events ~sweep:"shardsweep"
            ~label:(Printf.sprintf "srv=%d %-5s" n (Algo.to_string algo))
            ~cfg ~algo ~params ~warmup:(spec.warmup *. time_scale)
            ~measure:(spec.measure *. time_scale) ())
        Algo.all)
    shard_counts

let shard_series_of_results results =
  let algos = List.length Algo.all in
  let rec chunk = function
    | [] -> []
    | rs ->
      let rec take n = function
        | rest when n = 0 -> ([], rest)
        | [] -> invalid_arg "Experiments.shard_series_of_results: missing"
        | r :: rest ->
          let c, rest = take (n - 1) rest in
          (r :: c, rest)
      in
      let point, rest = take algos rs in
      point :: chunk rest
  in
  let chunks = chunk results in
  if List.length chunks <> List.length shard_counts then
    invalid_arg "Experiments.shard_series_of_results: result/count mismatch";
  {
    scounts = shard_counts;
    spoints =
      List.map2
        (fun servers rs -> { servers; sresults = List.combine Algo.all rs })
        shard_counts chunks;
  }

(* --- Server-fault sweep (crash & recovery experiment) ------------------- *)

(* Fig3's wp=0.1 cell on a 2-way partitioned server under increasing
   server crash rates, client faults off — the availability experiment:
   how throughput and tail latency degrade when whole partitions
   disappear and recover.  Two servers is the smallest topology where
   partial-partition degradation is visible (transactions confined to
   the surviving partition keep committing).  srate=0.0 is the
   fault-free reference point. *)
let srvfault_rates = [ 0.0; 0.002; 0.005; 0.01; 0.02 ]

let srvfault_write_prob = 0.1
let srvfault_servers = 2

type srvfault_point = {
  srate : float;
  svresults : (Algo.t * Runner.result) list;
}

type srvfault_series = { srates : float list; svpoints : srvfault_point list }

let srvfault_base () = Option.get (find "fig3")

let srvfault_jobs ?(seed = 42) ?(time_scale = 1.0) ?(oracle = false)
    ?(timeline = false) ?(partition = Config.Hash) ?max_events () =
  let spec = srvfault_base () in
  let params = params_of spec ~write_prob:srvfault_write_prob in
  List.concat_map
    (fun rate ->
      let cfg =
        {
          (cfg_of spec) with
          Config.oracle;
          timeline;
          servers = srvfault_servers;
          partition;
          faults = { Faults.off with Faults.srv_crash_rate = rate };
        }
      in
      List.map
        (fun algo ->
          Job.make ~base_seed:seed ?max_events ~sweep:"srvfaultsweep"
            ~label:
              (Printf.sprintf "srate=%.3f %-5s" rate (Algo.to_string algo))
            ~cfg ~algo ~params ~warmup:(spec.warmup *. time_scale)
            ~measure:(spec.measure *. time_scale) ())
        Algo.all)
    srvfault_rates

let srvfault_series_of_results results =
  let algos = List.length Algo.all in
  let rec chunk = function
    | [] -> []
    | rs ->
      let rec take n = function
        | rest when n = 0 -> ([], rest)
        | [] -> invalid_arg "Experiments.srvfault_series_of_results: missing"
        | r :: rest ->
          let c, rest = take (n - 1) rest in
          (r :: c, rest)
      in
      let point, rest = take algos rs in
      point :: chunk rest
  in
  let chunks = chunk results in
  if List.length chunks <> List.length srvfault_rates then
    invalid_arg "Experiments.srvfault_series_of_results: result/rate mismatch";
  {
    srates = srvfault_rates;
    svpoints =
      List.map2
        (fun srate rs -> { srate; svresults = List.combine Algo.all rs })
        srvfault_rates chunks;
  }

(* --- Cluster sweep (generic-workload clustering experiment) ------------- *)

(* The OCB-style generic workload rerun under each placement policy and
   two hotspot skews: how much each protocol pays for a badly clustered
   object base.  Page-grain PS feels declustering through false sharing
   (traversal working sets smear across pages), while the object-grain
   protocols should stay comparatively flat.  Policies are ordered from
   best to worst expected clustering quality. *)
let cluster_policies = [ Placement.Dfs_ref; Placement.Sequential;
                         Placement.Scatter ]

let cluster_thetas = [ 0.0; 0.8 ]
let cluster_write_prob = 0.2

type cluster_point = {
  cpolicy : Placement.policy;
  ctheta : float;
  cquality : float;  (** co-resident reference-edge fraction of the layout *)
  cresults : (Algo.t * Runner.result) list;
}

type cluster_series = { ccells : (Placement.policy * float) list;
                        cpoints : cluster_point list }

let cluster_cells () =
  List.concat_map
    (fun policy -> List.map (fun theta -> (policy, theta)) cluster_thetas)
    cluster_policies

(* 5000 objects = 250 pages: the whole base fits the 312-page client
   buffer, so after warm-up the sweep is contention-bound, not
   disk-bound — placement then moves only the page-grain lock/callback
   footprint, which is the effect under test (a 25k-object base drowns
   it in cold-fetch disk traffic for every protocol).  Transactions are
   kept small (a depth-4 traversal capped at 24 objects, match 10,
   update 4) so that true object-level conflicts stay rare and what
   remains is page co-tenancy: ~15 objects per transaction out of 5000
   rarely collide on objects, but at scatter they spread over ~15 of
   250 pages, so page-grain write locks keep colliding with unrelated
   work — the false-sharing signal. *)
let cluster_objects = 5_000

let cluster_params ~policy ~theta =
  let cfg = Config.default in
  Presets.ocb ~objects:cluster_objects ~policy ~theta ~traversal_depth:4
    ~traversal_cap:24 ~match_size:10 ~update_size:4
    ~db_pages:cfg.Config.db_pages
    ~objects_per_page:cfg.Config.objects_per_page
    ~num_clients:cfg.Config.num_clients ~write_prob:cluster_write_prob ()

let cluster_quality ~policy ~theta =
  match (cluster_params ~policy ~theta).Wparams.generic with
  | Some g -> Generic.quality g
  | None -> assert false

let cluster_jobs ?(seed = 42) ?(time_scale = 1.0) ?(oracle = false)
    ?(timeline = false) ?max_events () =
  let cfg = { Config.default with Config.oracle; timeline } in
  List.concat_map
    (fun (policy, theta) ->
      let params = cluster_params ~policy ~theta in
      List.map
        (fun algo ->
          Job.make ~base_seed:seed ?max_events ~sweep:"clustersweep"
            ~label:
              (Printf.sprintf "%s z=%.2f %-5s" (Placement.name policy) theta
                 (Algo.to_string algo))
            ~cfg ~algo ~params ~warmup:(30.0 *. time_scale)
            ~measure:(120.0 *. time_scale) ())
        Algo.all)
    (cluster_cells ())

let cluster_series_of_results results =
  let algos = List.length Algo.all in
  let cells = cluster_cells () in
  let rec chunk = function
    | [] -> []
    | rs ->
      let rec take n = function
        | rest when n = 0 -> ([], rest)
        | [] -> invalid_arg "Experiments.cluster_series_of_results: missing"
        | r :: rest ->
          let c, rest = take (n - 1) rest in
          (r :: c, rest)
      in
      let point, rest = take algos rs in
      point :: chunk rest
  in
  let chunks = chunk results in
  if List.length chunks <> List.length cells then
    invalid_arg "Experiments.cluster_series_of_results: result/cell mismatch";
  {
    ccells = cells;
    cpoints =
      List.map2
        (fun (cpolicy, ctheta) rs ->
          {
            cpolicy;
            ctheta;
            cquality = cluster_quality ~policy:cpolicy ~theta:ctheta;
            cresults = List.combine Algo.all rs;
          })
        cells chunks;
  }

let progress_line (j : Job.t) (r : Runner.result) =
  Printf.sprintf "%s %s: %.2f tps" j.Job.sweep j.Job.label r.Runner.throughput

let run_spec ?seed ?time_scale ?oracle ?timeline ?servers ?partition
    ?(progress = fun _ -> ()) spec =
  let jobs =
    jobs_of_spec ?seed ?time_scale ?oracle ?timeline ?servers ?partition spec
  in
  let results =
    List.map
      (fun j ->
        let r = Job.run j in
        progress (progress_line j r);
        r)
      jobs
  in
  series_of_results spec results

let figure5 () =
  let wps = [ 0.0; 0.05; 0.1; 0.15; 0.2; 0.3; 0.4; 0.5 ] in
  List.map
    (fun k ->
      ( k,
        List.map
          (fun w ->
            (w, Analytic.page_write_prob ~object_write_prob:w ~objects_accessed:k))
          wps ))
    Analytic.figure5_localities

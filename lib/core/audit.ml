open Model
open Storage
open Simcore

exception Violation of string

let oid_str o = Format.asprintf "%a" Ids.Oid.pp o

let dump_state sys =
  let b = Buffer.create 256 in
  let add fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  add "  clients:";
  let cs = sys.clients in
  for cid = 0 to cs.n - 1 do
    add " %d:%s%s" cid
      (if cs.up.(cid) then "up" else "DOWN")
      (match cs.running.(cid) with
      | Some t -> Printf.sprintf "(txn %d)" t.tid
      | None -> "")
  done;
  Array.iter
    (fun sv ->
      let tag =
        if Array.length sys.servers = 1 then ""
        else Printf.sprintf " s%d" sv.sid
      in
      add "\n %s waits-for:" tag;
      List.iter
        (fun (txn, blockers, info) ->
          add " %d->[%s]%s" txn
            (String.concat "," (List.map string_of_int blockers))
            (if info = "" then "" else "(" ^ info ^ ")"))
        (Locking.Waits_for.dump sv.wfg);
      add "\n %s page-lock queues:" tag;
      List.iter
        (fun (txn, desc) -> add " %d@%s" txn desc)
        (Locking.Lock_table.dump_waiting sv.plocks string_of_int);
      add "\n %s object-lock queues:" tag;
      List.iter
        (fun (txn, desc) -> add " %d@%s" txn desc)
        (Locking.Lock_table.dump_waiting sv.olocks oid_str))
    sys.servers;
  Buffer.contents b

let violation sys ~context fmt =
  Printf.ksprintf
    (fun msg ->
      raise
        (Violation
           (Printf.sprintf "audit violation [%s] at t=%.6f: %s\n%s" context
              (Engine.now sys.engine) msg (dump_state sys))))
    fmt

(* Invariant 1: every lock-table holder and waiter is an active
   transaction.  A crashed client's transactions are ended during crash
   reclamation, so this also proves no dead client holds locks. *)
let check_lock_liveness sys ~context =
  Array.iter
    (fun sv ->
      (* begin/end_txn are replicated to every partition, so each
         server's own graph knows the full active set. *)
      let wfg = sv.wfg in
      let check_txn what show item txn =
        if not (Locking.Waits_for.is_active wfg txn) then
          violation sys ~context "%s %s by ended transaction %d" what
            (show item) txn
      in
      Locking.Lock_table.iter_holders sv.plocks (fun p h ->
          check_txn "page lock held" string_of_int p h);
      Locking.Lock_table.iter_holders sv.olocks (fun o h ->
          check_txn "object lock held" oid_str o h);
      Locking.Lock_table.iter_waiters sv.plocks (fun p w ->
          check_txn "page-lock wait queued" string_of_int p w);
      Locking.Lock_table.iter_waiters sv.olocks (fun o w ->
          check_txn "object-lock wait queued" oid_str o w))
    sys.servers

(* Invariant 2: granularity compatibility — a page write lock excludes
   object write locks on the same page by other transactions. *)
let check_lock_compat sys ~context =
  Array.iter
    (fun sv ->
      Locking.Lock_table.iter_holders sv.plocks (fun p h ->
          if Model.page_has_foreign_obj_lock sys p ~tid:h then
            violation sys ~context
              "page %d write-locked by txn %d while a foreign object lock \
               exists"
              p h))
    sys.servers

(* Invariant 3: callback coverage — every copy cached at an up client is
   registered (>= 1 reference; a second in-flight reference is legal).
   Without this the server would skip the client during callbacks and
   the stale copy could serve a later read.

   A partition whose server is down or recovering is exempt: its copy
   table was lost with the crash and is rebuilt (from exactly the
   cached copies enumerated here) before the server reopens — during
   the outage nothing can be granted there, so the uncovered copies
   are unreadable-stale at worst, never servable-stale.

   The whole check is disabled under the [srv_skip_reconstruction]
   sabotage: skipping the rebuild leaves copies permanently uncovered,
   and the point of that knob is proving the serializability oracle —
   not this audit — catches the resulting write skew. *)
let check_copy_coverage ?only sys ~context =
  if not sys.cfg.Config.srv_skip_reconstruction then begin
    let cs = sys.clients in
    let check_client cid =
      if cs.up.(cid) then
        let covered_partition p = (Model.server_of sys p).srv_state = Srv_up in
        if Algo.page_grain_copies sys.algo then
          Lru.iter cs.cache.(cid) (fun p _ ->
              if
                covered_partition p
                && not
                     (Locking.Copy_table.holds (Model.server_of sys p).pcopies
                        p ~client:cid)
              then
                violation sys ~context
                  "client %d caches page %d without a copy registration" cid p)
        else if sys.algo = Algo.OS then
          Lru.iter cs.ocache.(cid) (fun o _ ->
              if
                covered_partition o.Ids.Oid.page
                && not
                     (Locking.Copy_table.holds
                        (Model.server_of sys o.Ids.Oid.page).ocopies o
                        ~client:cid)
              then
                violation sys ~context
                  "client %d caches object %s without a copy registration" cid
                  (oid_str o))
        else
          (* PS-OO: object-grain registrations for the available slots
             of each cached page. *)
          Lru.iter cs.cache.(cid) (fun p entry ->
              if covered_partition p then
                for slot = 0 to sys.cfg.Config.objects_per_page - 1 do
                  if not (Ids.Int_set.mem slot entry.unavailable) then
                    let o = Ids.Oid.make ~page:p ~slot in
                    if
                      not
                        (Locking.Copy_table.holds
                           (Model.server_of sys p).ocopies o ~client:cid)
                    then
                      violation sys ~context
                        "client %d caches available object %s without a \
                         copy registration"
                        cid (oid_str o)
                done)
    in
    (* Per-transaction-boundary audits scope to the one client whose
       cache changed; the full sweep remains for fault handlers and the
       negative tests that corrupt arbitrary clients. *)
    match only with
    | Some cid -> check_client cid
    | None ->
      for cid = 0 to cs.n - 1 do
        check_client cid
      done
  end

(* Invariant 4: a crashed client was fully reclaimed — cold caches, no
   transaction, no copy-table presence (it must not be a callback
   target: its cache is gone, so a callback would wait forever or,
   worse, "succeed" against nothing). *)
let check_crashed_clients sys ~context =
  let cs = sys.clients in
  for cid = 0 to cs.n - 1 do
    if not cs.up.(cid) then begin
      (match cs.running.(cid) with
      | Some t ->
        violation sys ~context "crashed client %d still runs txn %d" cid t.tid
      | None -> ());
      if Lru.size cs.cache.(cid) > 0 || Lru.size cs.ocache.(cid) > 0 then
        violation sys ~context
          "crashed client %d retains %d pages / %d objects in cache" cid
          (Lru.size cs.cache.(cid))
          (Lru.size cs.ocache.(cid));
      let count table_of =
        Array.fold_left
          (fun acc sv ->
            acc + Locking.Copy_table.client_copies (table_of sv) ~client:cid)
          0 sys.servers
      in
      let pc = count (fun sv -> sv.pcopies) in
      let oc = count (fun sv -> sv.ocopies) in
      if pc > 0 || oc > 0 then
        violation sys ~context
          "crashed client %d still registered for %d pages / %d objects" cid
          pc oc
    end
  done

(* Invariant 5: deadlock detection runs at every edge addition, so no
   cycle survives between events. *)
let check_acyclic sys ~context =
  Array.iter
    (fun sv ->
      match Locking.Waits_for.any_cycle sv.wfg with
      | None -> ()
      | Some cycle ->
        violation sys ~context "waits-for cycle left unbroken: [%s]"
          (String.concat " -> " (List.map string_of_int cycle)))
    sys.servers

(* Invariant 6: write isolation — no object sits in the updated set of
   two live transactions.  Gated off under [srv_skip_reconstruction]
   for the same reason as invariant 3: the sabotage deliberately
   breaks callback-based mutual exclusion, and the verdict must come
   from the serializability oracle, not a state-level check. *)
let check_update_disjoint sys ~context =
  if sys.cfg.Config.srv_skip_reconstruction then ()
  else
  let owner = Hashtbl.create 64 in
  let cs = sys.clients in
  for cid = 0 to cs.n - 1 do
    match cs.running.(cid) with
    (* A doomed transaction's updates are already discarded in spirit:
       it can only abort, and its covering locks at the crashed server
       are gone, so a post-recovery writer may legitimately overlap. *)
    | Some t when cs.up.(cid) && not t.doomed ->
      Ids.Oid_set.iter
        (fun o ->
          match Hashtbl.find_opt owner o with
          | Some other ->
            violation sys ~context "object %s updated by both txn %d and txn %d"
              (oid_str o) other t.tid
          | None -> Hashtbl.replace owner o t.tid)
        t.updated
    | Some _ | None -> ()
  done

(* Invariant 7: a down server was fully reclaimed — crash purging left
   no volatile state behind (locks, copy registrations, token owners).
   Mirrors invariant 4 for the server side; anything found here would
   be state that survived the "power cut" and could contradict the
   rebuilt tables after recovery. *)
let check_crashed_servers sys ~context =
  Array.iter
    (fun sv ->
      if sv.srv_state = Srv_down then begin
        let pl = Locking.Lock_table.lock_count sv.plocks in
        let ol = Locking.Lock_table.lock_count sv.olocks in
        if pl > 0 || ol > 0 then
          violation sys ~context
            "down server %d still holds %d page / %d object locks" sv.sid pl
            ol;
        let copies table =
          let acc = ref 0 in
          for cid = 0 to sys.clients.n - 1 do
            acc := !acc + Locking.Copy_table.client_copies table ~client:cid
          done;
          !acc
        in
        let pc = copies sv.pcopies in
        let oc = copies sv.ocopies in
        if pc > 0 || oc > 0 then
          violation sys ~context
            "down server %d still registers %d page / %d object copies" sv.sid
            pc oc;
        if Hashtbl.length sv.token_owner > 0 then
          violation sys ~context "down server %d still owns %d write tokens"
            sv.sid
            (Hashtbl.length sv.token_owner);
        if Buffer_pool.size sv.sbuffer > 0 then
          violation sys ~context
            "down server %d retains %d buffered pages" sv.sid
            (Buffer_pool.size sv.sbuffer)
      end)
    sys.servers

let check ?(context = "") ?coverage_of sys =
  check_lock_liveness sys ~context;
  check_lock_compat sys ~context;
  check_copy_coverage ?only:coverage_of sys ~context;
  check_crashed_clients sys ~context;
  check_acyclic sys ~context;
  check_update_disjoint sys ~context;
  check_crashed_servers sys ~context

let install sys =
  Faults.set_hook sys.faults (fun context -> check ~context sys)

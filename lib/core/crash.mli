(** Client crash/restart fault drivers.

    A crash models a workstation failure (Section 2's client-caching
    hazard): the client's buffer pool is volatile and vanishes, its
    in-flight transaction aborts, and the server immediately reclaims
    everything it tracked for the site — callback registrations, locks,
    waits-for edges, and write-token ownership.  After the configured
    restart delay the client cold-starts a fresh incarnation (new
    epoch) with an empty cache and resumes submitting transactions.

    Fibers of the dead incarnation that were suspended on
    non-cancellable resources unwind lazily via the epoch liveness
    guards in {!Client} and {!Srv}. *)

val crash_client : Model.sys -> int -> unit
(** Crash one client now (no-op when already down): reclaim its
    transaction and server-side state, drop its caches, bump its epoch,
    and run the fault hook (audit).  Exposed for tests; {!install}
    drives it from the configured crash rate. *)

val restart_client : Model.sys -> int -> unit
(** Cold-restart a crashed client (no-op when up): marks it up and
    spawns a fresh transaction-source fiber for the new epoch. *)

val install : Model.sys -> unit
(** When the crash rate is positive, spawn one driver fiber per client
    that crashes it at exponentially distributed intervals and restarts
    it after the profile's restart delay.  With a zero crash rate this
    spawns nothing and draws nothing. *)

(** Client and server crash/restart fault drivers.

    A crash models a workstation failure (Section 2's client-caching
    hazard): the client's buffer pool is volatile and vanishes, its
    in-flight transaction aborts, and the server immediately reclaims
    everything it tracked for the site — callback registrations, locks,
    waits-for edges, and write-token ownership.  After the configured
    restart delay the client cold-starts a fresh incarnation (new
    epoch) with an empty cache and resumes submitting transactions.

    Fibers of the dead incarnation that were suspended on
    non-cancellable resources unwind lazily via the epoch liveness
    guards in {!Client} and {!Srv}. *)

val crash_client : Model.sys -> int -> unit
(** Crash one client now (no-op when already down): reclaim its
    transaction and server-side state, drop its caches, bump its epoch,
    and run the fault hook (audit).  Exposed for tests; {!install}
    drives it from the configured crash rate. *)

val restart_client : Model.sys -> int -> unit
(** Cold-restart a crashed client (no-op when up): marks it up and
    spawns a fresh transaction-source fiber for the new epoch. *)

val crash_server : Model.sys -> int -> unit
(** Fail one server now (no-op unless up).  Volatile state — buffer
    pool, lock tables, copy tables, token ownership — is lost; the
    durable page versions and the unflushed redo-log count survive.
    Every transaction that touched the server (or has an RPC in flight
    there) is doomed: it aborts at its next server interaction and the
    client retries it (presumed abort).  Messages addressed to the
    down server time out, back off, and are eventually given away by
    their senders.  Exposed for tests; {!install} drives it from the
    configured server crash rate. *)

val restart_server : Model.sys -> int -> unit
(** Recover a down server (no-op unless down): replay the redo-log
    tail bounded by the last flush (one log read plus per-record CPU),
    then run client-assisted callback reconstruction — each surviving
    client reconnects over [M_recover] messages and re-ships its
    copy-table rows for the partition, restoring the callback state
    before any new grant — and reopen for normal traffic.  While
    recovering, the server admits only [M_recover] traffic. *)

val install : Model.sys -> unit
(** When the client crash rate is positive, spawn one driver fiber per
    client that crashes it at exponentially distributed intervals and
    restarts it after the profile's restart delay.  When the server
    crash rate is positive, additionally spawn per server a periodic
    redo-log flush fiber (the durability point) and a crash/restart
    driver; crashes only strike up servers, so recoveries are never
    interrupted.  With zero rates this spawns nothing and draws
    nothing. *)

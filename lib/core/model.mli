(** Shared mutable state of the simulated system (Figure 2).

    All protocol modules operate on one {!sys} value holding the server,
    the clients, the shared resources, and the metrics.  The types live
    here (rather than in the client/server modules) so that the
    client-side and server-side logic — which call into each other via
    callbacks and de-escalations — need no mutual recursion. *)

open Storage
open Simcore

type page_entry = {
  mutable unavailable : Ids.Int_set.t;
      (** slots marked unavailable by remote write locks/callbacks *)
  mutable dirty : Ids.Int_set.t;
      (** slots updated by this client's current transaction *)
  mutable fetch_version : int;
      (** server page version when this copy was shipped (merge check) *)
}

type obj_entry = { mutable odirty : bool }
(** Object-server client cache entry. *)

type txn = {
  tid : Locking.Lock_types.txn;  (** unique per incarnation *)
  client : int;
  epoch : int;
      (** the client incarnation this transaction belongs to; a crash
          bumps the client's epoch, orphaning the transaction *)
  ops : Workload.Refstring.t;
  started : float;  (** this incarnation's start *)
  first_started : float;  (** first submission (for response time) *)
  mutable restarts : int;
  mutable read_pages : Ids.Page_set.t;  (** client-local page read locks *)
  mutable read_objs : Ids.Oid_set.t;  (** client-local object read locks *)
  mutable wpages : Ids.Page_set.t;  (** server page write locks held *)
  mutable wobjs : Ids.Oid_set.t;  (** server object write locks held *)
  mutable updated : Ids.Oid_set.t;  (** objects updated so far *)
  mutable doomed : bool;
      (** a server this transaction depended on crashed; the transaction
          must abort-and-retry (presumed abort), but its client is alive
          — unlike a crash, dooming does not unwind the client fiber *)
  mutable rpc_sid : int;
      (** server an RPC is currently in flight to, or -1; lets a server
          crash doom transactions whose copies are in transit before
          they appear in any page/object set *)
}

(** Per-client state in struct-of-arrays layout, indexed by client id.
    The SoA shape keeps the population-wide sweeps (liveness guards,
    audit scans over [up]/[running]) to one contiguous word per client,
    which is what makes 10k+ client runs affordable. *)
type clients = {
  n : int;  (** the population; every array below has this length *)
  ccpu : Resources.Cpu.t array;
  crng : Rng.t array;
  cache : (Ids.page, page_entry) Lru.t array;
      (** page-grain cache (PS family) *)
  ocache : (Ids.Oid.t, obj_entry) Lru.t array;
      (** object-grain cache (OS) *)
  running : txn option array;
  end_hooks : (unit -> unit) list array;
      (** resumers of callbacks blocked on the running transaction;
          drained when it terminates *)
  resp_history : Stats.Welford.t array;
      (** all-time response times, used to size restart delays *)
  up : bool array;  (** false while crashed (awaiting cold restart) *)
  epoch : int array;  (** incarnation counter, bumped at each crash *)
  crashed_at : float option array;
      (** time of the crash that started the current outage; cleared at
          the first commit after restart (recovery-latency metric) *)
}

type srv_state =
  | Srv_up  (** serving requests normally *)
  | Srv_down  (** crashed: volatile state lost, requests go unanswered *)
  | Srv_recovering
      (** replaying the redo log and rebuilding copy tables from client
          reports; only recovery-class messages are admitted *)

type server = {
  sid : int;  (** this server's index in [sys.servers] *)
  scpu : Resources.Cpu.t;
  sdisks : Resources.Disk_array.t;
  sbuffer : Buffer_pool.t;
  plocks : Ids.page Locking.Lock_table.t;  (** page write locks *)
  olocks : Ids.Oid.t Locking.Lock_table.t;  (** object write locks *)
  pcopies : Ids.page Locking.Copy_table.t;
  ocopies : Ids.Oid.t Locking.Copy_table.t;
  wfg : Locking.Waits_for.t;
  versions : (Ids.page, int) Hashtbl.t;
      (** committed-update counter per page; missing = 0 *)
  olocks_by_page : (Ids.page, int Ids.Oid_map.t) Hashtbl.t;
      (** reference-counted index of object write locks (and pending
          write-lock requests) per page, for availability marking; the
          marks themselves consult the lock table's holder, so pending
          entries are harmless, while indexing {e before} the blocking
          acquire leaves no window in which a freshly granted lock is
          invisible to a concurrently computed reply *)
  deesc_inflight : (Ids.page, unit Ivar.t) Hashtbl.t;
      (** serializes concurrent PS-AA de-escalations of the same page *)
  token_owner : (Ids.page, int * Locking.Lock_types.txn) Hashtbl.t;
      (** page update-token ownership (client, last owning txn) — used
          only under [Config.Write_token] *)
  srv_rng : Rng.t;
      (** server-local randomness (size-change/overflow model) *)
  mutable cb_drop_clock : int;
      (** counts callback targets considered for the
          [Config.cb_drop_every] sabotage knob *)
  mutable srv_state : srv_state;  (** always [Srv_up] with faults off *)
  mutable log_records : int;
      (** committed object updates logged since the last log flush: the
          redo-log prefix replayed on restart (the flush fiber zeroes it
          every [log_flush_interval]) *)
  mutable srv_crashed_at : float;
      (** time of this server's most recent crash (recovery latency) *)
}

type sys = {
  engine : Engine.t;
  cfg : Config.t;
  algo : Algo.t;
  params : Workload.Wparams.t;
  net : Resources.Network.t;
  servers : server array;
      (** the partitioned page servers; index 0 doubles as the deadlock
          coordinator when there is more than one *)
  clients : clients;
  metrics : Metrics.t;
  faults : Faults.t;  (** fault-injection state (streams, counters, hook) *)
  oracle : Oracle.History.t option;
      (** history recorder, present iff [Config.oracle] *)
  timeline : Tl.t option;
      (** timeline recorder, present iff [Config.timeline] *)
  by_tid : (int, txn) Hashtbl.t;
      (** running transactions by tid (maintained by [set_running] /
          [clear_running]); O(1) holder resolution for de-escalation *)
  updaters : (Ids.Oid.t, txn list) Hashtbl.t;
      (** running transactions with the object in their [updated] set
          (maintained by [note_updater] / [clear_running]); O(1)
          write-isolation assertion *)
  mutable next_tid : int;
  mutable live : bool;
      (** cleared at simulation end so client loops stop resubmitting *)
}

exception Txn_aborted
(** Raised inside a client transaction fiber when the server reports
    that the transaction lost a deadlock. *)

exception Client_crashed
(** Raised inside a client fiber when its workstation crashed while the
    fiber was suspended on a non-cancellable resource (CPU, disk,
    network): the fiber must unwind without touching caches, locks or
    metrics — the crash handler already reclaimed its state. *)

val txn_live : sys -> txn -> bool
(** The transaction's client is up and still in the incarnation that
    started the transaction.  False for "zombie" transactions whose
    client crashed while one of their fibers was suspended. *)

val fresh_tid : sys -> int
val num_clients : sys -> int

(** {2 Partition map}

    Each page is owned by exactly one server: all of its server-side
    state (buffer slot, locks, copy registrations, version counter,
    update token) lives there.  Clients additionally have a {e home}
    server — the one relaying callbacks from remote partitions to
    them. *)

val num_servers : sys -> int

val owner_sid : sys -> Ids.page -> int
(** The page's owning server under [cfg.partition] ([Hash]: [p mod n];
    [Range]: contiguous ranges of [db_pages / n] pages). *)

val server_of : sys -> Ids.page -> server
val home_sid : sys -> int -> int
(** A client's home server: [cid mod n]. *)

val home_server : sys -> int -> server

val page_version : sys -> Ids.page -> int
val bump_page_version : sys -> Ids.page -> by:int -> unit

(** {2 Client-local lock queries} *)

val client_txn : sys -> int -> txn option
(** The transaction currently running at a client, if any. *)

(** {2 Active-transaction indexes}

    Both indexes mirror the [running] array exactly: a transaction is
    present while (and only while) it is some client's running
    transaction.  All mutation goes through the three functions below
    so the mirrors cannot drift. *)

val txn_of_tid : sys -> int -> txn option
(** The running transaction with this tid, if any — O(1), replaces the
    all-clients scan the de-escalation path used to do. *)

val set_running : sys -> int -> txn -> unit
(** Install the client's running transaction and index it by tid. *)

val clear_running : sys -> int -> txn option
(** End the client's running transaction: clear the slot and drop the
    tid and per-object updater bindings.  Returns the ended
    transaction.  Must run before its [updated] set is discarded. *)

val note_updater : sys -> txn -> Ids.Oid.t -> unit
(** Record that the (running) transaction updated the object; called on
    the first update of each object. *)

val updaters_of : sys -> Ids.Oid.t -> txn list
(** Running transactions with the object in their updated set. *)

val obj_in_use : txn -> Ids.Oid.t -> bool
(** The transaction read or updated this object (local object lock). *)

val page_in_use : txn -> Ids.page -> bool
(** The transaction holds a local lock on any object of the page, or a
    page write lock. *)

(** {2 Object-lock page index} *)

val index_obj_lock : server -> Ids.Oid.t -> unit
(** Add one reference. *)

val unindex_obj_lock : server -> Ids.Oid.t -> unit
(** Release one reference. *)

val foreign_locked_slots : sys -> Ids.page -> tid:int -> Ids.Int_set.t
(** Slots of objects on the page write-locked by transactions other than
    [tid] — the "unavailable" marking applied when shipping the page. *)

val page_has_foreign_obj_lock : sys -> Ids.page -> tid:int -> bool

(** {2 Construction} *)

val create :
  cfg:Config.t ->
  algo:Algo.t ->
  params:Workload.Wparams.t ->
  seed:int ->
  sys

val oracle_hook : sys -> (Oracle.History.t -> unit) -> unit
(** Apply [f] to the history recorder when the oracle is on; free
    otherwise. *)

val tl_hook : sys -> (Tl.t -> unit) -> unit
(** Apply [f] to the timeline recorder when the timeline is on; free
    otherwise. *)

(** Kernel event tracing on the [Logs] library.

    Disabled by default; enable with {!setup} (the CLIs expose it as
    [--trace]) to stream transaction lifecycle and protocol events —
    grants, callbacks, de-escalations, aborts — with simulated
    timestamps, e.g.:

    {v
    [oodb] 12.03417 txn 841 (client 3) deescalate page 57 -> 2 object locks
    v}

    Both entry points take the format string directly, so when the
    source is disabled the arguments are discarded without formatting:
    tracing that is off costs one level check per call site and
    allocates nothing. *)

val src : Logs.src
(** The [oodb.kernel] log source. *)

val setup : level:Logs.level option -> unit
(** Install a stderr reporter and set the source's level. *)

val active : unit -> bool
(** Whether the source level currently renders debug events. *)

val rendered : unit -> int
(** Number of trace messages formatted since program start (a
    monotonic counter; used by the laziness regression test). *)

val txn :
  Model.sys -> tid:int -> client:int ->
  ('a, Format.formatter, unit, unit) format4 -> 'a
(** Log one transaction-scoped event (debug level), stamped with the
    current simulated time. *)

val event : Model.sys -> ('a, Format.formatter, unit, unit) format4 -> 'a
(** Log a free-form kernel event (debug level). *)

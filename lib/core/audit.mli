(** Always-on invariant auditor.

    Inspects the shared system state — lock tables, waits-for graph,
    copy tables, client caches — and raises {!Violation} when a
    structural invariant of the protocols is broken.  The checks are
    pure inspection: no randomness is consumed and no events are
    scheduled, so auditing never perturbs the simulation and runs
    identically whether faults are enabled or not.

    The audit runs at every transaction boundary (commit and abort),
    after every injected fault (via {!install}, which registers it as
    the {!Faults} hook), and at end of run.  Unlike the quiescence
    audit in the fuzz tests, it must hold at {e any} instant, so it
    checks coverage (at least one registration per cached copy) rather
    than exact mirroring (in-flight registrations are legal). *)

exception Violation of string
(** Carries the failed invariant, the audit context, the simulated
    clock, and a diagnostic dump of the lock/wait state. *)

val check : ?context:string -> ?coverage_of:int -> Model.sys -> unit
(** Verify every invariant; raises {!Violation} on the first failure.
    [coverage_of] restricts the (linear-in-cache-size) copy-coverage
    sweep to one client — used at transaction boundaries, where only
    the terminating client's cache changed; every other check is always
    global.  Fault-hook and end-of-run audits sweep everything.

    Invariants:
    - every lock holder and queued waiter is an active transaction
      (begun and not ended) — in particular no crashed client's
      transaction holds or awaits locks;
    - page write locks coexist with no {e foreign} object write lock on
      the same page (lock-mode compatibility across granularities);
    - every page/object cached at an {e up} client is covered by at
      least one copy-table registration, so it remains a callback
      target;
    - a crashed (down) client has no running transaction, empty caches,
      and no copy-table registrations;
    - the waits-for graph is acyclic (deadlock detection left no cycle
      behind);
    - the updated-object sets of concurrently running transactions are
      pairwise disjoint (write isolation). *)

val install : Model.sys -> unit
(** Register [check sys] as the fault-injection hook, so every injected
    crash, message fault, and disk stall is immediately followed by a
    full audit. *)

(** Client-side transaction execution (the Client Manager plus the
    Transaction Source of Figure 2).

    Each client workstation runs one fiber that generates transactions
    from its workload stream and executes them one after another.  An
    operation acquires read (and, for updates, write) permission per
    the protocol, then charges the per-object application CPU cost at
    user priority.  Transactions aborted by deadlock are resubmitted
    with the same reference string after a randomized restart delay
    (Section 4.1). *)

val start : Model.sys -> unit
(** Spawn the transaction-source fiber of every client. *)

val start_one : Model.sys -> int -> unit
(** Spawn the transaction-source fiber of one client, bound to the
    client's {e current} epoch: used by crash recovery to cold-start a
    fresh incarnation after the restart delay.  The previous
    incarnation's fiber, if still unwinding, observes the epoch change
    and stops resubmitting. *)

val run_one :
  Model.sys -> client:int -> Workload.Refstring.t -> (unit -> unit) -> unit
(** Run a single, explicitly supplied transaction at [client] (with
    restarts until it commits), then call the continuation.  Exposed
    for tests and the trace example; {!start} is the normal entry
    point. *)

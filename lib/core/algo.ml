type t = PS | OS | PS_OO | PS_OA | PS_AA

let all = [ PS; OS; PS_OO; PS_OA; PS_AA ]

let to_string = function
  | PS -> "PS"
  | OS -> "OS"
  | PS_OO -> "PS-OO"
  | PS_OA -> "PS-OA"
  | PS_AA -> "PS-AA"

let of_string s =
  match String.uppercase_ascii s with
  | "PS" -> Some PS
  | "OS" -> Some OS
  | "PS-OO" | "PS_OO" | "PSOO" -> Some PS_OO
  | "PS-OA" | "PS_OA" | "PSOA" -> Some PS_OA
  | "PS-AA" | "PS_AA" | "PSAA" -> Some PS_AA
  | _ -> None

let transfers_pages = function OS -> false | PS | PS_OO | PS_OA | PS_AA -> true
let locks_objects = function PS -> false | OS | PS_OO | PS_OA | PS_AA -> true

let page_grain_copies = function
  | PS | PS_OA | PS_AA -> true
  | OS | PS_OO -> false

let pp ppf t = Format.pp_print_string ppf (to_string t)

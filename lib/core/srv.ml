open Storage
open Simcore
open Model
open Locking

type read_reply =
  | R_page of { unavailable : Ids.Int_set.t; version : int }
  | R_objs of Ids.Oid.t list
  | R_aborted

type write_reply = W_page | W_obj | W_aborted

let scharge sv instr = Resources.Cpu.system sv.scpu instr

(* Server-side zombie guard.  An RPC executes in the requesting client's
   fiber; if that client crashes while the fiber is suspended on a
   server resource, the crash handler has already reclaimed the
   transaction (locks, copies, waits-for entry).  The resumed fiber must
   then acquire nothing new — a lock granted to the ended transaction
   would leak forever.  Checked after suspension points that precede a
   grant or a registration.  A doomed transaction — one that touched a
   server that crashed while it ran — is equally dead: its state at the
   crashed server is gone, so nothing may be granted in its name. *)
let txn_dead sys txn = txn.doomed || not (Model.txn_live sys txn)

(* One physical I/O: initiation CPU then the disk itself. *)
let disk_io sys sv =
  scharge sv sys.cfg.Config.disk_overhead_inst;
  Resources.Disk_array.io sv.sdisks

(* Ensure a page is resident at its owning server, paying the read (and
   any dirty write-back).  [read_from_disk:false] installs a full
   incoming page copy, which needs no read.  Nothing installs into the
   memory of a failed machine: if the owner crashed while the calling
   fiber was suspended, the access is silently dropped (the caller's
   transaction is doomed and aborts at its next liveness check). *)
let buffer_page sys p ~read_from_disk =
  let sv = server_of sys p in
  if sv.srv_state <> Srv_up then ()
  else
  match Buffer_pool.access sv.sbuffer p with
  | Buffer_pool.Hit -> ()
  | Buffer_pool.Miss evicted ->
    (match evicted with
    | Some (_victim, true) -> disk_io sys sv (* write back dirty victim *)
    | Some (_, false) | None -> ());
    if read_from_disk then disk_io sys sv

(* Release from the lock tables' own per-transaction maps, not the
   client's mirror: a deadlock victim may hold locks the server granted
   moments before the abort reply, which the client never recorded.
   Idempotent, so it is safe both as normal termination and as the
   cleanup path for a transaction whose locks crash recovery already
   reclaimed.  Sweeps every partition: a transaction may hold locks at
   any server whose pages it touched. *)
let release_txn_locks sys txn =
  Array.iter
    (fun sv ->
      List.iter
        (fun o -> unindex_obj_lock sv o)
        (Lock_table.locks_of sv.olocks ~txn:txn.tid);
      Lock_table.release_all sv.olocks ~txn:txn.tid;
      Lock_table.release_all sv.plocks ~txn:txn.tid;
      Waits_for.end_txn sv.wfg txn.tid)
    sys.servers

(* Blocking lock-table request with wait-time accounting.  A doomed
   transaction gets nothing: a crash already reclaimed its state, and a
   grant now would outlive its abort. *)
let locked_acquire sys table item ~txn ~kind =
  if txn.doomed then Lock_types.Aborted
  else
  let t0 = Engine.now sys.engine in
  let g = Lock_table.acquire table item ~txn:txn.tid ~kind in
  let dt = Engine.now sys.engine -. t0 in
  if dt > 0.0 then Metrics.note_lock_wait sys.metrics ~duration:dt;
  g

(* --- Callbacks ------------------------------------------------------- *)

let page_of_kind = function
  | Cb.Purge_page p -> p
  | Cb.Purge_obj o | Cb.Mark_obj o | Cb.Adaptive o -> o.Ids.Oid.page

(* The copy tables are maintained exactly and exclusively by the
   client-side cache operations (install/drop/mark, with piggybacked
   deregistration), so a callback acknowledgement never mutates them:
   updating the table at ack time would race with the target refetching
   the item while the ack is in transit, erasing a registration the
   client legitimately holds. *)
let copy_registered sys kind target =
  let sv = server_of sys (page_of_kind kind) in
  match kind with
  | Cb.Purge_page p -> Copy_table.holds sv.pcopies p ~client:target
  | Cb.Adaptive o -> Copy_table.holds sv.pcopies o.Ids.Oid.page ~client:target
  | Cb.Purge_obj o | Cb.Mark_obj o -> Copy_table.holds sv.ocopies o ~client:target

(* Issue callbacks to [targets] and wait for all acknowledgements.  The
   writer's wait is registered in the owning server's waits-for graph
   (the per-client handlers add the actual edges as they discover local
   conflicts); if the writer is chosen as a deadlock victim meanwhile,
   the wait resolves to [`Aborted] and the stragglers complete
   harmlessly in the background.

   When a target's home server differs from the owning server (only
   possible at servers > 1), the callback is forwarded: the owner sends
   an [M_cb_forward] control message to the home server, which relays
   the callback to the client over its session channel and ships the
   acknowledgement back the same way, charging [forward_inst] relay CPU.
   At servers=1 owner and home always coincide and the path is
   byte-identical to the singleton transport.

   A [Not_cached] result while the server still has the target
   registered means the copy was in transit to the client when the
   callback arrived; the callback is re-sent so the conflict is resolved
   against the installed copy rather than silently ignored. *)
let do_callbacks sys sv ~writer ~kind ~targets =
  (* Sabotage knob for oracle negative tests: silently skip every Nth
     callback target, leaving its stale copy registered and readable —
     exactly the class of protocol bug the serializability oracle
     exists to catch.  Off ([cb_drop_every = 0]) outside those tests. *)
  let targets =
    let every = sys.cfg.Config.cb_drop_every in
    if every <= 0 then targets
    else
      List.filter
        (fun _ ->
          sv.cb_drop_clock <- sv.cb_drop_clock + 1;
          sv.cb_drop_clock mod every <> 0)
        targets
  in
  if targets = [] then `Acks []
  else begin
    let engine = sys.engine in
    let owner = sv.sid in
    let gather = Gather.create engine (List.length targets) in
    let outcome = Ivar.create engine in
    Waits_for.set_wait ~info:"callback-gather" sv.wfg writer ~blockers:[]
      ~cancel:(fun () ->
        if not (Ivar.is_full outcome) then Ivar.fill outcome `Aborted);
    List.iter
      (fun target ->
        Proc.spawn engine (fun () ->
            let home = home_sid sys target in
            let t0 = Engine.now engine in
            Model.tl_hook sys (fun x ->
                Tl.callback_sent x ~sid:owner ~target ~now:t0);
            (* The three server-destined legs are persistent sends:
               callback delivery is a correctness requirement, so a leg
               addressed to a crashed relay retries until the restart
               driver reopens it rather than giving the message away. *)
            let rec round () =
              if home <> owner then begin
                (* Cross-partition leg: owner -> home relay. *)
                ignore
                  (Netlayer.control_checked ~persist:true sys
                     ~cls:Metrics.M_cb_forward ~src:(Netlayer.Server owner)
                     ~dst:(Netlayer.Server home));
                Resources.Cpu.system sys.servers.(home).scpu
                  sys.cfg.Config.forward_inst;
                Model.tl_hook sys (fun x ->
                    Tl.callback_forward x ~sid:home ~target
                      ~now:(Engine.now engine))
              end;
              Netlayer.control sys ~cls:Metrics.M_callback
                ~src:(Netlayer.Server home) ~dst:(Netlayer.Client target);
              let result = Cb.handle sys ~sv ~client:target ~writer kind in
              ignore
                (Netlayer.control_checked ~persist:true sys
                   ~cls:Metrics.M_callback_reply ~src:(Netlayer.Client target)
                   ~dst:(Netlayer.Server home));
              if home <> owner then
                ignore
                  (Netlayer.control_checked ~persist:true sys
                     ~cls:Metrics.M_cb_forward ~src:(Netlayer.Server home)
                     ~dst:(Netlayer.Server owner));
              scharge sv sys.cfg.Config.register_copy_inst;
              match result with
              | Cb.Not_cached when copy_registered sys kind target ->
                round ()
              | result ->
                (* One full round-trip per target: post to processed
                   ack, re-sends and blocking at the target included —
                   the latency a writer actually waits out. *)
                let now = Engine.now engine in
                Metrics.note_cb_round sys.metrics ~duration:(now -. t0);
                Model.tl_hook sys (fun x ->
                    Tl.callback_ack x ~sid:owner ~target ~now);
                Gather.add gather (target, result)
            in
            round ()))
      targets;
    Proc.spawn engine (fun () ->
        let results = Gather.wait gather in
        if not (Ivar.is_full outcome) then Ivar.fill outcome (`Acks results));
    let r = Ivar.read outcome in
    (match r with
    | `Acks _ -> Waits_for.clear_wait sv.wfg writer
    | `Aborted -> ());
    r
  end

(* Size-changing update model (Section 6.1): each installed update may
   have grown its object; a grown object overflows its page with some
   probability, costing forwarding work and an extra I/O to update the
   anchor page of the forwarded object. *)
let maybe_overflow sys sv ~objects =
  let cfg = sys.cfg in
  let p_over = cfg.Config.size_change_prob *. cfg.Config.overflow_prob in
  if p_over > 0.0 then
    for _ = 1 to objects do
      if Rng.bool sv.srv_rng ~p:p_over then begin
        Metrics.note_overflow sys.metrics;
        scharge sv cfg.Config.forward_inst;
        disk_io sys sv
      end
    done

(* --- PS-AA de-escalation --------------------------------------------- *)

(* Ask the holder of a page write lock to de-escalate: it registers
   object write locks for the objects it has updated on the page and
   gives up the page lock (Section 3.3.3).  Runs at the page's owning
   server. *)
let deescalate_page sys p holder =
  let sv = server_of sys p in
  match Hashtbl.find_opt sv.deesc_inflight p with
  | Some inflight ->
    (* Another request already triggered this de-escalation; just wait
       for it to finish. *)
    Ivar.read inflight
  | None -> (
    match Model.txn_of_tid sys holder with
    | None -> () (* holder finished in the meantime *)
    | Some ht ->
      let hcid = ht.client in
      let inflight = Ivar.create sys.engine in
      Hashtbl.replace sv.deesc_inflight p inflight;
      Netlayer.control sys ~cls:Metrics.M_deescalate
        ~src:(Netlayer.Server sv.sid) ~dst:(Netlayer.Client hcid);
      (* Client side: atomically convert the local bookkeeping so any
         further updates at the holder request proper object locks. *)
      Resources.Cpu.system sys.clients.ccpu.(hcid) sys.cfg.Config.lock_inst;
      (* Re-resolve after the suspensions above: the holder may have
         ended (or its client started a new transaction) while the
         message and CPU charge were in flight. *)
      let objs =
        match Model.txn_of_tid sys holder with
        | Some t when Ids.Page_set.mem p t.wpages ->
          let objs =
            Ids.Oid_set.filter (fun o -> o.Ids.Oid.page = p) t.updated
          in
          t.wpages <- Ids.Page_set.remove p t.wpages;
          t.wobjs <- Ids.Oid_set.union objs t.wobjs;
          objs
        | Some _ | None -> Ids.Oid_set.empty
      in
      Netlayer.control sys ~cls:Metrics.M_deescalate_reply
        ~src:(Netlayer.Client hcid) ~dst:(Netlayer.Server sv.sid);
      let n = Ids.Oid_set.cardinal objs in
      if n > 0 then begin
        scharge sv (float_of_int n *. sys.cfg.Config.deescalate_inst);
        (* The holder may have committed or aborted while the reply (or
           the CPU charge above) was pending — its server-side locks are
           then already gone even though the client-side [running] field
           lingers until the commit reply returns.  Converting locks for
           such a transaction would leak them forever, so the precise
           guard is that the page write lock is still held; no suspension
           can occur between this check and the lock surgery below. *)
        let holder_alive = Lock_table.holder sv.plocks p = Some holder in
        if holder_alive then begin
          Ids.Oid_set.iter
            (fun o ->
              Lock_table.force_grant sv.olocks o ~txn:holder;
              index_obj_lock sv o)
            objs;
          Lock_table.release sv.plocks p ~txn:holder;
          Metrics.note_deescalation sys.metrics ~objects:n;
          Model.tl_hook sys (fun x ->
              Tl.deescalate x ~sid:sv.sid ~page:p ~now:(Engine.now sys.engine));
          Trace.event sys "txn %d deescalated page %d -> %d object locks"
            holder p n
        end
      end;
      Hashtbl.remove sv.deesc_inflight p;
      Ivar.fill inflight ())

(* Repeat until the page carries no foreign page-grain write lock.  Each
   round either converts the current holder's lock, observes that it is
   gone, or — when the holder is mid-commit/mid-abort (its client no
   longer runs the transaction but the server has not yet processed the
   release) — waits behind the lock with a read probe rather than
   spinning at the same simulated instant.  Returns [Aborted] if the
   requester loses a deadlock while probing. *)
let rec deescalate_loop sys txn p =
  let sv = server_of sys p in
  match Lock_table.holder sv.plocks p with
  | Some h when h <> txn.tid -> (
    match Model.txn_of_tid sys h with
    | Some _ ->
      deescalate_page sys p h;
      deescalate_loop sys txn p
    | None -> (
      match locked_acquire sys sv.plocks p ~txn ~kind:Lock_types.Probe with
      | Lock_types.Aborted -> Lock_types.Aborted
      | Lock_types.Granted -> deescalate_loop sys txn p))
  | Some _ | None -> Lock_types.Granted

(* --- Write-token page updates (Section 6.1 alternative) ---------------- *)

(* Under [Config.Write_token] a page has at most one updater at a time:
   a writer must own the page's update token.  Taking the token from a
   transaction with uncommitted updates on the page blocks until that
   transaction terminates (with a deadlock-detectable wait); taking it
   from an idle owner bounces the page through its owning server — the
   communication cost the paper cites as the approach's weakness. *)
let acquire_token sys txn p =
  let sv = server_of sys p in
  let rec go () =
    match Hashtbl.find_opt sv.token_owner p with
    | Some (owner_client, owner_tid) when owner_client <> txn.client -> (
      (* The owning transaction counts as live as long as it runs: its
         first update may not be recorded yet when its lock grant and a
         competitor's token request race, and stealing the token in that
         window would let two transactions update the page at once. *)
      let live_owner =
        match client_txn sys owner_client with
        | Some t when t.tid = owner_tid -> Some t
        | Some _ | None -> None
      in
      match live_owner with
      | Some t -> (
        (* Owner still has uncommitted updates: wait for its end. *)
        Metrics.note_token_wait sys.metrics;
        let outcome =
          Proc.suspend sys.engine (fun resume ->
              let fired = ref false in
              let fire r =
                if not !fired then begin
                  fired := true;
                  resume (Ok r)
                end
              in
              let hooks = sys.clients.end_hooks in
              hooks.(owner_client) <- (fun () -> fire `Retry) :: hooks.(owner_client);
              Waits_for.set_wait ~info:"token" sv.wfg txn.tid
                ~blockers:[ t.tid ] ~cancel:(fun () -> fire `Aborted);
              ignore (Waits_for.check_deadlock sv.wfg ~from:txn.tid))
        in
        match outcome with
        | `Aborted -> Lock_types.Aborted
        | `Retry ->
          Waits_for.clear_wait sv.wfg txn.tid;
          go ())
      | None ->
        (* Idle owner: bounce the latest copy of the page through the
           server to the new owner. *)
        Metrics.note_token_bounce sys.metrics;
        Netlayer.page_data sys ~cls:Metrics.M_dirty_data
          ~src:(Netlayer.Client owner_client) ~dst:(Netlayer.Server sv.sid);
        buffer_page sys p ~read_from_disk:false;
        Netlayer.page_data sys ~cls:Metrics.M_dirty_data
          ~src:(Netlayer.Server sv.sid) ~dst:(Netlayer.Client txn.client);
        if txn_dead sys txn then Lock_types.Aborted
        else begin
          (* The bounce refreshed the new owner's copy. *)
          (match Lru.peek sys.clients.cache.(txn.client) p with
          | Some entry ->
            entry.fetch_version <- page_version sys p;
            Cache_ops.oracle_note_page_copy sys txn.client p entry
          | None -> ());
          Hashtbl.replace sv.token_owner p (txn.client, txn.tid);
          Lock_types.Granted
        end)
    | Some _ | None ->
      if txn_dead sys txn then Lock_types.Aborted
      else begin
        Hashtbl.replace sv.token_owner p (txn.client, txn.tid);
        Lock_types.Granted
      end
  in
  if sys.cfg.Config.update_mode = Config.Merge then Lock_types.Granted
  else go ()

(* --- Read requests ---------------------------------------------------- *)

let reply_abort_read sys sv txn =
  Netlayer.control sys ~cls:Metrics.M_read_reply ~src:(Netlayer.Server sv.sid)
    ~dst:(Netlayer.Client txn.client);
  R_aborted

(* Registration must not happen for a crashed requester: the copy table
   would name a site whose cache no longer exists. *)
let rec reply_page_live sys txn p =
  let sv = server_of sys p in
  scharge sv sys.cfg.Config.register_copy_inst;
  (* The registration charge suspends the server fiber, so the
     requester can crash (and be purged) during it — re-check before
     registering, or the copy table would name a site whose cache no
     longer exists. *)
  if txn_dead sys txn then reply_abort_read sys sv txn
  else if Lock_table.conflicts sv.plocks p ~txn:txn.tid then begin
    (* A page-grain writer won its lock while the copy was being
       prepared (disk read, CPU charges) and collected its callback
       targets from the copy table — which cannot name this requester
       yet.  Shipping now would hand out a copy nobody will ever call
       back: wait for the writer to drain and rebuild the reply from
       the post-write state. *)
    match locked_acquire sys sv.plocks p ~txn ~kind:Lock_types.Probe with
    | Lock_types.Aborted -> reply_abort_read sys sv txn
    | Lock_types.Granted ->
      if txn_dead sys txn then reply_abort_read sys sv txn
      else reply_page_live sys txn p
  end
  else begin
    (* From here to the reply there is no suspension: the availability
       mask, the copy registration and the shipped content form one
       atomic snapshot.  Any writer arriving later finds the
       registration and calls this client back (a callback beating the
       page to the client re-sends until the copy is installed). *)
    let unavailable =
      match sys.algo with
      | Algo.PS -> Ids.Int_set.empty
      | Algo.OS -> assert false
      | Algo.PS_OO | Algo.PS_OA | Algo.PS_AA ->
        foreign_locked_slots sys p ~tid:txn.tid
    in
    (match sys.algo with
    | Algo.PS | Algo.PS_OA | Algo.PS_AA ->
      Copy_table.register sv.pcopies p ~client:txn.client
    | Algo.PS_OO ->
      (* Object-grain copy tracking: register every available object the
         page copy confers, before the reply leaves the server, so a
         writer that wins its lock while the copy is in transit still
         calls this client back. *)
      for slot = 0 to sys.cfg.Config.objects_per_page - 1 do
        if not (Ids.Int_set.mem slot unavailable) then
          Copy_table.register sv.ocopies (Ids.Oid.make ~page:p ~slot)
            ~client:txn.client
      done
    | Algo.OS -> assert false);
    let version = page_version sys p in
    Netlayer.page_data sys ~cls:Metrics.M_read_reply
      ~src:(Netlayer.Server sv.sid) ~dst:(Netlayer.Client txn.client);
    R_page { unavailable; version }
  end

let reply_page sys txn p =
  if txn_dead sys txn then reply_abort_read sys (server_of sys p) txn
  else reply_page_live sys txn p

let read_rpc sys txn oid =
  let p = oid.Ids.Oid.page in
  let sv = server_of sys p in
  (* From the moment the request leaves the client until the reply is
     built, the transaction has in-flight state at [sv] that no table
     records yet; [rpc_sid] lets a crash of [sv] anywhere in that
     window doom it.  It must be set before the send: the transport
     checks the server's state only once at entry, so a crash striking
     mid-transfer would otherwise deliver the request to a machine
     whose purge swept right past this transaction. *)
  txn.rpc_sid <- sv.sid;
  (* The request leg is checked: a down server swallows it, the client
     times out, retries with backoff, and eventually gives the request
     away — no server-side processing, no reply, a local abort. *)
  if
    not
      (Netlayer.control_checked sys ~cls:Metrics.M_read_req
         ~src:(Netlayer.Client txn.client) ~dst:(Netlayer.Server sv.sid))
  then begin
    txn.rpc_sid <- -1;
    R_aborted
  end
  else begin
    let serve () =
  scharge sv sys.cfg.Config.lock_inst;
  if txn_dead sys txn then reply_abort_read sys sv txn
  else
  match sys.algo with
  | Algo.PS -> (
    match locked_acquire sys sv.plocks p ~txn ~kind:Lock_types.Probe with
    | Lock_types.Aborted -> reply_abort_read sys sv txn
    | Lock_types.Granted ->
      buffer_page sys p ~read_from_disk:true;
      reply_page sys txn p)
  | Algo.OS -> (
    match locked_acquire sys sv.olocks oid ~txn ~kind:Lock_types.Probe with
    | Lock_types.Aborted -> reply_abort_read sys sv txn
    | Lock_types.Granted when txn_dead sys txn -> reply_abort_read sys sv txn
    | Lock_types.Granted ->
      buffer_page sys p ~read_from_disk:true;
      let rec reply_objs () =
        scharge sv sys.cfg.Config.register_copy_inst;
        (* The charge suspends; re-check before registering (see
           [reply_page]). *)
        if txn_dead sys txn then reply_abort_read sys sv txn
        else if Lock_table.conflicts sv.olocks oid ~txn:txn.tid then begin
          (* A writer of the requested object won its lock during the
             disk read or the charge and has already collected its
             callback targets; this in-transit copy would never be
             called back.  Wait for the writer to drain and rebuild. *)
          match
            locked_acquire sys sv.olocks oid ~txn ~kind:Lock_types.Probe
          with
          | Lock_types.Aborted -> reply_abort_read sys sv txn
          | Lock_types.Granted ->
            if txn_dead sys txn then reply_abort_read sys sv txn
            else reply_objs ()
        end
        else begin
          (* No suspension from here to the reply: the group snapshot,
             the registrations and the shipped content are atomic.
             With os_group_size > 1 the server ships the whole static
             group around the requested object (a grouped-object
             server, Section 6.2), skipping members write-locked
             elsewhere. *)
          let group =
            let g = sys.cfg.Config.os_group_size in
            if g <= 1 then [ oid ]
            else begin
              let base = oid.Ids.Oid.slot / g * g in
              List.filter_map
                (fun i ->
                  let slot = base + i in
                  if slot >= sys.cfg.Config.objects_per_page then None
                  else
                    let o = Ids.Oid.make ~page:p ~slot in
                    if Ids.Oid.equal o oid then Some o
                    else if Lock_table.conflicts sv.olocks o ~txn:txn.tid then
                      None
                    else Some o)
                (List.init g Fun.id)
            end
          in
          List.iter
            (fun o -> Copy_table.register sv.ocopies o ~client:txn.client)
            group;
          Netlayer.objs_data sys ~cls:Metrics.M_read_reply
            ~src:(Netlayer.Server sv.sid) ~dst:(Netlayer.Client txn.client)
            ~count:(List.length group);
          R_objs group
        end
      in
      reply_objs ())
  | Algo.PS_OO | Algo.PS_OA -> (
    match locked_acquire sys sv.olocks oid ~txn ~kind:Lock_types.Probe with
    | Lock_types.Aborted -> reply_abort_read sys sv txn
    | Lock_types.Granted ->
      buffer_page sys p ~read_from_disk:true;
      reply_page sys txn p)
  | Algo.PS_AA -> (
    match deescalate_loop sys txn p with
    | Lock_types.Aborted -> reply_abort_read sys sv txn
    | Lock_types.Granted -> (
      match locked_acquire sys sv.olocks oid ~txn ~kind:Lock_types.Probe with
      | Lock_types.Aborted -> reply_abort_read sys sv txn
      | Lock_types.Granted -> (
        (* A fresh page-grain lock cannot normally appear while we were
           queued (our requested object was free), but stay defensive. *)
        match deescalate_loop sys txn p with
        | Lock_types.Aborted -> reply_abort_read sys sv txn
        | Lock_types.Granted ->
          buffer_page sys p ~read_from_disk:true;
          reply_page sys txn p)))
    in
    let r = serve () in
    txn.rpc_sid <- -1;
    r
  end

(* --- Write requests ---------------------------------------------------- *)

let reply_write sys sv txn cls reply =
  Netlayer.control sys ~cls ~src:(Netlayer.Server sv.sid)
    ~dst:(Netlayer.Client txn.client);
  reply

(* The index entry is added before the (possibly blocking) acquire:
   marks consult the lock table's holder, so a pending entry changes
   nothing, while a freshly granted lock is immediately visible to any
   reply computed in the same instant — there is no window between the
   queue grant and the indexing. *)
let acquire_obj_lock sys sv txn oid =
  index_obj_lock sv oid;
  match locked_acquire sys sv.olocks oid ~txn ~kind:Lock_types.Lock with
  | Lock_types.Aborted ->
    unindex_obj_lock sv oid;
    false
  | Lock_types.Granted -> true

let write_rpc sys txn oid =
  let p = oid.Ids.Oid.page in
  let sv = server_of sys p in
  (* Checked request leg and in-flight marker set before the send:
     see [read_rpc]. *)
  txn.rpc_sid <- sv.sid;
  if
    not
      (Netlayer.control_checked sys ~cls:Metrics.M_write_req
         ~src:(Netlayer.Client txn.client) ~dst:(Netlayer.Server sv.sid))
  then begin
    txn.rpc_sid <- -1;
    W_aborted
  end
  else begin
    let serve () =
  scharge sv sys.cfg.Config.lock_inst;
  let reply = reply_write sys sv txn Metrics.M_write_reply in
  (* A write grant that lands after the requester crashed would leak the
     lock forever: the crash already released the transaction's locks,
     and nothing will release this one.  Undo and report an abort. *)
  let reply_dead () =
    release_txn_locks sys txn;
    reply W_aborted
  in
  if txn_dead sys txn then reply W_aborted
  else
  match sys.algo with
  | Algo.PS -> (
    match locked_acquire sys sv.plocks p ~txn ~kind:Lock_types.Lock with
    | Lock_types.Aborted -> reply W_aborted
    | Lock_types.Granted when txn_dead sys txn -> reply_dead ()
    | Lock_types.Granted -> (
      let targets =
        Copy_table.holders_except sv.pcopies p ~client:txn.client
      in
      match
        do_callbacks sys sv ~writer:txn.tid ~kind:(Cb.Purge_page p) ~targets
      with
      | `Aborted -> reply W_aborted
      | `Acks _ when txn_dead sys txn -> reply_dead ()
      | `Acks _ ->
        Metrics.note_page_write_grant sys.metrics;
        Model.tl_hook sys (fun x ->
            Tl.page_write_grant x ~sid:sv.sid ~tid:txn.tid
              ~now:(Engine.now sys.engine));
        reply W_page))
  | Algo.OS -> (
    if not (acquire_obj_lock sys sv txn oid) then reply W_aborted
    else if txn_dead sys txn then reply_dead ()
    else
      let targets =
        Copy_table.holders_except sv.ocopies oid ~client:txn.client
      in
      match
        do_callbacks sys sv ~writer:txn.tid ~kind:(Cb.Purge_obj oid) ~targets
      with
      | `Aborted -> reply W_aborted
      | `Acks _ when txn_dead sys txn -> reply_dead ()
      | `Acks _ ->
        Metrics.note_object_write_grant sys.metrics;
        Model.tl_hook sys (fun x ->
            Tl.object_write_grant x ~sid:sv.sid ~tid:txn.tid
              ~now:(Engine.now sys.engine));
        reply W_obj)
  | Algo.PS_OO -> (
    if not (acquire_obj_lock sys sv txn oid) then reply W_aborted
    else if txn_dead sys txn then reply_dead ()
    else if acquire_token sys txn p = Lock_types.Aborted then reply W_aborted
    else
      let targets =
        Copy_table.holders_except sv.ocopies oid ~client:txn.client
      in
      match
        do_callbacks sys sv ~writer:txn.tid ~kind:(Cb.Mark_obj oid) ~targets
      with
      | `Aborted -> reply W_aborted
      | `Acks _ when txn_dead sys txn -> reply_dead ()
      | `Acks _ ->
        Metrics.note_object_write_grant sys.metrics;
        Model.tl_hook sys (fun x ->
            Tl.object_write_grant x ~sid:sv.sid ~tid:txn.tid
              ~now:(Engine.now sys.engine));
        reply W_obj)
  | Algo.PS_OA -> (
    if not (acquire_obj_lock sys sv txn oid) then reply W_aborted
    else if txn_dead sys txn then reply_dead ()
    else if acquire_token sys txn p = Lock_types.Aborted then reply W_aborted
    else
      let targets =
        Copy_table.holders_except sv.pcopies p ~client:txn.client
      in
      match
        do_callbacks sys sv ~writer:txn.tid ~kind:(Cb.Adaptive oid) ~targets
      with
      | `Aborted -> reply W_aborted
      | `Acks _ when txn_dead sys txn -> reply_dead ()
      | `Acks _ ->
        Metrics.note_object_write_grant sys.metrics;
        Model.tl_hook sys (fun x ->
            Tl.object_write_grant x ~sid:sv.sid ~tid:txn.tid
              ~now:(Engine.now sys.engine));
        reply W_obj)
  | Algo.PS_AA -> (
    match deescalate_loop sys txn p with
    | Lock_types.Aborted -> reply W_aborted
    | Lock_types.Granted ->
    if txn_dead sys txn then reply_dead ()
    else if not (acquire_obj_lock sys sv txn oid) then reply W_aborted
    else if txn_dead sys txn then reply_dead ()
    else if acquire_token sys txn p = Lock_types.Aborted then reply W_aborted
    else begin
      match deescalate_loop sys txn p with
      | Lock_types.Aborted -> reply W_aborted
      | Lock_types.Granted ->
      if txn_dead sys txn then reply_dead ()
      else
      let targets =
        Copy_table.holders_except sv.pcopies p ~client:txn.client
      in
      match
        do_callbacks sys sv ~writer:txn.tid ~kind:(Cb.Adaptive oid) ~targets
      with
      | `Aborted -> reply W_aborted
      | `Acks _ when txn_dead sys txn -> reply_dead ()
      | `Acks results ->
        let all_purged =
          List.for_all
            (fun (_, r) -> match r with
              | Cb.Purged | Cb.Not_cached -> true
              | Cb.Marked -> false)
            results
        in
        if
          all_purged
          && Copy_table.holders_except sv.pcopies p ~client:txn.client = []
          && (not (page_has_foreign_obj_lock sys p ~tid:txn.tid))
          && Lock_table.try_acquire sv.plocks p ~txn:txn.tid
               ~kind:Lock_types.Lock
        then begin
          (* Nobody was using the page: escalate to a page write lock
             (this is also how the protocol re-escalates once earlier
             contention has dissipated). *)
          Metrics.note_page_write_grant sys.metrics;
          Trace.event sys "txn %d escalated to page write lock on %d" txn.tid
            p;
          Model.tl_hook sys (fun x ->
              Tl.escalate x ~sid:sv.sid ~page:p ~now:(Engine.now sys.engine));
          reply W_page
        end
        else begin
          Metrics.note_object_write_grant sys.metrics;
          Model.tl_hook sys (fun x ->
              Tl.object_write_grant x ~sid:sv.sid ~tid:txn.tid
                ~now:(Engine.now sys.engine));
          reply W_obj
        end
    end)
    in
    let r = serve () in
    txn.rpc_sid <- -1;
    r
  end

(* --- Update installation and transaction termination ------------------ *)

let ship_dirty_page sys txn p ~dirty ~fetch_version ~at_commit =
  let sv = server_of sys p in
  (* The owner may have crashed while this fiber was suspended earlier
     in the commit/eviction sequence; a dead machine receives nothing
     and the doomed transaction aborts at its next check. *)
  if sv.srv_state <> Srv_up then ()
  else begin
  Model.oracle_hook sys (fun o ->
      Ids.Int_set.iter
        (fun slot ->
          Oracle.History.ship o ~tid:txn.tid ~oid:(Ids.Oid.make ~page:p ~slot))
        dirty);
  let cls = if at_commit then Metrics.M_commit_data else Metrics.M_dirty_data in
  Netlayer.page_data sys ~cls ~src:(Netlayer.Client txn.client)
    ~dst:(Netlayer.Server sv.sid);
  let n = Ids.Int_set.cardinal dirty in
  let merge_needed =
    (* Under the write-token discipline only one client at a time
       updates a page, and token transfer refreshes the new owner's
       copy, so incoming pages never diverge from the server's. *)
    sys.cfg.Config.update_mode = Config.Merge
    && (page_version sys p > fetch_version
       || page_has_foreign_obj_lock sys p ~tid:txn.tid)
  in
  if merge_needed then begin
    (* Another transaction updated the page since this copy was
       fetched: merge object by object against the server's copy. *)
    buffer_page sys p ~read_from_disk:true;
    scharge sv (sys.cfg.Config.copy_merge_inst *. float_of_int n);
    Metrics.note_merge sys.metrics ~objects:n
  end
  else buffer_page sys p ~read_from_disk:false;
  (* The crash window again: the owner can die during the transfer or
     the merge I/O above, purging its pool mid-install. *)
  if sv.srv_state = Srv_up then begin
    Buffer_pool.mark_dirty sv.sbuffer p;
    maybe_overflow sys sv ~objects:n
  end
  end

let ship_dirty_objs sys txn oids ~at_commit =
  match oids with
  | [] -> ()
  | _ ->
    Model.oracle_hook sys (fun o ->
        List.iter (fun oid -> Oracle.History.ship o ~tid:txn.tid ~oid) oids);
    let cls =
      if at_commit then Metrics.M_commit_data else Metrics.M_dirty_data
    in
    (* One message per owning server (one total in the singleton
       topology), each carrying that partition's objects. *)
    let by_server = Hashtbl.create 4 in
    List.iter
      (fun o ->
        let sid = owner_sid sys o.Ids.Oid.page in
        let prev =
          match Hashtbl.find_opt by_server sid with Some l -> l | None -> []
        in
        Hashtbl.replace by_server sid (o :: prev))
      oids;
    let sids =
      List.sort_uniq compare (List.map (fun o -> owner_sid sys o.Ids.Oid.page) oids)
    in
    List.iter
      (fun sid ->
        let sv = sys.servers.(sid) in
        (* A crashed partition receives nothing (see [ship_dirty_page]);
           the doomed sender aborts at its next liveness check. *)
        if sv.srv_state = Srv_up then begin
          let group = List.rev (Hashtbl.find by_server sid) in
          Netlayer.objs_data sys ~cls ~src:(Netlayer.Client txn.client)
            ~dst:(Netlayer.Server sid) ~count:(List.length group);
          let pages =
            List.sort_uniq compare (List.map (fun o -> o.Ids.Oid.page) group)
          in
          List.iter
            (fun p ->
              if sv.srv_state = Srv_up then begin
                (* Installing an object into a page requires the page
                   frame. *)
                buffer_page sys p ~read_from_disk:true;
                Buffer_pool.mark_dirty sv.sbuffer p
              end)
            pages;
          if sv.srv_state = Srv_up then
            maybe_overflow sys sv ~objects:(List.length group)
        end)
      sids

(* Redo-at-server commit processing: the client ships log records, not
   pages, and each owning server replays the updates of its partition
   onto its own copy.  This saves the page-sized commit messages but
   moves the update CPU work onto the servers (the data-shipping
   offload concern of Section 6.1). *)
let ship_redo_log sys txn =
  let n = Ids.Oid_set.cardinal txn.updated in
  if n > 0 then begin
    Model.oracle_hook sys (fun o ->
        Ids.Oid_set.iter
          (fun oid -> Oracle.History.ship o ~tid:txn.tid ~oid)
          txn.updated);
    let by_page = Hashtbl.create 16 in
    Ids.Oid_set.iter
      (fun o ->
        let p = o.Ids.Oid.page in
        Hashtbl.replace by_page p
          (1 + Option.value ~default:0 (Hashtbl.find_opt by_page p)))
      txn.updated;
    (* Table order, partitioned by owner while preserving the relative
       page order within each partition — with one server this is
       exactly the historical single-message, table-order replay. *)
    let page_counts =
      List.rev (Hashtbl.fold (fun p c acc -> (p, c) :: acc) by_page [])
    in
    let sids =
      List.sort_uniq compare
        (List.map (fun (p, _) -> owner_sid sys p) page_counts)
    in
    List.iter
      (fun sid ->
        let sv = sys.servers.(sid) in
        (* A crashed partition receives nothing (see [ship_dirty_page]). *)
        if sv.srv_state = Srv_up then begin
          let mine =
            List.filter (fun (p, _) -> owner_sid sys p = sid) page_counts
          in
          let objs = List.fold_left (fun acc (_, c) -> acc + c) 0 mine in
          let bytes =
            (objs * sys.cfg.Config.log_record_bytes)
            + Config.control_bytes sys.cfg
          in
          Netlayer.send sys ~cls:Metrics.M_commit_data
            ~src:(Netlayer.Client txn.client) ~dst:(Netlayer.Server sid) ~bytes;
          List.iter
            (fun (p, count) ->
              if sv.srv_state = Srv_up then begin
                buffer_page sys p ~read_from_disk:true;
                scharge sv
                  (float_of_int count *. sys.cfg.Config.redo_per_object_inst);
                Buffer_pool.mark_dirty sv.sbuffer p
              end)
            mine;
          if sv.srv_state = Srv_up then maybe_overflow sys sv ~objects:objs
        end)
      sids
  end

let bump_versions sys txn =
  let counts = Hashtbl.create 16 in
  Ids.Oid_set.iter
    (fun o ->
      let p = o.Ids.Oid.page in
      Hashtbl.replace counts p
        (1 + Option.value ~default:0 (Hashtbl.find_opt counts p)))
    txn.updated;
  Hashtbl.iter
    (fun p n ->
      bump_page_version sys p ~by:n;
      (* Each committed object update appends one redo record to the
         owning server's log; the periodic log flush (and a crash's
         restart replay) consumes the counter. *)
      let sv = server_of sys p in
      sv.log_records <- sv.log_records + n)
    counts

(* Commit/abort participants: every server owning a page the transaction
   touched (read or write, either grain), in server order.  A
   transaction that never got far enough to touch anything still
   notifies its client's home server, preserving the historical
   one-round-trip termination; at servers=1 the participant list is
   always [[0]]. *)
let participants sys txn =
  let n = Array.length sys.servers in
  let hit = Array.make n false in
  let add p = hit.(owner_sid sys p) <- true in
  let addo o = add o.Ids.Oid.page in
  Ids.Page_set.iter add txn.read_pages;
  Ids.Page_set.iter add txn.wpages;
  Ids.Oid_set.iter addo txn.read_objs;
  Ids.Oid_set.iter addo txn.wobjs;
  Ids.Oid_set.iter addo txn.updated;
  let out = ref [] in
  for sid = n - 1 downto 0 do
    if hit.(sid) then out := sid :: !out
  done;
  if !out = [] then [ home_sid sys txn.client ] else !out

let commit_rpc sys txn =
  let parts = participants sys txn in
  let legs =
    List.map
      (fun sid ->
        let ok =
          Netlayer.control_checked sys ~cls:Metrics.M_commit
            ~src:(Netlayer.Client txn.client) ~dst:(Netlayer.Server sid)
        in
        if ok then scharge sys.servers.(sid) sys.cfg.Config.lock_inst;
        (sid, ok))
      parts
  in
  (* Presumed abort: the transaction commits only if every participant
     heard the commit and none of them (nor the client) failed while it
     ran.  A transaction whose client crashed mid-commit, or that was
     doomed by a participant crash, does not commit: its updates are
     discarded (no version bumps).  Its locks are still released —
     crash reclamation usually already did, in which case this is a
     no-op. *)
  let committed =
    (not (txn_dead sys txn)) && List.for_all snd legs
  in
  if committed then begin
    bump_versions sys txn;
    (* The commit point: recorded before the locks go, so every later
       conflicting operation is also later in the oracle's commit
       order. *)
    Model.oracle_hook sys (fun o -> Oracle.History.commit o ~tid:txn.tid)
  end;
  release_txn_locks sys txn;
  List.iter
    (fun (sid, ok) ->
      (* A participant that never heard the request, or died before
         answering, sends nothing: the in-doubt client resolves the
         outcome locally by presumed abort. *)
      if ok && sys.servers.(sid).srv_state = Srv_up then
        Netlayer.control sys ~cls:Metrics.M_commit_reply
          ~src:(Netlayer.Server sid) ~dst:(Netlayer.Client txn.client))
    legs;
  committed

let abort_rpc sys txn =
  let parts = participants sys txn in
  let legs =
    List.map
      (fun sid ->
        (* A crashed participant lost the transaction's state with its
           volatile tables, so an abort notice it never hears is moot:
           give it away after the usual retries. *)
        let ok =
          Netlayer.control_checked sys ~cls:Metrics.M_abort
            ~src:(Netlayer.Client txn.client) ~dst:(Netlayer.Server sid)
        in
        if ok then scharge sys.servers.(sid) sys.cfg.Config.lock_inst;
        (sid, ok))
      parts
  in
  release_txn_locks sys txn;
  List.iter
    (fun (sid, ok) ->
      if ok && sys.servers.(sid).srv_state = Srv_up then
        Netlayer.control sys ~cls:Metrics.M_abort_reply
          ~src:(Netlayer.Server sid) ~dst:(Netlayer.Client txn.client))
    legs

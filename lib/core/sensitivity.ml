type row = { label : string; result : Runner.result }

let pp_rows ppf (title, rows) =
  Format.fprintf ppf "@[<v>%s@," title;
  Format.fprintf ppf "%-40s %8s %9s %8s %7s@," "configuration" "tps" "msgs/c"
    "resp ms" "srvCPU";
  List.iter
    (fun { label; result = r } ->
      Format.fprintf ppf "%-40s %8.2f %9.1f %8.0f %7.2f@," label
        r.Runner.throughput r.Runner.msgs_per_commit
        (1000.0 *. r.Runner.resp_mean) r.Runner.server_cpu_util)
    rows;
  Format.fprintf ppf "@]"

let windows time_scale = (30.0 *. time_scale, 120.0 *. time_scale)

(* Describe one sweep cell; nothing runs until an executor is applied. *)
let job ?(time_scale = 1.0) ?(cfg = Config.default) ?trans_size ?page_locality
    ?(access_pattern = Workload.Wparams.Unclustered)
    ?(which = Workload.Presets.Hotcold) ?(locality = Workload.Presets.Low)
    ?(write_prob = 0.1) ~sweep ~label ~algo () =
  let warmup, measure = windows time_scale in
  let params =
    Workload.Presets.make ?trans_size ?page_locality ~access_pattern which
      ~db_pages:cfg.Config.db_pages
      ~objects_per_page:cfg.Config.objects_per_page
      ~num_clients:cfg.Config.num_clients ~locality ~write_prob
  in
  Job.make ~sweep ~label ~cfg ~algo ~params ~warmup ~measure ()

let client_scaling ?(time_scale = 1.0) () =
  {
    Job.title = "sensitivity: number of client workstations (HOTCOLD low, wp=0.1)";
    jobs =
      List.concat_map
        (fun n ->
          let cfg = { Config.default with Config.num_clients = n } in
          List.map
            (fun algo ->
              job ~time_scale ~cfg ~algo ~sweep:"sens-clients"
                ~label:
                  (Printf.sprintf "%2d clients  %-6s" n (Algo.to_string algo))
                ())
            [ Algo.PS; Algo.PS_AA; Algo.OS ])
        [ 1; 5; 10; 25 ];
  }

let clustered_access ?(time_scale = 1.0) () =
  {
    Job.title = "sensitivity: clustered vs unclustered access (HOTCOLD low, wp=0.1)";
    jobs =
      List.concat_map
        (fun (pat, pat_name) ->
          List.map
            (fun algo ->
              job ~time_scale ~access_pattern:pat ~algo ~sweep:"sens-cluster"
                ~label:
                  (Printf.sprintf "%-12s %-6s" pat_name (Algo.to_string algo))
                ())
            [ Algo.PS; Algo.PS_AA; Algo.OS ])
        [
          (Workload.Wparams.Unclustered, "unclustered");
          (Workload.Wparams.Clustered, "clustered");
        ];
  }

let slow_network ?(time_scale = 1.0) () =
  {
    Job.title = "sensitivity: network bandwidth reduced 10x (HOTCOLD low, wp=0.1)";
    jobs =
      List.concat_map
        (fun (mbits, net_name) ->
          let cfg = { Config.default with Config.network_mbits = mbits } in
          List.map
            (fun algo ->
              job ~time_scale ~cfg ~algo ~sweep:"sens-network"
                ~label:
                  (Printf.sprintf "%-10s %-6s" net_name (Algo.to_string algo))
                ())
            [ Algo.PS; Algo.PS_AA; Algo.OS ])
        [ (80.0, "80 Mbit/s"); (8.0, "8 Mbit/s") ];
  }

let extreme_locality ?(time_scale = 1.0) () =
  {
    Job.title =
      "sensitivity: extreme page locality of 1 (120 pages x 1 object; the \
       paper's only OS win)";
    jobs =
      List.concat_map
        (fun which ->
          List.concat_map
            (fun wp ->
              List.map
                (fun algo ->
                  job ~time_scale ~trans_size:120
                    ~page_locality:{ Workload.Wparams.lo = 1; hi = 1 }
                    ~which ~write_prob:wp ~algo ~sweep:"sens-locality1"
                    ~label:
                      (Printf.sprintf "%-8s wp=%.2f %-6s"
                         (Workload.Presets.name_to_string which)
                         wp (Algo.to_string algo))
                    ())
                Algo.all)
            [ 0.05; 0.2 ])
        [ Workload.Presets.Hotcold; Workload.Presets.Uniform ];
  }

let tables ?(time_scale = 1.0) () =
  [
    client_scaling ~time_scale ();
    clustered_access ~time_scale ();
    slow_network ~time_scale ();
    extreme_locality ~time_scale ();
  ]

let rows_of (tbl : Job.table) results =
  ( tbl.Job.title,
    List.map2 (fun (j : Job.t) r -> { label = j.Job.label; result = r })
      tbl.Job.jobs results )

let all ?(time_scale = 1.0) ?(run = Job.run_all) () =
  List.map
    (fun tbl -> rows_of tbl (run tbl.Job.jobs))
    (tables ~time_scale ())

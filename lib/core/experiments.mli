(** The paper's experiment suite: one {!spec} per evaluation figure.

    Each throughput figure sweeps the per-object write probability for
    all five algorithms under one workload/locality setting (Section
    5.1); Figures 12-14 rerun three workloads on the x9-scaled database
    with 3x transactions and report throughput normalized to PS-AA
    (Section 5.6.1). *)

type spec = {
  id : string;  (** e.g. "fig3" *)
  title : string;
  workload : Workload.Presets.name;
  locality : Workload.Presets.locality;
  scale : int;  (** database/buffer scale factor (1, or 9 for figs 12-14) *)
  trans_size : int option;  (** override (scaled runs use 3x) *)
  write_probs : float list;
  normalize : bool;  (** report throughput relative to PS-AA *)
  warmup : float;
  measure : float;
}

val all : spec list
(** fig3, fig4, fig6..fig11, fig12..fig14 (fig5 is analytic, see
    {!Analytic}). *)

val find : string -> spec option

type point = {
  write_prob : float;
  results : (Algo.t * Runner.result) list;
}

type series = { spec : spec; points : point list }

val jobs_of_spec :
  ?seed:int ->
  ?time_scale:float ->
  ?oracle:bool ->
  ?timeline:bool ->
  ?servers:int ->
  ?partition:Config.partition ->
  spec ->
  Job.t list
(** Describe every (write probability, algorithm) cell of the figure
    as a {!Job.t}, write-probability-major.
    [servers]/[partition] (defaults 1/[Hash]) shard the page server;
    neither enters the seed key, so a cell replays the same client
    request streams at any partition count.  [time_scale] multiplies
    both warm-up and measurement windows (e.g. 0.25 for a quick
    look); [oracle] attaches the serializability oracle and
    [timeline] the event-timeline recorder (both default false;
    neither changes the seed or the results).  Each job's RNG seed
    derives from [seed] and the cell description alone (see
    {!Job.seed}). *)

val series_of_results : spec -> Runner.result list -> series
(** Reassemble results — in the order of {!jobs_of_spec} — into the
    figure's points.  Raises [Invalid_argument] on a length mismatch. *)

(** {2 Fault-rate sweep}

    The robustness experiment: fig3's wp=0.1 cell rerun for every
    protocol under increasing {!Faults.storm} intensity.  Rate 0.0 is
    the fault-free reference point and must reproduce the plain fig3
    numbers byte-for-byte. *)

val fault_rates : float list

type fault_point = { rate : float; fresults : (Algo.t * Runner.result) list }
type fault_series = { frates : float list; fpoints : fault_point list }

val fault_jobs :
  ?seed:int ->
  ?time_scale:float ->
  ?oracle:bool ->
  ?timeline:bool ->
  ?max_events:int ->
  unit ->
  Job.t list
(** Rate-major, algorithm-minor, like {!jobs_of_spec}. *)

val fault_series_of_results : Runner.result list -> fault_series

(** {2 Shard sweep}

    The partitioned-server experiment: fig3's wp=0.1 cell rerun for
    every protocol at increasing server counts.  servers=1 is the
    singleton reference point and reproduces the plain fig3 numbers
    byte-for-byte. *)

val shard_counts : int list

type shard_point = { servers : int; sresults : (Algo.t * Runner.result) list }
type shard_series = { scounts : int list; spoints : shard_point list }

val shard_jobs :
  ?seed:int ->
  ?time_scale:float ->
  ?oracle:bool ->
  ?timeline:bool ->
  ?partition:Config.partition ->
  ?max_events:int ->
  unit ->
  Job.t list
(** Server-count-major, algorithm-minor, like {!jobs_of_spec}. *)

val shard_series_of_results : Runner.result list -> shard_series

(** {2 Server-fault sweep}

    The availability experiment: fig3's wp=0.1 cell on a 2-way
    partitioned server rerun for every protocol under increasing
    server crash rates (client faults off).  A crashed server loses
    its volatile state, replays its flushed redo log and rebuilds
    callback state from surviving clients before reopening; only
    transactions touching the down partition stall.  srate=0.0 is the
    fault-free reference point. *)

val srvfault_rates : float list

type srvfault_point = {
  srate : float;
  svresults : (Algo.t * Runner.result) list;
}

type srvfault_series = { srates : float list; svpoints : srvfault_point list }

val srvfault_jobs :
  ?seed:int ->
  ?time_scale:float ->
  ?oracle:bool ->
  ?timeline:bool ->
  ?partition:Config.partition ->
  ?max_events:int ->
  unit ->
  Job.t list
(** Crash-rate-major, algorithm-minor, like {!jobs_of_spec}. *)

val srvfault_series_of_results : Runner.result list -> srvfault_series

(** {2 Cluster sweep}

    The clustering-sensitivity experiment: the OCB-style generic
    workload (default knobs, wp=0.2) rerun for every protocol under
    each placement policy and two Zipf skews.  Policies are listed
    best-clustered first (depth-first by reference, sequential,
    random scatter); page-grain PS should degrade fastest as
    clustering quality drops, while the object-grain protocols stay
    comparatively flat. *)

val cluster_policies : Workload.Placement.policy list
val cluster_thetas : float list
val cluster_write_prob : float

type cluster_point = {
  cpolicy : Workload.Placement.policy;
  ctheta : float;
  cquality : float;  (** co-resident reference-edge fraction of the layout *)
  cresults : (Algo.t * Runner.result) list;
}

type cluster_series = {
  ccells : (Workload.Placement.policy * float) list;
  cpoints : cluster_point list;
}

val cluster_cells : unit -> (Workload.Placement.policy * float) list
(** Policy-major, theta-minor. *)

val cluster_params :
  policy:Workload.Placement.policy -> theta:float -> Workload.Wparams.t

val cluster_jobs :
  ?seed:int ->
  ?time_scale:float ->
  ?oracle:bool ->
  ?timeline:bool ->
  ?max_events:int ->
  unit ->
  Job.t list
(** Cell-major (policy, then theta), algorithm-minor, like
    {!jobs_of_spec}. *)

val cluster_series_of_results : Runner.result list -> cluster_series

val progress_line : Job.t -> Runner.result -> string
(** One-line completion message for a cell ("fig3 wp=0.05 PS-AA: ... tps"). *)

val run_spec :
  ?seed:int ->
  ?time_scale:float ->
  ?oracle:bool ->
  ?timeline:bool ->
  ?servers:int ->
  ?partition:Config.partition ->
  ?progress:(string -> unit) ->
  spec ->
  series
(** Sequential reference driver: {!jobs_of_spec} run one cell at a
    time; [progress] receives one line per completed cell.  The
    parallel path is [Harness.Sweep.run_spec]. *)

val cfg_of : spec -> Config.t
val params_of : spec -> write_prob:float -> Workload.Wparams.t

val figure5 : unit -> (int * (float * float) list) list
(** The analytic Figure 5 data: for each locality, (object write
    probability, page write probability) pairs. *)

(** Closed-form helper curves.

    Figure 5 of the paper plots the {e per-page} update probability as a
    function of the {e per-object} write probability, for several page
    localities: a page is updated as soon as any of the [k] objects a
    transaction accesses on it is updated, so
    [P(page write) = 1 - (1 - w)^k].  The paper's curves use the
    workloads' locality {e ranges}, so we also provide the expectation
    over a uniform range. *)

val page_write_prob : object_write_prob:float -> objects_accessed:int -> float
(** [1 - (1-w)^k]. *)

val page_write_prob_range :
  object_write_prob:float -> locality:Workload.Wparams.range -> float
(** Expectation of {!page_write_prob} over [k] uniform in the range. *)

val figure5_localities : int list
(** The localities plotted in Figure 5: 1 (extreme case discussed in
    Section 5.6.2), 4 (low-locality average), and 12 (high-locality
    average). *)

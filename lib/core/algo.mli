(** The five granularity alternatives of Section 3.

    - {!PS}: basic page server — page transfer, page locking, page
      callbacks;
    - {!OS}: basic object server — everything at object granularity;
    - {!PS_OO}: page transfer with static object locking and object
      callbacks;
    - {!PS_OA}: object locking with adaptive (page-when-possible)
      callbacks;
    - {!PS_AA}: adaptive locking {e and} adaptive callbacks, with lock
      de-escalation and implicit re-escalation. *)

type t = PS | OS | PS_OO | PS_OA | PS_AA

val all : t list
val to_string : t -> string
val of_string : string -> t option

val transfers_pages : t -> bool
(** True for every variant except [OS]. *)

val locks_objects : t -> bool
(** True when (some) write locks are at object granularity. *)

val page_grain_copies : t -> bool
(** True when the server tracks cached copies at page granularity
    (PS, PS-OA, PS-AA); OS and PS-OO track object copies. *)

val pp : Format.formatter -> t -> unit

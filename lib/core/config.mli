(** System and overhead parameters (the paper's Table 1).

    Times are seconds, CPU costs are instruction counts, and sizes are
    bytes.  {!default} reproduces the paper's settings; {!scaled} builds
    the x9 database/buffer configuration of Section 5.6.1.  A few rows
    of Table 1 are garbled in the source scan; their values are
    reconstructed from the companion models [Care91, Fran93] and
    documented in DESIGN.md. *)

type commit_mode =
  | Ship_pages
      (** merge-at-server: dirty pages are shipped back and merged
          (the paper's main design, Section 3.1) *)
  | Redo_at_server
      (** WAL log records are shipped instead and replayed at the
          server (the initial SHORE choice, Section 6.1) *)

type update_mode =
  | Merge  (** concurrent page updates allowed, merged at the server *)
  | Write_token
      (** one updater per page at a time, page bounced through the
          server on token transfer ([Moha91] / Section 6.1, the paper's
          future work) *)

type partition =
  | Hash  (** page [p] lives at server [p mod servers] *)
  | Range
      (** contiguous page ranges: server [p * servers / db_pages]
          (clamped) *)

type t = {
  num_clients : int;  (** client workstations (10) *)
  client_mips : float;  (** client CPU, MIPS (15) *)
  server_mips : float;  (** server CPU, MIPS (30) *)
  client_buf_frac : float;  (** client buffer, fraction of DB (0.25) *)
  server_buf_frac : float;  (** server buffer, fraction of DB (0.50) *)
  server_disks : int;  (** disks at server (2) *)
  min_disk_time : float;  (** min disk access (0.010 s) *)
  max_disk_time : float;  (** max disk access (0.030 s) *)
  network_mbits : float;  (** network bandwidth, Mbit/s (80) *)
  page_size : int;  (** bytes per page (4096) *)
  db_pages : int;  (** database size in pages (1250) *)
  objects_per_page : int;  (** objects per page (20) *)
  fixed_msg_inst : float;  (** instructions per message (20000) *)
  per_byte_msg_inst : float;
      (** instructions per message byte (10000 per 4 KB page = 2.441) *)
  control_msg_bytes : int;  (** size of a control message (256) *)
  lock_inst : float;  (** instructions per lock/unlock pair (300) *)
  register_copy_inst : float;
      (** instructions per copy register/unregister (300) *)
  disk_overhead_inst : float;  (** CPU cost per disk I/O (5000) *)
  copy_merge_inst : float;  (** per-differing-object page merge cost (300) *)
  deescalate_inst : float;
      (** per-object server cost of a PS-AA lock de-escalation (300) *)
  commit_mode : commit_mode;  (** default [Ship_pages] *)
  update_mode : update_mode;  (** default [Merge] *)
  redo_per_object_inst : float;
      (** server CPU to replay one logged object update (Redo_at_server) *)
  log_record_bytes : int;
      (** shipped log-record size per updated object (Redo_at_server) *)
  os_group_size : int;
      (** objects shipped per OS fetch: 1 = pure object server, larger =
          "grouped-object" server (Section 6.2) *)
  size_change_prob : float;
      (** probability an update changes the object's size (Section 6.1) *)
  overflow_prob : float;
      (** probability a size-changing update overflows its page when
          installed, requiring forwarding *)
  forward_inst : float;  (** server CPU to forward an overflowed object *)
  servers : int;
      (** number of partitioned page servers (1 = the paper's singleton
          topology; each server owns the pages its partition maps to and
          runs its own CPU, disks, buffer, lock/copy tables) *)
  partition : partition;  (** page-to-server placement policy *)
  faults : Faults.profile;
      (** fault-injection rates and timing (default {!Faults.off}: no
          crashes, no message loss/duplication, no disk stalls) *)
  oracle : bool;
      (** record a transaction history and check it for
          conflict-serializability, commit-order consistency, and
          recoverability at end of run (default off; pure observation,
          results are byte-identical either way) *)
  cb_drop_every : int;
      (** sabotage knob for oracle negative tests: drop every Nth
          callback target at the server, silently leaving stale cached
          copies behind (0 = off; never enable outside tests) *)
  srv_skip_reconstruction : bool;
      (** sabotage knob for oracle negative tests: a restarting server
          skips the client-assisted copy-table reconstruction, leaving
          every surviving remote copy untracked (stale reads become
          write skew).  The audit's copy-coverage invariant is disabled
          with it so the serializability oracle — not the audit — must
          catch the damage (never enable outside tests) *)
  timeline : bool;
      (** record a ring-buffered event timeline (spans/instants per
          client, server, CPU, disk, network — see lib/telemetry) for
          Perfetto export (default off; pure observation, results are
          byte-identical either way) *)
  timeline_cap : int;  (** timeline ring capacity, in entries *)
}

val default : t

val scaled : t -> factor:int -> t
(** Multiply database and (implicitly, via the fractions) buffer sizes
    by [factor]. *)

val client_buf_pages : t -> int
val server_buf_pages : t -> int
val client_buf_objects : t -> int
(** Capacity of the object server's client cache, in objects. *)

val object_bytes : t -> int
(** [page_size / objects_per_page], rounded down (204 bytes for the
    default 4096/20). *)

val control_bytes : t -> int
val page_msg_bytes : t -> int
(** A data message carrying one page (payload + header). *)

val objs_msg_bytes : t -> count:int -> int
(** A data message carrying [count] objects. *)

val msg_instr : t -> bytes:int -> float
(** CPU cost to send or to receive a message of the given size. *)

val client_memory_bytes : t -> int
(** Rough worst-case resident bytes per client (caches full, fiber
    stack, bookkeeping) — an order-of-magnitude sizing hint. *)

val memory_estimate_bytes : t -> int
(** [client_memory_bytes] across the whole population. *)

val validate : t -> unit
(** Raises [Invalid_argument] on inconsistent settings. *)

val pp : Format.formatter -> t -> unit
(** Render as a Table-1-style parameter listing. *)

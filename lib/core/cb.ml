open Storage
open Simcore
open Model

type kind =
  | Purge_page of Ids.page
  | Purge_obj of Ids.Oid.t
  | Mark_obj of Ids.Oid.t
  | Adaptive of Ids.Oid.t

type result = Purged | Marked | Not_cached

(* Block behind the client's running transaction: the remote writer now
   waits (transitively) on it, which the deadlock detector must see.
   The edge lands in the writing server's graph ([sv], the owner of the
   contested page); detection runs on the cluster union, so a cycle
   closed through another partition's graph is still found. *)
let wait_for_txn_end sys sv cid ~writer ~blocking =
  Trace.event sys "callback for txn %d blocked behind txn %d at client %d"
    writer blocking cid;
  Metrics.note_callback_blocked sys.metrics;
  Model.tl_hook sys (fun x ->
      Tl.cb_blocked x ~client:cid ~writer ~now:(Engine.now sys.engine));
  Locking.Waits_for.add_blocker sv.Model.wfg writer blocking;
  ignore (Locking.Waits_for.check_deadlock sv.Model.wfg ~from:writer);
  Proc.suspend sys.engine (fun resume ->
      sys.clients.end_hooks.(cid) <-
        (fun () -> resume (Ok ())) :: sys.clients.end_hooks.(cid))

let handle sys ~sv ~client:cid ~writer kind =
  let cs = sys.clients in
  Resources.Cpu.system cs.ccpu.(cid) sys.cfg.Config.lock_inst;
  let rec attempt () =
    match kind with
    | Purge_page p -> (
      if not (Lru.mem cs.cache.(cid) p) then Not_cached
      else
        match cs.running.(cid) with
        | Some txn when page_in_use txn p ->
          wait_for_txn_end sys sv cid ~writer ~blocking:txn.tid;
          attempt ()
        | Some _ | None ->
          Cache_ops.drop_page sys cid p ~discard_dirty:false;
          Purged)
    | Purge_obj o -> (
      if not (Lru.mem cs.ocache.(cid) o) then Not_cached
      else
        match cs.running.(cid) with
        | Some txn when obj_in_use txn o ->
          wait_for_txn_end sys sv cid ~writer ~blocking:txn.tid;
          attempt ()
        | Some _ | None ->
          Cache_ops.drop_object sys cid o;
          Purged)
    | Mark_obj o -> (
      match cs.running.(cid) with
      | Some txn when obj_in_use txn o ->
        wait_for_txn_end sys sv cid ~writer ~blocking:txn.tid;
        attempt ()
      | Some _ | None ->
        if Lru.mem cs.cache.(cid) o.Ids.Oid.page then begin
          Cache_ops.mark_unavailable sys cid o;
          Marked
        end
        else Not_cached)
    | Adaptive o -> (
      let p = o.Ids.Oid.page in
      if not (Lru.mem cs.cache.(cid) p) then Not_cached
      else
        match cs.running.(cid) with
        | Some txn when obj_in_use txn o ->
          wait_for_txn_end sys sv cid ~writer ~blocking:txn.tid;
          attempt ()
        | Some txn when page_in_use txn p ->
          (* Another object on the page is in use: de-escalated
             callback — mark only the requested object. *)
          Cache_ops.mark_unavailable sys cid o;
          Marked
        | Some _ | None ->
          Cache_ops.drop_page sys cid p ~discard_dirty:false;
          Purged)
  in
  attempt ()

(** Server-side protocol logic: the five granularity alternatives'
    request handlers (Section 3), driven as RPCs from the client
    transaction fibers.

    Each [_rpc] function performs the complete round trip: request
    transport, server processing (locking, callbacks, disk), and reply
    transport — so the caller observes the full latency and every cost
    lands on the right simulated resource. *)

open Storage

type read_reply =
  | R_page of { unavailable : Ids.Int_set.t; version : int }
      (** page shipped; foreign write-locked objects marked *)
  | R_objs of Ids.Oid.t list
      (** objects shipped (OS): the requested object plus, when
          [Config.os_group_size > 1], its statically grouped neighbours
          that are not write-locked elsewhere (Section 6.2) *)
  | R_aborted  (** requester lost a deadlock while blocked *)

type write_reply =
  | W_page  (** page-grain write lock granted (PS; PS-AA escalated) *)
  | W_obj  (** object-grain write lock granted *)
  | W_aborted

val read_rpc : Model.sys -> Model.txn -> Ids.Oid.t -> read_reply
(** Fetch the object (OS) or its page (PS family) with read permission;
    blocks behind conflicting write locks, triggering PS-AA
    de-escalation when the page is write-locked at page grain. *)

val write_rpc : Model.sys -> Model.txn -> Ids.Oid.t -> write_reply
(** Obtain write permission on the object per the protocol: the page
    lock (PS), the object lock with the protocol's callback policy
    (OS, PS-OO, PS-OA), or adaptively either (PS-AA). *)

val ship_dirty_page :
  Model.sys ->
  Model.txn ->
  Ids.page ->
  dirty:Ids.Int_set.t ->
  fetch_version:int ->
  at_commit:bool ->
  unit
(** Send an updated page copy to the server (at commit, or on a dirty
    eviction mid-transaction).  The server merges it — charging
    [CopyMergeInst] per updated object, plus a disk read if the page
    fell out of its buffer — whenever other transactions have updated
    the page since this copy was fetched. *)

val ship_dirty_objs :
  Model.sys -> Model.txn -> Ids.Oid.t list -> at_commit:bool -> unit
(** OS update shipping: updated objects batched into one message (the
    commit payload, or a single dirty-evicted object mid-transaction);
    the server installs them into their (possibly re-read) pages. *)

val ship_redo_log : Model.sys -> Model.txn -> unit
(** [Config.Redo_at_server] commit processing: ship one log message
    covering every update of the transaction and replay it at the
    server (Section 6.1's "redo-at-server" scheme, as in early SHORE). *)

val acquire_token : Model.sys -> Model.txn -> Ids.page -> Locking.Lock_types.grant
(** [Config.Write_token] page-update token acquisition: blocks behind
    the owning transaction (deadlock-detectable) and bounces the page
    through the server when taking the token from an idle owner.
    Exposed for tests; called internally by {!write_rpc}. *)

val release_txn_locks : Model.sys -> Model.txn -> unit
(** Instantly release every server lock of the transaction (both
    granularities, with object-lock index maintenance) and end it in
    the waits-for graph.  Idempotent.  Used by {!commit_rpc} and
    {!abort_rpc}, and directly by crash recovery, which reclaims a
    crashed client's transaction without a network round trip. *)

val participants : Model.sys -> Model.txn -> int list
(** The servers owning a page the transaction touched (read or write,
    either grain), in server order; the client's home server when it
    touched nothing yet.  These are the commit/abort endpoints, and the
    servers whose crash dooms the transaction. *)

val commit_rpc : Model.sys -> Model.txn -> bool
(** Release the transaction's server locks and acknowledge.  Returns
    whether the transaction actually committed: false when the client
    crashed mid-commit, a participant crash doomed the transaction, or
    a participant never heard the commit request (presumed abort — the
    caller must treat the transaction as aborted). *)

val abort_rpc : Model.sys -> Model.txn -> unit

let src = Logs.Src.create "oodb.kernel" ~doc:"OODBMS simulator kernel events"

module Log = (val Logs.src_log src : Logs.LOG)

let setup ~level =
  Logs.set_reporter (Logs.format_reporter ());
  Logs.Src.set_level src level

let txn sys ~tid ~client what =
  Log.debug (fun m ->
      m "%.5f txn %d (client %d) %s" (Simcore.Engine.now sys.Model.engine) tid
        client what)

let event sys fmt =
  Format.kasprintf
    (fun s ->
      Log.debug (fun m -> m "%.5f %s" (Simcore.Engine.now sys.Model.engine) s))
    fmt

let src = Logs.Src.create "oodb.kernel" ~doc:"OODBMS simulator kernel events"

module Log = (val Logs.src_log src : Logs.LOG)

let setup ~level =
  Logs.set_reporter (Logs.format_reporter ());
  Logs.Src.set_level src level

let active () = Logs.Src.level src = Some Logs.Debug
let rendered_count = ref 0
let rendered () = !rendered_count

(* Both entry points take the format string directly so that, with the
   source disabled, the arguments are swallowed by [ikfprintf] without
   rendering anything: the hot path pays one level check, no
   allocation. *)

let txn sys ~tid ~client fmt =
  if active () then
    Format.kasprintf
      (fun s ->
        incr rendered_count;
        Log.debug (fun m ->
            m "%.5f txn %d (client %d) %s"
              (Simcore.Engine.now sys.Model.engine)
              tid client s))
      fmt
  else Format.ikfprintf (fun _ -> ()) Format.err_formatter fmt

let event sys fmt =
  if active () then
    Format.kasprintf
      (fun s ->
        incr rendered_count;
        Log.debug (fun m ->
            m "%.5f %s" (Simcore.Engine.now sys.Model.engine) s))
      fmt
  else Format.ikfprintf (fun _ -> ()) Format.err_formatter fmt

(** Rendering of experiment output: the paper-style throughput tables
    (one row per write probability, one column per algorithm), CSV
    export, and the workload parameter table (Table 2). *)

val pp_series : Format.formatter -> Experiments.series -> unit
(** Throughput table; normalized figures also print the ratio table
    relative to PS-AA. *)

val pp_series_detail : Format.formatter -> Experiments.series -> unit
(** Per-cell auxiliary metrics: messages/commit, aborts, utilizations. *)

val series_to_csv : Experiments.series -> string
(** CSV with header [write_prob,algo,throughput,resp_ms,resp_ci_ms,...]. *)

val pp_fault_series : Format.formatter -> Experiments.fault_series -> unit
(** Fault-rate sweep: throughput table (one row per storm rate) plus a
    per-cell fault detail listing (crashes, losses, retransmissions,
    stalls, recovery latency). *)

val fault_series_to_csv : Experiments.fault_series -> string
(** CSV with header [rate,algo,throughput,...,recovery_ms] — a separate
    schema from {!series_to_csv}, which is unchanged. *)

val pp_figure5 : Format.formatter -> (int * (float * float) list) list -> unit

val pp_workload_table : Format.formatter -> Config.t -> unit
(** Render the Table-2-style workload parameter listing for all
    presets at the given configuration. *)

(** Rendering of experiment output: the paper-style throughput tables
    (one row per write probability, one column per algorithm), CSV
    export, and the workload parameter table (Table 2). *)

val pp_series : Format.formatter -> Experiments.series -> unit
(** Throughput table; normalized figures also print the ratio table
    relative to PS-AA. *)

val pp_series_detail : Format.formatter -> Experiments.series -> unit
(** Per-cell auxiliary metrics: messages/commit, aborts, utilizations. *)

val pp_percentiles : Format.formatter -> Runner.result -> unit
(** Histogram-derived latency percentiles for one run: response
    p50/p90/p99, lock-wait p99, callback round-trip p99, and per
    message class p99 (classes with at least one sample). *)

val pp_series_percentiles : Format.formatter -> Experiments.series -> unit
(** Response-time p50/p90/p99 per cell, plus a per-algorithm summary of
    the histograms merged across the series' write probabilities. *)

val merged_response_hists :
  Experiments.series -> (Algo.t * Telemetry.Histogram.t) list
(** Per algorithm, the response histograms of every point merged in
    point order (deterministic for any pool's execution order). *)

val series_to_csv : Experiments.series -> string
(** CSV with header [write_prob,algo,servers,throughput,resp_ms,...]
    ending in the percentile fields
    [resp_p50_ms,resp_p90_ms,resp_p99_ms,lock_wait_p99_ms,cb_round_p99_ms]. *)

val pp_fault_series : Format.formatter -> Experiments.fault_series -> unit
(** Fault-rate sweep: throughput table (one row per storm rate) plus a
    per-cell fault detail listing (crashes, losses, retransmissions,
    stalls, recovery latency). *)

val fault_series_to_csv : Experiments.fault_series -> string
(** CSV with header [rate,algo,throughput,...,lock_wait_p99_ms] — a
    separate schema from {!series_to_csv}. *)

val pp_shard_series : Format.formatter -> Experiments.shard_series -> unit
(** Shard sweep: throughput table (one row per server count) plus a
    per-cell detail listing (callback forwards, edge exchanges,
    aggregate server CPU/disk utilization). *)

val shard_series_to_csv : Experiments.shard_series -> string
(** CSV with header [servers,algo,throughput,...,lock_wait_p99_ms]. *)

val pp_srvfault_series :
  Format.formatter -> Experiments.srvfault_series -> unit
(** Server-fault sweep: throughput table (one row per server crash
    rate) plus a per-cell detail listing (crashes, recovery latency,
    giveaways, retries, tail response). *)

val srvfault_series_to_csv : Experiments.srvfault_series -> string
(** CSV with header [srate,algo,throughput,...,lock_wait_p99_ms]. *)

val pp_cluster_series : Format.formatter -> Experiments.cluster_series -> unit
(** Cluster sweep: throughput table (one row per placement-policy x
    skew cell, annotated with the layout's clustering quality) plus a
    per-cell detail listing (callback blocks, messages/commit, tail
    response). *)

val cluster_series_to_csv : Experiments.cluster_series -> string
(** CSV with header [policy,theta,quality,algo,throughput,...,
    lock_wait_p99_ms]. *)

val pp_figure5 : Format.formatter -> (int * (float * float) list) list -> unit

val pp_workload_table : Format.formatter -> Config.t -> unit
(** Render the Table-2-style workload parameter listing for all
    presets at the given configuration. *)

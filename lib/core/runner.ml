open Simcore
open Model

type result = {
  algo : Algo.t;
  workload : string;
  sim_seconds : float;
  throughput : float;
  resp_mean : float;
  resp_ci90 : float;
  resp_batches : int;
  commits : int;
  aborts : int;
  deadlocks : int;
  messages : int;
  msgs_per_commit : float;
  kbytes_per_commit : float;
  disk_ios : int;
  server_cpu_util : float;
  client_cpu_util : float;
  disk_util : float;
  net_util : float;
  lock_waits : int;
  avg_lock_wait : float;
  callback_blocks : int;
  merges : int;
  deescalations : int;
  page_write_grants : int;
  object_write_grants : int;
  overflows : int;
  token_waits : int;
  token_bounces : int;
  crashes : int;
  crash_aborts : int;
  msg_losses : int;
  msg_dups : int;
  retransmits : int;
  disk_stalls : int;
  faults_injected : int;
  recoveries : int;
  recovery_mean : float;
  srv_crashes : int;
  srv_giveaways : int;
  srv_recoveries : int;
  srv_recovery_mean : float;
  retries : int;
  retry_wait_p99 : float;
  oracle_commits : int;
  oracle_ops : int;
  resp_p50 : float;
  resp_p90 : float;
  resp_p99 : float;
  lock_wait_p99 : float;
  cb_round_p99 : float;
  n_servers : int;
  cb_forwards : int;
  edge_exchanges : int;
  hists : Metrics.hist_snapshot;
  timeline : Telemetry.Timeline.t option;
}

exception Oracle_failed of string * string

let () =
  Printexc.register_printer (function
    | Oracle_failed (msg, _dump) -> Some ("Runner.Oracle_failed: " ^ msg)
    | _ -> None)

let reset_resource_stats sys =
  Array.iter
    (fun sv ->
      Resources.Cpu.reset_stats sv.scpu;
      Resources.Disk_array.reset_stats sv.sdisks)
    sys.servers;
  Array.iter Resources.Cpu.reset_stats sys.clients.ccpu;
  Resources.Network.reset_stats sys.net

let total_deadlocks sys =
  Array.fold_left
    (fun acc sv -> acc + Locking.Waits_for.deadlocks sv.wfg)
    0 sys.servers

let run ?(seed = 42) ?max_events ?(warmup = 40.0) ?(measure = 200.0) ~cfg
    ~algo ~params () =
  let sys = Model.create ~cfg ~algo ~params ~seed in
  Netlayer.install_edge_exchange sys;
  Audit.install sys;
  Client.start sys;
  Crash.install sys;
  Engine.run_until ?max_events sys.engine warmup;
  Metrics.reset sys.metrics ~now:warmup;
  reset_resource_stats sys;
  Faults.reset_counters sys.faults;
  let deadlocks_at_warmup = total_deadlocks sys in
  let stop = warmup +. measure in
  Engine.run_until ?max_events sys.engine stop;
  sys.live <- false;
  Audit.check sys ~context:"end-of-run";
  (match sys.oracle with
  | None -> ()
  | Some o -> (
    try Oracle.Checker.check o
    with Oracle.Checker.Violation msg ->
      raise
        (Oracle_failed
           ( Printf.sprintf "serializability oracle: %s [%s/%s, seed %d]" msg
               (Algo.to_string algo) params.Workload.Wparams.name seed,
             Oracle.History.dump o ))));
  let m = sys.metrics in
  let commits = Metrics.commits m in
  let clients_util =
    let s =
      Array.fold_left
        (fun acc ccpu -> acc +. Resources.Cpu.utilization ccpu)
        0.0 sys.clients.ccpu
    in
    s /. float_of_int sys.clients.n
  in
  {
    algo;
    workload = params.Workload.Wparams.name;
    sim_seconds = measure;
    throughput = Metrics.throughput m ~now:stop;
    resp_mean = Metrics.response_mean m;
    resp_ci90 = Metrics.response_ci90 m;
    resp_batches = Metrics.response_batches m;
    commits;
    aborts = Metrics.aborts m;
    deadlocks = total_deadlocks sys - deadlocks_at_warmup;
    messages = Metrics.messages m;
    msgs_per_commit = Metrics.msgs_per_commit m;
    kbytes_per_commit =
      (if commits = 0 then 0.0
       else float_of_int (Metrics.bytes m) /. 1024.0 /. float_of_int commits);
    disk_ios =
      Array.fold_left
        (fun acc sv -> acc + Resources.Disk_array.io_count sv.sdisks)
        0 sys.servers;
    server_cpu_util =
      Array.fold_left
        (fun acc sv -> acc +. Resources.Cpu.utilization sv.scpu)
        0.0 sys.servers
      /. float_of_int (Array.length sys.servers);
    client_cpu_util = clients_util;
    disk_util =
      Array.fold_left
        (fun acc sv -> acc +. Resources.Disk_array.utilization sv.sdisks)
        0.0 sys.servers
      /. float_of_int (Array.length sys.servers);
    net_util = Resources.Network.utilization sys.net;
    lock_waits = Metrics.lock_waits m;
    avg_lock_wait = Metrics.avg_lock_wait m;
    callback_blocks = Metrics.callback_blocks m;
    merges = Metrics.merges m;
    deescalations = Metrics.deescalations m;
    page_write_grants = Metrics.page_write_grants m;
    object_write_grants = Metrics.object_write_grants m;
    overflows = Metrics.overflows m;
    token_waits = Metrics.token_waits m;
    token_bounces = Metrics.token_bounces m;
    crashes = Faults.crashes sys.faults;
    crash_aborts = Faults.crash_aborts sys.faults;
    msg_losses = Faults.msg_losses sys.faults;
    msg_dups = Faults.msg_dups sys.faults;
    retransmits = Faults.retransmits sys.faults;
    disk_stalls = Faults.disk_stalls sys.faults;
    faults_injected = Faults.injected sys.faults;
    recoveries = Faults.recoveries sys.faults;
    recovery_mean = Faults.recovery_mean sys.faults;
    srv_crashes = Faults.srv_crashes sys.faults;
    srv_giveaways = Faults.srv_giveaways sys.faults;
    srv_recoveries = Faults.srv_recoveries sys.faults;
    srv_recovery_mean = Faults.srv_recovery_mean sys.faults;
    retries = Metrics.retries m;
    retry_wait_p99 = Metrics.retry_wait_quantile m 0.99;
    oracle_commits =
      (match sys.oracle with
      | Some o -> Oracle.History.committed_count o
      | None -> 0);
    oracle_ops =
      (match sys.oracle with
      | Some o -> Oracle.History.op_count o
      | None -> 0);
    resp_p50 = Metrics.response_quantile m 0.50;
    resp_p90 = Metrics.response_quantile m 0.90;
    resp_p99 = Metrics.response_quantile m 0.99;
    lock_wait_p99 = Metrics.lock_wait_quantile m 0.99;
    cb_round_p99 = Metrics.cb_round_quantile m 0.99;
    n_servers = Array.length sys.servers;
    cb_forwards = Metrics.messages_of m Metrics.M_cb_forward;
    edge_exchanges = Metrics.messages_of m Metrics.M_edge_exchange;
    hists = Metrics.snapshot_hists m;
    timeline = Option.map Tl.timeline sys.timeline;
  }

let pp_result ppf r =
  Format.fprintf ppf
    "@[<v>%s / %s: %.2f tps (resp %.0f ms +/- %.0f, %d batches)@,\
     commits %d, aborts %d, deadlocks %d@,\
     msgs/commit %.1f, KB/commit %.1f, disk I/Os %d@,\
     util: server CPU %.2f, client CPU %.2f, disk %.2f, net %.2f@,\
     lock waits %d (avg %.1f ms), callback blocks %d, merges %d@,\
     de-escalations %d, write grants page/object %d/%d@]"
    (Algo.to_string r.algo) r.workload r.throughput (1000.0 *. r.resp_mean)
    (1000.0 *. r.resp_ci90) r.resp_batches r.commits r.aborts r.deadlocks
    r.msgs_per_commit r.kbytes_per_commit r.disk_ios r.server_cpu_util
    r.client_cpu_util r.disk_util r.net_util r.lock_waits
    (1000.0 *. r.avg_lock_wait) r.callback_blocks r.merges r.deescalations
    r.page_write_grants r.object_write_grants;
  (* The shard line appears only for a partitioned server, so
     single-server output stays byte-identical to the unsharded build. *)
  if r.n_servers > 1 then
    Format.fprintf ppf
      "@\nshards: %d servers, callback forwards %d, edge exchanges %d"
      r.n_servers r.cb_forwards r.edge_exchanges;
  (* Fault metrics appear only when faults fired, so fault-free output
     stays byte-identical to a build without the fault layer. *)
  if r.faults_injected > 0 then
    Format.fprintf ppf
      "@\n\
       faults: %d injected (crashes %d, losses %d, dups %d, stalls %d), \
       crash aborts %d, retransmits %d, recoveries %d (mean %.0f ms)"
      r.faults_injected r.crashes r.msg_losses r.msg_dups r.disk_stalls
      r.crash_aborts r.retransmits r.recoveries (1000.0 *. r.recovery_mean);
  (* Server-fault metrics appear only when a server actually crashed,
     keeping client-crash-only storm output byte-identical. *)
  if r.srv_crashes > 0 then
    Format.fprintf ppf
      "@\n\
       server faults: %d crashes, %d recoveries (mean %.0f ms), %d giveaways, \
       %d retries (wait p99 %.0f ms)"
      r.srv_crashes r.srv_recoveries
      (1000.0 *. r.srv_recovery_mean)
      r.srv_giveaways r.retries
      (1000.0 *. r.retry_wait_p99);
  (* Likewise the oracle line: absent unless the oracle ran. *)
  if r.oracle_ops > 0 then
    Format.fprintf ppf "@\noracle: serializable (%d committed, %d ops checked)"
      r.oracle_commits r.oracle_ops

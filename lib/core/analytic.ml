let page_write_prob ~object_write_prob ~objects_accessed =
  if objects_accessed < 0 then invalid_arg "Analytic.page_write_prob";
  1.0 -. ((1.0 -. object_write_prob) ** float_of_int objects_accessed)

let page_write_prob_range ~object_write_prob ~locality =
  let { Workload.Wparams.lo; hi } = locality in
  if hi < lo then invalid_arg "Analytic.page_write_prob_range";
  let n = hi - lo + 1 in
  let sum = ref 0.0 in
  for k = lo to hi do
    sum := !sum +. page_write_prob ~object_write_prob ~objects_accessed:k
  done;
  !sum /. float_of_int n

let figure5_localities = [ 1; 4; 12 ]

(** Assemble and run one simulation configuration.

    A run builds the system, lets it warm up (caches fill, queues reach
    steady state), resets the statistics, measures for a fixed window of
    simulated time, and reports a {!result}.  Runs are deterministic in
    [seed]. *)

type result = {
  algo : Algo.t;
  workload : string;
  sim_seconds : float;  (** length of the measurement window *)
  throughput : float;  (** committed transactions per second *)
  resp_mean : float;
  resp_ci90 : float;  (** 90% batch-means confidence half-width *)
  resp_batches : int;
  commits : int;
  aborts : int;
  deadlocks : int;
  messages : int;
  msgs_per_commit : float;
  kbytes_per_commit : float;
  disk_ios : int;
  server_cpu_util : float;
  client_cpu_util : float;  (** mean across clients *)
  disk_util : float;
  net_util : float;
  lock_waits : int;
  avg_lock_wait : float;
  callback_blocks : int;
  merges : int;
  deescalations : int;
  page_write_grants : int;
  object_write_grants : int;
  overflows : int;  (** page overflows (size-changing update model) *)
  token_waits : int;  (** write-token blocking events *)
  token_bounces : int;  (** page bounces on token transfer *)
  crashes : int;  (** client crashes injected (measurement window) *)
  crash_aborts : int;  (** in-flight transactions killed by a crash *)
  msg_losses : int;
  msg_dups : int;
  retransmits : int;  (** retransmission timer firings *)
  disk_stalls : int;
  faults_injected : int;  (** crashes + losses + dups + stalls + srv crashes *)
  recoveries : int;  (** first-commit-after-restart events *)
  recovery_mean : float;  (** mean crash-to-first-commit latency, s *)
  srv_crashes : int;  (** server crashes injected (measurement window) *)
  srv_giveaways : int;
      (** messages given away undelivered after exhausting retries
          against a down server (presumed-abort triggers) *)
  srv_recoveries : int;  (** completed server restart recoveries *)
  srv_recovery_mean : float;  (** mean crash-to-reopen latency, s *)
  retries : int;
      (** timeout-driven resends, all message classes (loss
          retransmissions plus down-server retries) *)
  retry_wait_p99 : float;
      (** p99 timeout-to-success latency: whole-send duration of
          messages that needed at least one retry *)
  oracle_commits : int;
      (** committed transactions the serializability oracle checked
          (whole run, including warmup); 0 when the oracle is off *)
  oracle_ops : int;  (** read/write operations recorded by the oracle *)
  resp_p50 : float;
      (** response-time percentiles from the always-on log-bucketed
          histogram (see {!Telemetry.Histogram} for the error bound) *)
  resp_p90 : float;
  resp_p99 : float;
  lock_wait_p99 : float;
  cb_round_p99 : float;  (** callback round-trip p99 *)
  n_servers : int;  (** number of server partitions in the run *)
  cb_forwards : int;
      (** cross-server callback forwarding legs (0 when [n_servers = 1]
          or every contested page is owned by the client's home server) *)
  edge_exchanges : int;
      (** waits-for edge-exchange control messages sent to the
          deadlock coordinator (server 0); 0 when [n_servers = 1] *)
  hists : Metrics.hist_snapshot;
      (** the full histograms, for merging across sweep cells *)
  timeline : Telemetry.Timeline.t option;
      (** the event timeline, present iff [cfg.timeline] *)
}

exception Oracle_failed of string * string
(** [(message, history_dump)]: the serializability oracle rejected the
    run's history.  The message carries the checker's witness plus the
    protocol, workload and seed; the dump is the full recorded history
    (written to a file by the CLIs for offline analysis). *)

val run :
  ?seed:int ->
  ?max_events:int ->
  ?warmup:float ->
  ?measure:float ->
  cfg:Config.t ->
  algo:Algo.t ->
  params:Workload.Wparams.t ->
  unit ->
  result
(** Defaults: [seed = 42], [warmup = 40.0] simulated seconds,
    [measure = 200.0].  [max_events] bounds each of the two
    {!Simcore.Engine.run_until} windows (safety valve for fault-storm
    fuzzing); exceeding it raises
    {!Simcore.Engine.Event_budget_exceeded}.

    Every run installs the invariant {!Audit} as the fault hook, runs
    it once more at end of run, and — when the configuration's crash
    rate is positive — starts the {!Crash} drivers.  When
    [cfg.oracle] is set, the recorded history is checked at end of run
    and {!Oracle_failed} raised on a violation. *)

val pp_result : Format.formatter -> result -> unit

open Storage
open Model

(* Release the copy-table references held by a resident page copy: its
   page reference under page-grain copy tracking, or one reference per
   available object under object-grain tracking (PS-OO).  The matching
   [register] calls happen server-side when the copy is shipped
   (Srv.reply_page), so a fresh copy in transit keeps its own
   reference even while its predecessor is being dropped. *)
let release_page_copy_refs sys cid p (entry : page_entry) =
  let sv = Model.server_of sys p in
  if Algo.page_grain_copies sys.algo then
    Locking.Copy_table.unregister sv.pcopies p ~client:cid
  else
    for slot = 0 to sys.cfg.Config.objects_per_page - 1 do
      if not (Ids.Int_set.mem slot entry.unavailable) then
        Locking.Copy_table.unregister sv.ocopies
          (Ids.Oid.make ~page:p ~slot) ~client:cid
    done

(* Mirror cache traffic into the oracle's shadow store.  A slot marked
   unavailable is not a readable copy, and a dirty slot holds the local
   transaction's pending version, which the server's copy must not
   overwrite. *)
let oracle_note_page_copy sys cid p (entry : page_entry) =
  Model.oracle_hook sys (fun o ->
      for slot = 0 to sys.cfg.Config.objects_per_page - 1 do
        let oid = Ids.Oid.make ~page:p ~slot in
        if Ids.Int_set.mem slot entry.unavailable then
          Oracle.History.drop_copy o ~client:cid ~oid
        else if not (Ids.Int_set.mem slot entry.dirty) then
          Oracle.History.install_copy o ~client:cid ~oid
      done)

let oracle_forget_page sys cid p =
  Model.oracle_hook sys (fun o ->
      for slot = 0 to sys.cfg.Config.objects_per_page - 1 do
        Oracle.History.drop_copy o ~client:cid ~oid:(Ids.Oid.make ~page:p ~slot)
      done)

let drop_page sys cid p ~discard_dirty =
  match Lru.remove sys.clients.cache.(cid) p with
  | None -> ()
  | Some entry ->
    if (not discard_dirty) && not (Ids.Int_set.is_empty entry.dirty) then
      invalid_arg "Cache_ops.drop_page: dropping uncommitted updates";
    release_page_copy_refs sys cid p entry;
    oracle_forget_page sys cid p

let drop_object sys cid oid =
  match Lru.remove sys.clients.ocache.(cid) oid with
  | None -> ()
  | Some _ ->
    Locking.Copy_table.unregister
      (Model.server_of sys oid.Ids.Oid.page).ocopies oid ~client:cid;
    Model.oracle_hook sys (fun o ->
        Oracle.History.drop_copy o ~client:cid ~oid)

let mark_unavailable sys cid oid =
  match Lru.peek sys.clients.cache.(cid) oid.Ids.Oid.page with
  | None -> ()
  | Some entry ->
    if not (Ids.Int_set.mem oid.Ids.Oid.slot entry.unavailable) then begin
      entry.unavailable <- Ids.Int_set.add oid.Ids.Oid.slot entry.unavailable;
      (* Under object-grain copy tracking the mark retires this copy's
         reference for the object. *)
      if not (Algo.page_grain_copies sys.algo) then
        Locking.Copy_table.unregister
          (Model.server_of sys oid.Ids.Oid.page).ocopies oid ~client:cid;
      Model.oracle_hook sys (fun o ->
          Oracle.History.drop_copy o ~client:cid ~oid)
    end

let install_page sys cid txn p ~unavailable ~version =
  match Lru.find sys.clients.cache.(cid) p with
  | Some entry ->
    (* Re-receiving a page we still cache: the incoming copy replaces
       the old one (releasing the old copy's registrations — the ones
       made when the incoming copy was shipped take over), merging so
       our own uncommitted updates stay visible and available. *)
    release_page_copy_refs sys cid p entry;
    if not (Ids.Int_set.is_empty entry.dirty) then begin
      Metrics.note_client_merge sys.metrics
        ~objects:(Ids.Int_set.cardinal entry.dirty);
      Resources.Cpu.system sys.clients.ccpu.(cid)
        (sys.cfg.Config.copy_merge_inst
        *. float_of_int (Ids.Int_set.cardinal entry.dirty))
    end;
    entry.unavailable <- Ids.Int_set.diff unavailable entry.dirty;
    entry.fetch_version <- version;
    oracle_note_page_copy sys cid p entry;
    ignore txn;
    None
  | None ->
    let entry =
      { unavailable; dirty = Ids.Int_set.empty; fetch_version = version }
    in
    oracle_note_page_copy sys cid p entry;
    (match Lru.add sys.clients.cache.(cid) p entry with
    | None -> None
    | Some (victim, ventry) ->
      release_page_copy_refs sys cid victim ventry;
      oracle_forget_page sys cid victim;
      if Ids.Int_set.is_empty ventry.dirty then None
      else Some (victim, ventry.dirty, ventry.fetch_version))

let install_object sys cid oid =
  match Lru.find sys.clients.ocache.(cid) oid with
  | Some entry ->
    (* Already cached: the shipment added a duplicate reference at the
       server; the merged copy keeps a single one. *)
    Locking.Copy_table.unregister
      (Model.server_of sys oid.Ids.Oid.page).ocopies oid ~client:cid;
    if not entry.odirty then
      Model.oracle_hook sys (fun o ->
          Oracle.History.install_copy o ~client:cid ~oid);
    None
  | None -> (
    Model.oracle_hook sys (fun o ->
        Oracle.History.install_copy o ~client:cid ~oid);
    match Lru.add sys.clients.ocache.(cid) oid { odirty = false } with
    | None -> None
    | Some (victim, ventry) ->
      Locking.Copy_table.unregister
        (Model.server_of sys victim.Ids.Oid.page).ocopies victim ~client:cid;
      Model.oracle_hook sys (fun o ->
          Oracle.History.drop_copy o ~client:cid ~oid:victim);
      if ventry.odirty then Some victim else None)

open Storage
open Simcore

type page_entry = {
  mutable unavailable : Ids.Int_set.t;
  mutable dirty : Ids.Int_set.t;
  mutable fetch_version : int;
}

type obj_entry = { mutable odirty : bool }

type txn = {
  tid : Locking.Lock_types.txn;
  client : int;
  epoch : int;
  ops : Workload.Refstring.t;
  started : float;
  first_started : float;
  mutable restarts : int;
  mutable read_pages : Ids.Page_set.t;
  mutable read_objs : Ids.Oid_set.t;
  mutable wpages : Ids.Page_set.t;
  mutable wobjs : Ids.Oid_set.t;
  mutable updated : Ids.Oid_set.t;
  mutable doomed : bool;
  mutable rpc_sid : int;
}

(* Per-client state in struct-of-arrays layout, indexed by client id.
   At tens of thousands of clients the hot sweeps (liveness guards,
   audit scans over [up]/[running]) touch one contiguous word per
   client instead of chasing a pointer per record. *)
type clients = {
  n : int;
  ccpu : Resources.Cpu.t array;
  crng : Rng.t array;
  cache : (Ids.page, page_entry) Lru.t array;
  ocache : (Ids.Oid.t, obj_entry) Lru.t array;
  running : txn option array;
  end_hooks : (unit -> unit) list array;
  resp_history : Stats.Welford.t array;
  up : bool array;
  epoch : int array;
  crashed_at : float option array;
}

type srv_state = Srv_up | Srv_down | Srv_recovering

type server = {
  sid : int;
  scpu : Resources.Cpu.t;
  sdisks : Resources.Disk_array.t;
  sbuffer : Buffer_pool.t;
  plocks : Ids.page Locking.Lock_table.t;
  olocks : Ids.Oid.t Locking.Lock_table.t;
  pcopies : Ids.page Locking.Copy_table.t;
  ocopies : Ids.Oid.t Locking.Copy_table.t;
  wfg : Locking.Waits_for.t;
  versions : (Ids.page, int) Hashtbl.t;
  olocks_by_page : (Ids.page, int Ids.Oid_map.t) Hashtbl.t;
  deesc_inflight : (Ids.page, unit Ivar.t) Hashtbl.t;
  token_owner : (Ids.page, int * Locking.Lock_types.txn) Hashtbl.t;
  srv_rng : Rng.t;
  mutable cb_drop_clock : int;
  mutable srv_state : srv_state;
  mutable log_records : int;
  mutable srv_crashed_at : float;
}

type sys = {
  engine : Engine.t;
  cfg : Config.t;
  algo : Algo.t;
  params : Workload.Wparams.t;
  net : Resources.Network.t;
  servers : server array;
  clients : clients;
  metrics : Metrics.t;
  faults : Faults.t;
  oracle : Oracle.History.t option;
  timeline : Tl.t option;
  (* Population-independent indexes over the active transactions: the
     de-escalation path resolves lock holders by tid, and the per-update
     isolation assertion resolves concurrent updaters by oid.  Both
     used to scan every client. *)
  by_tid : (int, txn) Hashtbl.t;
  updaters : (Ids.Oid.t, txn list) Hashtbl.t;
  mutable next_tid : int;
  mutable live : bool;
}

exception Txn_aborted

exception Client_crashed
(** Raised inside a client fiber when its workstation has crashed: the
    fiber resumed from a non-cancellable suspension (CPU, disk,
    network) after the crash and must unwind without touching any
    state — the crash handler already reclaimed everything. *)

let num_clients sys = sys.clients.n

let txn_live sys (txn : txn) =
  let cs = sys.clients in
  cs.up.(txn.client) && cs.epoch.(txn.client) = txn.epoch

let fresh_tid sys =
  let tid = sys.next_tid in
  sys.next_tid <- tid + 1;
  tid

(* Partition map: every page has exactly one owning server; all of the
   page's state (buffer slot, locks, copies, version, token) lives
   there.  The map is a pure function of the page id so clients, Cb and
   Crash can route without consulting any server. *)
let num_servers sys = Array.length sys.servers

let owner_sid sys p =
  let n = Array.length sys.servers in
  if n = 1 then 0
  else
    match sys.cfg.Config.partition with
    | Config.Hash -> p mod n
    | Config.Range -> min (n - 1) (p * n / sys.cfg.Config.db_pages)

let server_of sys p = sys.servers.(owner_sid sys p)

(* A client's home server relays callbacks from remote partitions (the
   client keeps one session channel instead of n). *)
let home_sid sys cid = cid mod Array.length sys.servers
let home_server sys cid = sys.servers.(home_sid sys cid)

let page_version sys p =
  match Hashtbl.find_opt (server_of sys p).versions p with
  | Some v -> v
  | None -> 0

let bump_page_version sys p ~by =
  if by > 0 then
    Hashtbl.replace (server_of sys p).versions p (page_version sys p + by)

let client_txn sys cid = sys.clients.running.(cid)

(* --- Active-transaction indexes --------------------------------------- *)

let txn_of_tid sys tid = Hashtbl.find_opt sys.by_tid tid

let set_running sys cid txn =
  sys.clients.running.(cid) <- Some txn;
  Hashtbl.replace sys.by_tid txn.tid txn

(* End the client's transaction: drop it from both indexes and return
   it.  The updater bindings are keyed by the transaction's final
   [updated] set, so this must run before anything clears that set. *)
let clear_running sys cid =
  match sys.clients.running.(cid) with
  | None -> None
  | Some txn ->
    sys.clients.running.(cid) <- None;
    Hashtbl.remove sys.by_tid txn.tid;
    Ids.Oid_set.iter
      (fun o ->
        match Hashtbl.find_opt sys.updaters o with
        | None -> ()
        | Some l -> (
          match List.filter (fun t -> t != txn) l with
          | [] -> Hashtbl.remove sys.updaters o
          | l' -> Hashtbl.replace sys.updaters o l'))
      txn.updated;
    Some txn

let note_updater sys txn oid =
  let l =
    match Hashtbl.find_opt sys.updaters oid with Some l -> l | None -> []
  in
  Hashtbl.replace sys.updaters oid (txn :: l)

let updaters_of sys oid =
  match Hashtbl.find_opt sys.updaters oid with Some l -> l | None -> []

let obj_in_use txn oid =
  Ids.Oid_set.mem oid txn.read_objs || Ids.Oid_set.mem oid txn.updated

let page_in_use txn p =
  Ids.Page_set.mem p txn.read_pages
  || Ids.Page_set.mem p txn.wpages
  || Ids.Oid_set.exists (fun o -> o.Ids.Oid.page = p) txn.updated

let index_obj_lock server oid =
  let p = oid.Ids.Oid.page in
  let map =
    match Hashtbl.find_opt server.olocks_by_page p with
    | Some m -> m
    | None -> Ids.Oid_map.empty
  in
  let count = Option.value ~default:0 (Ids.Oid_map.find_opt oid map) in
  Hashtbl.replace server.olocks_by_page p (Ids.Oid_map.add oid (count + 1) map)

let unindex_obj_lock server oid =
  let p = oid.Ids.Oid.page in
  match Hashtbl.find_opt server.olocks_by_page p with
  | None -> ()
  | Some m -> (
    match Ids.Oid_map.find_opt oid m with
    | None -> ()
    | Some count ->
      let m =
        if count <= 1 then Ids.Oid_map.remove oid m
        else Ids.Oid_map.add oid (count - 1) m
      in
      if Ids.Oid_map.is_empty m then Hashtbl.remove server.olocks_by_page p
      else Hashtbl.replace server.olocks_by_page p m)

let foreign_locked_slots sys p ~tid =
  let sv = server_of sys p in
  match Hashtbl.find_opt sv.olocks_by_page p with
  | None -> Ids.Int_set.empty
  | Some m ->
    Ids.Oid_map.fold
      (fun oid _count acc ->
        match Locking.Lock_table.holder sv.olocks oid with
        | Some h when h <> tid -> Ids.Int_set.add oid.Ids.Oid.slot acc
        | Some _ | None -> acc)
      m Ids.Int_set.empty

let page_has_foreign_obj_lock sys p ~tid =
  not (Ids.Int_set.is_empty (foreign_locked_slots sys p ~tid))

let create ~cfg ~algo ~params ~seed =
  Config.validate cfg;
  Workload.Wparams.validate params ~db_pages:cfg.Config.db_pages
    ~objects_per_page:cfg.Config.objects_per_page;
  if Array.length params.Workload.Wparams.clients <> cfg.Config.num_clients then
    invalid_arg "Model.create: workload clients <> config clients";
  let engine = Engine.create () in
  let rng = Rng.create ~seed in
  (* The fault layer's streams derive from the seed by key, not by
     [Rng.split]: splitting would advance [rng] and shift every
     pre-existing stream, breaking byte-identity with fault-free runs. *)
  let faults =
    Faults.create ~profile:cfg.Config.faults
      ~seed:(Rng.key_seed ~seed ~key:"fault-layer")
  in
  let n_servers = cfg.Config.servers in
  (* RNG split order: for each server its disk stream then its local
     stream, then one stream per client — at servers=1 this is the
     historical order (disk, server, clients), keeping every run
     byte-identical to the singleton topology. *)
  let servers =
    Array.init n_servers (fun sid ->
        let wfg = Locking.Waits_for.create () in
        {
          sid;
          scpu =
            Resources.Cpu.create engine
              ~name:
                (if n_servers = 1 then "server"
                 else Printf.sprintf "server%d" sid)
              ~mips:cfg.Config.server_mips;
          sdisks =
            Resources.Disk_array.create engine ~rng:(Rng.split rng) ~faults
              ~disks:cfg.Config.server_disks ~min_time:cfg.Config.min_disk_time
              ~max_time:cfg.Config.max_disk_time ();
          sbuffer = Buffer_pool.create ~capacity:(Config.server_buf_pages cfg);
          plocks =
            Locking.Lock_table.create engine ~waits_for:wfg ~lock_name:"page";
          olocks =
            Locking.Lock_table.create engine ~waits_for:wfg ~lock_name:"object";
          pcopies = Locking.Copy_table.create ~clients:cfg.Config.num_clients;
          ocopies = Locking.Copy_table.create ~clients:cfg.Config.num_clients;
          wfg;
          versions = Hashtbl.create 1024;
          olocks_by_page = Hashtbl.create 256;
          deesc_inflight = Hashtbl.create 16;
          token_owner = Hashtbl.create 256;
          srv_rng = Rng.split rng;
          cb_drop_clock = 0;
          srv_state = Srv_up;
          log_records = 0;
          srv_crashed_at = 0.0;
        })
  in
  (* Link the per-server waits-for graphs into one cluster so cycle
     detection sees the union (distributed deadlock detection with an
     idealized coordinator; see DESIGN.md). *)
  Locking.Waits_for.link (Array.map (fun sv -> sv.wfg) servers);
  let n = cfg.Config.num_clients in
  (* Field-by-field construction is effect-equivalent to the old
     record-per-client loop: [Cpu.create] is pure allocation, so the
     only shared-state effect is [Rng.split], and [Array.init] performs
     its ascending per-client splits in the historical order. *)
  let clients =
    let ccpu =
      Array.init n (fun cid ->
          Resources.Cpu.create engine
            ~name:(Printf.sprintf "client%d" cid)
            ~mips:cfg.Config.client_mips)
    in
    let crng = Array.init n (fun _ -> Rng.split rng) in
    {
      n;
      ccpu;
      crng;
      cache =
        Array.init n (fun _ ->
            Lru.create ~capacity:(Config.client_buf_pages cfg));
      ocache =
        Array.init n (fun _ ->
            Lru.create ~capacity:(Config.client_buf_objects cfg));
      running = Array.make n None;
      end_hooks = Array.make n [];
      resp_history = Array.init n (fun _ -> Stats.Welford.create ());
      up = Array.make n true;
      epoch = Array.make n 0;
      crashed_at = Array.make n None;
    }
  in
  let timeline =
    if cfg.Config.timeline then
      Some
        (Tl.create ~servers:n_servers ~num_clients:cfg.Config.num_clients
           ~disks:cfg.Config.server_disks ~capacity:cfg.Config.timeline_cap ())
    else None
  in
  let sys =
    {
      engine;
      cfg;
      algo;
      params;
      net =
        Resources.Network.create engine
          ~bandwidth_mbits:cfg.Config.network_mbits;
      servers;
      clients;
      metrics = Metrics.create ();
      faults;
      oracle =
        (if cfg.Config.oracle then
           Some (Oracle.History.create ~clients:cfg.Config.num_clients)
         else None);
      timeline;
      by_tid = Hashtbl.create 256;
      updaters = Hashtbl.create 256;
      next_tid = 1;
      live = true;
    }
  in
  (* Attach the resource-level observers: CPU busy spans, per-disk and
     network transfer spans.  Pure observation, attached after
     creation so the construction order (and every RNG split above)
     is identical with the timeline off. *)
  (match timeline with
  | None -> ()
  | Some tlx ->
    let tl = Tl.timeline tlx in
    Array.iter
      (fun sv ->
        Resources.Cpu.attach_timeline sv.scpu ~timeline:tl
          ~track:(Tl.trk_server_cpu tlx ~sid:sv.sid);
        Resources.Disk_array.attach_timeline sv.sdisks ~timeline:tl
          ~tracks:(Tl.trk_disks tlx ~sid:sv.sid))
      servers;
    Array.iteri
      (fun i cpu ->
        Resources.Cpu.attach_timeline cpu ~timeline:tl
          ~track:(Tl.trk_client_cpus tlx).(i))
      clients.ccpu;
    Resources.Network.attach_timeline sys.net ~timeline:tl
      ~track:(Tl.trk_net tlx));
  sys

let oracle_hook sys f = match sys.oracle with None -> () | Some o -> f o
let tl_hook sys f = match sys.timeline with None -> () | Some t -> f t

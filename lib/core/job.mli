(** A simulation job: one pure, self-contained description of a single
    experiment cell — configuration, protocol, workload, seed and
    measurement windows — that maps to one {!Runner.result}.

    Sweep drivers ({!Experiments}, {!Sensitivity}, the extension
    ablations) only *describe* their grids as job lists; execution is
    injected, either sequentially ({!run_all}) or by the parallel
    [Harness.Pool].  Each job derives its RNG seed from its description
    alone ({!seed}), so results are byte-identical regardless of worker
    count, scheduling, or position in the job list. *)

type t = {
  sweep : string;  (** sweep id, e.g. ["fig3"] or ["sens-clients"] *)
  label : string;  (** cell label, unique within the sweep *)
  cfg : Config.t;
  algo : Algo.t;
  params : Workload.Wparams.t;
  base_seed : int;  (** sweep-level base seed (default 42) *)
  warmup : float;  (** warm-up window, simulated seconds *)
  measure : float;  (** measurement window, simulated seconds *)
  max_events : int option;
      (** event-budget bound per window, passed to {!Runner.run}; not
          part of the seed key (it does not change the experiment, only
          caps runaway fault storms) *)
}

type table = { title : string; jobs : t list }
(** A titled job list: the unit in which the sensitivity and ablation
    drivers publish their sweeps. *)

val make :
  ?base_seed:int ->
  ?max_events:int ->
  sweep:string ->
  label:string ->
  cfg:Config.t ->
  algo:Algo.t ->
  params:Workload.Wparams.t ->
  warmup:float ->
  measure:float ->
  unit ->
  t

val describe : t -> string
(** ["sweep/label"], for progress lines and error messages. *)

val with_oracle : t -> t
(** The same job with [Config.oracle] set.  {!seed} is a function of
    the description, not the configuration, so the oracle-enabled job
    replays the identical event schedule. *)

val with_timeline : t -> t
(** The same job with [Config.timeline] set.  Like {!with_oracle}, the
    seed — and hence every simulated event — is unchanged; the run
    merely records its timeline as it happens. *)

val seed : t -> int
(** The job's own RNG seed, derived from [base_seed] and the job
    description via {!Simcore.Rng.key_seed}.  A pure function of the
    job: stable across job-list reordering and parallel scheduling. *)

val run : t -> Runner.result
(** Execute the simulation the job describes. *)

val run_all : t list -> Runner.result list
(** Sequential reference executor: [List.map run].  The [--jobs 1]
    path; [Harness.Pool.run] is the parallel one. *)

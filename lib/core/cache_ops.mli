(** Client cache manipulation shared by the transaction driver and the
    callback handler.

    Copy registration happens server-side when a copy is shipped
    (before the reply reaches the client); deregistration on drops is
    "piggybacked": the server's copy tables are updated directly at no
    message cost, modelling the standard callback-locking optimization
    of attaching drop notices to the next message (see DESIGN.md).
    Registrations are reference counted ({!Locking.Copy_table}) so a
    copy in transit survives the concurrent purge of its predecessor;
    at quiescence the tables exactly mirror the client caches.

    Clients are addressed by id (the index into {!Model.clients}). *)

open Storage

val drop_page : Model.sys -> int -> Ids.page -> discard_dirty:bool -> unit
(** Remove a page from the client cache and deregister its page copy
    and any object copies.  Raises if the entry still carries
    uncommitted updates unless [discard_dirty] (abort path). *)

val drop_object : Model.sys -> int -> Ids.Oid.t -> unit
(** Object-server variant of {!drop_page}. *)

val mark_unavailable : Model.sys -> int -> Ids.Oid.t -> unit
(** Mark one slot unavailable in the cached page (no-op when the page is
    not cached) and deregister the object copy. *)

val install_page :
  Model.sys ->
  int ->
  Model.txn ->
  Ids.page ->
  unavailable:Ids.Int_set.t ->
  version:int ->
  (Ids.page * Ids.Int_set.t * int) option
(** Insert (or refresh) a page copy received from the server.  If the
    client already caches the page with uncommitted local updates, the
    copies are merged (charging [CopyMergeInst] per locally updated
    object) and the local updates stay visible.  Returns
    [Some (victim, dirty_slots, fetch_version)] when the insertion
    evicted a page with uncommitted updates, which the caller must ship
    to the server. *)

val install_object : Model.sys -> int -> Ids.Oid.t -> Ids.Oid.t option
(** Object-server insert.  Returns a dirty eviction victim the caller
    must ship. *)

val oracle_note_page_copy :
  Model.sys -> int -> Ids.page -> Model.page_entry -> unit
(** Mirror a (re)installed page copy into the oracle's shadow store:
    unavailable slots drop the client's shadow copy, clean slots take
    the server's current version, dirty slots keep the local pending
    version.  No-op when the oracle is off.  Exposed for the one
    install site outside this module (the write-token bounce path). *)

open Simcore

type msg_class =
  | M_read_req
  | M_read_reply
  | M_write_req
  | M_write_reply
  | M_callback
  | M_callback_reply
  | M_deescalate
  | M_deescalate_reply
  | M_dirty_data
  | M_commit_data
  | M_commit
  | M_commit_reply
  | M_abort
  | M_abort_reply
  | M_cb_forward
  | M_edge_exchange
  | M_recover

let msg_class_name = function
  | M_read_req -> "read_req"
  | M_read_reply -> "read_reply"
  | M_write_req -> "write_req"
  | M_write_reply -> "write_reply"
  | M_callback -> "callback"
  | M_callback_reply -> "callback_reply"
  | M_deescalate -> "deescalate"
  | M_deescalate_reply -> "deescalate_reply"
  | M_dirty_data -> "dirty_data"
  | M_commit_data -> "commit_data"
  | M_commit -> "commit"
  | M_commit_reply -> "commit_reply"
  | M_abort -> "abort"
  | M_abort_reply -> "abort_reply"
  | M_cb_forward -> "cb_forward"
  | M_edge_exchange -> "edge_exchange"
  | M_recover -> "recover"

let all_msg_classes =
  [
    M_read_req; M_read_reply; M_write_req; M_write_reply; M_callback;
    M_callback_reply; M_deescalate; M_deescalate_reply; M_dirty_data;
    M_commit_data; M_commit; M_commit_reply; M_abort; M_abort_reply;
    M_cb_forward; M_edge_exchange; M_recover;
  ]

let class_index = function
  | M_read_req -> 0
  | M_read_reply -> 1
  | M_write_req -> 2
  | M_write_reply -> 3
  | M_callback -> 4
  | M_callback_reply -> 5
  | M_deescalate -> 6
  | M_deescalate_reply -> 7
  | M_dirty_data -> 8
  | M_commit_data -> 9
  | M_commit -> 10
  | M_commit_reply -> 11
  | M_abort -> 12
  | M_abort_reply -> 13
  | M_cb_forward -> 14
  | M_edge_exchange -> 15
  | M_recover -> 16

let num_msg_classes = 17

type t = {
  mutable window_start : float;
  msg_counts : int array;
  mutable total_bytes : int;
  mutable commit_count : int;
  mutable abort_count : int;
  mutable deadlock_count : int;
  mutable merge_count : int;
  mutable merged_objects : int;
  mutable client_merge_count : int;
  mutable deesc_count : int;
  mutable deesc_objects : int;
  mutable pw_grants : int;
  mutable ow_grants : int;
  mutable lock_wait_count : int;
  mutable cb_block_count : int;
  mutable overflow_count : int;
  mutable token_wait_count : int;
  mutable token_bounce_count : int;
  lock_wait_time : Stats.Welford.t;
  mutable responses : Stats.Batch_means.t;
  (* Always-on latency histograms (recording is pure: no allocation,
     no RNG, no events — see lib/telemetry).  Same measurement window
     as the counters: cleared by [reset]. *)
  response_hist : Telemetry.Histogram.t;
  lock_wait_hist : Telemetry.Histogram.t;
  cb_round_hist : Telemetry.Histogram.t;
  msg_latency_hists : Telemetry.Histogram.t array;
  (* Retry accounting for the fault layer: per-class counts of
     timeout-driven resends (loss retransmits and down-server retries)
     and the extra latency a send that needed at least one retry paid
     before finally succeeding. *)
  msg_retries : int array;
  retry_wait_hist : Telemetry.Histogram.t;
}

type hist_snapshot = {
  h_response : Telemetry.Histogram.t;
  h_lock_wait : Telemetry.Histogram.t;
  h_cb_round : Telemetry.Histogram.t;
  h_msg_latency : Telemetry.Histogram.t array;  (** indexed by [class_index] *)
  h_retry_wait : Telemetry.Histogram.t;
  h_msg_retries : int array;  (** per-class retry counts, by [class_index] *)
}

let create () =
  {
    window_start = 0.0;
    msg_counts = Array.make num_msg_classes 0;
    total_bytes = 0;
    commit_count = 0;
    abort_count = 0;
    deadlock_count = 0;
    merge_count = 0;
    merged_objects = 0;
    client_merge_count = 0;
    deesc_count = 0;
    deesc_objects = 0;
    pw_grants = 0;
    ow_grants = 0;
    lock_wait_count = 0;
    cb_block_count = 0;
    overflow_count = 0;
    token_wait_count = 0;
    token_bounce_count = 0;
    lock_wait_time = Stats.Welford.create ();
    responses = Stats.Batch_means.create ~batch_size:25;
    response_hist = Telemetry.Histogram.create ();
    lock_wait_hist = Telemetry.Histogram.create ();
    cb_round_hist = Telemetry.Histogram.create ();
    msg_latency_hists =
      Array.init num_msg_classes (fun _ -> Telemetry.Histogram.create ());
    msg_retries = Array.make num_msg_classes 0;
    retry_wait_hist = Telemetry.Histogram.create ();
  }

let note_msg t cls ~bytes =
  let i = class_index cls in
  t.msg_counts.(i) <- t.msg_counts.(i) + 1;
  t.total_bytes <- t.total_bytes + bytes

let note_commit t ~response =
  t.commit_count <- t.commit_count + 1;
  Stats.Batch_means.add t.responses response;
  Telemetry.Histogram.record t.response_hist response

let note_msg_latency t cls ~duration =
  Telemetry.Histogram.record t.msg_latency_hists.(class_index cls) duration

let note_msg_retry t cls =
  let i = class_index cls in
  t.msg_retries.(i) <- t.msg_retries.(i) + 1

let note_retry_wait t ~duration =
  Telemetry.Histogram.record t.retry_wait_hist duration

let note_cb_round t ~duration =
  Telemetry.Histogram.record t.cb_round_hist duration

let note_abort t = t.abort_count <- t.abort_count + 1
let note_deadlock t = t.deadlock_count <- t.deadlock_count + 1

let note_lock_wait t ~duration =
  t.lock_wait_count <- t.lock_wait_count + 1;
  Stats.Welford.add t.lock_wait_time duration;
  Telemetry.Histogram.record t.lock_wait_hist duration

let note_callback_blocked t = t.cb_block_count <- t.cb_block_count + 1

let note_merge t ~objects =
  t.merge_count <- t.merge_count + 1;
  t.merged_objects <- t.merged_objects + objects

let note_client_merge t ~objects =
  ignore objects;
  t.client_merge_count <- t.client_merge_count + 1

let note_deescalation t ~objects =
  t.deesc_count <- t.deesc_count + 1;
  t.deesc_objects <- t.deesc_objects + objects

let note_overflow t = t.overflow_count <- t.overflow_count + 1
let note_token_wait t = t.token_wait_count <- t.token_wait_count + 1
let note_token_bounce t = t.token_bounce_count <- t.token_bounce_count + 1
let note_page_write_grant t = t.pw_grants <- t.pw_grants + 1
let note_object_write_grant t = t.ow_grants <- t.ow_grants + 1

let reset t ~now =
  t.window_start <- now;
  Array.fill t.msg_counts 0 (Array.length t.msg_counts) 0;
  t.total_bytes <- 0;
  t.commit_count <- 0;
  t.abort_count <- 0;
  t.deadlock_count <- 0;
  t.merge_count <- 0;
  t.merged_objects <- 0;
  t.client_merge_count <- 0;
  t.deesc_count <- 0;
  t.deesc_objects <- 0;
  t.pw_grants <- 0;
  t.ow_grants <- 0;
  t.lock_wait_count <- 0;
  t.cb_block_count <- 0;
  t.overflow_count <- 0;
  t.token_wait_count <- 0;
  t.token_bounce_count <- 0;
  Stats.Welford.reset t.lock_wait_time;
  t.responses <- Stats.Batch_means.create ~batch_size:25;
  Telemetry.Histogram.reset t.response_hist;
  Telemetry.Histogram.reset t.lock_wait_hist;
  Telemetry.Histogram.reset t.cb_round_hist;
  Array.iter Telemetry.Histogram.reset t.msg_latency_hists;
  Array.fill t.msg_retries 0 (Array.length t.msg_retries) 0;
  Telemetry.Histogram.reset t.retry_wait_hist

let commits t = t.commit_count
let aborts t = t.abort_count
let deadlocks t = t.deadlock_count
let messages t = Array.fold_left ( + ) 0 t.msg_counts
let messages_of t cls = t.msg_counts.(class_index cls)
let retries_of t cls = t.msg_retries.(class_index cls)
let retries t = Array.fold_left ( + ) 0 t.msg_retries
let bytes t = t.total_bytes
let merges t = t.merge_count
let client_merges t = t.client_merge_count
let deescalations t = t.deesc_count
let page_write_grants t = t.pw_grants
let object_write_grants t = t.ow_grants
let lock_waits t = t.lock_wait_count
let callback_blocks t = t.cb_block_count
let overflows t = t.overflow_count
let token_waits t = t.token_wait_count
let token_bounces t = t.token_bounce_count

let throughput t ~now =
  let span = now -. t.window_start in
  if span <= 0.0 then 0.0 else float_of_int t.commit_count /. span

let snapshot_hists t =
  {
    h_response = Telemetry.Histogram.copy t.response_hist;
    h_lock_wait = Telemetry.Histogram.copy t.lock_wait_hist;
    h_cb_round = Telemetry.Histogram.copy t.cb_round_hist;
    h_msg_latency = Array.map Telemetry.Histogram.copy t.msg_latency_hists;
    h_retry_wait = Telemetry.Histogram.copy t.retry_wait_hist;
    h_msg_retries = Array.copy t.msg_retries;
  }

let response_quantile t q = Telemetry.Histogram.quantile t.response_hist q
let lock_wait_quantile t q = Telemetry.Histogram.quantile t.lock_wait_hist q
let cb_round_quantile t q = Telemetry.Histogram.quantile t.cb_round_hist q
let retry_wait_quantile t q = Telemetry.Histogram.quantile t.retry_wait_hist q

let response_mean t = Stats.Batch_means.mean t.responses
let response_ci90 t = Stats.Batch_means.ci90_half_width t.responses
let response_batches t = Stats.Batch_means.num_batches t.responses
let avg_lock_wait t = Stats.Welford.mean t.lock_wait_time

let msgs_per_commit t =
  if t.commit_count = 0 then 0.0
  else float_of_int (messages t) /. float_of_int t.commit_count

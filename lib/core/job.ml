type t = {
  sweep : string;
  label : string;
  cfg : Config.t;
  algo : Algo.t;
  params : Workload.Wparams.t;
  base_seed : int;
  warmup : float;
  measure : float;
  max_events : int option;
}

type table = { title : string; jobs : t list }

let make ?(base_seed = 42) ?max_events ~sweep ~label ~cfg ~algo ~params
    ~warmup ~measure () =
  { sweep; label; cfg; algo; params; base_seed; warmup; measure; max_events }

let describe j = j.sweep ^ "/" ^ j.label

(* The key (below) deliberately excludes the configuration, so turning
   the oracle on leaves the job's seed — and hence its entire event
   schedule — untouched. *)
let with_oracle j = { j with cfg = { j.cfg with Config.oracle = true } }
let with_timeline j = { j with cfg = { j.cfg with Config.timeline = true } }

(* The seed key must identify the cell uniquely within its sweep and be
   a pure function of the description, so that a job's random stream is
   the same no matter where in a job list it sits or which worker domain
   picks it up.  The label carries the sweep coordinates (write
   probability, algorithm, configuration knobs); the remaining fields
   guard against two sweeps sharing a label. *)
let key j =
  Printf.sprintf "%s|%s|%s|%s|%.17g|%.17g" j.sweep j.label
    (Algo.to_string j.algo) j.params.Workload.Wparams.name j.warmup j.measure

let seed j = Simcore.Rng.key_seed ~seed:j.base_seed ~key:(key j)

let run j =
  Runner.run ~seed:(seed j) ?max_events:j.max_events ~warmup:j.warmup
    ~measure:j.measure ~cfg:j.cfg ~algo:j.algo ~params:j.params ()

let run_all jobs = List.map run jobs

(** Timeline track layout and hook helpers for the simulation.

    Wraps a {!Telemetry.Timeline} with the run's track set (server
    instants, server CPU, one track per disk, the network, and per
    client a lifecycle track plus a CPU track) and pre-interned event
    names.  Created by {!Model.create} when [Config.timeline] is set;
    all hooks are pure observation, so a run records byte-identical
    results with or without a timeline attached. *)

type t

val create : num_clients:int -> disks:int -> capacity:int -> t
val timeline : t -> Telemetry.Timeline.t

val trk_server_cpu : t -> int
val trk_client_cpus : t -> int array
val trk_disks : t -> int array
val trk_net : t -> int

val txn_begin : t -> client:int -> tid:int -> now:float -> unit
val txn_commit : t -> client:int -> tid:int -> now:float -> unit
val txn_abort : t -> client:int -> tid:int -> now:float -> unit

val crash : t -> client:int -> now:float -> unit
(** Closes any open transaction span, then opens the client's "down"
    span — the recovery epoch, ended by {!restart}. *)

val restart : t -> client:int -> now:float -> unit
val cb_blocked : t -> client:int -> writer:int -> now:float -> unit

val page_write_grant : t -> tid:int -> now:float -> unit
val object_write_grant : t -> tid:int -> now:float -> unit
val deescalate : t -> page:int -> now:float -> unit
val escalate : t -> page:int -> now:float -> unit
val callback_sent : t -> target:int -> now:float -> unit
val callback_ack : t -> target:int -> now:float -> unit

(** Timeline track layout and hook helpers for the simulation.

    Wraps a {!Telemetry.Timeline} with the run's track set (per-server
    instant tracks, server CPUs, one track per disk, the network, and
    per client a lifecycle track plus a CPU track) and pre-interned
    event names.  Created by {!Model.create} when [Config.timeline] is
    set; all hooks are pure observation, so a run records byte-identical
    results with or without a timeline attached.

    At [servers = 1] the track names are the historical unprefixed ones
    ("server", "server-cpu", "disk0", ...); with a partitioned topology
    each server's tracks carry an "s<sid>-" prefix so Perfetto traces
    distinguish the partitions. *)

type t

val create :
  ?servers:int -> num_clients:int -> disks:int -> capacity:int -> unit -> t
(** [disks] is the per-server disk count. *)

val timeline : t -> Telemetry.Timeline.t

val trk_server_cpu : t -> sid:int -> int
val trk_client_cpus : t -> int array
val trk_disks : t -> sid:int -> int array
val trk_net : t -> int

val txn_begin : t -> client:int -> tid:int -> now:float -> unit
val txn_commit : t -> client:int -> tid:int -> now:float -> unit
val txn_abort : t -> client:int -> tid:int -> now:float -> unit

val crash : t -> client:int -> now:float -> unit
(** Closes any open transaction span, then opens the client's "down"
    span — the recovery epoch, ended by {!restart}. *)

val restart : t -> client:int -> now:float -> unit
val cb_blocked : t -> client:int -> writer:int -> now:float -> unit

val page_write_grant : t -> sid:int -> tid:int -> now:float -> unit
val object_write_grant : t -> sid:int -> tid:int -> now:float -> unit
val deescalate : t -> sid:int -> page:int -> now:float -> unit
val escalate : t -> sid:int -> page:int -> now:float -> unit
val callback_sent : t -> sid:int -> target:int -> now:float -> unit
val callback_ack : t -> sid:int -> target:int -> now:float -> unit

val callback_forward : t -> sid:int -> target:int -> now:float -> unit
(** A callback was forwarded to [target]'s home server (servers > 1). *)

val srv_crash : t -> sid:int -> now:float -> unit
(** Opens the server's "down" span (its outage epoch), closed by
    {!srv_reopen}; the fault driver serializes crash/reopen per server
    so these spans never overlap. *)

val srv_replay : t -> sid:int -> records:int -> now:float -> unit
(** Restart recovery phase 1: redo-log replay ([records] log records
    since the last flush). *)

val srv_reconstruct : t -> sid:int -> rows:int -> now:float -> unit
(** Restart recovery phase 2: client-assisted copy-table
    reconstruction ([rows] re-shipped registrations). *)

val srv_reopen : t -> sid:int -> now:float -> unit
(** Ends the "down" span: the server is open for normal traffic. *)

(** The parameter-space sweeps of Section 5.6.2, which the paper
    summarizes without figures: varying the number of clients, the
    object access pattern (clustered), the network bandwidth, and —
    the one case that changes a conclusion — an extreme page locality
    of one object per page, where the object server becomes
    competitive.  Each driver returns labelled rows for the bench
    harness to print. *)

type row = { label : string; result : Runner.result }

val pp_rows : Format.formatter -> string * row list -> unit

val client_scaling : ?time_scale:float -> unit -> string * row list
(** 1 to 25 client workstations, HOTCOLD low locality, wp 0.1, PS vs
    PS-AA vs OS. *)

val clustered_access : ?time_scale:float -> unit -> string * row list
(** Clustered vs unclustered object reference patterns. *)

val slow_network : ?time_scale:float -> unit -> string * row list
(** Bandwidth reduced by a factor of ten (8 Mbit/s). *)

val extreme_locality : ?time_scale:float -> unit -> string * row list
(** Page locality of exactly one object per page (120-page
    transactions): the paper's only regime where OS wins under HOTCOLD
    and briefly under UNIFORM. *)

val all : ?time_scale:float -> unit -> (string * row list) list

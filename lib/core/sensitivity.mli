(** The parameter-space sweeps of Section 5.6.2, which the paper
    summarizes without figures: varying the number of clients, the
    object access pattern (clustered), the network bandwidth, and —
    the one case that changes a conclusion — an extreme page locality
    of one object per page, where the object server becomes
    competitive.

    Each driver only {e describes} its grid as a {!Job.table}; an
    executor (sequential {!Job.run_all} or the parallel
    [Harness.Pool]) turns the jobs into results, and {!rows_of} zips
    them back into labelled rows for printing. *)

type row = { label : string; result : Runner.result }

val pp_rows : Format.formatter -> string * row list -> unit

val client_scaling : ?time_scale:float -> unit -> Job.table
(** 1 to 25 client workstations, HOTCOLD low locality, wp 0.1, PS vs
    PS-AA vs OS. *)

val clustered_access : ?time_scale:float -> unit -> Job.table
(** Clustered vs unclustered object reference patterns. *)

val slow_network : ?time_scale:float -> unit -> Job.table
(** Bandwidth reduced by a factor of ten (8 Mbit/s). *)

val extreme_locality : ?time_scale:float -> unit -> Job.table
(** Page locality of exactly one object per page (120-page
    transactions): the paper's only regime where OS wins under HOTCOLD
    and briefly under UNIFORM. *)

val tables : ?time_scale:float -> unit -> Job.table list
(** All four sweeps, as job tables. *)

val rows_of : Job.table -> Runner.result list -> string * row list
(** Zip a table's jobs with their results (same order) into printable
    rows. *)

val all :
  ?time_scale:float ->
  ?run:(Job.t list -> Runner.result list) ->
  unit ->
  (string * row list) list
(** Describe and execute every sweep.  [run] is the job executor;
    the default runs sequentially. *)

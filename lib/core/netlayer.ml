open Model
open Simcore

type endpoint = Client of int | Server of int

let cpu_of sys = function
  | Client c -> sys.clients.ccpu.(c)
  | Server s -> sys.servers.(s).scpu

(* The fault-free path below is kept byte-for-byte identical to the
   original transport: when message faults are disabled no extra RNG
   draw, event or metric is introduced. *)
let send_reliable sys ~cls ~src ~dst ~bytes ~instr =
  Metrics.note_msg sys.metrics cls ~bytes;
  Resources.Cpu.system (cpu_of sys src) instr;
  Resources.Network.transfer sys.net ~bytes;
  Resources.Cpu.system (cpu_of sys dst) instr

(* Lossy transport: each attempt pays sender CPU and wire time; a lost
   message is detected by the sender's retransmission timer (exponential
   backoff, capped) and resent.  A delivered message may additionally be
   duplicated in the network; the duplicate arrives later, burns wire
   and receiver CPU, and is then recognized by its sequence number and
   discarded — all protocol messages are idempotent at that point, so no
   protocol state changes.  Returns how many retransmissions the send
   needed. *)
let send_faulty sys ~cls ~src ~dst ~bytes ~instr =
  let f = sys.faults in
  let p = Faults.profile f in
  let rec attempt retries timeout =
    Metrics.note_msg sys.metrics cls ~bytes;
    Resources.Cpu.system (cpu_of sys src) instr;
    Resources.Network.transfer sys.net ~bytes;
    if Faults.draw_msg_loss f then begin
      Proc.suspend sys.engine (fun resume ->
          ignore (Engine.after sys.engine timeout (fun () -> resume (Ok ()))));
      Faults.note_retransmit f;
      Metrics.note_msg_retry sys.metrics cls;
      attempt (retries + 1)
        (Float.min (timeout *. p.Faults.retrans_backoff)
           p.Faults.retrans_max_timeout)
    end
    else begin
      Resources.Cpu.system (cpu_of sys dst) instr;
      (if Faults.draw_msg_dup f then
         Proc.spawn sys.engine (fun () ->
             Resources.Network.transfer sys.net ~bytes;
             Resources.Cpu.system (cpu_of sys dst) instr));
      retries
    end
  in
  attempt 0 p.Faults.retrans_timeout

(* A server that is down (or still recovering, for every class except
   the recovery protocol's own) does not answer. *)
let server_refuses sys ~cls = function
  | Client _ -> false
  | Server sid -> (
    match sys.servers.(sid).srv_state with
    | Srv_up -> false
    | Srv_recovering -> cls <> Metrics.M_recover
    | Srv_down -> true)

(* Transport to an unresponsive server.  Each attempt still pays sender
   CPU and wire time — the request reaches a dead machine — and the
   sender's retransmission timer then fires.  Non-[persist] senders
   give the message away after [retrans_giveaway] attempts and handle
   the failure locally (abort-and-retry); [persist] senders (callback
   legs, whose delivery is a correctness requirement) keep trying until
   the server reopens, which the restart driver guarantees.  Returns
   [(delivered, retries)]. *)
let send_down sys ~cls ~src ~dst ~bytes ~instr ~persist =
  let f = sys.faults in
  let p = Faults.profile f in
  let rec attempt tries timeout =
    Metrics.note_msg sys.metrics cls ~bytes;
    Resources.Cpu.system (cpu_of sys src) instr;
    Resources.Network.transfer sys.net ~bytes;
    if not (server_refuses sys ~cls dst) then begin
      Resources.Cpu.system (cpu_of sys dst) instr;
      (true, tries - 1)
    end
    else if tries >= p.Faults.retrans_giveaway && not persist then begin
      Faults.note_srv_giveaway f;
      (false, tries - 1)
    end
    else begin
      Proc.suspend sys.engine (fun resume ->
          ignore (Engine.after sys.engine timeout (fun () -> resume (Ok ()))));
      Faults.note_retransmit f;
      Metrics.note_msg_retry sys.metrics cls;
      attempt (tries + 1)
        (Float.min (timeout *. p.Faults.retrans_backoff)
           p.Faults.retrans_max_timeout)
    end
  in
  attempt 1 p.Faults.retrans_timeout

(* Core send.  With server faults on, a send addressed to a non-up
   server goes through the timeout/giveaway path; everything else takes
   the loss/duplication path (faulted) or the original reliable path.
   Returns false iff the message was given away undelivered. *)
let send_checked ?(persist = false) sys ~cls ~src ~dst ~bytes =
  let instr = Config.msg_instr sys.cfg ~bytes in
  let t0 = Engine.now sys.engine in
  (* The refusal check is independent of the fault profile: a server
     can be down through direct [Crash.crash_server] orchestration with
     every fault knob off, and the transport must still time out.  In a
     fault-free run every server is [Srv_up], so the check is a pure
     field read and the reliable path is taken unchanged. *)
  let delivered, retries =
    if server_refuses sys ~cls dst then
      send_down sys ~cls ~src ~dst ~bytes ~instr ~persist
    else if Faults.message_faults sys.faults then
      (true, send_faulty sys ~cls ~src ~dst ~bytes ~instr)
    else begin
      send_reliable sys ~cls ~src ~dst ~bytes ~instr;
      (true, 0)
    end
  in
  if delivered then begin
    (* Whole-send latency per message class, retransmissions included —
       pure observation into an always-on histogram. *)
    let duration = Engine.now sys.engine -. t0 in
    Metrics.note_msg_latency sys.metrics cls ~duration;
    (* Timeout-to-success: only sends that needed at least one retry. *)
    if retries > 0 then Metrics.note_retry_wait sys.metrics ~duration
  end;
  delivered

let send sys ~cls ~src ~dst ~bytes =
  ignore (send_checked sys ~cls ~src ~dst ~bytes)

let control sys ~cls ~src ~dst =
  send sys ~cls ~src ~dst ~bytes:(Config.control_bytes sys.cfg)

let control_checked ?persist sys ~cls ~src ~dst =
  send_checked ?persist sys ~cls ~src ~dst
    ~bytes:(Config.control_bytes sys.cfg)

let page_data sys ~cls ~src ~dst =
  send sys ~cls ~src ~dst ~bytes:(Config.page_msg_bytes sys.cfg)

let objs_data sys ~cls ~src ~dst ~count =
  send sys ~cls ~src ~dst ~bytes:(Config.objs_msg_bytes sys.cfg ~count)

(* Distributed deadlock detection cost model: whenever a server's local
   waits-for graph gains an edge it ships that edge to the designated
   coordinator (server 0).  Detection itself runs synchronously on the
   union of the linked graphs (Waits_for.link) — the coordinator is
   idealized as always current, so no deadlock can hide between
   exchanges — but each exchange still pays one control message of CPU
   and wire time.  The send is spawned on its own fiber because edges
   appear inside lock-acquire paths that must not suspend, and it is
   fire-and-forget: nothing waits on it.  With one server there is no
   coordinator traffic and no hook, preserving byte-identity. *)
let install_edge_exchange sys =
  if Array.length sys.servers > 1 then
    Array.iter
      (fun sv ->
        let sid = sv.Model.sid in
        if sid <> 0 then
          Locking.Waits_for.set_exchange_hook sv.Model.wfg (fun _txn ->
              Proc.spawn sys.engine (fun () ->
                  control sys ~cls:Metrics.M_edge_exchange ~src:(Server sid)
                    ~dst:(Server 0))))
      sys.servers


open Model

type endpoint = Client of int | Server

let cpu_of sys = function
  | Client c -> sys.clients.(c).ccpu
  | Server -> sys.server.scpu

let send sys ~cls ~src ~dst ~bytes =
  let instr = Config.msg_instr sys.cfg ~bytes in
  Metrics.note_msg sys.metrics cls ~bytes;
  Resources.Cpu.system (cpu_of sys src) instr;
  Resources.Network.transfer sys.net ~bytes;
  Resources.Cpu.system (cpu_of sys dst) instr

let control sys ~cls ~src ~dst =
  send sys ~cls ~src ~dst ~bytes:(Config.control_bytes sys.cfg)

let page_data sys ~cls ~src ~dst =
  send sys ~cls ~src ~dst ~bytes:(Config.page_msg_bytes sys.cfg)

let objs_data sys ~cls ~src ~dst ~count =
  send sys ~cls ~src ~dst ~bytes:(Config.objs_msg_bytes sys.cfg ~count)

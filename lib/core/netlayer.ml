open Model
open Simcore

type endpoint = Client of int | Server of int

let cpu_of sys = function
  | Client c -> sys.clients.(c).ccpu
  | Server s -> sys.servers.(s).scpu

(* The fault-free path below is kept byte-for-byte identical to the
   original transport: when message faults are disabled no extra RNG
   draw, event or metric is introduced. *)
let send_reliable sys ~cls ~src ~dst ~bytes ~instr =
  Metrics.note_msg sys.metrics cls ~bytes;
  Resources.Cpu.system (cpu_of sys src) instr;
  Resources.Network.transfer sys.net ~bytes;
  Resources.Cpu.system (cpu_of sys dst) instr

(* Lossy transport: each attempt pays sender CPU and wire time; a lost
   message is detected by the sender's retransmission timer (exponential
   backoff, capped) and resent.  A delivered message may additionally be
   duplicated in the network; the duplicate arrives later, burns wire
   and receiver CPU, and is then recognized by its sequence number and
   discarded — all protocol messages are idempotent at that point, so no
   protocol state changes. *)
let send_faulty sys ~cls ~src ~dst ~bytes ~instr =
  let f = sys.faults in
  let p = Faults.profile f in
  let rec attempt timeout =
    Metrics.note_msg sys.metrics cls ~bytes;
    Resources.Cpu.system (cpu_of sys src) instr;
    Resources.Network.transfer sys.net ~bytes;
    if Faults.draw_msg_loss f then begin
      Proc.suspend sys.engine (fun resume ->
          ignore (Engine.after sys.engine timeout (fun () -> resume (Ok ()))));
      Faults.note_retransmit f;
      attempt
        (Float.min (timeout *. p.Faults.retrans_backoff)
           p.Faults.retrans_max_timeout)
    end
    else begin
      Resources.Cpu.system (cpu_of sys dst) instr;
      if Faults.draw_msg_dup f then
        Proc.spawn sys.engine (fun () ->
            Resources.Network.transfer sys.net ~bytes;
            Resources.Cpu.system (cpu_of sys dst) instr)
    end
  in
  attempt p.Faults.retrans_timeout

let send sys ~cls ~src ~dst ~bytes =
  let instr = Config.msg_instr sys.cfg ~bytes in
  let t0 = Engine.now sys.engine in
  (if Faults.message_faults sys.faults then
     send_faulty sys ~cls ~src ~dst ~bytes ~instr
   else send_reliable sys ~cls ~src ~dst ~bytes ~instr);
  (* Whole-send latency per message class, retransmissions included —
     pure observation into an always-on histogram. *)
  Metrics.note_msg_latency sys.metrics cls
    ~duration:(Engine.now sys.engine -. t0)

let control sys ~cls ~src ~dst =
  send sys ~cls ~src ~dst ~bytes:(Config.control_bytes sys.cfg)

let page_data sys ~cls ~src ~dst =
  send sys ~cls ~src ~dst ~bytes:(Config.page_msg_bytes sys.cfg)

let objs_data sys ~cls ~src ~dst ~count =
  send sys ~cls ~src ~dst ~bytes:(Config.objs_msg_bytes sys.cfg ~count)

(* Distributed deadlock detection cost model: whenever a server's local
   waits-for graph gains an edge it ships that edge to the designated
   coordinator (server 0).  Detection itself runs synchronously on the
   union of the linked graphs (Waits_for.link) — the coordinator is
   idealized as always current, so no deadlock can hide between
   exchanges — but each exchange still pays one control message of CPU
   and wire time.  The send is spawned on its own fiber because edges
   appear inside lock-acquire paths that must not suspend, and it is
   fire-and-forget: nothing waits on it.  With one server there is no
   coordinator traffic and no hook, preserving byte-identity. *)
let install_edge_exchange sys =
  if Array.length sys.servers > 1 then
    Array.iter
      (fun sv ->
        let sid = sv.Model.sid in
        if sid <> 0 then
          Locking.Waits_for.set_exchange_hook sv.Model.wfg (fun _txn ->
              Proc.spawn sys.engine (fun () ->
                  control sys ~cls:Metrics.M_edge_exchange ~src:(Server sid)
                    ~dst:(Server 0))))
      sys.servers


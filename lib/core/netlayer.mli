(** Message transport.

    Every message charges protocol-processing CPU (fixed + per-byte,
    Table 1) at {e both} the sender and the receiver (system priority),
    and occupies the FIFO network for its on-the-wire time (Section
    4.1).  The calling fiber blocks through the whole path, so the
    arrival time it observes includes CPU and network queueing.

    When message faults are enabled ({!Faults.message_faults}), a
    message may be lost — the sender times out and retransmits with
    exponential backoff — or duplicated, in which case the stale copy
    pays wire and receiver-CPU costs before being discarded
    idempotently.  With faults disabled the transport is byte-for-byte
    the original reliable path.

    When server faults are enabled ({!Faults.srv_faults}), a message
    addressed to a down (or recovering, unless recovery-class) server
    is never answered: the sender pays its CPU and wire cost, times out
    and retries with the same backoff, and after
    [Faults.retrans_giveaway] attempts gives the message away — the
    checked send variants report the failure so the caller can abort
    locally (presumed abort).  Persistent sends (callback legs) retry
    until the server reopens instead. *)

type endpoint = Client of int | Server of int

val send :
  Model.sys ->
  cls:Metrics.msg_class ->
  src:endpoint ->
  dst:endpoint ->
  bytes:int ->
  unit
(** Move one message from [src] to [dst]; blocks the calling fiber until
    the receiver has finished protocol processing.  A giveaway at a down
    server is silent — use {!send_checked} when the caller must know. *)

val send_checked :
  ?persist:bool ->
  Model.sys ->
  cls:Metrics.msg_class ->
  src:endpoint ->
  dst:endpoint ->
  bytes:int ->
  bool
(** Like {!send} but returns false when the message was given away at a
    down server ([persist:true] never gives away: it retries until the
    destination reopens). *)

val control :
  Model.sys -> cls:Metrics.msg_class -> src:endpoint -> dst:endpoint -> unit
(** A [control_msg_bytes]-sized message. *)

val control_checked :
  ?persist:bool ->
  Model.sys ->
  cls:Metrics.msg_class ->
  src:endpoint ->
  dst:endpoint ->
  bool
(** Checked variant of {!control} (see {!send_checked}). *)

val page_data :
  Model.sys -> cls:Metrics.msg_class -> src:endpoint -> dst:endpoint -> unit
(** A message carrying one page. *)

val objs_data :
  Model.sys ->
  cls:Metrics.msg_class ->
  src:endpoint ->
  dst:endpoint ->
  count:int ->
  unit
(** A message carrying [count] objects. *)

val install_edge_exchange : Model.sys -> unit
(** With more than one server, hook every non-coordinator server's
    waits-for graph so each new wait edge ships one
    [M_edge_exchange] control message to the coordinator (server 0) on
    a spawned fiber.  Cycle detection itself runs on the union of the
    linked graphs, so the exchange is pure cost accounting.  No-op at
    [servers = 1]. *)

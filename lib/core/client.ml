open Storage
open Simcore
open Model

let local_lock_charge sys cid =
  Resources.Cpu.system sys.clients.ccpu.(cid) sys.cfg.Config.lock_inst

(* Zombie guard: a fiber that resumed from a non-cancellable suspension
   (CPU, disk, network) after its client crashed must not touch caches,
   locks, or metrics — the crash handler already reclaimed its state.
   Checked after every suspension that is followed by a state change. *)
let check_live sys txn =
  if not (Model.txn_live sys txn) then raise Client_crashed

(* How many times a read retries when its target keeps becoming
   unavailable between server reply and local install; each retry
   blocks at the server behind the new writer, so in practice one or
   two rounds suffice. *)
let max_read_retries = 64

(* State mutations must precede the CPU charge for them: charging
   suspends the fiber, and a callback arriving in that window must
   already see the lock (otherwise it would mark/purge an object the
   transaction is about to use). *)
let record_read_locks sys cid txn oid =
  if not (Ids.Oid_set.mem oid txn.read_objs) then begin
    txn.read_objs <- Ids.Oid_set.add oid txn.read_objs;
    txn.read_pages <- Ids.Page_set.add oid.Ids.Oid.page txn.read_pages;
    Model.oracle_hook sys (fun o -> Oracle.History.read o ~tid:txn.tid ~oid);
    local_lock_charge sys cid
  end

(* --- Read access ------------------------------------------------------ *)

let rec fetch_page sys cid txn oid ~tries =
  if tries > max_read_retries then
    failwith "Client: read livelock (unavailable after many refetches)";
  match Srv.read_rpc sys txn oid with
  | Srv.R_aborted -> raise Txn_aborted
  | Srv.R_objs _ -> assert false
  | Srv.R_page { unavailable; version } ->
    check_live sys txn;
    (* The owning server may have crashed while the reply was in
       transit: the copy is registered in no table, so installing it
       would leave a stale, never-called-back page. *)
    if txn.doomed then raise Txn_aborted;
    (match Cache_ops.install_page sys cid txn oid.Ids.Oid.page ~unavailable ~version with
    | Some (victim, dirty, fetch_version) ->
      (* Under redo-at-server the log carries the updates, so dirty
         evictions need not ship the page. *)
      if sys.cfg.Config.commit_mode = Config.Ship_pages then
        Srv.ship_dirty_page sys txn victim ~dirty ~fetch_version
          ~at_commit:false
    | None -> ());
    (* The shipped copy can mark our target unavailable if a writer
       slipped in between the lock probe and the reply; ask again (the
       probe will now block behind that writer). *)
    if Ids.Int_set.mem oid.Ids.Oid.slot unavailable then
      fetch_page sys cid txn oid ~tries:(tries + 1)

let read_access sys cid txn oid =
  let cs = sys.clients in
  match sys.algo with
  | Algo.OS ->
    if not (Lru.mem cs.ocache.(cid) oid) then begin
      match Srv.read_rpc sys txn oid with
      | Srv.R_aborted -> raise Txn_aborted
      | Srv.R_page _ -> assert false
      | Srv.R_objs group ->
        check_live sys txn;
        (* See [fetch_page]: never install a copy from a server that
           crashed after shipping it. *)
        if txn.doomed then raise Txn_aborted;
        List.iter
          (fun o ->
            match Cache_ops.install_object sys cid o with
            | Some victim ->
              if sys.cfg.Config.commit_mode = Config.Ship_pages then
                Srv.ship_dirty_objs sys txn [ victim ] ~at_commit:false
            | None -> ())
          group
    end
    else Lru.touch cs.ocache.(cid) oid;
    record_read_locks sys cid txn oid
  | Algo.PS | Algo.PS_OO | Algo.PS_OA | Algo.PS_AA ->
    let available =
      match Lru.find cs.cache.(cid) oid.Ids.Oid.page with
      | Some entry -> not (Ids.Int_set.mem oid.Ids.Oid.slot entry.unavailable)
      | None -> false
    in
    if not available then fetch_page sys cid txn oid ~tries:0;
    record_read_locks sys cid txn oid

(* --- Write access ----------------------------------------------------- *)

let have_write_permission sys txn oid =
  match sys.algo with
  | Algo.PS -> Ids.Page_set.mem oid.Ids.Oid.page txn.wpages
  | Algo.OS | Algo.PS_OO | Algo.PS_OA -> Ids.Oid_set.mem oid txn.wobjs
  | Algo.PS_AA ->
    Ids.Page_set.mem oid.Ids.Oid.page txn.wpages
    || Ids.Oid_set.mem oid txn.wobjs

(* Protocol safety invariants, checked on every update:
   1. no two live transactions hold uncommitted updates to one object;
   2. the updater holds the server-side write lock that covers the
      object (the page lock, the object lock, or either for PS-AA).
   A protocol bug that loses mutual exclusion trips these instantly.
   Check 1 consults the [sys.updaters] index instead of scanning every
   client, so its cost is O(updaters of this object) — in a correct
   run, zero or one entry.

   Disabled under the [srv_skip_reconstruction] sabotage: skipping the
   copy-table rebuild deliberately breaks callback-based mutual
   exclusion, and the knob exists to prove the serializability oracle —
   the history-level checker — catches the damage end to end.  Leaving
   this state-level assertion armed would catch it first. *)
let assert_update_invariants sys cid txn oid =
  if sys.cfg.Config.srv_skip_reconstruction then ()
  else begin
  List.iter
    (fun (t : Model.txn) ->
      (* A doomed transaction can only abort: its updates are already
         discarded in spirit and its covering locks died with the
         crashed server, so a post-recovery writer may overlap it. *)
      if t != txn && not t.doomed then
        failwith
          (Printf.sprintf
             "invariant violation: object %d.%d updated concurrently by \
              txn %d (client %d) and txn %d (client %d)"
             oid.Ids.Oid.page oid.Ids.Oid.slot txn.tid cid t.tid t.client))
    (Model.updaters_of sys oid);
  let sv = Model.server_of sys oid.Ids.Oid.page in
  let holds_page =
    Locking.Lock_table.held_by sv.plocks oid.Ids.Oid.page ~txn:txn.tid
  in
  let holds_obj = Locking.Lock_table.held_by sv.olocks oid ~txn:txn.tid in
  let covered =
    match sys.algo with
    | Algo.PS -> holds_page
    | Algo.OS | Algo.PS_OO | Algo.PS_OA -> holds_obj
    | Algo.PS_AA -> holds_page || holds_obj
  in
  if not covered then
    failwith
      (Printf.sprintf
         "invariant violation: txn %d updates %d.%d without a covering \
          server write lock"
         txn.tid oid.Ids.Oid.page oid.Ids.Oid.slot)
  end

let mark_updated sys cid txn oid =
  assert_update_invariants sys cid txn oid;
  if not (Ids.Oid_set.mem oid txn.updated) then begin
    Model.oracle_hook sys (fun o -> Oracle.History.write o ~tid:txn.tid ~oid);
    Model.note_updater sys txn oid
  end;
  txn.updated <- Ids.Oid_set.add oid txn.updated;
  let cs = sys.clients in
  match sys.algo with
  | Algo.OS -> (
    match Lru.peek cs.ocache.(cid) oid with
    | Some entry -> entry.odirty <- true
    | None ->
      (* The object was read moments ago and callbacks against in-use
         objects block, so it must still be cached. *)
      assert false)
  | Algo.PS | Algo.PS_OO | Algo.PS_OA | Algo.PS_AA -> (
    match Lru.peek cs.cache.(cid) oid.Ids.Oid.page with
    | Some entry ->
      (* Invariant: the read lock recorded before this write blocks any
         callback that would mark the target. *)
      if Ids.Int_set.mem oid.Ids.Oid.slot entry.unavailable then
        failwith
          (Printf.sprintf
             "invariant violation: txn %d writes %d.%d which a callback \
              marked unavailable despite the read lock"
             txn.tid oid.Ids.Oid.page oid.Ids.Oid.slot);
      entry.dirty <- Ids.Int_set.add oid.Ids.Oid.slot entry.dirty
    | None -> assert false)

let write_access sys cid txn oid =
  if not (have_write_permission sys txn oid) then begin
    match Srv.write_rpc sys txn oid with
    | Srv.W_aborted -> raise Txn_aborted
    | Srv.W_page ->
      check_live sys txn;
      txn.wpages <- Ids.Page_set.add oid.Ids.Oid.page txn.wpages;
      (* Under PS-AA the server acquired the object lock on the way to
         escalating; mirror it so release covers both. *)
      if sys.algo = Algo.PS_AA then txn.wobjs <- Ids.Oid_set.add oid txn.wobjs
    | Srv.W_obj ->
      check_live sys txn;
      txn.wobjs <- Ids.Oid_set.add oid txn.wobjs
  end;
  (* A server crash between the grant and this point purged the
     covering lock; recording the update would trip the isolation
     invariants against a post-recovery writer. *)
  if txn.doomed then raise Txn_aborted;
  mark_updated sys cid txn oid;
  local_lock_charge sys cid

(* --- Operations ------------------------------------------------------- *)

let exec_op sys cid txn (op : Workload.Refstring.op) =
  check_live sys txn;
  if txn.doomed then raise Txn_aborted;
  read_access sys cid txn op.oid;
  if op.write then write_access sys cid txn op.oid;
  let cost =
    if op.write then sys.params.Workload.Wparams.per_object_write_instr
    else sys.params.Workload.Wparams.per_object_read_instr
  in
  Resources.Cpu.user sys.clients.ccpu.(cid) cost

(* --- Transaction termination ------------------------------------------ *)

let finish_txn sys cid =
  ignore (Model.clear_running sys cid);
  let cs = sys.clients in
  let hooks = cs.end_hooks.(cid) in
  cs.end_hooks.(cid) <- [];
  List.iter (fun resume -> resume ()) hooks

let updated_pages txn =
  Ids.Oid_set.fold
    (fun o acc -> Ids.Page_set.add o.Ids.Oid.page acc)
    txn.updated Ids.Page_set.empty

let commit sys cid txn =
  let cs = sys.clients in
  check_live sys txn;
  (* A doomed transaction must not ship updates: the crashed server
     lost its locks, so the data would install without coverage. *)
  if txn.doomed then raise Txn_aborted;
  (match sys.cfg.Config.commit_mode with
  | Config.Redo_at_server -> Srv.ship_redo_log sys txn
  | Config.Ship_pages ->
  match sys.algo with
  | Algo.OS ->
    let dirty =
      Ids.Oid_set.fold
        (fun o acc ->
          match Lru.peek cs.ocache.(cid) o with
          | Some entry when entry.odirty -> o :: acc
          | Some _ | None -> acc)
        txn.updated []
    in
    Srv.ship_dirty_objs sys txn dirty ~at_commit:true
  | Algo.PS | Algo.PS_OO | Algo.PS_OA | Algo.PS_AA ->
    Ids.Page_set.iter
      (fun p ->
        match Lru.peek cs.cache.(cid) p with
        | Some entry when not (Ids.Int_set.is_empty entry.dirty) ->
          Srv.ship_dirty_page sys txn p ~dirty:entry.dirty
            ~fetch_version:entry.fetch_version ~at_commit:true
        | Some _ | None -> ())
      (updated_pages txn));
  let committed = Srv.commit_rpc sys txn in
  (* A client crash during the commit round trip aborts the transaction:
     the server skipped the version bumps, so it must not count as a
     commit here.  Likewise presumed abort: when a participant crashed
     mid-flight or never heard the commit, [commit_rpc] reports failure
     and the client resolves the in-doubt outcome as an abort. *)
  check_live sys txn;
  if not committed then raise Txn_aborted;
  (* Updates are durable at the server; retain the pages/objects as
     clean cached copies and let blocked callbacks proceed. *)
  (match sys.algo with
  | Algo.OS ->
    Ids.Oid_set.iter
      (fun o ->
        match Lru.peek cs.ocache.(cid) o with
        | Some entry -> entry.odirty <- false
        | None -> ())
      txn.updated
  | Algo.PS | Algo.PS_OO | Algo.PS_OA | Algo.PS_AA ->
    Ids.Page_set.iter
      (fun p ->
        match Lru.peek cs.cache.(cid) p with
        | Some entry ->
          entry.dirty <- Ids.Int_set.empty;
          entry.fetch_version <- Model.page_version sys p
        | None -> ())
      (updated_pages txn));
  finish_txn sys cid

let abort_cleanup sys cid txn =
  Model.oracle_hook sys (fun o -> Oracle.History.abort o ~tid:txn.tid);
  Model.tl_hook sys (fun x ->
      Tl.txn_abort x ~client:cid ~tid:txn.tid ~now:(Engine.now sys.engine));
  (* Purge uncommitted updates from the cache (purge-at-client,
     Section 3.1 / footnote 2), unblock any pending callbacks, then let
     the server release the transaction's locks. *)
  (match sys.algo with
  | Algo.OS -> Ids.Oid_set.iter (Cache_ops.drop_object sys cid) txn.updated
  | Algo.PS | Algo.PS_OO | Algo.PS_OA | Algo.PS_AA ->
    Ids.Page_set.iter
      (fun p -> Cache_ops.drop_page sys cid p ~discard_dirty:true)
      (updated_pages txn));
  finish_txn sys cid;
  Srv.abort_rpc sys txn;
  Metrics.note_abort sys.metrics

(* --- The per-client transaction source -------------------------------- *)

let make_txn sys ~client ~ops ~first_started =
  let now = Engine.now sys.engine in
  {
    tid = fresh_tid sys;
    client;
    epoch = sys.clients.epoch.(client);
    ops;
    started = now;
    first_started;
    restarts = 0;
    read_pages = Ids.Page_set.empty;
    read_objs = Ids.Oid_set.empty;
    wpages = Ids.Page_set.empty;
    wobjs = Ids.Oid_set.empty;
    updated = Ids.Oid_set.empty;
    doomed = false;
    rpc_sid = -1;
  }

let restart_delay sys cid =
  let hist = sys.clients.resp_history.(cid) in
  let mean =
    if Stats.Welford.count hist > 0 then Stats.Welford.mean hist else 0.25
  in
  Rng.exponential sys.clients.crng.(cid) ~mean

let rec attempt sys cid ops ~first_started ~restarts =
  let txn = make_txn sys ~client:cid ~ops ~first_started in
  txn.restarts <- restarts;
  Model.set_running sys cid txn;
  Model.oracle_hook sys (fun o ->
      Oracle.History.begin_txn o ~tid:txn.tid ~client:cid);
  Model.tl_hook sys (fun x ->
      Tl.txn_begin x ~client:cid ~tid:txn.tid ~now:txn.started);
  if restarts = 0 then Trace.txn sys ~tid:txn.tid ~client:cid "start"
  else Trace.txn sys ~tid:txn.tid ~client:cid "restart #%d" restarts;
  (* Start times are replicated on every server's graph so any of them
     can pick a deadlock victim locally (see Waits_for.link). *)
  let start = Engine.now sys.engine in
  Array.iter
    (fun sv -> Locking.Waits_for.begin_txn sv.wfg txn.tid ~start)
    sys.servers;
  match
    Array.iter (exec_op sys cid txn) ops;
    commit sys cid txn
  with
  | () ->
    let now = Engine.now sys.engine in
    let response = now -. first_started in
    Trace.txn sys ~tid:txn.tid ~client:cid
      "commit (response %.0f ms, %d updates)" (1000.0 *. response)
      (Ids.Oid_set.cardinal txn.updated);
    Metrics.note_commit sys.metrics ~response;
    Model.tl_hook sys (fun x -> Tl.txn_commit x ~client:cid ~tid:txn.tid ~now);
    Stats.Welford.add sys.clients.resp_history.(cid) response;
    (* First commit after a cold restart ends the outage window. *)
    (match sys.clients.crashed_at.(cid) with
    | Some t0 ->
      Faults.note_recovery sys.faults ~latency:(now -. t0);
      sys.clients.crashed_at.(cid) <- None
    | None -> ());
    Audit.check sys ~context:"commit" ~coverage_of:cid
  | exception Txn_aborted ->
    (* A deadlock abort that raced with a crash of this client belongs
       to the crash handler: everything is already reclaimed. *)
    check_live sys txn;
    Trace.txn sys ~tid:txn.tid ~client:cid "abort (%s)"
      (if txn.doomed then "server crash" else "deadlock victim");
    abort_cleanup sys cid txn;
    Audit.check sys ~context:"abort" ~coverage_of:cid;
    Proc.hold sys.engine (restart_delay sys cid);
    (* The client may have crashed during the back-off; the replacement
       incarnation resubmits, not this fiber. *)
    check_live sys txn;
    attempt sys cid ops ~first_started ~restarts:(restarts + 1)

let run_one sys ~client ops k =
  Proc.spawn sys.engine (fun () ->
      (try
         attempt sys client ops ~first_started:(Engine.now sys.engine)
           ~restarts:0
       with Client_crashed -> ());
      k ())

let client_loop sys cid ~epoch =
  (* Iterative so the fiber stack stays flat across thousands of
     transactions.  The loop belongs to one client incarnation: a crash
     bumps the epoch, so this fiber winds down (wherever it was) and the
     restart spawns a fresh loop. *)
  let cs = sys.clients in
  (* Large-population runs bound concurrency with think_time; phase the
     population across one think interval so simulated time zero is not
     a thundering herd of [n] simultaneous transactions.  No RNG draw,
     and no hold at all when think_time is zero, so the paper-scale
     schedules are untouched. *)
  let think = sys.params.Workload.Wparams.think_time in
  if think > 0.0 then
    Proc.hold sys.engine (think *. float_of_int cid /. float_of_int cs.n);
  while sys.live && cs.up.(cid) && cs.epoch.(cid) = epoch do
    try
      let ops =
        Workload.Refstring.generate ~rng:cs.crng.(cid) ~params:sys.params
          ~client:cid ~objects_per_page:sys.cfg.Config.objects_per_page
      in
      attempt sys cid ops ~first_started:(Engine.now sys.engine) ~restarts:0;
      let think = sys.params.Workload.Wparams.think_time in
      (* Traffic-shape modulation only applies when an arrival profile is
         set, so the default path holds for exactly [think]. *)
      let think =
        match sys.params.Workload.Wparams.arrival with
        | None -> think
        | Some a ->
          Workload.Arrival.think a ~base:think ~now:(Engine.now sys.engine)
      in
      if think > 0.0 then Proc.hold sys.engine think else Proc.yield sys.engine
    with Client_crashed -> ()
  done

let start_one sys cid =
  let epoch = sys.clients.epoch.(cid) in
  Proc.spawn sys.engine (fun () -> client_loop sys cid ~epoch)

let start sys =
  for cid = 0 to sys.clients.n - 1 do
    start_one sys cid
  done

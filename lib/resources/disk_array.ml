open Simcore

type t = { rng : Rng.t; disks : Disk.t array }

let create engine ~rng ?faults ~disks ~min_time ~max_time () =
  if disks <= 0 then invalid_arg "Disk_array.create: need at least one disk";
  let make _ =
    Disk.create engine ~rng:(Rng.split rng) ?faults ~min_time ~max_time ()
  in
  { rng = Rng.split rng; disks = Array.init disks make }

let io t = Disk.io (Rng.pick t.rng t.disks)

let attach_timeline t ~timeline ~tracks =
  if Array.length tracks <> Array.length t.disks then
    invalid_arg "Disk_array.attach_timeline: track count mismatch";
  Array.iteri
    (fun i d -> Disk.attach_timeline d ~timeline ~track:tracks.(i))
    t.disks

let io_count t =
  Array.fold_left (fun acc d -> acc + Disk.io_count d) 0 t.disks

let utilization t =
  let s = Array.fold_left (fun acc d -> acc +. Disk.utilization d) 0.0 t.disks in
  s /. float_of_int (Array.length t.disks)

let reset_stats t = Array.iter Disk.reset_stats t.disks

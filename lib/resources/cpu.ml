open Simcore

type job = { mutable rem : float; resume : unit Proc.resumer }

(* Optional timeline observer: one "busy" span per idle->busy->idle
   cycle, recorded on the edges [update_busy] already detects for the
   time-weighted utilization.  Pure observation — no events, no RNG. *)
type tl_state = {
  ttl : Telemetry.Timeline.t;
  track : int;
  n_busy : int;
  mutable was_busy : bool;
}

type t = {
  engine : Engine.t;
  cpu_name : string;
  rate : float; (* instructions per second *)
  sys_queue : (float * unit Proc.resumer) Queue.t;
  mutable sys_active : bool;
  mutable users : job list;
  (* Cached [List.length users] and [fold min rem] so the per-event
     reschedule is O(1).  [min_rem] tracks the fold exactly: a uniform
     catch-up subtraction is monotone in floats, so subtracting it from
     the cached minimum gives bit-identical results to re-folding. *)
  mutable n_users : int;
  mutable min_rem : float; (* infinity when no user jobs are active *)
  mutable last_progress : float; (* when users' remaining work was last updated *)
  mutable gen : int; (* invalidates stale user-completion events *)
  busy : Stats.Time_weighted.t;
  mutable tl : tl_state option;
}

let create engine ~name ~mips =
  if mips <= 0.0 then invalid_arg "Cpu.create: mips must be positive";
  {
    engine;
    cpu_name = name;
    rate = mips *. 1e6;
    sys_queue = Queue.create ();
    sys_active = false;
    users = [];
    n_users = 0;
    min_rem = infinity;
    last_progress = Engine.now engine;
    gen = 0;
    busy = Stats.Time_weighted.create ~now:(Engine.now engine);
    tl = None;
  }

let name t = t.cpu_name

let is_busy t = t.sys_active || t.n_users > 0

let update_busy t =
  let now = Engine.now t.engine in
  let b = is_busy t in
  Stats.Time_weighted.update t.busy ~now (if b then 1.0 else 0.0);
  match t.tl with
  | Some s when s.was_busy <> b ->
    if b then Telemetry.Timeline.span_begin s.ttl ~track:s.track ~name:s.n_busy now
    else Telemetry.Timeline.span_end s.ttl ~track:s.track now;
    s.was_busy <- b
  | Some _ | None -> ()

let attach_timeline t ~timeline ~track =
  let s =
    {
      ttl = timeline;
      track;
      n_busy = Telemetry.Timeline.intern timeline "busy";
      was_busy = false;
    }
  in
  t.tl <- Some s;
  (* If attached while already busy, open the span now. *)
  update_busy t

(* Charge elapsed processor-shared progress to every active user job.
   No progress is made while a system request is active. *)
let catch_up_users t =
  let now = Engine.now t.engine in
  if (not t.sys_active) && t.n_users > 0 then begin
    let n = float_of_int t.n_users in
    let done_instr = (now -. t.last_progress) *. t.rate /. n in
    List.iter (fun j -> j.rem <- j.rem -. done_instr) t.users;
    t.min_rem <- t.min_rem -. done_instr
  end;
  t.last_progress <- now

let eps_instr = 1e-6

let rec reschedule_users t =
  t.gen <- t.gen + 1;
  if (not t.sys_active) && t.n_users > 0 then begin
    let n = float_of_int t.n_users in
    let dt = Float.max 0.0 (t.min_rem *. n /. t.rate) in
    let gen = t.gen in
    Engine.schedule_after t.engine dt (fun () ->
        if gen = t.gen then user_completion t)
  end

and user_completion t =
  catch_up_users t;
  let finished, running =
    List.partition (fun j -> j.rem <= eps_instr) t.users
  in
  t.users <- running;
  (* The minimum left with the finished jobs: re-fold over survivors
     (only here, at completion events — not on every reschedule). *)
  t.n_users <- List.length running;
  t.min_rem <- List.fold_left (fun acc j -> min acc j.rem) infinity running;
  update_busy t;
  reschedule_users t;
  List.iter (fun j -> j.resume (Ok ())) finished

let rec start_next_system t =
  match Queue.take_opt t.sys_queue with
  | None ->
    t.sys_active <- false;
    t.last_progress <- Engine.now t.engine;
    update_busy t;
    reschedule_users t
  | Some (instr, resume) ->
    t.sys_active <- true;
    Engine.schedule_after t.engine (instr /. t.rate) (fun () ->
        resume (Ok ());
        start_next_system t)

let system t instr =
  if instr < 0.0 then invalid_arg "Cpu.system: negative work";
  Proc.suspend t.engine (fun resume ->
      catch_up_users t;
      Queue.push (instr, resume) t.sys_queue;
      if not t.sys_active then begin
        (* Freeze user progress and start serving the system queue. *)
        t.gen <- t.gen + 1;
        start_next_system t
      end;
      update_busy t)

let user t instr =
  if instr < 0.0 then invalid_arg "Cpu.user: negative work";
  if instr = 0.0 then ()
  else
    Proc.suspend t.engine (fun resume ->
        catch_up_users t;
        t.users <- { rem = instr; resume } :: t.users;
        t.n_users <- t.n_users + 1;
        if instr < t.min_rem then t.min_rem <- instr;
        update_busy t;
        reschedule_users t)

let utilization t =
  Stats.Time_weighted.average t.busy ~now:(Engine.now t.engine)

let reset_stats t =
  update_busy t;
  Stats.Time_weighted.reset t.busy ~now:(Engine.now t.engine);
  update_busy t

let active_users t = t.n_users

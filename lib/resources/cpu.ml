open Simcore

type job = { mutable rem : float; resume : unit Proc.resumer }

type t = {
  engine : Engine.t;
  cpu_name : string;
  rate : float; (* instructions per second *)
  sys_queue : (float * unit Proc.resumer) Queue.t;
  mutable sys_active : bool;
  mutable users : job list;
  mutable last_progress : float; (* when users' remaining work was last updated *)
  mutable gen : int; (* invalidates stale user-completion events *)
  busy : Stats.Time_weighted.t;
}

let create engine ~name ~mips =
  if mips <= 0.0 then invalid_arg "Cpu.create: mips must be positive";
  {
    engine;
    cpu_name = name;
    rate = mips *. 1e6;
    sys_queue = Queue.create ();
    sys_active = false;
    users = [];
    last_progress = Engine.now engine;
    gen = 0;
    busy = Stats.Time_weighted.create ~now:(Engine.now engine);
  }

let name t = t.cpu_name

let is_busy t = t.sys_active || t.users <> []

let update_busy t =
  Stats.Time_weighted.update t.busy ~now:(Engine.now t.engine)
    (if is_busy t then 1.0 else 0.0)

(* Charge elapsed processor-shared progress to every active user job.
   No progress is made while a system request is active. *)
let catch_up_users t =
  let now = Engine.now t.engine in
  if (not t.sys_active) && t.users <> [] then begin
    let n = float_of_int (List.length t.users) in
    let done_instr = (now -. t.last_progress) *. t.rate /. n in
    List.iter (fun j -> j.rem <- j.rem -. done_instr) t.users
  end;
  t.last_progress <- now

let eps_instr = 1e-6

let rec reschedule_users t =
  t.gen <- t.gen + 1;
  if (not t.sys_active) && t.users <> [] then begin
    let min_rem =
      List.fold_left (fun acc j -> min acc j.rem) infinity t.users
    in
    let n = float_of_int (List.length t.users) in
    let dt = Float.max 0.0 (min_rem *. n /. t.rate) in
    let gen = t.gen in
    Engine.schedule_after t.engine dt (fun () ->
        if gen = t.gen then user_completion t)
  end

and user_completion t =
  catch_up_users t;
  let finished, running =
    List.partition (fun j -> j.rem <= eps_instr) t.users
  in
  t.users <- running;
  update_busy t;
  reschedule_users t;
  List.iter (fun j -> j.resume (Ok ())) finished

let rec start_next_system t =
  match Queue.take_opt t.sys_queue with
  | None ->
    t.sys_active <- false;
    t.last_progress <- Engine.now t.engine;
    update_busy t;
    reschedule_users t
  | Some (instr, resume) ->
    t.sys_active <- true;
    Engine.schedule_after t.engine (instr /. t.rate) (fun () ->
        resume (Ok ());
        start_next_system t)

let system t instr =
  if instr < 0.0 then invalid_arg "Cpu.system: negative work";
  Proc.suspend t.engine (fun resume ->
      catch_up_users t;
      Queue.push (instr, resume) t.sys_queue;
      if not t.sys_active then begin
        (* Freeze user progress and start serving the system queue. *)
        t.gen <- t.gen + 1;
        start_next_system t
      end;
      update_busy t)

let user t instr =
  if instr < 0.0 then invalid_arg "Cpu.user: negative work";
  if instr = 0.0 then ()
  else
    Proc.suspend t.engine (fun resume ->
        catch_up_users t;
        t.users <- { rem = instr; resume } :: t.users;
        update_busy t;
        reschedule_users t)

let utilization t =
  Stats.Time_weighted.average t.busy ~now:(Engine.now t.engine)

let reset_stats t =
  update_busy t;
  Stats.Time_weighted.reset t.busy ~now:(Engine.now t.engine);
  update_busy t

let active_users t = List.length t.users

(** CPU model with the paper's two-level priority scheme (Section 4.1):

    - {e system} requests (lock operations, message protocol processing,
      I/O initiation) are served FIFO and have absolute priority;
    - {e user} requests (application object processing) share the
      processor equally (processor sharing) whenever no system request
      is active.

    Costs are expressed in {e instructions}; the CPU converts them to
    simulated time through its MIPS rating.  Both entry points block the
    calling fiber until the work completes. *)

type t

val create : Simcore.Engine.t -> name:string -> mips:float -> t
(** A CPU executing [mips] million instructions per second. *)

val name : t -> string

val system : t -> float -> unit
(** [system t instr] runs [instr] instructions at system priority.
    User-level work in progress is suspended until the system queue
    drains. *)

val user : t -> float -> unit
(** [user t instr] runs [instr] instructions under processor sharing
    with the other active user requests. *)

val utilization : t -> float
(** Fraction of time the CPU was busy (system or user) since creation
    or the last {!reset_stats}. *)

val reset_stats : t -> unit
(** Restart utilization integration (used after warm-up). *)

val active_users : t -> int
(** Number of user-class jobs currently in service (for tests). *)

val attach_timeline : t -> timeline:Telemetry.Timeline.t -> track:int -> unit
(** Record a "busy" span on [track] for every idle->busy->idle cycle
    (detected on the same edges as the utilization integral).  Pure
    observation: no events, no RNG draws. *)

(** Single disk with a FIFO request queue.

    Access times are drawn uniformly between a minimum and a maximum
    (Table 1: 10-30 ms).  Because every requester blocks for its own
    I/O, the FIFO queue is modelled exactly by a "free at" timestamp.

    When a {!Faults.t} with a non-zero stall probability is attached,
    an I/O may suffer transient stalls (bounded retry) before entering
    the service queue; with the fault profile off the behaviour — and
    the service-time random stream — is exactly the fault-free one. *)

type t

val create :
  Simcore.Engine.t ->
  rng:Simcore.Rng.t ->
  ?faults:Faults.t ->
  min_time:float ->
  max_time:float ->
  unit ->
  t

val io : t -> unit
(** Perform one I/O: retry through any injected transient stalls, wait
    for the queue, then for a uniformly distributed service time.
    Blocks the calling fiber. *)

val io_count : t -> int
val utilization : t -> float
val reset_stats : t -> unit

val attach_timeline : t -> timeline:Telemetry.Timeline.t -> track:int -> unit
(** Record one "io" Complete span per I/O on [track], covering the
    [start, finish] service interval (queueing excluded).  The FIFO
    discipline keeps the track's spans non-overlapping. *)

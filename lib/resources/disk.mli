(** Single disk with a FIFO request queue.

    Access times are drawn uniformly between a minimum and a maximum
    (Table 1: 10-30 ms).  Because every requester blocks for its own
    I/O, the FIFO queue is modelled exactly by a "free at" timestamp. *)

type t

val create :
  Simcore.Engine.t -> rng:Simcore.Rng.t -> min_time:float -> max_time:float -> t

val io : t -> unit
(** Perform one I/O: wait for the queue, then for a uniformly
    distributed service time.  Blocks the calling fiber. *)

val io_count : t -> int
val utilization : t -> float
val reset_stats : t -> unit

open Simcore

type t = {
  engine : Engine.t;
  bits_per_sec : float;
  mutable free_at : float;
  msgs : Stats.Counter.t;
  bytes : Stats.Counter.t;
  mutable busy_time : float;
  mutable stats_since : float;
  mutable tl : (Telemetry.Timeline.t * int * int) option;
      (* (timeline, track, "xfer" name): one Complete span per
         transfer, arg = payload bytes; serialized by [free_at]. *)
}

let create engine ~bandwidth_mbits =
  if bandwidth_mbits <= 0.0 then invalid_arg "Network.create: bad bandwidth";
  {
    engine;
    bits_per_sec = bandwidth_mbits *. 1e6;
    free_at = Engine.now engine;
    msgs = Stats.Counter.create ();
    bytes = Stats.Counter.create ();
    busy_time = 0.0;
    stats_since = Engine.now engine;
    tl = None;
  }

let attach_timeline t ~timeline ~track =
  t.tl <- Some (timeline, track, Telemetry.Timeline.intern timeline "xfer")

let transfer t ~bytes =
  if bytes < 0 then invalid_arg "Network.transfer: negative size";
  let now = Engine.now t.engine in
  let service = float_of_int (bytes * 8) /. t.bits_per_sec in
  let start = Float.max now t.free_at in
  let finish = start +. service in
  t.free_at <- finish;
  t.busy_time <- t.busy_time +. service;
  Stats.Counter.incr t.msgs;
  Stats.Counter.add t.bytes bytes;
  (match t.tl with
  | Some (tl, track, name) ->
    Telemetry.Timeline.complete tl ~track ~name ~arg:bytes ~t0:start ~t1:finish ()
  | None -> ());
  Proc.hold t.engine (finish -. now)

let messages t = Stats.Counter.value t.msgs
let bytes_sent t = Stats.Counter.value t.bytes

let utilization t =
  let span = Engine.now t.engine -. t.stats_since in
  if span <= 0.0 then 0.0 else Float.min 1.0 (t.busy_time /. span)

let reset_stats t =
  t.stats_since <- Engine.now t.engine;
  t.busy_time <- Float.max 0.0 (t.free_at -. t.stats_since);
  Stats.Counter.reset t.msgs;
  Stats.Counter.reset t.bytes

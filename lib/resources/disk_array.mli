(** The server's bank of disks: "the disk for each request is chosen
    uniformly from among all of the server's disks" (Section 4.1). *)

type t

val create :
  Simcore.Engine.t ->
  rng:Simcore.Rng.t ->
  ?faults:Faults.t ->
  disks:int ->
  min_time:float ->
  max_time:float ->
  unit ->
  t
(** [faults] (shared by all disks) enables transient stall injection;
    see {!Disk.create}. *)

val io : t -> unit
(** One I/O on a uniformly chosen disk; blocks the calling fiber. *)

val io_count : t -> int
(** Total I/Os across all disks. *)

val utilization : t -> float
(** Mean utilization across the disks. *)

val reset_stats : t -> unit

val attach_timeline :
  t -> timeline:Telemetry.Timeline.t -> tracks:int array -> unit
(** One track per disk, in disk order; raises [Invalid_argument] on a
    length mismatch.  See {!Disk.attach_timeline}. *)

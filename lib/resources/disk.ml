open Simcore

type t = {
  engine : Engine.t;
  rng : Rng.t;
  min_time : float;
  max_time : float;
  faults : Faults.t option;
  mutable free_at : float;
  ios : Stats.Counter.t;
  mutable busy_time : float;
  mutable stats_since : float;
  mutable tl : (Telemetry.Timeline.t * int * int) option;
      (* (timeline, track, "io" name): one Complete span per I/O; the
         [free_at] FIFO already serializes the [start, finish]
         intervals, so the track's spans never overlap. *)
}

let create engine ~rng ?faults ~min_time ~max_time () =
  if min_time < 0.0 || max_time < min_time then
    invalid_arg "Disk.create: bad service time range";
  {
    engine;
    rng;
    min_time;
    max_time;
    faults;
    free_at = Engine.now engine;
    ios = Stats.Counter.create ();
    busy_time = 0.0;
    stats_since = Engine.now engine;
    tl = None;
  }

let attach_timeline t ~timeline ~track =
  t.tl <- Some (timeline, track, Telemetry.Timeline.intern timeline "io")

(* A transient stall delays the request before it enters the service
   queue; the bounded retry re-issues it until the stall clears (or the
   retry budget is spent, after which the I/O proceeds regardless — a
   stall is transient by definition, not a hard failure).  The stall
   draws come from the fault layer's own stream, so the disk's service
   time stream is identical with and without fault injection. *)
let maybe_stall t =
  match t.faults with
  | Some f when Faults.disk_faults f ->
    let p = Faults.profile f in
    let rec retry n =
      if n < p.Faults.disk_stall_retries && Faults.draw_disk_stall f then begin
        Proc.hold t.engine p.Faults.disk_stall_time;
        retry (n + 1)
      end
    in
    retry 0
  | Some _ | None -> ()

let io t =
  maybe_stall t;
  let now = Engine.now t.engine in
  let service = Rng.uniform t.rng ~lo:t.min_time ~hi:t.max_time in
  let start = Float.max now t.free_at in
  let finish = start +. service in
  t.free_at <- finish;
  t.busy_time <- t.busy_time +. service;
  Stats.Counter.incr t.ios;
  (match t.tl with
  | Some (tl, track, name) ->
    Telemetry.Timeline.complete tl ~track ~name ~t0:start ~t1:finish ()
  | None -> ());
  Proc.hold t.engine (finish -. now)

let io_count t = Stats.Counter.value t.ios

let utilization t =
  let span = Engine.now t.engine -. t.stats_since in
  if span <= 0.0 then 0.0 else Float.min 1.0 (t.busy_time /. span)

let reset_stats t =
  t.stats_since <- Engine.now t.engine;
  t.busy_time <- Float.max 0.0 (t.free_at -. t.stats_since);
  Stats.Counter.reset t.ios

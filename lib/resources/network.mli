(** Local area network model: a single FIFO server with a fixed
    bandwidth (Section 4.1).  Protocol-processing CPU costs are charged
    separately by the messaging layer (see {!Oodb_core}); this module
    models only the on-the-wire time and the serialization of
    transmissions. *)

type t

val create : Simcore.Engine.t -> bandwidth_mbits:float -> t

val transfer : t -> bytes:int -> unit
(** Occupy the network for [bytes] (queueing FIFO behind earlier
    transfers); blocks the calling fiber. *)

val messages : t -> int
val bytes_sent : t -> int
val utilization : t -> float
val reset_stats : t -> unit

val attach_timeline : t -> timeline:Telemetry.Timeline.t -> track:int -> unit
(** Record one "xfer" Complete span (arg = payload bytes) per transfer
    on [track], covering the on-the-wire interval. *)

type page = int

module Oid = struct
  type t = { page : page; slot : int }

  let make ~page ~slot =
    if page < 0 || slot < 0 then invalid_arg "Oid.make: negative component";
    { page; slot }

  let compare a b =
    let c = compare a.page b.page in
    if c <> 0 then c else compare a.slot b.slot

  let equal a b = a.page = b.page && a.slot = b.slot
  let hash a = (a.page * 8191) + a.slot
  let pp ppf a = Format.fprintf ppf "%d.%d" a.page a.slot
  let to_int ~objects_per_page a = (a.page * objects_per_page) + a.slot

  let of_int ~objects_per_page i =
    { page = i / objects_per_page; slot = i mod objects_per_page }
end

module Oid_set = Set.Make (Oid)
module Oid_map = Map.Make (Oid)
module Page_set = Set.Make (Int)
module Page_map = Map.Make (Int)
module Int_set = Set.Make (Int)

type page = Ids.page

type outcome = Hit | Miss of (page * bool) option

type frame = { mutable dirty : bool }

type t = { frames : (page, frame) Lru.t }

let create ~capacity = { frames = Lru.create ~capacity }

let resident t p = Lru.mem t.frames p

let access t p =
  match Lru.find t.frames p with
  | Some _ -> Hit
  | None ->
    let evicted = Lru.add t.frames p { dirty = false } in
    Miss (Option.map (fun (victim, frame) -> (victim, frame.dirty)) evicted)

let mark_dirty t p =
  match Lru.peek t.frames p with
  | Some frame -> frame.dirty <- true
  | None -> invalid_arg "Buffer_pool.mark_dirty: page not resident"

let clean t p =
  match Lru.peek t.frames p with
  | Some frame -> frame.dirty <- false
  | None -> ()

let is_dirty t p =
  match Lru.peek t.frames p with Some frame -> frame.dirty | None -> false

let drop t p = ignore (Lru.remove t.frames p)

let reset t =
  let pages = Lru.fold t.frames ~init:[] ~f:(fun acc p _ -> p :: acc) in
  List.iter (fun p -> ignore (Lru.remove t.frames p)) pages
let size t = Lru.size t.frames

let dirty_count t =
  Lru.fold t.frames ~init:0 ~f:(fun acc _ frame ->
      if frame.dirty then acc + 1 else acc)

(** Server buffer pool policy: LRU residency plus dirty-page tracking.

    This module is pure policy — it decides hits, misses, and evictions
    but performs no I/O.  The server kernel drives the actual disk reads
    and write-backs so that their costs land on the simulated resources
    (see {!Oodb_core}). *)

type page = Ids.page

type outcome =
  | Hit
  | Miss of (page * bool) option
      (** Page was absent; it has now been inserted.  The payload is the
          evicted victim, if the pool was full: [(victim, was_dirty)].
          A dirty victim must be written back by the caller. *)

type t

val create : capacity:int -> t
val resident : t -> page -> bool

val access : t -> page -> outcome
(** Reference a page, loading it on a miss (caller pays the disk read)
    and reporting the eviction victim to write back if dirty. *)

val mark_dirty : t -> page -> unit
(** Requires the page to be resident. *)

val clean : t -> page -> unit
val is_dirty : t -> page -> bool
val drop : t -> page -> unit

val reset : t -> unit
(** Empty the pool, dirty frames included — the volatile-memory loss of
    a server crash.  Durable page state is modeled by the version
    tables, so nothing needs writing back. *)

val size : t -> int
val dirty_count : t -> int

(* Doubly-linked recency list plus a hash table from key to node. *)

type ('k, 'v) node = {
  key : 'k;
  mutable value : 'v;
  mutable prev : ('k, 'v) node option; (* towards most recently used *)
  mutable next : ('k, 'v) node option; (* towards least recently used *)
}

type ('k, 'v) t = {
  cap : int;
  table : ('k, ('k, 'v) node) Hashtbl.t;
  mutable head : ('k, 'v) node option; (* most recently used *)
  mutable tail : ('k, 'v) node option; (* least recently used *)
}

let create ~capacity =
  if capacity <= 0 then invalid_arg "Lru.create: capacity must be positive";
  (* Start the table small and let it grow: pre-sizing to [2 * capacity]
     charges every client ~16 bytes per slot of a cache it may never
     fill (the object cache holds thousands of slots), which at 10k+
     clients is gigabytes of idle buckets. *)
  let initial = min 64 (2 * capacity) in
  { cap = capacity; table = Hashtbl.create initial; head = None; tail = None }

let capacity t = t.cap
let size t = Hashtbl.length t.table

let unlink t node =
  (match node.prev with
  | Some p -> p.next <- node.next
  | None -> t.head <- node.next);
  (match node.next with
  | Some n -> n.prev <- node.prev
  | None -> t.tail <- node.prev);
  node.prev <- None;
  node.next <- None

let push_front t node =
  node.next <- t.head;
  node.prev <- None;
  (match t.head with Some h -> h.prev <- Some node | None -> t.tail <- Some node);
  t.head <- Some node

let touch_node t node =
  if t.head != Some node then begin
    unlink t node;
    push_front t node
  end

let find t k =
  match Hashtbl.find_opt t.table k with
  | None -> None
  | Some node ->
    touch_node t node;
    Some node.value

let peek t k =
  match Hashtbl.find_opt t.table k with
  | None -> None
  | Some node -> Some node.value

let mem t k = Hashtbl.mem t.table k

let touch t k =
  match Hashtbl.find_opt t.table k with
  | None -> ()
  | Some node -> touch_node t node

let evict_lru t =
  match t.tail with
  | None -> None
  | Some node ->
    unlink t node;
    Hashtbl.remove t.table node.key;
    Some (node.key, node.value)

let add t k v =
  match Hashtbl.find_opt t.table k with
  | Some node ->
    node.value <- v;
    touch_node t node;
    None
  | None ->
    let node = { key = k; value = v; prev = None; next = None } in
    Hashtbl.replace t.table k node;
    push_front t node;
    if Hashtbl.length t.table > t.cap then evict_lru t else None

let remove t k =
  match Hashtbl.find_opt t.table k with
  | None -> None
  | Some node ->
    unlink t node;
    Hashtbl.remove t.table k;
    Some node.value

let iter t f =
  let rec go = function
    | None -> ()
    | Some node ->
      (* Capture next before f, in case f mutates the cache via value. *)
      let next = node.next in
      f node.key node.value;
      go next
  in
  go t.head

let fold t ~init ~f =
  let acc = ref init in
  iter t (fun k v -> acc := f !acc k v);
  !acc

let to_list t = List.rev (fold t ~init:[] ~f:(fun acc k v -> (k, v) :: acc))

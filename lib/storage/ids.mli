(** Identifiers for the physical and logical data granules.

    The database is an array of fixed-size pages; each page holds
    [objects_per_page] fixed-size objects (Section 3: objects smaller
    than a page; large objects are handled page-at-a-time and are out of
    scope, as in the paper).  An object is addressed physically by its
    page and slot. *)

type page = int
(** Page number in [\[0, database_size)]. *)

module Oid : sig
  type t = { page : page; slot : int }

  val make : page:page -> slot:int -> t
  val compare : t -> t -> int
  val equal : t -> t -> bool
  val hash : t -> int
  val pp : Format.formatter -> t -> unit

  val to_int : objects_per_page:int -> t -> int
  (** Dense encoding: [page * objects_per_page + slot]. *)

  val of_int : objects_per_page:int -> int -> t
end

module Oid_set : Set.S with type elt = Oid.t
module Oid_map : Map.S with type key = Oid.t
module Page_set : Set.S with type elt = page
module Page_map : Map.S with type key = page

module Int_set : Set.S with type elt = int
(** Slot sets within a page. *)

(** Generic LRU cache with a fixed capacity.

    Backs both the client page caches and the server buffer pool (the
    model uses "an LRU page replacement policy", Section 4.1), as well
    as the object-grain cache of the object-server variant.  O(1)
    lookup, insertion, and eviction. *)

type ('k, 'v) t

val create : capacity:int -> ('k, 'v) t
(** [capacity] must be positive. *)

val capacity : _ t -> int
val size : _ t -> int

val find : ('k, 'v) t -> 'k -> 'v option
(** Lookup and mark as most recently used. *)

val peek : ('k, 'v) t -> 'k -> 'v option
(** Lookup without touching recency. *)

val mem : ('k, 'v) t -> 'k -> bool
(** Membership without touching recency. *)

val touch : ('k, 'v) t -> 'k -> unit
(** Mark as most recently used (no-op when absent). *)

val add : ('k, 'v) t -> 'k -> 'v -> ('k * 'v) option
(** Insert (or replace) a binding and mark it most recently used.
    Returns the evicted least-recently-used binding when the insertion
    of a {e new} key overflows the capacity. *)

val remove : ('k, 'v) t -> 'k -> 'v option
(** Remove a binding, returning its value. *)

val iter : ('k, 'v) t -> ('k -> 'v -> unit) -> unit
(** Iterate from most to least recently used. *)

val fold : ('k, 'v) t -> init:'a -> f:('a -> 'k -> 'v -> 'a) -> 'a

val to_list : ('k, 'v) t -> ('k * 'v) list
(** Bindings from most to least recently used. *)

type kind = Instant | Begin | End | Complete

let kind_code = function Instant -> 0 | Begin -> 1 | End -> 2 | Complete -> 3
let kind_of_code = function
  | 0 -> Instant
  | 1 -> Begin
  | 2 -> End
  | _ -> Complete

type t = {
  capacity : int;
  kinds : Bytes.t;
  tracks : int array;
  names : int array;
  args : int array;  (* -1 = absent *)
  t0s : float array;
  t1s : float array;
  mutable written : int;  (* total ever recorded; slot = written mod capacity *)
  mutable track_names : string array;
  mutable num_tracks : int;
  mutable name_table : string array;
  mutable num_names : int;
}

let create ?(capacity = 65536) () =
  if capacity < 1 then invalid_arg "Timeline.create: capacity < 1";
  {
    capacity;
    kinds = Bytes.make capacity '\000';
    tracks = Array.make capacity 0;
    names = Array.make capacity (-1);
    args = Array.make capacity (-1);
    t0s = Array.make capacity 0.0;
    t1s = Array.make capacity 0.0;
    written = 0;
    track_names = Array.make 8 "";
    num_tracks = 0;
    name_table = Array.make 16 "";
    num_names = 0;
  }

let grow a n = Array.append a (Array.make (Array.length a * 2) n)

let define_track t name =
  if t.num_tracks = Array.length t.track_names then
    t.track_names <- grow t.track_names "";
  t.track_names.(t.num_tracks) <- name;
  t.num_tracks <- t.num_tracks + 1;
  t.num_tracks - 1

let num_tracks t = t.num_tracks
let track_name t i = t.track_names.(i)

let intern t name =
  let rec find i = if i >= t.num_names then -1
    else if String.equal t.name_table.(i) name then i
    else find (i + 1)
  in
  let i = find 0 in
  if i >= 0 then i
  else begin
    if t.num_names = Array.length t.name_table then
      t.name_table <- grow t.name_table "";
    t.name_table.(t.num_names) <- name;
    t.num_names <- t.num_names + 1;
    t.num_names - 1
  end

let name_of t i = if i < 0 then "" else t.name_table.(i)

let push t kind ~track ~name ~arg ~t0 ~t1 =
  let s = t.written mod t.capacity in
  Bytes.unsafe_set t.kinds s (Char.unsafe_chr (kind_code kind));
  t.tracks.(s) <- track;
  t.names.(s) <- name;
  t.args.(s) <- arg;
  t.t0s.(s) <- t0;
  t.t1s.(s) <- t1;
  t.written <- t.written + 1

let instant t ~track ~name ?(arg = -1) now =
  push t Instant ~track ~name ~arg ~t0:now ~t1:now

let span_begin t ~track ~name ?(arg = -1) now =
  push t Begin ~track ~name ~arg ~t0:now ~t1:now

let span_end t ~track now =
  push t End ~track ~name:(-1) ~arg:(-1) ~t0:now ~t1:now

let complete t ~track ~name ?(arg = -1) ~t0 ~t1 () =
  push t Complete ~track ~name ~arg ~t0 ~t1

let recorded t = t.written
let length t = if t.written < t.capacity then t.written else t.capacity
let dropped t = if t.written < t.capacity then 0 else t.written - t.capacity

let clear t = t.written <- 0

let iter t f =
  let first = if t.written < t.capacity then 0 else t.written - t.capacity in
  for e = first to t.written - 1 do
    let s = e mod t.capacity in
    f
      ~kind:(kind_of_code (Char.code (Bytes.get t.kinds s)))
      ~track:t.tracks.(s) ~name:t.names.(s) ~arg:t.args.(s) ~t0:t.t0s.(s)
      ~t1:t.t1s.(s)
  done

let last_time t =
  let m = ref 0.0 in
  iter t (fun ~kind:_ ~track:_ ~name:_ ~arg:_ ~t0:_ ~t1 ->
      if t1 > !m then m := t1);
  !m

let dump t =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    (Printf.sprintf "timeline: %d tracks, %d recorded, %d dropped\n"
       t.num_tracks t.written (dropped t));
  iter t (fun ~kind ~track ~name ~arg ~t0 ~t1 ->
      let k, times =
        match kind with
        | Instant -> ("i", Printf.sprintf "%.6f" t0)
        | Begin -> ("b", Printf.sprintf "%.6f" t0)
        | End -> ("e", Printf.sprintf "%.6f" t0)
        | Complete -> ("x", Printf.sprintf "%.6f %.6f" t0 t1)
      in
      let a = if arg < 0 then "" else Printf.sprintf " #%d" arg in
      let n = if name < 0 then "-" else name_of t name in
      Buffer.add_string buf
        (Printf.sprintf "%s %s %s %s%s\n" times (track_name t track) k n a));
  Buffer.contents buf

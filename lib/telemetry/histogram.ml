type t = {
  lo : float;
  buckets_per_decade : int;
  nb : int;  (* regular buckets; counts has nb + 2 slots *)
  counts : int array;
  mutable n : int;
  mutable sum : float;
  mutable vmin : float;
  mutable vmax : float;
}

let create ?(lo = 1e-6) ?(hi = 1e4) ?(buckets_per_decade = 90) () =
  if not (lo > 0.0 && hi > lo) then
    invalid_arg "Histogram.create: need 0 < lo < hi";
  if buckets_per_decade < 1 then
    invalid_arg "Histogram.create: buckets_per_decade < 1";
  let decades = Float.log10 (hi /. lo) in
  let nb = int_of_float (Float.ceil (decades *. float_of_int buckets_per_decade)) in
  {
    lo;
    buckets_per_decade;
    nb;
    counts = Array.make (nb + 2) 0;
    n = 0;
    sum = 0.0;
    vmin = infinity;
    vmax = neg_infinity;
  }

let num_buckets t = t.nb
let growth_factor t = 10.0 ** (1.0 /. float_of_int t.buckets_per_decade)

(* Lower edge of regular bucket [i] (0-based), in closed form.  Bucket i
   covers [lo*10^(i/bpd), lo*10^((i+1)/bpd)). *)
let bucket_lo t i = t.lo *. (10.0 ** (float_of_int i /. float_of_int t.buckets_per_decade))
let bucket_hi t i = t.lo *. (10.0 ** (float_of_int (i + 1) /. float_of_int t.buckets_per_decade))

(* Slot in [counts]: 0 = underflow, 1..nb = regular, nb+1 = overflow. *)
let slot_of t v =
  if v < t.lo then 0
  else
    let i =
      int_of_float (Float.log10 (v /. t.lo) *. float_of_int t.buckets_per_decade)
    in
    let i = if i < 0 then 0 else i in
    if i >= t.nb then t.nb + 1 else i + 1

let record t v =
  if v = v (* drop NaNs *) then begin
    let v = if v < 0.0 then 0.0 else v in
    let s = slot_of t v in
    t.counts.(s) <- t.counts.(s) + 1;
    t.n <- t.n + 1;
    t.sum <- t.sum +. v;
    if v < t.vmin then t.vmin <- v;
    if v > t.vmax then t.vmax <- v
  end

let count t = t.n
let total t = t.sum
let is_empty t = t.n = 0
let mean t = if t.n = 0 then 0.0 else t.sum /. float_of_int t.n
let min_value t = if t.n = 0 then 0.0 else t.vmin
let max_value t = if t.n = 0 then 0.0 else t.vmax

let same_geometry a b =
  a.lo = b.lo && a.buckets_per_decade = b.buckets_per_decade && a.nb = b.nb

let merge ~into src =
  if not (same_geometry into src) then
    invalid_arg "Histogram.merge: bucket geometries differ";
  for i = 0 to Array.length src.counts - 1 do
    into.counts.(i) <- into.counts.(i) + src.counts.(i)
  done;
  into.n <- into.n + src.n;
  into.sum <- into.sum +. src.sum;
  if src.vmin < into.vmin then into.vmin <- src.vmin;
  if src.vmax > into.vmax then into.vmax <- src.vmax

let copy t = { t with counts = Array.copy t.counts }

let reset t =
  Array.fill t.counts 0 (Array.length t.counts) 0;
  t.n <- 0;
  t.sum <- 0.0;
  t.vmin <- infinity;
  t.vmax <- neg_infinity

(* The estimate for rank r is the upper edge of the bucket holding the
   r-th smallest sample: never below the exact quantile, and at most one
   bucket-width (a factor of [growth_factor]) above it.  The underflow
   bucket reports the exact minimum and the overflow bucket the exact
   maximum, so the bound holds for out-of-range samples too. *)
let quantile t q =
  if t.n = 0 then 0.0
  else begin
    let q = if q < 0.0 then 0.0 else if q > 1.0 then 1.0 else q in
    let rank =
      let r = int_of_float (Float.ceil (q *. float_of_int t.n)) in
      if r < 1 then 1 else if r > t.n then t.n else r
    in
    let s = ref 0 and cum = ref 0 in
    (try
       for i = 0 to t.nb + 1 do
         cum := !cum + t.counts.(i);
         if !cum >= rank then begin
           s := i;
           raise Exit
         end
       done
     with Exit -> ());
    if !s = 0 then t.vmin
    else if !s = t.nb + 1 then t.vmax
    else Float.min (bucket_hi t (!s - 1)) t.vmax
  end

let iter_buckets t f =
  if t.counts.(0) > 0 then f ~lo:0.0 ~hi:t.lo ~count:t.counts.(0);
  for i = 0 to t.nb - 1 do
    if t.counts.(i + 1) > 0 then
      f ~lo:(bucket_lo t i) ~hi:(bucket_hi t i) ~count:t.counts.(i + 1)
  done;
  if t.counts.(t.nb + 1) > 0 then
    f ~lo:(bucket_lo t t.nb) ~hi:infinity ~count:t.counts.(t.nb + 1)

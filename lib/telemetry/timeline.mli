(** Ring-buffered binary timeline recorder (a flight recorder).

    Entries are spans ([Begin]/[End] pairs on a track, or a one-shot
    [Complete] with both endpoints known at record time) and point
    [Instant]s, stamped with simulated time and stored
    structure-of-arrays in a fixed-capacity ring: once full, the oldest
    entries are overwritten, so the recorder keeps the *tail* of the
    run at constant memory and never allocates on the record path.
    Event names are interned to small ints up front; the optional
    [arg] carries a transaction/page/byte-count id.

    Recording is pure observation — no RNG, no scheduled events — so a
    run with a timeline attached is byte-identical to one without. *)

type t
type kind = Instant | Begin | End | Complete

val create : ?capacity:int -> unit -> t
(** Default capacity 65536 entries (~2.4 MB). *)

val define_track : t -> string -> int
(** Register a track (one row in the viewer); returns its id.  Track
    ids are dense, in definition order. *)

val num_tracks : t -> int
val track_name : t -> int -> string

val intern : t -> string -> int
(** Intern an event name; call once per hook site, not per event. *)

val name_of : t -> int -> string

val instant : t -> track:int -> name:int -> ?arg:int -> float -> unit
val span_begin : t -> track:int -> name:int -> ?arg:int -> float -> unit

val span_end : t -> track:int -> float -> unit
(** Close the innermost open span on [track]. *)

val complete :
  t -> track:int -> name:int -> ?arg:int -> t0:float -> t1:float -> unit -> unit
(** A whole span in one entry; use when the end time is known when the
    work is issued (disk I/O, network transfer). *)

val recorded : t -> int
(** Total entries ever recorded, including overwritten ones. *)

val length : t -> int
(** Entries currently held (at most the capacity). *)

val dropped : t -> int
(** Entries lost to ring overwrite: [recorded - length]. *)

val clear : t -> unit

val iter :
  t ->
  (kind:kind -> track:int -> name:int -> arg:int -> t0:float -> t1:float -> unit) ->
  unit
(** Surviving entries, oldest first.  [name] and [arg] are [-1] when
    absent; for non-[Complete] kinds [t1 = t0]. *)

val last_time : t -> float
(** Latest timestamp held, 0.0 when empty. *)

val dump : t -> string
(** Compact text form (one line per entry), for goldens and diffing. *)

(** Chrome/Perfetto trace-event exporter for {!Timeline}.

    Produces the JSON trace-event format understood by
    [ui.perfetto.dev] and [chrome://tracing]: one process (pid 1), one
    thread per track (tid = track id + 1, named with [thread_name]
    metadata), simulated seconds exported as trace microseconds.
    Spans become ["B"]/["E"] pairs, one-shot spans ["X"] complete
    events, instants ["i"].

    [End] entries whose [Begin] was lost to ring overwrite are dropped;
    spans still open when the recording stops are closed with synthetic
    ends at [close_at] (default: the latest timestamp recorded), so the
    emitted trace always has matched begin/end per track. *)

val to_json : ?process_name:string -> ?close_at:float -> Timeline.t -> string

val write_file :
  ?process_name:string -> ?close_at:float -> path:string -> Timeline.t -> int
(** Returns the number of orphan [End] entries dropped (spans whose
    beginning was overwritten by ring wrap). *)

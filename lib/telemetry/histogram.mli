(** Mergeable log-bucketed latency histogram (HDR-style).

    Regular bucket [i] covers [[lo*10^(i/bpd), lo*10^((i+1)/bpd))] in
    closed form, so a quantile estimate is off from the exact sample
    quantile by at most one bucket — a relative error bounded by
    [growth_factor t -. 1.0].  Samples below [lo] land in an underflow
    bucket whose quantile estimate is the exact recorded minimum;
    samples at or above [hi] land in an overflow bucket reporting the
    exact maximum, so the error bound holds for every sample.

    Recording touches one array slot plus four scalar fields: no
    allocation, no RNG, no events — safe to leave always-on without
    perturbing a simulation.  Merging adds bucket counts elementwise,
    which is associative, commutative, and invariant under record
    order (the floating-point [total] may differ in the last ulp
    across merge orders; counts, extrema, and quantiles cannot). *)

type t

val create : ?lo:float -> ?hi:float -> ?buckets_per_decade:int -> unit -> t
(** Defaults: [lo = 1e-6] (1 us), [hi = 1e4] seconds, 90 buckets per
    decade (2.6% relative quantile error).  Raises [Invalid_argument]
    unless [0 < lo < hi] and [buckets_per_decade >= 1]. *)

val record : t -> float -> unit
(** Record one sample.  Negative samples clamp to 0 (underflow
    bucket); NaNs are dropped. *)

val merge : into:t -> t -> unit
(** Add [src]'s buckets into [into].  Raises [Invalid_argument] when
    the two bucket geometries differ. *)

val copy : t -> t
val reset : t -> unit

val quantile : t -> float -> float
(** [quantile t q] for [q] in [[0,1]]: the upper edge of the bucket
    containing the sample of rank [ceil (q * n)] (clamped to the exact
    maximum).  0.0 on an empty histogram. *)

val count : t -> int
val total : t -> float
val mean : t -> float
val min_value : t -> float
val max_value : t -> float
val is_empty : t -> bool
val num_buckets : t -> int
val growth_factor : t -> float

val bucket_lo : t -> int -> float
(** Closed-form lower edge of regular bucket [i] (0-based). *)

val bucket_hi : t -> int -> float

val iter_buckets : t -> (lo:float -> hi:float -> count:int -> unit) -> unit
(** Visit non-empty buckets in increasing value order, including the
    underflow ([lo = 0.0]) and overflow ([hi = infinity]) buckets. *)

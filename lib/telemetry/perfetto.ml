(* Chrome trace-event JSON ("JSON Array Format" variant with an object
   wrapper), loadable by Perfetto and chrome://tracing.  One simulated
   second maps to one trace second (timestamps are microseconds).  Each
   timeline track becomes a thread of pid 1, named via "thread_name"
   metadata.

   Ring overwrite can orphan an [End] whose [Begin] was dropped, and
   the run can finish with spans still open (a transaction in flight, a
   busy CPU).  Orphan ends are dropped (counted in [`dropped_ends]);
   open begins are closed with synthetic ends at [close_at]. *)

let escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let us t = t *. 1e6

let to_buffer ?(process_name = "oodbsim") ?close_at tl buf =
  let close_at =
    match close_at with Some c -> c | None -> Timeline.last_time tl
  in
  Buffer.add_string buf "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  let first = ref true in
  let emit line =
    if !first then first := false else Buffer.add_string buf ",\n";
    Buffer.add_string buf line
  in
  emit
    (Printf.sprintf
       "{\"ph\":\"M\",\"pid\":1,\"name\":\"process_name\",\"args\":{\"name\":\"%s\"}}"
       (escape process_name));
  for trk = 0 to Timeline.num_tracks tl - 1 do
    emit
      (Printf.sprintf
         "{\"ph\":\"M\",\"pid\":1,\"tid\":%d,\"name\":\"thread_name\",\"args\":{\"name\":\"%s\"}}"
         (trk + 1)
         (escape (Timeline.track_name tl trk)));
    (* sort_index pins viewer row order to track definition order *)
    emit
      (Printf.sprintf
         "{\"ph\":\"M\",\"pid\":1,\"tid\":%d,\"name\":\"thread_sort_index\",\"args\":{\"sort_index\":%d}}"
         (trk + 1) trk)
  done;
  let depth = Array.make (max 1 (Timeline.num_tracks tl)) 0 in
  let dropped_ends = ref 0 in
  let args_field arg =
    if arg < 0 then "" else Printf.sprintf ",\"args\":{\"id\":%d}" arg
  in
  Timeline.iter tl (fun ~kind ~track ~name ~arg ~t0 ~t1 ->
      let tid = track + 1 in
      match kind with
      | Timeline.Instant ->
        emit
          (Printf.sprintf
             "{\"ph\":\"i\",\"pid\":1,\"tid\":%d,\"ts\":%.3f,\"s\":\"t\",\"name\":\"%s\"%s}"
             tid (us t0)
             (escape (Timeline.name_of tl name))
             (args_field arg))
      | Timeline.Begin ->
        depth.(track) <- depth.(track) + 1;
        emit
          (Printf.sprintf
             "{\"ph\":\"B\",\"pid\":1,\"tid\":%d,\"ts\":%.3f,\"name\":\"%s\"%s}"
             tid (us t0)
             (escape (Timeline.name_of tl name))
             (args_field arg))
      | Timeline.End ->
        if depth.(track) = 0 then incr dropped_ends
        else begin
          depth.(track) <- depth.(track) - 1;
          emit (Printf.sprintf "{\"ph\":\"E\",\"pid\":1,\"tid\":%d,\"ts\":%.3f}" tid (us t0))
        end
      | Timeline.Complete ->
        emit
          (Printf.sprintf
             "{\"ph\":\"X\",\"pid\":1,\"tid\":%d,\"ts\":%.3f,\"dur\":%.3f,\"name\":\"%s\"%s}"
             tid (us t0)
             (us (t1 -. t0))
             (escape (Timeline.name_of tl name))
             (args_field arg)));
  (* Close spans still open at the end of the recording. *)
  Array.iteri
    (fun track d ->
      for _ = 1 to d do
        emit
          (Printf.sprintf "{\"ph\":\"E\",\"pid\":1,\"tid\":%d,\"ts\":%.3f}"
             (track + 1) (us close_at))
      done)
    depth;
  Buffer.add_string buf "\n]}\n";
  !dropped_ends

let to_json ?process_name ?close_at tl =
  let buf = Buffer.create 65536 in
  let _dropped = to_buffer ?process_name ?close_at tl buf in
  Buffer.contents buf

let write_file ?process_name ?close_at ~path tl =
  let buf = Buffer.create 65536 in
  let dropped = to_buffer ?process_name ?close_at tl buf in
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> Buffer.output_buffer oc buf);
  dropped

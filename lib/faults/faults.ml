open Simcore

type profile = {
  crash_rate : float;
  restart_delay : float;
  msg_loss_prob : float;
  msg_dup_prob : float;
  retrans_timeout : float;
  retrans_backoff : float;
  retrans_max_timeout : float;
  retrans_giveaway : int;
  disk_stall_prob : float;
  disk_stall_time : float;
  disk_stall_retries : int;
  srv_crash_rate : float;
  srv_restart_delay : float;
  log_flush_interval : float;
}

let off =
  {
    crash_rate = 0.0;
    restart_delay = 1.0;
    msg_loss_prob = 0.0;
    msg_dup_prob = 0.0;
    retrans_timeout = 0.02;
    retrans_backoff = 2.0;
    retrans_max_timeout = 0.5;
    retrans_giveaway = 8;
    disk_stall_prob = 0.0;
    disk_stall_time = 0.02;
    disk_stall_retries = 3;
    srv_crash_rate = 0.0;
    srv_restart_delay = 2.0;
    log_flush_interval = 1.0;
  }

let storm ~rate =
  {
    off with
    crash_rate = rate;
    msg_loss_prob = rate;
    msg_dup_prob = rate /. 2.0;
    disk_stall_prob = rate;
    srv_crash_rate = rate /. 4.0;
  }

let validate p =
  let check b what = if not b then invalid_arg ("Faults: bad " ^ what) in
  check (p.crash_rate >= 0.0) "crash_rate";
  check (p.restart_delay >= 0.0) "restart_delay";
  check (p.msg_loss_prob >= 0.0 && p.msg_loss_prob < 1.0) "msg_loss_prob";
  check (p.msg_dup_prob >= 0.0 && p.msg_dup_prob <= 1.0) "msg_dup_prob";
  check (p.retrans_timeout > 0.0) "retrans_timeout";
  check (p.retrans_backoff >= 1.0) "retrans_backoff";
  check (p.retrans_max_timeout >= p.retrans_timeout) "retrans_max_timeout";
  check (p.retrans_giveaway >= 1) "retrans_giveaway";
  check (p.disk_stall_prob >= 0.0 && p.disk_stall_prob < 1.0)
    "disk_stall_prob";
  check (p.disk_stall_time >= 0.0) "disk_stall_time";
  check (p.disk_stall_retries >= 0) "disk_stall_retries";
  check (p.srv_crash_rate >= 0.0) "srv_crash_rate";
  check (p.srv_restart_delay >= 0.0) "srv_restart_delay";
  check (p.log_flush_interval > 0.0) "log_flush_interval"

let is_off p =
  p.crash_rate = 0.0 && p.msg_loss_prob = 0.0 && p.msg_dup_prob = 0.0
  && p.disk_stall_prob = 0.0 && p.srv_crash_rate = 0.0

type t = {
  profile : profile;
  crash_rng : Rng.t;
  msg_rng : Rng.t;
  disk_rng : Rng.t;
  srv_rng : Rng.t;
  mutable hook : (string -> unit) option;
  mutable crashes : int;
  mutable crash_aborts : int;
  mutable msg_losses : int;
  mutable msg_dups : int;
  mutable retransmits : int;
  mutable disk_stalls : int;
  mutable srv_crashes : int;
  mutable srv_giveaways : int;
  recovery : Stats.Welford.t;
  srv_recovery : Stats.Welford.t;
}

let create ~profile ~seed =
  validate profile;
  let stream key = Rng.create ~seed:(Rng.key_seed ~seed ~key) in
  {
    profile;
    crash_rng = stream "faults/crash";
    msg_rng = stream "faults/msg";
    disk_rng = stream "faults/disk";
    srv_rng = stream "faults/srv";
    hook = None;
    crashes = 0;
    crash_aborts = 0;
    msg_losses = 0;
    msg_dups = 0;
    retransmits = 0;
    disk_stalls = 0;
    srv_crashes = 0;
    srv_giveaways = 0;
    recovery = Stats.Welford.create ();
    srv_recovery = Stats.Welford.create ();
  }

let profile t = t.profile
let enabled t = not (is_off t.profile)
let crash_faults t = t.profile.crash_rate > 0.0
let srv_faults t = t.profile.srv_crash_rate > 0.0

let message_faults t =
  t.profile.msg_loss_prob > 0.0 || t.profile.msg_dup_prob > 0.0

let disk_faults t = t.profile.disk_stall_prob > 0.0
let set_hook t f = t.hook <- Some f
let run_hook t context = match t.hook with Some f -> f context | None -> ()

let next_crash_delay t =
  if t.profile.crash_rate <= 0.0 then
    invalid_arg "Faults.next_crash_delay: crash_rate is zero";
  Rng.exponential t.crash_rng ~mean:(1.0 /. t.profile.crash_rate)

let next_srv_crash_delay t =
  if t.profile.srv_crash_rate <= 0.0 then
    invalid_arg "Faults.next_srv_crash_delay: srv_crash_rate is zero";
  Rng.exponential t.srv_rng ~mean:(1.0 /. t.profile.srv_crash_rate)

let draw_msg_loss t =
  t.profile.msg_loss_prob > 0.0
  && Rng.bool t.msg_rng ~p:t.profile.msg_loss_prob
  && begin
       t.msg_losses <- t.msg_losses + 1;
       run_hook t "message-loss";
       true
     end

let draw_msg_dup t =
  t.profile.msg_dup_prob > 0.0
  && Rng.bool t.msg_rng ~p:t.profile.msg_dup_prob
  && begin
       t.msg_dups <- t.msg_dups + 1;
       run_hook t "message-duplicate";
       true
     end

let draw_disk_stall t =
  t.profile.disk_stall_prob > 0.0
  && Rng.bool t.disk_rng ~p:t.profile.disk_stall_prob
  && begin
       t.disk_stalls <- t.disk_stalls + 1;
       run_hook t "disk-stall";
       true
     end

let note_crash t = t.crashes <- t.crashes + 1
let note_crash_abort t = t.crash_aborts <- t.crash_aborts + 1
let note_retransmit t = t.retransmits <- t.retransmits + 1
let note_recovery t ~latency = Stats.Welford.add t.recovery latency
let note_srv_crash t = t.srv_crashes <- t.srv_crashes + 1
let note_srv_giveaway t = t.srv_giveaways <- t.srv_giveaways + 1
let note_srv_recovery t ~latency = Stats.Welford.add t.srv_recovery latency

let reset_counters t =
  t.crashes <- 0;
  t.crash_aborts <- 0;
  t.msg_losses <- 0;
  t.msg_dups <- 0;
  t.retransmits <- 0;
  t.disk_stalls <- 0;
  t.srv_crashes <- 0;
  t.srv_giveaways <- 0;
  Stats.Welford.reset t.recovery;
  Stats.Welford.reset t.srv_recovery

let crashes t = t.crashes
let crash_aborts t = t.crash_aborts
let msg_losses t = t.msg_losses
let msg_dups t = t.msg_dups
let retransmits t = t.retransmits
let disk_stalls t = t.disk_stalls
let srv_crashes t = t.srv_crashes
let srv_giveaways t = t.srv_giveaways

let injected t =
  t.crashes + t.msg_losses + t.msg_dups + t.disk_stalls + t.srv_crashes

let recoveries t = Stats.Welford.count t.recovery
let recovery_mean t = Stats.Welford.mean t.recovery
let srv_recoveries t = Stats.Welford.count t.srv_recovery
let srv_recovery_mean t = Stats.Welford.mean t.srv_recovery

(** Deterministic fault injection.

    Three fault classes stress the sharing protocols beyond the paper's
    operating envelope (which assumes immortal clients, a lossless FIFO
    network, and perfect disks):

    - {e client crash/restart}: exponential inter-crash times per
      client; on crash the client loses its buffer pool and in-flight
      transaction, and the server reclaims its callbacks, locks and
      copy-table registrations (the orchestration lives in
      [Oodb_core.Crash]);
    - {e message loss and duplication}: a lost message is retransmitted
      after a timeout with exponential backoff; a duplicate costs the
      receiver protocol CPU and is discarded idempotently
      ([Oodb_core.Netlayer]);
    - {e transient disk stalls} with bounded retry ([Resources.Disk]).

    Every draw comes from streams derived with {!Simcore.Rng.key_seed},
    so a fault schedule is a pure function of the profile and the run's
    seed — fully reproducible, independent of worker scheduling.  All
    rates default to zero ({!off}); with the profile off, no stream is
    ever consulted and no event is scheduled, so the fault layer is
    byte-for-byte invisible to existing experiments. *)

type profile = {
  crash_rate : float;
      (** mean crashes per second per client (exponential); 0 = never *)
  restart_delay : float;  (** downtime before a cold restart, seconds *)
  msg_loss_prob : float;  (** probability a message transmission is lost *)
  msg_dup_prob : float;  (** probability a delivered message is duplicated *)
  retrans_timeout : float;  (** initial retransmission timeout, seconds *)
  retrans_backoff : float;  (** timeout multiplier per retransmission (>= 1) *)
  retrans_max_timeout : float;  (** backoff cap, seconds *)
  retrans_giveaway : int;
      (** attempts at an unresponsive (down) server before the sender
          gives the message away and aborts locally (>= 1) *)
  disk_stall_prob : float;  (** probability an I/O stalls before service *)
  disk_stall_time : float;  (** duration of one stall, seconds *)
  disk_stall_retries : int;  (** bound on consecutive stalls of one I/O *)
  srv_crash_rate : float;
      (** mean crashes per second per server (exponential); 0 = never *)
  srv_restart_delay : float;
      (** server downtime before recovery begins, seconds *)
  log_flush_interval : float;
      (** redo-log checkpoint cadence: bounds the log prefix replayed on
          restart (committed work is forced at commit and never lost) *)
}

val off : profile
(** All rates zero (no faults); timeout/delay parameters at sane
    defaults so a profile can be built with [{ off with ... }]. *)

val storm : rate:float -> profile
(** A convenience profile exercising every fault class at once: client
    crash, loss and stall probability [rate], duplication [rate /. 2],
    server crash rate [rate /. 4] (servers are rarer, heavier events). *)

val validate : profile -> unit
(** Raises [Invalid_argument] on out-of-range settings. *)

val is_off : profile -> bool

type t
(** Instantiated fault state for one simulation run: the per-class
    random streams, the injection counters, and the audit hook. *)

val create : profile:profile -> seed:int -> t
(** The per-class streams derive from [seed] via {!Simcore.Rng.key_seed}
    with distinct keys, so they are independent of each other and of
    every other stream in the simulation. *)

val profile : t -> profile
val enabled : t -> bool
val crash_faults : t -> bool
val srv_faults : t -> bool
val message_faults : t -> bool
val disk_faults : t -> bool

val set_hook : t -> (string -> unit) -> unit
(** Register the audit hook, invoked with a context string after every
    injected fault (loss/duplicate/stall at draw time; crash after the
    server has reclaimed the crashed client's state). *)

val run_hook : t -> string -> unit
(** Invoke the hook explicitly (the crash orchestrator calls this once
    reclamation is complete). *)

(** {2 Draws}

    Each draw consults the class's stream; draws that inject a fault
    bump the matching counter.  Loss/duplicate/stall draws also fire
    the audit hook. *)

val next_crash_delay : t -> float
(** Next exponential inter-crash delay ([1 /. crash_rate] mean).
    Must not be called when [crash_rate = 0]. *)

val next_srv_crash_delay : t -> float
(** Next exponential inter-crash delay for a server ([1 /.
    srv_crash_rate] mean).  Must not be called when
    [srv_crash_rate = 0]. *)

val draw_msg_loss : t -> bool
val draw_msg_dup : t -> bool
val draw_disk_stall : t -> bool

(** {2 Bookkeeping} *)

val note_crash : t -> unit
val note_crash_abort : t -> unit
(** A crash killed an in-flight transaction. *)

val note_retransmit : t -> unit
val note_recovery : t -> latency:float -> unit
(** Crash-to-first-commit latency of a recovered client. *)

val note_srv_crash : t -> unit
val note_srv_giveaway : t -> unit
(** A sender exhausted [retrans_giveaway] attempts at a down server. *)

val note_srv_recovery : t -> latency:float -> unit
(** Crash-to-reopen latency of a recovered server (replay + copy-table
    reconstruction included). *)

val reset_counters : t -> unit
(** Clear counters and recovery statistics (end of warm-up).  Streams
    and the hook are untouched. *)

val crashes : t -> int
val crash_aborts : t -> int
val msg_losses : t -> int
val msg_dups : t -> int
val retransmits : t -> int
val disk_stalls : t -> int
val srv_crashes : t -> int
val srv_giveaways : t -> int

val injected : t -> int
(** Total faults injected: client crashes + losses + duplicates +
    stalls + server crashes (retransmissions and giveaways are
    consequences, not faults). *)

val recoveries : t -> int
val recovery_mean : t -> float
(** Mean crash-to-first-commit latency; 0 when no client recovered. *)

val srv_recoveries : t -> int
val srv_recovery_mean : t -> float
(** Mean server crash-to-reopen latency; 0 when no server recovered. *)

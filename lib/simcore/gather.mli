(** Collect a fixed number of asynchronous results.

    The server uses this to wait for the acknowledgements of a batch of
    callback requests: it creates a gather for [n] expected replies,
    hands {!add} to each callback, and blocks in {!wait} until all have
    arrived.  With [n = 0], {!wait} returns immediately. *)

type 'a t

val create : Engine.t -> int -> 'a t
(** [create engine n] expects exactly [n] results. *)

val add : 'a t -> 'a -> unit
(** Contribute one result.  Raises [Invalid_argument] beyond [n]. *)

val wait : 'a t -> 'a list
(** Block until all [n] results arrived; returns them in arrival
    order. *)

val arrived : 'a t -> int

(** Array-based binary min-heap.

    Used by {!Engine} as the pending-event queue, but generic over the
    element type: the ordering is fixed at creation time by [cmp].
    Elements that compare equal are popped in an unspecified order, so
    callers that need a stable order (as the simulation engine does) must
    encode a tie-breaker in the element itself. *)

type 'a t

val create : ?capacity:int -> cmp:('a -> 'a -> int) -> unit -> 'a t
(** [create ~cmp ()] is an empty heap ordered by [cmp] (smallest first).
    [capacity] (default 64, must be positive) pre-sizes the backing
    array's first allocation, which happens at the first push; the heap
    grows by doubling as needed. *)

val size : 'a t -> int
(** Number of elements currently stored. *)

val is_empty : 'a t -> bool

val push : 'a t -> 'a -> unit
(** Insert an element. O(log n). *)

val peek : 'a t -> 'a option
(** Smallest element, without removing it. *)

val pop : 'a t -> 'a option
(** Remove and return the smallest element. O(log n). *)

val clear : 'a t -> unit
(** Drop all elements (capacity is retained). *)

(** Process-oriented simulation on top of {!Engine}, using OCaml 5
    effect handlers.

    A process ("fiber") is an ordinary OCaml function that may block on
    simulated time ({!hold}) or on synchronization objects ({!Ivar},
    {!Mailbox}, or a raw {!suspend}).  This recreates the programming
    model of DeNet, in which the paper's simulator was written: client
    and server activities are written as straight-line code that holds
    resources and blocks on locks.

    Concurrency discipline: the simulation is single-threaded; a fiber
    runs without preemption until it blocks, so all state updates between
    two blocking points are atomic.  Resumptions requested by a resumer
    are deferred through the engine (at the current simulated time), so
    waking a fiber never re-enters the waker's critical section. *)

type 'a resumer = ('a, exn) result -> unit
(** Completion callback for a suspended fiber.  Calling it with [Ok v]
    resumes the fiber with value [v]; [Error e] raises [e] inside the
    fiber (used to abort transactions blocked in lock queues).  A
    resumer must be invoked exactly once; a second call raises
    [Invalid_argument]. *)

exception Cancelled
(** Raised inside a fiber whose pending wait was cancelled (for example
    a transaction chosen as a deadlock victim).  Protocol code catches
    it at the transaction top level. *)

val spawn : Engine.t -> (unit -> unit) -> unit
(** [spawn engine f] starts fiber [f] at the current simulated time (it
    begins running when the engine processes its start event).  An
    exception escaping [f] other than a normal return is re-raised on
    the engine loop, aborting the simulation: fibers are expected to
    handle their own domain errors. *)

val suspend : Engine.t -> ('a resumer -> unit) -> 'a
(** [suspend engine register] blocks the calling fiber.  [register] is
    called immediately with the fiber's resumer, which it must stash
    somewhere (a wait queue, a pending-callback table, ...).  Must be
    called from within a fiber. *)

type 'a waiter
(** A suspended fiber awaiting a value of type ['a]: the continuation,
    result slot and resumption thunk fused into one record.  The
    allocation-lean variant of a {!resumer} — resuming a waiter builds
    no closure, it stores the result and enqueues a thunk allocated at
    suspension time.  Used by the hot synchronization primitives
    ({!Mailbox}); {!suspend} remains for code that wants a plain
    callback. *)

val suspend_waiter : Engine.t -> ('a waiter -> unit) -> 'a
(** Like {!suspend}, but [register] receives the waiter itself; stash
    it and later pass it to {!resume} exactly once. *)

val resume : 'a waiter -> ('a, exn) result -> unit
(** Resume a waiter: the fiber continues with [Ok v], or [Error e]
    raised at its suspension point, at the current simulated time.  A
    second resume raises [Invalid_argument]. *)

val hold : Engine.t -> float -> unit
(** Block the calling fiber for [dt] seconds of simulated time. *)

val yield : Engine.t -> unit
(** Block until all other events scheduled for the current instant have
    run. *)

(** {2 Mailbox core}

    The implementation behind {!Mailbox}, fused with the effect handler
    so a blocked receiver is parked as a bare continuation: the hottest
    suspension path in the simulator builds no waiter and no closure on
    the receive side.  Use the {!Mailbox} wrapper; these are exposed
    only for it. *)

type 'a mbox

val mbox_create : Engine.t -> 'a mbox
val mbox_send : 'a mbox -> 'a -> unit
val mbox_recv : 'a mbox -> 'a
val mbox_length : 'a mbox -> int

type 'a state = Empty of 'a Proc.resumer list | Full of 'a

type 'a t = { engine : Engine.t; mutable state : 'a state }

let create engine = { engine; state = Empty [] }

let fill t v =
  match t.state with
  | Full _ -> invalid_arg "Ivar.fill: already full"
  | Empty waiters ->
    t.state <- Full v;
    List.iter (fun resume -> resume (Ok v)) (List.rev waiters)

let read t =
  match t.state with
  | Full v -> v
  | Empty _ ->
    Proc.suspend t.engine (fun resume ->
        match t.state with
        | Full _ -> assert false
        | Empty ws -> t.state <- Empty (resume :: ws))

let is_full t = match t.state with Full _ -> true | Empty _ -> false
let peek t = match t.state with Full v -> Some v | Empty _ -> None

type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create ~seed = { state = mix64 (Int64.of_int seed) }

let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let split t =
  let s = bits64 t in
  { state = mix64 s }

let copy t = { state = t.state }

let key_seed ~seed ~key =
  (* Fold the key bytes through the splitmix64 finalizer so that the
     derived seed is a pure function of (seed, key): independent of any
     generator state and of the order in which seeds are derived. *)
  let h = ref (mix64 (Int64.of_int seed)) in
  String.iter
    (fun c ->
      h :=
        mix64
          (Int64.add
             (Int64.logxor !h (Int64.of_int (Char.code c)))
             golden_gamma))
    key;
  (* Non-negative 62-bit int, like [bits]. *)
  Int64.to_int (Int64.shift_right_logical !h 2)

(* Non-negative 62-bit int from the top bits. *)
let bits t = Int64.to_int (Int64.shift_right_logical (bits64 t) 2)

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Rejection sampling to avoid modulo bias. *)
  let rec go () =
    let r = bits t in
    let v = r mod bound in
    if r - v > (max_int - bound) + 1 then go () else v
  in
  go ()

let int_in t ~lo ~hi =
  if hi < lo then invalid_arg "Rng.int_in: empty range";
  lo + int t (hi - lo + 1)

let float t bound =
  (* 53 random bits scaled into [0, bound). *)
  let r = Int64.to_int (Int64.shift_right_logical (bits64 t) 11) in
  float_of_int r /. 9007199254740992.0 *. bound

let uniform t ~lo ~hi = lo +. float t (hi -. lo)

let exponential t ~mean =
  let u = float t 1.0 in
  (* Guard against log 0. *)
  let u = if u <= 0.0 then epsilon_float else u in
  -.mean *. log u

let bool t ~p = float t 1.0 < p

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let pick t arr =
  if Array.length arr = 0 then invalid_arg "Rng.pick: empty array";
  arr.(int t (Array.length arr))

let sample_without_replacement t ~k ~n =
  if k > n then invalid_arg "Rng.sample_without_replacement: k > n";
  if k = 0 then [||]
  else if 2 * k >= n then begin
    (* Dense case: partial Fisher-Yates over the full index range. *)
    let all = Array.init n (fun i -> i) in
    for i = 0 to k - 1 do
      let j = i + int t (n - i) in
      let tmp = all.(i) in
      all.(i) <- all.(j);
      all.(j) <- tmp
    done;
    Array.sub all 0 k
  end
  else begin
    (* Sparse case: rejection with a hash set. *)
    let seen = Hashtbl.create (2 * k) in
    let out = Array.make k 0 in
    let filled = ref 0 in
    while !filled < k do
      let v = int t n in
      if not (Hashtbl.mem seen v) then begin
        Hashtbl.add seen v ();
        out.(!filled) <- v;
        incr filled
      end
    done;
    out
  end

module Welford = struct
  type t = {
    mutable n : int;
    mutable mean : float;
    mutable m2 : float;
    mutable min : float;
    mutable max : float;
    mutable sum : float;
  }

  let create () =
    { n = 0; mean = 0.0; m2 = 0.0; min = infinity; max = neg_infinity; sum = 0.0 }

  let add t x =
    t.n <- t.n + 1;
    let delta = x -. t.mean in
    t.mean <- t.mean +. (delta /. float_of_int t.n);
    t.m2 <- t.m2 +. (delta *. (x -. t.mean));
    if x < t.min then t.min <- x;
    if x > t.max then t.max <- x;
    t.sum <- t.sum +. x

  let count t = t.n
  let mean t = if t.n = 0 then 0.0 else t.mean
  let variance t = if t.n < 2 then 0.0 else t.m2 /. float_of_int (t.n - 1)
  let stddev t = sqrt (variance t)
  let min t = t.min
  let max t = t.max
  let sum t = t.sum

  let reset t =
    t.n <- 0;
    t.mean <- 0.0;
    t.m2 <- 0.0;
    t.min <- infinity;
    t.max <- neg_infinity;
    t.sum <- 0.0
end

module Counter = struct
  type t = { mutable v : int }

  let create () = { v = 0 }
  let incr t = t.v <- t.v + 1
  let add t n = t.v <- t.v + n
  let value t = t.v
  let reset t = t.v <- 0
end

module Time_weighted = struct
  type t = {
    mutable start : float;
    mutable last : float;
    mutable value : float;
    mutable integral : float;
  }

  let create ~now = { start = now; last = now; value = 0.0; integral = 0.0 }

  let update t ~now v =
    t.integral <- t.integral +. (t.value *. (now -. t.last));
    t.last <- now;
    t.value <- v

  let average t ~now =
    let span = now -. t.start in
    if span <= 0.0 then 0.0
    else (t.integral +. (t.value *. (now -. t.last))) /. span

  let reset t ~now =
    t.start <- now;
    t.last <- now;
    t.integral <- 0.0
end

(* Two-sided 90% Student-t critical values (0.95 quantile) for small df,
   then the normal approximation. *)
let t90_table =
  [| 6.314; 2.920; 2.353; 2.132; 2.015; 1.943; 1.895; 1.860; 1.833; 1.812;
     1.796; 1.782; 1.771; 1.761; 1.753; 1.746; 1.740; 1.734; 1.729; 1.725;
     1.721; 1.717; 1.714; 1.711; 1.708; 1.706; 1.703; 1.701; 1.699; 1.697 |]

let t90 df =
  if df <= 0 then infinity
  else if df <= Array.length t90_table then t90_table.(df - 1)
  else 1.645

module Batch_means = struct
  type t = {
    batch_size : int;
    batch_acc : Welford.t;  (* observations of the current partial batch *)
    batches : Welford.t;    (* one sample per complete batch *)
    raw : Welford.t;        (* every observation, for the fallback mean *)
  }

  let create ~batch_size =
    if batch_size <= 0 then invalid_arg "Batch_means.create: batch_size";
    {
      batch_size;
      batch_acc = Welford.create ();
      batches = Welford.create ();
      raw = Welford.create ();
    }

  let add t x =
    Welford.add t.raw x;
    Welford.add t.batch_acc x;
    if Welford.count t.batch_acc >= t.batch_size then begin
      Welford.add t.batches (Welford.mean t.batch_acc);
      Welford.reset t.batch_acc
    end

  let num_batches t = Welford.count t.batches

  let mean t =
    if num_batches t > 0 then Welford.mean t.batches else Welford.mean t.raw

  let ci90_half_width t =
    let n = num_batches t in
    if n < 2 then infinity
    else t90 (n - 1) *. Welford.stddev t.batches /. sqrt (float_of_int n)

  let relative_ci90 t =
    let m = abs_float (mean t) in
    if m = 0.0 then infinity else ci90_half_width t /. m
end

(** Statistics accumulators for simulation output analysis.

    The paper validates its results with 90% confidence intervals on
    transaction response times computed by the method of batch means
    (Section 5.1); {!Batch_means} implements exactly that.  The other
    accumulators support the auxiliary metrics (utilizations, message
    counts, wait times). *)

module Welford : sig
  (** Streaming mean/variance in one pass (Welford's algorithm). *)

  type t

  val create : unit -> t
  val add : t -> float -> unit
  val count : t -> int
  val mean : t -> float
  (** 0.0 when empty. *)

  val variance : t -> float
  (** Sample variance (n-1 denominator); 0.0 with fewer than 2 samples. *)

  val stddev : t -> float
  val min : t -> float
  (** +inf when empty. *)

  val max : t -> float
  (** -inf when empty. *)

  val sum : t -> float
  val reset : t -> unit
end

module Counter : sig
  (** A named monotonic event counter. *)

  type t

  val create : unit -> t
  val incr : t -> unit
  val add : t -> int -> unit
  val value : t -> int
  val reset : t -> unit
end

module Time_weighted : sig
  (** Time-weighted average of a piecewise-constant signal, e.g. the
      number of busy servers of a resource, integrated over simulated
      time.  Feeding a 0/1 signal yields a utilization. *)

  type t

  val create : now:float -> t

  val update : t -> now:float -> float -> unit
  (** [update t ~now v]: the signal takes value [v] from [now] on. *)

  val average : t -> now:float -> float
  (** Average of the signal from creation (or last [reset]) to [now]. *)

  val reset : t -> now:float -> unit
  (** Restart integration at [now], keeping the current signal value. *)
end

module Batch_means : sig
  (** Confidence intervals for steady-state means from a single run.

      Observations are grouped into fixed-size batches; the batch means
      are treated as (approximately) independent samples, giving a
      Student-t confidence interval for the true mean. *)

  type t

  val create : batch_size:int -> t
  val add : t -> float -> unit
  val num_batches : t -> int
  val mean : t -> float
  (** Grand mean over complete batches (falls back to the raw running
      mean when no batch has completed yet). *)

  val ci90_half_width : t -> float
  (** Half-width of the 90% confidence interval for the mean.  Returns
      [infinity] with fewer than 2 complete batches. *)

  val relative_ci90 : t -> float
  (** [ci90_half_width / |mean|]; [infinity] when undefined. *)
end

val t90 : int -> float
(** [t90 df] is the two-sided 90% Student-t critical value (i.e. the
    0.95 quantile) for [df] degrees of freedom. *)

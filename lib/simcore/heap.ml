type 'a t = {
  cmp : 'a -> 'a -> int;
  mutable data : 'a array;
  mutable size : int;
  hint : int; (* requested initial capacity, applied at first push *)
}

(* The backing array is allocated lazily on first push because we have no
   witness element at creation time; [capacity] pre-sizes that first
   allocation so a caller that knows its peak size avoids the doubling
   climb from 64. *)
let create ?(capacity = 64) ~cmp () =
  if capacity < 1 then invalid_arg "Heap.create: capacity must be positive";
  { cmp; data = [||]; size = 0; hint = capacity }

let size h = h.size
let is_empty h = h.size = 0

let grow h x =
  let cap = Array.length h.data in
  if h.size >= cap then begin
    let ncap = if cap = 0 then h.hint else cap * 2 in
    let ndata = Array.make ncap x in
    Array.blit h.data 0 ndata 0 h.size;
    h.data <- ndata
  end

let rec sift_up h i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if h.cmp h.data.(i) h.data.(parent) < 0 then begin
      let tmp = h.data.(i) in
      h.data.(i) <- h.data.(parent);
      h.data.(parent) <- tmp;
      sift_up h parent
    end
  end

let rec sift_down h i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < h.size && h.cmp h.data.(l) h.data.(!smallest) < 0 then smallest := l;
  if r < h.size && h.cmp h.data.(r) h.data.(!smallest) < 0 then smallest := r;
  if !smallest <> i then begin
    let tmp = h.data.(i) in
    h.data.(i) <- h.data.(!smallest);
    h.data.(!smallest) <- tmp;
    sift_down h !smallest
  end

let push h x =
  grow h x;
  h.data.(h.size) <- x;
  h.size <- h.size + 1;
  sift_up h (h.size - 1)

let peek h = if h.size = 0 then None else Some h.data.(0)

let pop h =
  if h.size = 0 then None
  else begin
    let top = h.data.(0) in
    h.size <- h.size - 1;
    if h.size > 0 then begin
      h.data.(0) <- h.data.(h.size);
      sift_down h 0
    end;
    Some top
  end

let clear h = h.size <- 0

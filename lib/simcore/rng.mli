(** Deterministic, seedable pseudo-random number generator.

    Implementation: splitmix64, which is fast, has a 64-bit state, and
    passes BigCrush.  Every simulation entity that needs randomness gets
    its own [t] (derived with {!split}), so runs are reproducible and
    insensitive to the order in which entities draw numbers. *)

type t

val create : seed:int -> t
(** A generator seeded from [seed] (any int, including 0). *)

val split : t -> t
(** A new generator whose stream is independent of the parent's. *)

val copy : t -> t
(** A snapshot of the generator state. *)

val key_seed : seed:int -> key:string -> int
(** [key_seed ~seed ~key] is a non-negative seed derived purely from
    [seed] and the bytes of [key] (splitmix64 mixing).  Equal inputs
    give equal outputs regardless of program state, so a simulation
    job can derive its own independent stream from its description
    alone — the property that makes parallel sweeps reproducible. *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)].  [bound] must be > 0. *)

val int_in : t -> lo:int -> hi:int -> int
(** Uniform integer in the inclusive range [\[lo, hi\]]. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val uniform : t -> lo:float -> hi:float -> float
(** Uniform float in [\[lo, hi)]. *)

val exponential : t -> mean:float -> float
(** Exponentially distributed with the given mean. *)

val bool : t -> p:float -> bool
(** [true] with probability [p]. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val pick : t -> 'a array -> 'a
(** Uniformly random element of a non-empty array. *)

val sample_without_replacement : t -> k:int -> n:int -> int array
(** [sample_without_replacement t ~k ~n] is [k] distinct integers drawn
    uniformly from [\[0, n)], in random order.  Requires [k <= n]. *)

type 'a resumer = ('a, exn) result -> unit

exception Cancelled

type _ Effect.t +=
  | Suspend : ((('a, exn) result -> unit) -> unit) -> 'a Effect.t

(* Each fiber runs under one deep handler; Suspend captures the
   continuation and hands a once-only, engine-deferred resumer to the
   registration function supplied by the suspending code. *)

let handler engine =
  let open Effect.Deep in
  {
    retc = (fun () -> ());
    exnc =
      (fun e ->
        match e with
        | Cancelled -> () (* a cancelled fiber that did not catch it just dies *)
        | _ -> raise e);
    effc =
      (fun (type a) (eff : a Effect.t) ->
        match eff with
        | Suspend register ->
          Some
            (fun (k : (a, unit) continuation) ->
              let fired = ref false in
              let resume (r : (a, exn) result) =
                if !fired then
                  invalid_arg "Proc: resumer invoked more than once";
                fired := true;
                Engine.schedule_after engine 0.0 (fun () ->
                    match r with
                    | Ok v -> continue k v
                    | Error e -> discontinue k e)
              in
              register resume)
        | _ -> None);
  }

let spawn engine f =
  Engine.schedule_after engine 0.0 (fun () ->
      Effect.Deep.match_with f () (handler engine))

let suspend (_engine : Engine.t) register =
  Effect.perform (Suspend register)

let hold engine dt =
  if dt < 0.0 then invalid_arg "Proc.hold: negative delay";
  if dt = 0.0 then ()
  else
    suspend engine (fun resume ->
        Engine.schedule_after engine dt (fun () -> resume (Ok ())))

let yield engine =
  suspend engine (fun resume ->
      Engine.schedule_after engine 0.0 (fun () -> resume (Ok ())))

type 'a resumer = ('a, exn) result -> unit

exception Cancelled

(* Sentinel for "not yet resumed".  ['a] occurs only covariantly in
   [('a, exn) result], so this single constant is polymorphic; waiters
   compare against it physically, and no caller can forge it (a fresh
   [Error Cancelled] is a different block). *)
let never : ('a, exn) result = Error Cancelled
let ok_unit : (unit, exn) result = Ok ()
let nop () = ()

(* A suspended fiber, fused into one record: the captured continuation,
   the result slot, and the resumption thunk, all allocated once at
   suspension time.  Resuming stores the result and pushes the
   pre-allocated thunk onto the engine's zero-delay ring — no closure
   is built on the resume path. *)
type 'a waiter = {
  engine : Engine.t;
  k : ('a, unit) Effect.Deep.continuation;
  mutable res : ('a, exn) result; (* physically [never] until resumed *)
  mutable thunk : unit -> unit;
}

(* A mailbox's receive path is fused with the scheduler: a fiber
   blocked in [mbox_recv] is represented by its bare continuation in
   the mailbox's wait queue — no waiter record, no result cell, no
   once-only guard (popping the queue transfers the continuation
   exactly once by construction).  This is the hottest suspension point
   in the simulator (every server loop blocks here), so it gets its own
   effect rather than going through [Suspend_waiter]. *)
type 'a mbox = {
  mb_engine : Engine.t;
  msgs : 'a Queue.t;
  (* Waiting receivers, FIFO: the front one sits in [rk1] (a one-slot
     fast path — almost every blocked mailbox has exactly one reader),
     the rest overflow to [rkq].  Invariant: [rkq] non-empty implies
     [rk1 = Some _]. *)
  mutable rk1 : ('a, unit) Effect.Deep.continuation option;
  rkq : ('a, unit) Effect.Deep.continuation Queue.t;
  (* The receive effect, allocated once per mailbox (it is immutable),
     so a blocking receive performs without allocating the payload. *)
  recv_eff : 'a Effect.t;
}

type _ Effect.t +=
  | Suspend : ((('a, exn) result -> unit) -> unit) -> 'a Effect.t
  | Suspend_waiter : ('a waiter -> unit) -> 'a Effect.t
  | Recv : 'a mbox -> 'a Effect.t
  | Yield : unit Effect.t

let fire w =
  match w.res with
  | Ok v -> Effect.Deep.continue w.k v
  | Error e -> Effect.Deep.discontinue w.k e

let resume w r =
  if w.res != never then invalid_arg "Proc: waiter resumed more than once";
  w.res <- r;
  Engine.schedule_now w.engine w.thunk

(* Each fiber runs under one deep handler; the suspension effects
   capture the continuation and park it — directly in a mailbox's wait
   queue ([Recv]), in a fresh waiter ([Suspend_waiter]), or wrapped in
   a once-only resumer closure for the legacy interface ([Suspend]). *)

let handler engine =
  let open Effect.Deep in
  {
    retc = (fun () -> ());
    exnc =
      (fun e ->
        match e with
        | Cancelled -> () (* a cancelled fiber that did not catch it just dies *)
        | _ -> raise e);
    effc =
      (fun (type a) (eff : a Effect.t) ->
        match eff with
        | Recv mb ->
          Some
            (fun (k : (a, unit) continuation) ->
              match mb.rk1 with
              | None -> mb.rk1 <- Some k
              | Some _ -> Queue.push k mb.rkq)
        | Suspend_waiter register ->
          Some
            (fun (k : (a, unit) continuation) ->
              let w = { engine; k; res = never; thunk = nop } in
              w.thunk <- (fun () -> fire w);
              register w)
        | Suspend register ->
          Some
            (fun (k : (a, unit) continuation) ->
              let w = { engine; k; res = never; thunk = nop } in
              w.thunk <- (fun () -> fire w);
              register (fun r -> resume w r))
        | Yield ->
          (* Two hops, matching the legacy suspend/resumer sequence
             (wake event, then deferred continue): collapsing them to
             one would renumber events and change tie-breaking among
             same-instant events — goldens are byte-sensitive to it. *)
          Some
            (fun (k : (a, unit) continuation) ->
              Engine.schedule_now engine (fun () ->
                  Engine.schedule_now engine (fun () -> continue k ())))
        | _ -> None);
  }

let spawn engine f =
  Engine.schedule_now engine (fun () ->
      Effect.Deep.match_with f () (handler engine))

let suspend (_engine : Engine.t) register = Effect.perform (Suspend register)

let suspend_waiter (_engine : Engine.t) register =
  Effect.perform (Suspend_waiter register)

(* [hold] keeps the legacy two-hop resume (timer event, then deferred
   continue at the same instant) so event numbering — and therefore
   same-instant tie-breaking — matches the original engine exactly. *)

let hold engine dt =
  if dt < 0.0 then invalid_arg "Proc.hold: negative delay";
  if dt = 0.0 then ()
  else
    suspend_waiter engine (fun w ->
        Engine.schedule_after w.engine dt (fun () ->
            w.res <- ok_unit;
            Engine.schedule_now w.engine w.thunk))

let yield _engine = Effect.perform Yield

(* --- mailbox core (wrapped by {!Mailbox}) ------------------------------- *)

let mbox_create engine =
  let rec mb =
    {
      mb_engine = engine;
      msgs = Queue.create ();
      rk1 = None;
      rkq = Queue.create ();
      recv_eff = Recv mb;
    }
  in
  mb

let mbox_send mb msg =
  match mb.rk1 with
  | Some k ->
    mb.rk1 <- (if Queue.is_empty mb.rkq then None else Some (Queue.pop mb.rkq));
    Engine.schedule_now mb.mb_engine (fun () -> Effect.Deep.continue k msg)
  | None -> Queue.push msg mb.msgs

let mbox_recv mb =
  if Queue.is_empty mb.msgs then Effect.perform mb.recv_eff
  else Queue.pop mb.msgs

let mbox_length mb = Queue.length mb.msgs

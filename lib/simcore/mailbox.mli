(** Unbounded FIFO message queue between fibers.

    Used for streams of requests where an {!Ivar} (one-shot) does not
    fit, e.g. a per-client dispatcher consuming callback requests. *)

type 'a t

val create : Engine.t -> 'a t

val send : 'a t -> 'a -> unit
(** Enqueue a message, waking one waiting receiver if any. *)

val recv : 'a t -> 'a
(** Dequeue the oldest message, blocking the fiber while empty.
    Waiting receivers are served FIFO. *)

val length : 'a t -> int
(** Number of queued (undelivered) messages. *)

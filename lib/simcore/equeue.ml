(* Monomorphic event core: the virtual clock, the event sequence
   counter, and the pending set, fused into one module so the hottest
   operations never pass a float across a function-call boundary
   (without flambda, a float argument or return that crosses a
   non-inlined call is boxed — an allocation per event).

   Two containers, one total order.  Every entry is a (time, seq,
   action) triple; the global order is lexicographic (time, seq), and
   seqs are unique, so the order is strict — any internal arrangement
   that respects it drains identically.

   - The *heap* holds future events: a 4-ary min-heap in
     structure-of-arrays layout (an unboxed float array of times, an
     int array of seqs, an action array), compared with primitive
     float/int comparisons.  No per-event allocation: pushing writes
     three array slots.
   - The *ring* holds zero-delay events: every entry is stamped with
     the current clock, and since the clock never recedes and seqs grow
     monotonically, the ring is FIFO-sorted by (time, seq) by
     construction.  Capacities are powers of two, so the circular
     indexing is a mask; push and pop are pointer bumps.

   [pop_min] arbitrates ring-head vs heap-root by (time, seq), which is
   exactly the order a single heap would produce — the split is
   invisible to the simulation (golden tables stay byte-identical) —
   and advances the clock to the popped entry's time.

   Cancellation is lazy: [cancel] records the seq in a dead set; dead
   entries are dropped when they surface as the minimum, and when they
   outnumber half the physical entries the containers are compacted in
   place (filter + Floyd heapify), so cancel-heavy fault runs do not
   accumulate dead timers.

   This is the engine's innermost loop, so the hot paths use unsafe
   array accesses.  Every such index is bounded by construction: ring
   indices are masked by the (power-of-two) capacity, heap indices stay
   below [hsize <= Array.length htimes], and the three parallel arrays
   always share one length. *)

let nop () = ()

(* Unboxed scratch slots (a [mutable ... : float] field in a mixed
   record would be boxed, allocating on every write). *)
let clock_slot = 0 (* current simulated time *)
let rlast_slot = 1 (* time of the last ring push: the sortedness guard *)

type t = {
  floats : float array;
  mutable seq : int;
  mutable npopped : int;
  (* 4-ary SoA min-heap on (time, seq) *)
  mutable htimes : float array;
  mutable hseqs : int array;
  mutable hacts : (unit -> unit) array;
  mutable hsize : int;
  (* zero-delay FIFO ring *)
  mutable rtimes : float array;
  mutable rseqs : int array;
  mutable racts : (unit -> unit) array;
  mutable rhead : int;
  mutable rcount : int;
  mutable rlast_seq : int;
  (* lazily purged cancellations, keyed by event seq *)
  dead : (int, unit) Hashtbl.t;
  mutable ndead : int;
  capacity_hint : int;
}

let create ?(capacity = 0) () =
  {
    floats = [| 0.0; neg_infinity |];
    seq = 0;
    npopped = 0;
    htimes = [||];
    hseqs = [||];
    hacts = [||];
    hsize = 0;
    rtimes = [||];
    rseqs = [||];
    racts = [||];
    rhead = 0;
    rcount = 0;
    rlast_seq = min_int;
    dead = Hashtbl.create 16;
    ndead = 0;
    capacity_hint = max 0 capacity;
  }

let clock q = Array.unsafe_get q.floats clock_slot
let set_clock q v = Array.unsafe_set q.floats clock_slot v
let last_seq q = q.seq
let size q = q.hsize + q.rcount - q.ndead
let footprint q = q.hsize + q.rcount
let is_empty q = q.hsize + q.rcount - q.ndead = 0

(* --- heap ---------------------------------------------------------------- *)

let heap_grow q =
  let cap = Array.length q.htimes in
  if q.hsize >= cap then begin
    let ncap = if cap = 0 then max 64 q.capacity_hint else cap * 2 in
    let ntimes = Array.make ncap 0.0 in
    let nseqs = Array.make ncap 0 in
    let nacts = Array.make ncap nop in
    Array.blit q.htimes 0 ntimes 0 q.hsize;
    Array.blit q.hseqs 0 nseqs 0 q.hsize;
    Array.blit q.hacts 0 nacts 0 q.hsize;
    q.htimes <- ntimes;
    q.hseqs <- nseqs;
    q.hacts <- nacts
  end

(* Hole-based sift: bubble entries toward the hole and write the moving
   element once, instead of swapping three arrays at every level. *)

let heap_push q time seq act =
  heap_grow q;
  let ts = q.htimes and ss = q.hseqs and acts = q.hacts in
  let i = ref q.hsize in
  q.hsize <- q.hsize + 1;
  let continue = ref true in
  while !continue && !i > 0 do
    let p = (!i - 1) / 4 in
    let pt = Array.unsafe_get ts p in
    if time < pt || (time = pt && seq < Array.unsafe_get ss p) then begin
      Array.unsafe_set ts !i pt;
      Array.unsafe_set ss !i (Array.unsafe_get ss p);
      Array.unsafe_set acts !i (Array.unsafe_get acts p);
      i := p
    end
    else continue := false
  done;
  Array.unsafe_set ts !i time;
  Array.unsafe_set ss !i seq;
  Array.unsafe_set acts !i act

(* Sift the element (time, seq, act) down from the hole at [i] within
   the first [n] slots. *)
let heap_sift_down q i n time seq act =
  let ts = q.htimes and ss = q.hseqs and acts = q.hacts in
  let i = ref i in
  let continue = ref true in
  while !continue do
    let c1 = (4 * !i) + 1 in
    if c1 >= n then continue := false
    else begin
      let m = ref c1 in
      let mt = ref (Array.unsafe_get ts c1) in
      let last = min (c1 + 3) (n - 1) in
      for c = c1 + 1 to last do
        let ct = Array.unsafe_get ts c in
        if
          ct < !mt
          || (ct = !mt && Array.unsafe_get ss c < Array.unsafe_get ss !m)
        then begin
          m := c;
          mt := ct
        end
      done;
      if !mt < time || (!mt = time && Array.unsafe_get ss !m < seq) then begin
        Array.unsafe_set ts !i !mt;
        Array.unsafe_set ss !i (Array.unsafe_get ss !m);
        Array.unsafe_set acts !i (Array.unsafe_get acts !m);
        i := !m
      end
      else continue := false
    end
  done;
  Array.unsafe_set ts !i time;
  Array.unsafe_set ss !i seq;
  Array.unsafe_set acts !i act

let heap_remove_root q =
  let n = q.hsize - 1 in
  q.hsize <- n;
  let time = Array.unsafe_get q.htimes n in
  let seq = Array.unsafe_get q.hseqs n in
  let act = Array.unsafe_get q.hacts n in
  Array.unsafe_set q.hacts n nop;
  (* release the closure *)
  if n > 0 then heap_sift_down q 0 n time seq act

(* --- ring ---------------------------------------------------------------- *)

let rec next_pow2 n k = if k >= n then k else next_pow2 n (k * 2)

let ring_grow q =
  let cap = Array.length q.rtimes in
  let ncap = if cap = 0 then next_pow2 (max 64 q.capacity_hint) 64 else cap * 2 in
  let ntimes = Array.make ncap 0.0 in
  let nseqs = Array.make ncap 0 in
  let nacts = Array.make ncap nop in
  (* unwrap to offset 0 *)
  let mask = cap - 1 in
  for i = 0 to q.rcount - 1 do
    let j = (q.rhead + i) land mask in
    ntimes.(i) <- q.rtimes.(j);
    nseqs.(i) <- q.rseqs.(j);
    nacts.(i) <- q.racts.(j)
  done;
  q.rtimes <- ntimes;
  q.rseqs <- nseqs;
  q.racts <- nacts;
  q.rhead <- 0

(* The dropped slot is NOT cleared: writing [nop] into the action array
   costs a write barrier on the hottest path, and a stale closure
   lingers only until the slot is reused — at most [capacity] closures
   are retained.  [ring_grow] copies the live range and [compact]
   clears what it frees, so the staleness never spreads. *)
let ring_drop_head q =
  q.rhead <- (q.rhead + 1) land (Array.length q.rtimes - 1);
  q.rcount <- q.rcount - 1

(* --- pushes -------------------------------------------------------------- *)

let push_now q act =
  let time = Array.unsafe_get q.floats clock_slot in
  (* FIFO-sortedness is what makes the ring a valid heap substitute.
     The clock never recedes and seqs grow, so this can only trip if
     [set_clock] is abused; guard with two scalar compares. *)
  if q.rcount > 0 && time < Array.unsafe_get q.floats rlast_slot then
    invalid_arg "Equeue.push_now: clock receded below a queued entry";
  if q.rcount >= Array.length q.rtimes then ring_grow q;
  let seq = q.seq + 1 in
  q.seq <- seq;
  let slot = (q.rhead + q.rcount) land (Array.length q.rtimes - 1) in
  Array.unsafe_set q.rtimes slot time;
  Array.unsafe_set q.rseqs slot seq;
  Array.unsafe_set q.racts slot act;
  Array.unsafe_set q.floats rlast_slot time;
  q.rlast_seq <- seq;
  q.rcount <- q.rcount + 1;
  seq

let push_at q ~time act =
  let seq = q.seq + 1 in
  q.seq <- seq;
  heap_push q time seq act;
  seq

(* --- arbitration and dead-entry settling --------------------------------- *)

(* True when the ring head precedes the heap root in (time, seq) order.
   Only meaningful when at least one container is non-empty. *)
let ring_first q =
  q.rcount > 0
  && (q.hsize = 0
     ||
     let rt = Array.unsafe_get q.rtimes q.rhead
     and ht = Array.unsafe_get q.htimes 0 in
     rt < ht
     || rt = ht
        && Array.unsafe_get q.rseqs q.rhead < Array.unsafe_get q.hseqs 0)

(* Drop dead entries sitting at the front until the minimum is live.
   Cheap in the fault-free case: [ndead = 0] short-circuits. *)
let rec settle q =
  if q.ndead > 0 && q.hsize + q.rcount > 0 then
    if ring_first q then begin
      let seq = Array.unsafe_get q.rseqs q.rhead in
      if Hashtbl.mem q.dead seq then begin
        Hashtbl.remove q.dead seq;
        q.ndead <- q.ndead - 1;
        ring_drop_head q;
        settle q
      end
    end
    else begin
      let seq = Array.unsafe_get q.hseqs 0 in
      if Hashtbl.mem q.dead seq then begin
        Hashtbl.remove q.dead seq;
        q.ndead <- q.ndead - 1;
        heap_remove_root q;
        settle q
      end
    end

let empty_err () = invalid_arg "Equeue: empty"

let min_time q =
  if is_empty q then empty_err ();
  if ring_first q then Array.unsafe_get q.rtimes q.rhead
  else Array.unsafe_get q.htimes 0

let min_seq q =
  if is_empty q then empty_err ();
  if ring_first q then Array.unsafe_get q.rseqs q.rhead
  else Array.unsafe_get q.hseqs 0

let has_before q limit =
  (not (is_empty q))
  &&
  let mt =
    if ring_first q then Array.unsafe_get q.rtimes q.rhead
    else Array.unsafe_get q.htimes 0
  in
  mt <= limit

(* The invariant maintained by [settle] — the front entry of either
   container is live whenever [ndead > 0] — lets [pop_min] take the
   minimum without consulting the dead set. *)
let pop_min q =
  if is_empty q then empty_err ();
  q.npopped <- q.npopped + 1;
  let act =
    if ring_first q then begin
      Array.unsafe_set q.floats clock_slot (Array.unsafe_get q.rtimes q.rhead);
      let act = Array.unsafe_get q.racts q.rhead in
      ring_drop_head q;
      act
    end
    else begin
      Array.unsafe_set q.floats clock_slot (Array.unsafe_get q.htimes 0);
      let act = Array.unsafe_get q.hacts 0 in
      heap_remove_root q;
      act
    end
  in
  if q.ndead > 0 then settle q;
  act

let popped q = q.npopped

(* Fused drain loops: the engine's hot path when no event budget is in
   force.  The ring-only case (every fiber resumption and wakeup while
   no future event is pending) is inlined by hand: clock store, action
   load, head bump, call — no arbitration, no cross-module calls.  The
   counter is bumped before each action so an exception escaping an
   event leaves the tally correct. *)

let drain q =
  let live = ref true in
  while !live do
    if q.hsize = 0 && q.ndead = 0 then
      if q.rcount = 0 then live := false
      else begin
        Array.unsafe_set q.floats clock_slot
          (Array.unsafe_get q.rtimes q.rhead);
        let act = Array.unsafe_get q.racts q.rhead in
        ring_drop_head q;
        q.npopped <- q.npopped + 1;
        act ()
      end
    else if is_empty q then live := false
    else (pop_min q) ()
  done

let drain_until q limit =
  let live = ref true in
  while !live do
    if q.hsize = 0 && q.ndead = 0 then
      if
        q.rcount = 0 || Array.unsafe_get q.rtimes q.rhead > limit
      then live := false
      else begin
        Array.unsafe_set q.floats clock_slot
          (Array.unsafe_get q.rtimes q.rhead);
        let act = Array.unsafe_get q.racts q.rhead in
        ring_drop_head q;
        q.npopped <- q.npopped + 1;
        act ()
      end
    else if has_before q limit then (pop_min q) ()
    else live := false
  done

(* --- lazy cancellation --------------------------------------------------- *)

let purge_floor = 64

let compact q =
  (* Heap: filter live entries to the front, then Floyd heapify.  The
     (time, seq) order is strict, so heapify reproduces the exact drain
     order of the unpurged heap. *)
  let n = q.hsize in
  let k = ref 0 in
  for i = 0 to n - 1 do
    let seq = q.hseqs.(i) in
    if Hashtbl.mem q.dead seq then begin
      Hashtbl.remove q.dead seq;
      q.ndead <- q.ndead - 1
    end
    else begin
      q.htimes.(!k) <- q.htimes.(i);
      q.hseqs.(!k) <- seq;
      q.hacts.(!k) <- q.hacts.(i);
      incr k
    end
  done;
  for i = !k to n - 1 do
    q.hacts.(i) <- nop
  done;
  q.hsize <- !k;
  if !k > 1 then
    for i = (!k - 2) / 4 downto 0 do
      heap_sift_down q i !k q.htimes.(i) q.hseqs.(i) q.hacts.(i)
    done;
  (* Ring: filter in place preserving order. *)
  if q.rcount > 0 then begin
    let mask = Array.length q.rtimes - 1 in
    let m = q.rcount in
    let kept = ref 0 in
    for i = 0 to m - 1 do
      let j = (q.rhead + i) land mask in
      let seq = q.rseqs.(j) in
      if Hashtbl.mem q.dead seq then begin
        Hashtbl.remove q.dead seq;
        q.ndead <- q.ndead - 1
      end
      else begin
        let dst = (q.rhead + !kept) land mask in
        q.rtimes.(dst) <- q.rtimes.(j);
        q.rseqs.(dst) <- seq;
        q.racts.(dst) <- q.racts.(j);
        incr kept
      end
    done;
    for i = !kept to m - 1 do
      q.racts.((q.rhead + i) land mask) <- nop
    done;
    q.rcount <- !kept
  end

let cancel q ~seq =
  Hashtbl.replace q.dead seq ();
  q.ndead <- q.ndead + 1;
  if q.ndead >= purge_floor && 2 * q.ndead >= q.hsize + q.rcount then
    compact q
  else settle q

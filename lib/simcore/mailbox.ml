(* Thin wrapper: the mailbox core lives in {!Proc}, whose effect
   handler parks a blocked receiver's bare continuation in the wait
   queue — see the [Recv] effect. *)

type 'a t = 'a Proc.mbox

let create = Proc.mbox_create
let send = Proc.mbox_send
let recv = Proc.mbox_recv
let length = Proc.mbox_length

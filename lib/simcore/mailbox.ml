type 'a t = {
  engine : Engine.t;
  messages : 'a Queue.t;
  receivers : 'a Proc.resumer Queue.t;
}

let create engine =
  { engine; messages = Queue.create (); receivers = Queue.create () }

let send t msg =
  if Queue.is_empty t.receivers then Queue.push msg t.messages
  else
    let resume = Queue.pop t.receivers in
    resume (Ok msg)

let recv t =
  if not (Queue.is_empty t.messages) then Queue.pop t.messages
  else Proc.suspend t.engine (fun resume -> Queue.push resume t.receivers)

let length t = Queue.length t.messages

(** Monomorphic event core: the engine's clock, sequence counter and
    pending-event set in one module.

    Entries are (time, seq, action) triples ordered lexicographically by
    [(time, seq)]; seqs are assigned internally from a monotone counter,
    so the order is strict and the drain order is independent of
    internal arrangement.  Storage is structure-of-arrays — an unboxed
    float array of times, an int array of seqs, an action array — so
    pushing an event allocates nothing.

    Two containers share the order: a 4-ary min-heap for future events
    and a FIFO ring for zero-delay events (entries stamped with the
    current clock).  {!pop_min} arbitrates between them by [(time, seq)],
    producing exactly the sequence a single heap would, and advances the
    clock to the popped entry's time.

    The clock and seq counter live here, rather than in {!Engine}, so
    the zero-delay path ({!push_now} / {!pop_min}) passes no float
    across a function-call boundary: without flambda such an argument
    or return is boxed — an allocation per event.

    Used by {!Engine}; the generic polymorphic {!Heap} remains for
    other users. *)

type t

val create : ?capacity:int -> unit -> t
(** [capacity] pre-sizes the first allocation of each container
    (default 64 slots); both grow by doubling.  The clock starts at
    [0.0]. *)

val clock : t -> float
(** Current time: the time of the last entry popped, or the last
    {!set_clock} value if later. *)

val set_clock : t -> float -> unit
(** Advance the clock (e.g. to a [run_until] limit).  Moving it below a
    queued zero-delay entry breaks the ring's sort invariant; the next
    {!push_now} will then raise. *)

val last_seq : t -> int
(** The most recently assigned sequence number ([0] initially). *)

val size : t -> int
(** Live entries: physical entries minus cancelled-but-unpurged ones. *)

val footprint : t -> int
(** Physical entries, including dead ones awaiting lazy purge.  Bounded
    by [2 * size + O(1)] outside of transient states: a purge runs as
    soon as dead entries reach half the footprint. *)

val is_empty : t -> bool

val push_at : t -> time:float -> (unit -> unit) -> int
(** Add a future event to the heap and return its seq.  O(log4 n),
    allocation-free after the arrays are warm.  [time] must not precede
    the clock (unchecked here; {!Engine} enforces it). *)

val push_now : t -> (unit -> unit) -> int
(** Add an event at the current clock to the ring and return its seq.
    O(1) and allocation-free. *)

val min_time : t -> float
(** Time of the earliest live entry.  Raises [Invalid_argument] when
    empty. *)

val min_seq : t -> int
(** Seq of the earliest live entry.  Raises [Invalid_argument] when
    empty. *)

val has_before : t -> float -> bool
(** [has_before q limit] is true when a live entry with time <= [limit]
    is queued — the [run_until] loop condition, fused so the empty check
    and the arbitration happen in one call. *)

val pop_min : t -> unit -> unit
(** Remove the earliest live entry, advance the clock to its time, and
    return its action.  Raises [Invalid_argument] when empty. *)

val popped : t -> int
(** Total live entries removed so far, by {!pop_min} or the drain
    loops — the engine's events-processed counter. *)

val drain : t -> unit
(** Pop and run entries until the queue is empty: the fused engine hot
    loop.  Equivalent to calling [(pop_min q) ()] until empty, with the
    ring-only fast path inlined. *)

val drain_until : t -> float -> unit
(** Like {!drain} but stops (without popping) once the earliest entry's
    time exceeds the limit.  Does not move the clock to the limit. *)

val cancel : t -> seq:int -> unit
(** Mark the entry with [seq] dead; it will never be returned by
    {!pop_min}.  [seq] must currently be queued and live (the engine's
    timer state machine guarantees single cancellation).  Dead entries
    are dropped lazily; when they reach half the footprint (and at
    least 64), both containers are compacted in place. *)

(** Discrete-event simulation engine: a virtual clock plus an ordered
    queue of pending events.

    This is the substrate that replaces DeNet [Livn88] in the paper's
    model.  Events scheduled for the same instant fire in FIFO order
    (insertion order), which keeps runs deterministic. *)

type t

val create : unit -> t

val now : t -> float
(** Current simulated time, in seconds. *)

val schedule_after : t -> float -> (unit -> unit) -> unit
(** [schedule_after t dt f] runs [f] at time [now t +. dt].
    [dt] must be >= 0. *)

val schedule_at : t -> float -> (unit -> unit) -> unit
(** [schedule_at t time f] runs [f] at absolute [time] (>= [now t]). *)

exception Event_budget_exceeded of string
(** Raised by {!step}, {!run} and {!run_until} when the optional
    [?max_events] budget is exhausted.  The message records the clock,
    the number of events processed and the queue depth, so a runaway
    simulation fails with a diagnostic instead of spinning forever. *)

val step : ?max_events:int -> t -> bool
(** Process the single earliest pending event; [false] when the queue
    is empty.  [max_events] bounds the total events processed since
    engine creation. *)

val run : ?max_events:int -> t -> unit
(** Process events until the queue is empty.  [max_events] bounds the
    total number of events processed since engine creation (compare
    {!events_processed}). *)

val run_until : ?max_events:int -> t -> float -> unit
(** Process all events with timestamp <= the limit, then set the clock
    to the limit.  Events scheduled beyond the limit remain queued.
    [max_events] bounds the total events processed since creation. *)

val pending : t -> int
(** Number of events currently queued. *)

val events_processed : t -> int
(** Total events executed since creation (a cheap progress measure). *)

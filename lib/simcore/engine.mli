(** Discrete-event simulation engine: a virtual clock plus an ordered
    queue of pending events.

    This is the substrate that replaces DeNet [Livn88] in the paper's
    model.  Events scheduled for the same instant fire in FIFO order
    (insertion order), which keeps runs deterministic.

    The pending set is a monomorphic structure-of-arrays queue
    ({!Equeue}): a 4-ary heap of future events plus a FIFO ring for
    zero-delay events, arbitrated by (time, seq) — see DESIGN.md
    "Event core internals" for why the split cannot reorder events. *)

type t

val create : unit -> t

val now : t -> float
(** Current simulated time, in seconds. *)

exception Time_travel of string
(** Raised when an event is scheduled before the current clock.  The
    message names the offending scheduling primitive, the requested
    time, the clock value, and the delta — a fault-injection hook or a
    timer computed from a stale timestamp fails loudly instead of
    silently reordering history. *)

val schedule_after : t -> float -> (unit -> unit) -> unit
(** [schedule_after t dt f] runs [f] at time [now t +. dt].
    Raises {!Time_travel} when [dt] is negative. *)

val schedule_at : t -> float -> (unit -> unit) -> unit
(** [schedule_at t time f] runs [f] at absolute [time].  Raises
    {!Time_travel} when [time] precedes [now t] (beyond rounding
    tolerance). *)

val schedule_now : t -> (unit -> unit) -> unit
(** [schedule_now t f] runs [f] at the current instant, after every
    event already scheduled for it: equivalent to
    [schedule_after t 0.0 f] but skipping the time arithmetic — the
    fast path taken by every fiber resumption and wakeup. *)

(** {2 Cancellable timers}

    A [timer] is a one-shot event that can be disarmed before it
    fires — the primitive behind retransmission timeouts: arm a timer
    with the ack handler holding its handle, and [cancel] on ack. *)

type timer

val after : t -> float -> (unit -> unit) -> timer
(** [after t dt f] schedules [f] like {!schedule_after} and returns a
    handle; if the handle is {!cancel}ed before the deadline, [f] never
    runs.  Raises {!Time_travel} when [dt] is negative. *)

val cancel : timer -> unit
(** Disarm; a no-op once the timer has fired or was already cancelled.
    The queued entry is reclaimed lazily (see {!queue_footprint}), so
    arm/cancel storms do not accumulate dead events. *)

val timer_pending : timer -> bool
(** True until the timer fires or is cancelled. *)

val timer_deadline : timer -> float
(** Absolute time at which the timer fires (if not cancelled). *)

exception Event_budget_exceeded of string
(** Raised by {!step}, {!run} and {!run_until} when the optional
    [?max_events] budget is exhausted.  The message records the clock,
    the number of events processed and the queue depth, so a runaway
    simulation fails with a diagnostic instead of spinning forever. *)

val step : ?max_events:int -> t -> bool
(** Process the single earliest pending event; [false] when the queue
    is empty.  [max_events] bounds the total events processed since
    engine creation. *)

val run : ?max_events:int -> t -> unit
(** Process events until the queue is empty.  [max_events] bounds the
    total number of events processed since engine creation (compare
    {!events_processed}). *)

val run_until : ?max_events:int -> t -> float -> unit
(** Process all events with timestamp <= the limit, then set the clock
    to the limit.  Events scheduled beyond the limit remain queued.
    [max_events] bounds the total events processed since creation. *)

val pending : t -> int
(** Number of live events currently queued (cancelled timers awaiting
    lazy purge are not counted). *)

val queue_footprint : t -> int
(** Physical queue entries, including cancelled timers not yet purged.
    Stays within a small constant factor of {!pending}: the queue
    compacts itself once dead entries reach half the footprint. *)

val events_processed : t -> int
(** Total events executed since creation (a cheap progress measure). *)

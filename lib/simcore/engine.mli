(** Discrete-event simulation engine: a virtual clock plus an ordered
    queue of pending events.

    This is the substrate that replaces DeNet [Livn88] in the paper's
    model.  Events scheduled for the same instant fire in FIFO order
    (insertion order), which keeps runs deterministic. *)

type t

val create : unit -> t

val now : t -> float
(** Current simulated time, in seconds. *)

val schedule_after : t -> float -> (unit -> unit) -> unit
(** [schedule_after t dt f] runs [f] at time [now t +. dt].
    [dt] must be >= 0. *)

val schedule_at : t -> float -> (unit -> unit) -> unit
(** [schedule_at t time f] runs [f] at absolute [time] (>= [now t]). *)

val run : t -> unit
(** Process events until the queue is empty. *)

val run_until : t -> float -> unit
(** Process all events with timestamp <= the limit, then set the clock
    to the limit.  Events scheduled beyond the limit remain queued. *)

val pending : t -> int
(** Number of events currently queued. *)

val events_processed : t -> int
(** Total events executed since creation (a cheap progress measure). *)

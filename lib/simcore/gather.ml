type 'a t = {
  expected : int;
  mutable results : 'a list; (* reverse arrival order *)
  done_ivar : 'a list Ivar.t;
}

let create engine expected =
  if expected < 0 then invalid_arg "Gather.create: negative count";
  let t = { expected; results = []; done_ivar = Ivar.create engine } in
  if expected = 0 then Ivar.fill t.done_ivar [];
  t

let add t r =
  if List.length t.results >= t.expected then
    invalid_arg "Gather.add: more results than expected";
  t.results <- r :: t.results;
  if List.length t.results = t.expected then
    Ivar.fill t.done_ivar (List.rev t.results)

let wait t = Ivar.read t.done_ivar
let arrived t = List.length t.results

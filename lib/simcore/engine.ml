(* Thin policy wrapper over the {!Equeue} event core: time-travel
   checks, cancellable timers, and event budgets.  The clock and the
   seq counter live inside Equeue so the zero-delay hot path never
   passes a float across a call boundary (which would box it without
   flambda). *)

type t = { queue : Equeue.t }

let create () = { queue = Equeue.create () }
let now t = Equeue.clock t.queue

exception Time_travel of string

let time_travel what ~requested ~clock =
  raise
    (Time_travel
       (Printf.sprintf
          "%s: requested time %.9g precedes the clock %.9g (delta %.3g s); \
           an event cannot fire in the past"
          what requested clock (clock -. requested)))

(* Zero-delay events (every Proc resumption, yield and mailbox wakeup)
   go to the queue's FIFO ring; future events go to its heap.  The seq
   counter is shared, so the (time, seq) drain order is identical to a
   single-queue engine. *)

let schedule_now t action = ignore (Equeue.push_now t.queue action : int)

let schedule_at t time action =
  let clock = now t in
  if time < clock -. 1e-12 then
    time_travel "Engine.schedule_at" ~requested:time ~clock;
  if time <= clock then schedule_now t action
  else ignore (Equeue.push_at t.queue ~time action : int)

let schedule_after t dt action =
  if dt < 0.0 then
    time_travel "Engine.schedule_after" ~requested:(now t +. dt) ~clock:(now t);
  if dt = 0.0 then schedule_now t action
  else schedule_at t (now t +. dt) action

(* --- Cancellable timers ------------------------------------------------ *)

type timer_state = Pending | Fired | Cancelled

type timer = {
  mutable state : timer_state;
  deadline : float;
  mutable tseq : int;
  owner : t;
}

let after t dt action =
  if dt < 0.0 then
    time_travel "Engine.after" ~requested:(now t +. dt) ~clock:(now t);
  let clock = now t in
  let deadline = clock +. dt in
  let tm = { state = Pending; deadline; tseq = 0; owner = t } in
  let act () =
    tm.state <- Fired;
    action ()
  in
  let seq =
    if deadline <= clock then Equeue.push_now t.queue act
    else Equeue.push_at t.queue ~time:deadline act
  in
  tm.tseq <- seq;
  tm

let cancel tm =
  if tm.state = Pending then begin
    tm.state <- Cancelled;
    Equeue.cancel tm.owner.queue ~seq:tm.tseq
  end

let timer_pending tm = tm.state = Pending
let timer_deadline tm = tm.deadline

exception Event_budget_exceeded of string

let check_budget t = function
  | None -> ()
  | Some budget ->
    if Equeue.popped t.queue >= budget then
      raise
        (Event_budget_exceeded
           (Printf.sprintf
              "event budget of %d exhausted: clock %.6f, %d events \
               processed, %d still pending"
              budget (now t)
              (Equeue.popped t.queue)
              (Equeue.size t.queue)))

let step ?max_events t =
  check_budget t max_events;
  if Equeue.is_empty t.queue then false
  else begin
    (Equeue.pop_min t.queue) ();
    true
  end

(* Without a budget, [run] and [run_until] hand the whole loop to the
   queue's fused drain ([Equeue.pop_min] advances the clock itself, and
   the events-processed counter lives in the queue). *)

let run ?max_events t =
  match max_events with
  | None -> Equeue.drain t.queue
  | Some _ -> while step ?max_events t do () done

let run_until ?max_events t limit =
  (match max_events with
  | None -> Equeue.drain_until t.queue limit
  | Some _ ->
    let continue = ref true in
    while !continue do
      if Equeue.has_before t.queue limit then ignore (step ?max_events t)
      else continue := false
    done);
  if now t < limit then Equeue.set_clock t.queue limit

let pending t = Equeue.size t.queue
let queue_footprint t = Equeue.footprint t.queue
let events_processed t = Equeue.popped t.queue

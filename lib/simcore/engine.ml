type event = { time : float; seq : int; action : unit -> unit }

type t = {
  mutable clock : float;
  mutable seq : int;
  mutable processed : int;
  queue : event Heap.t;
}

let cmp_event a b =
  let c = compare a.time b.time in
  if c <> 0 then c else compare a.seq b.seq

let create () =
  { clock = 0.0; seq = 0; processed = 0; queue = Heap.create ~cmp:cmp_event () }

let now t = t.clock

exception Time_travel of string

let time_travel what ~requested ~clock =
  raise
    (Time_travel
       (Printf.sprintf
          "%s: requested time %.9g precedes the clock %.9g (delta %.3g s); \
           an event cannot fire in the past"
          what requested clock (clock -. requested)))

let schedule_at t time action =
  if time < t.clock -. 1e-12 then
    time_travel "Engine.schedule_at" ~requested:time ~clock:t.clock;
  let time = if time < t.clock then t.clock else time in
  t.seq <- t.seq + 1;
  Heap.push t.queue { time; seq = t.seq; action }

let schedule_after t dt action =
  if dt < 0.0 then
    time_travel "Engine.schedule_after" ~requested:(t.clock +. dt)
      ~clock:t.clock;
  schedule_at t (t.clock +. dt) action

(* --- Cancellable timers ------------------------------------------------ *)

type timer_state = Pending | Fired | Cancelled
type timer = { mutable state : timer_state; deadline : float }

let after t dt action =
  if dt < 0.0 then
    time_travel "Engine.after" ~requested:(t.clock +. dt) ~clock:t.clock;
  let tm = { state = Pending; deadline = t.clock +. dt } in
  schedule_after t dt (fun () ->
      match tm.state with
      | Pending ->
        tm.state <- Fired;
        action ()
      | Fired | Cancelled -> ());
  tm

let cancel tm = if tm.state = Pending then tm.state <- Cancelled
let timer_pending tm = tm.state = Pending
let timer_deadline tm = tm.deadline

exception Event_budget_exceeded of string

let check_budget t = function
  | None -> ()
  | Some budget ->
    if t.processed >= budget then
      raise
        (Event_budget_exceeded
           (Printf.sprintf
              "event budget of %d exhausted: clock %.6f, %d events \
               processed, %d still pending"
              budget t.clock t.processed (Heap.size t.queue)))

let step ?max_events t =
  check_budget t max_events;
  match Heap.pop t.queue with
  | None -> false
  | Some ev ->
    t.clock <- ev.time;
    t.processed <- t.processed + 1;
    ev.action ();
    true

let run ?max_events t = while step ?max_events t do () done

let run_until ?max_events t limit =
  let continue = ref true in
  while !continue do
    match Heap.peek t.queue with
    | Some ev when ev.time <= limit -> ignore (step ?max_events t)
    | Some _ | None -> continue := false
  done;
  if t.clock < limit then t.clock <- limit

let pending t = Heap.size t.queue
let events_processed t = t.processed

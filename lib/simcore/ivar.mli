(** Write-once synchronization variable ("ivar").

    The standard way a fiber waits for a reply: the requester creates an
    ivar, ships it with the request, and {!read}s it; the responder
    {!fill}s it.  Multiple fibers may read the same ivar. *)

type 'a t

val create : Engine.t -> 'a t

val fill : 'a t -> 'a -> unit
(** Make the value available and wake all readers (at the current
    simulated instant).  Raises [Invalid_argument] if already full. *)

val read : 'a t -> 'a
(** Return the value, blocking the calling fiber until {!fill}. *)

val is_full : 'a t -> bool
val peek : 'a t -> 'a option

(** Traffic-shape modulation of the client arrival path.

    Two deterministic shapes compose multiplicatively on the
    instantaneous arrival rate: a sinusoidal {e diurnal} cycle
    ([1 + amp * sin(2*pi*now/period)]) and a {e flash crowd} that
    multiplies the rate by [flash_boost] during
    [\[flash_at, flash_at + flash_duration)].  Client think times are
    divided by the combined factor.  {!off} is the identity; runs with
    the default knobs never consult this module. *)

type t = {
  diurnal_period : float;  (** sim seconds per cycle; 0 = off *)
  diurnal_amp : float;  (** amplitude in [0, 1) *)
  flash_at : float;  (** crowd start, sim seconds *)
  flash_duration : float;  (** 0 = off *)
  flash_boost : float;  (** rate multiplier in [1, 100] *)
}

val off : t
val is_off : t -> bool

val validate : t -> unit
(** Raises [Invalid_argument] with a friendly message on a bad knob. *)

val rate_factor : t -> now:float -> float
(** Instantaneous arrival-rate multiplier (strictly positive). *)

val think : t -> base:float -> now:float -> float
(** [base] think time scaled down by {!rate_factor}. *)

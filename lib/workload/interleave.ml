open Storage

let remap ~hot_pages_per_client ~objects_per_page ~num_clients oid =
  if objects_per_page mod 2 <> 0 then
    invalid_arg "Interleave.remap: objects_per_page must be even";
  let { Ids.Oid.page; slot } = oid in
  let hot_area = hot_pages_per_client * num_clients in
  if page >= hot_area then oid
  else begin
    let client = page / hot_pages_per_client in
    if client = num_clients - 1 && num_clients mod 2 = 1 then oid
    else begin
      let pair_base = client land lnot 1 (* even member of the pair *) in
      let top_half = client land 1 = 0 in
      let j = page - (client * hot_pages_per_client) in
      let flat = (j * objects_per_page) + slot in
      let half = objects_per_page / 2 in
      let new_page = (pair_base * hot_pages_per_client) + (flat / half) in
      let new_slot = (flat mod half) + if top_half then 0 else half in
      Ids.Oid.make ~page:new_page ~slot:new_slot
    end
  end

(** Workload description (the paper's Table 2 vocabulary).

    Each client workstation submits a stream of transactions shaped by
    these parameters: a transaction touches [trans_size] distinct pages,
    reads a uniformly drawn [page_locality] number of objects on each,
    and each object read turns into an update with a region-dependent
    probability.  Accesses split between a per-client {e hot} region and
    a {e cold} region. *)

type range = { lo : int; hi : int }
(** Inclusive integer range. *)

val avg : range -> float

type region = { first : int; last : int }
(** Inclusive page range. *)

val region_size : region -> int
val in_region : region -> int -> bool

type access_pattern =
  | Clustered  (** all referenced objects of a page referenced together *)
  | Unclustered  (** object references across pages interleaved *)

type per_client = {
  hot_region : region option;  (** [None]: every access uses [cold_region] *)
  cold_region : region;
  hot_access_prob : float;  (** probability an access targets the hot region *)
  hot_write_prob : float;  (** probability an object read leads to an update *)
  cold_write_prob : float;
}

type t = {
  name : string;
  trans_size : int;  (** pages accessed per transaction *)
  page_locality : range;  (** objects accessed per visited page *)
  access_pattern : access_pattern;
  per_object_read_instr : float;
      (** client CPU cost to process one object read *)
  per_object_write_instr : float;  (** doubled for writes (Section 4.2) *)
  think_time : float;  (** delay between transactions of a client *)
  clients : per_client array;
  remap : (Storage.Ids.Oid.t -> Storage.Ids.Oid.t) option;
      (** physical relocation of objects, used by Interleaved PRIVATE *)
  generic : Generic.t option;
      (** [Some g]: transactions come from the generic object-base
          generator instead of the preset hot/cold draw *)
  arrival : Arrival.t option;
      (** [Some a]: think times modulated by the traffic shape;
          [None] is the constant-rate paper behaviour *)
}

val validate : t -> db_pages:int -> objects_per_page:int -> unit
(** Sanity-check region bounds and feasibility of [trans_size]; raises
    [Invalid_argument] on inconsistency. *)

open Simcore

type mix = { traversal : int; match_ : int; update : int }

let default_mix = { traversal = 60; match_ = 20; update = 20 }

type t = {
  name : string;
  base : Objbase.t;
  policy : Placement.policy;
  pos : int array;
  objects_per_page : int;
  theta : float;
  zobj : Zipf.t;
  zroot : Zipf.t;
  mix : mix;
  mix_total : int;
  traversal_depth : int;
  traversal_cap : int;
  match_size : int;
  update_size : int;
  write_prob : float;
  quality : float;
}

let validate_knobs ~(spec : Objbase.spec) ~mix ~traversal_depth ~traversal_cap
    ~match_size ~update_size ~write_prob ~theta ~db_pages ~objects_per_page =
  let fail fmt = Printf.ksprintf invalid_arg fmt in
  Objbase.validate_spec spec;
  let capacity = db_pages * objects_per_page in
  if spec.Objbase.objects > capacity then
    fail
      "Generic: object base of %d objects does not fit a %d-page database \
       with %d objects/page (%d slots); shrink --objects or grow --scale"
      spec.Objbase.objects db_pages objects_per_page capacity;
  if mix.traversal < 0 || mix.match_ < 0 || mix.update < 0 then
    fail "Generic: mix weights must be non-negative (got %d/%d/%d)"
      mix.traversal mix.match_ mix.update;
  if mix.traversal + mix.match_ + mix.update <= 0 then
    fail "Generic: mix weights %d/%d/%d sum to zero; enable at least one \
          transaction type"
      mix.traversal mix.match_ mix.update;
  if traversal_depth < 1 || traversal_depth > spec.Objbase.depth then
    fail "Generic: traversal depth %d outside [1, %d] (the graph depth)"
      traversal_depth spec.Objbase.depth;
  if traversal_cap < 1 then
    fail "Generic: traversal cap %d must be positive" traversal_cap;
  if match_size < 1 then
    fail "Generic: match size %d must be positive" match_size;
  if update_size < 1 then
    fail "Generic: update size %d must be positive" update_size;
  if write_prob < 0.0 || write_prob > 1.0 then
    fail "Generic: write probability %.3f outside [0, 1]" write_prob;
  if theta < 0.0 || theta > 4.0 then
    fail "Generic: Zipf skew %.3f outside [0, 4] (0 = uniform)" theta

let knob_string ~(spec : Objbase.spec) ~policy ~theta ~mix ~traversal_depth
    ~traversal_cap ~match_size ~update_size ~write_prob =
  Printf.sprintf "o%d,c%d,f%d,d%d,%s,z%.2f,mix%d/%d/%d,td%d,tc%d,m%d,u%d,wp%.2f"
    spec.Objbase.objects spec.Objbase.classes spec.Objbase.fanout
    spec.Objbase.depth (Placement.name policy) theta mix.traversal mix.match_
    mix.update traversal_depth traversal_cap match_size update_size write_prob

let make ?(classes = 20) ?(objects = 25_000) ?(fanout = 3) ?(depth = 8)
    ?(policy = Placement.Dfs_ref) ?(theta = 0.0) ?(mix = default_mix)
    ?(traversal_depth = 6) ?(traversal_cap = 160) ?(match_size = 20)
    ?(update_size = 8) ?(write_prob = 0.2) ~db_pages ~objects_per_page
    ~seed () =
  let spec = { Objbase.classes; objects; fanout; depth } in
  validate_knobs ~spec ~mix ~traversal_depth ~traversal_cap ~match_size
    ~update_size ~write_prob ~theta ~db_pages ~objects_per_page;
  let knobs =
    knob_string ~spec ~policy ~theta ~mix ~traversal_depth ~traversal_cap
      ~match_size ~update_size ~write_prob
  in
  (* The base and the layout derive from [seed] and the knobs alone —
     pure functions of the description, like Job seeds — so a rebuilt
     params value is bit-identical wherever it is constructed. *)
  let base =
    Objbase.generate spec ~seed:(Rng.key_seed ~seed ~key:("objbase|" ^ knobs))
  in
  let pos =
    Placement.layout policy base
      ~seed:(Rng.key_seed ~seed ~key:("placement|" ^ knobs))
  in
  {
    name = Printf.sprintf "OCB[%s]" knobs;
    base;
    policy;
    pos;
    objects_per_page;
    theta;
    zobj = Zipf.make ~n:objects ~theta;
    zroot = Zipf.make ~n:(Array.length base.Objbase.roots) ~theta;
    mix;
    mix_total = mix.traversal + mix.match_ + mix.update;
    traversal_depth;
    traversal_cap;
    match_size;
    update_size;
    write_prob;
    quality = Placement.quality base ~pos ~objects_per_page;
  }

let name t = t.name
let quality t = t.quality
let policy t = t.policy

let oid_of t obj =
  Placement.oid_of ~pos:t.pos ~objects_per_page:t.objects_per_page obj

(* --- Transaction generation -------------------------------------------- *)

(* A set-oriented traversal: start at a Zipf-ranked root and walk the
   reference graph depth-first to [traversal_depth] levels, visiting
   each object once, reading it, and updating it with [write_prob].
   The op order is discovery order, so a well-clustered placement turns
   the walk into long same-page runs. *)
let gen_traversal t rng out =
  let root = t.base.Objbase.roots.(Zipf.draw t.zroot rng) in
  let seen = Hashtbl.create 64 in
  let rec walk obj level =
    if
      level <= t.traversal_depth
      && (not (Hashtbl.mem seen obj))
      && Hashtbl.length seen < t.traversal_cap
    then begin
      Hashtbl.add seen obj ();
      out := (oid_of t obj, Rng.bool rng ~p:t.write_prob) :: !out;
      Array.iter (fun child -> walk child (level + 1)) t.base.Objbase.refs.(obj)
    end
  in
  walk root 1

(* A simple match: a set-oriented, read-only selection over one class'
   instances. *)
let gen_match t rng out =
  let cls = Rng.int rng (Objbase.num_classes t.base) in
  let members = t.base.Objbase.instances.(cls) in
  let n = Array.length members in
  if n > 0 then begin
    let k = min t.match_size n in
    Array.iter
      (fun idx -> out := (oid_of t members.(idx), false) :: !out)
      (Rng.sample_without_replacement rng ~k ~n)
  end

(* An update transaction: read-modify-write a handful of Zipf-hot
   objects — the skew knob concentrates these on a few pages (or
   scatters them, per placement). *)
let gen_update t rng out =
  let seen = Hashtbl.create 16 in
  let wanted = min t.update_size (Objbase.num_objects t.base) in
  let attempts = ref 0 in
  while Hashtbl.length seen < wanted && !attempts < 64 * wanted do
    incr attempts;
    let obj = Zipf.draw t.zobj rng in
    if not (Hashtbl.mem seen obj) then begin
      Hashtbl.add seen obj ();
      out := (oid_of t obj, true) :: !out
    end
  done

let generate t ~rng =
  let out = ref [] in
  let pick = Rng.int rng t.mix_total in
  if pick < t.mix.traversal then gen_traversal t rng out
  else if pick < t.mix.traversal + t.mix.match_ then gen_match t rng out
  else gen_update t rng out;
  (* Traversals of a barren root (or an empty class) must still yield a
     non-empty transaction: fall back to one hot object read. *)
  if !out = [] then out := [ (oid_of t (Zipf.draw t.zobj rng), false) ];
  Array.of_list (List.rev !out)

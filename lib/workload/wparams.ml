type range = { lo : int; hi : int }

let avg r = float_of_int (r.lo + r.hi) /. 2.0

type region = { first : int; last : int }

let region_size r = r.last - r.first + 1
let in_region r p = p >= r.first && p <= r.last

type access_pattern = Clustered | Unclustered

type per_client = {
  hot_region : region option;
  cold_region : region;
  hot_access_prob : float;
  hot_write_prob : float;
  cold_write_prob : float;
}

type t = {
  name : string;
  trans_size : int;
  page_locality : range;
  access_pattern : access_pattern;
  per_object_read_instr : float;
  per_object_write_instr : float;
  think_time : float;
  clients : per_client array;
  remap : (Storage.Ids.Oid.t -> Storage.Ids.Oid.t) option;
  generic : Generic.t option;
  arrival : Arrival.t option;
}

let check_region ~db_pages r what =
  if r.first < 0 || r.last >= db_pages || r.last < r.first then
    invalid_arg
      (Printf.sprintf "Wparams: %s region [%d,%d] outside database of %d pages"
         what r.first r.last db_pages)

let validate t ~db_pages ~objects_per_page =
  Option.iter Arrival.validate t.arrival;
  if t.trans_size <= 0 then invalid_arg "Wparams: trans_size must be positive";
  if t.page_locality.lo < 1 || t.page_locality.hi < t.page_locality.lo then
    invalid_arg "Wparams: bad page_locality range";
  if t.page_locality.hi > objects_per_page then
    invalid_arg "Wparams: page_locality exceeds objects per page";
  if Array.length t.clients = 0 then invalid_arg "Wparams: no clients";
  Array.iter
    (fun c ->
      Option.iter (fun r -> check_region ~db_pages r "hot") c.hot_region;
      check_region ~db_pages c.cold_region "cold";
      (* A transaction must be able to pick trans_size distinct pages. *)
      let reachable =
        region_size c.cold_region
        + (match c.hot_region with
          | Some h when not (in_region c.cold_region h.first) -> region_size h
          | Some _ | None -> 0)
      in
      if t.trans_size > reachable then
        invalid_arg
          (Printf.sprintf
             "Wparams: trans_size %d exceeds %d reachable pages" t.trans_size
             reachable))
    t.clients

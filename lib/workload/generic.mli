(** OCB-style generic workload: object base + placement + mixes.

    Ties an {!Objbase} reference graph, a {!Placement} clustering
    policy and Zipf-skewed hotspot selection into a transaction
    generator with three OCB-style mix components:

    - {e traversal}: depth-first walk from a Zipf-ranked root,
      updating visited objects with [write_prob];
    - {e match}: read-only selection over one class' instances;
    - {e update}: read-modify-write of a few Zipf-hot objects.

    The object base and layout derive from [seed] plus the knob values
    alone (via [Rng.key_seed]), so rebuilding the same description
    anywhere yields bit-identical structures — the jobs=1 == jobs=N
    property.  Protocols feel clustering quality through page
    co-residency of the traversal working sets. *)

type mix = { traversal : int; match_ : int; update : int }
(** Relative weights of the three transaction types. *)

val default_mix : mix
(** 60/20/20. *)

type t

val make :
  ?classes:int ->
  ?objects:int ->
  ?fanout:int ->
  ?depth:int ->
  ?policy:Placement.policy ->
  ?theta:float ->
  ?mix:mix ->
  ?traversal_depth:int ->
  ?traversal_cap:int ->
  ?match_size:int ->
  ?update_size:int ->
  ?write_prob:float ->
  db_pages:int ->
  objects_per_page:int ->
  seed:int ->
  unit ->
  t
(** Defaults: 20 classes, 25k objects, fan-out 3, depth 8, depth-first
    placement, no skew, 60/20/20 mix, traversal depth 6 capped at 160
    objects, match 20, update 8, write prob 0.2.  Raises
    [Invalid_argument] with a friendly message on any out-of-range
    knob or when the base does not fit the database. *)

val name : t -> string
(** Encodes every knob (e.g. ["OCB[o25000,c20,f3,d8,dfs,z0.80,...]"]),
    so a Job key derived from it uniquely seeds the cell. *)

val quality : t -> float
(** Clustering quality of the chosen placement
    (see {!Placement.quality}). *)

val policy : t -> Placement.policy
val oid_of : t -> int -> Storage.Ids.Oid.t

val generate : t -> rng:Simcore.Rng.t -> (Storage.Ids.Oid.t * bool) array
(** Draw one transaction as (oid, write) pairs; never empty. *)

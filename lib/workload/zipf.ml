open Simcore

type t = { n : int; theta : float; cdf : float array }

let make ~n ~theta =
  if n <= 0 then invalid_arg "Zipf: need a positive population";
  if theta < 0.0 || theta > 4.0 then
    invalid_arg
      (Printf.sprintf
         "Zipf: skew theta %.3f outside [0, 4] (0 = uniform, 1 = classic \
          Zipf; larger is sharper)"
         theta);
  let cdf = Array.make n 0.0 in
  let total = ref 0.0 in
  for rank = 0 to n - 1 do
    total := !total +. (1.0 /. (float_of_int (rank + 1) ** theta));
    cdf.(rank) <- !total
  done;
  (* Normalize so the last entry is exactly 1.0: a uniform draw can then
     never fall past the end. *)
  let norm = !total in
  for rank = 0 to n - 1 do
    cdf.(rank) <- cdf.(rank) /. norm
  done;
  cdf.(n - 1) <- 1.0;
  { n; theta; cdf }

let n t = t.n
let theta t = t.theta

(* Probability mass of one rank (0-based), for distribution tests. *)
let pmf t rank =
  if rank < 0 || rank >= t.n then invalid_arg "Zipf.pmf: rank out of range";
  if rank = 0 then t.cdf.(0) else t.cdf.(rank) -. t.cdf.(rank - 1)

(* Binary search for the least rank whose cumulative mass covers [u]. *)
let draw t rng =
  if t.theta = 0.0 then Rng.int rng t.n
  else begin
    let u = Rng.float rng 1.0 in
    let lo = ref 0 and hi = ref (t.n - 1) in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if t.cdf.(mid) < u then lo := mid + 1 else hi := mid
    done;
    !lo
  end

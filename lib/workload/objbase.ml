open Simcore

type spec = { classes : int; objects : int; fanout : int; depth : int }

type t = {
  spec : spec;
  class_of : int array;
  refs : int array array;
  roots : int array;
  instances : int array array;
}

let validate_spec s =
  let fail fmt = Printf.ksprintf invalid_arg fmt in
  if s.objects < 1 then fail "Objbase: need at least one object (got %d)" s.objects;
  if s.classes < 1 || s.classes > s.objects then
    fail
      "Objbase: class count %d outside [1, %d] (at most one class per object)"
      s.classes s.objects;
  if s.fanout < 1 || s.fanout > 64 then
    fail
      "Objbase: reference fan-out %d outside [1, 64] (mean references per \
       non-leaf object)"
      s.fanout;
  if s.depth < 1 || s.depth > 64 then
    fail "Objbase: graph depth %d outside [1, 64] (levels of the reference DAG)"
      s.depth;
  if s.depth > s.objects then
    fail "Objbase: graph depth %d exceeds the %d-object population" s.depth
      s.objects

(* Objects are partitioned into [depth] contiguous levels; an object's
   references point one level down.  Contiguity matters: it makes the
   Sequential placement policy lay each level out in runs of whole
   pages, giving the clustering sweep a mid-quality reference point
   between depth-first placement and random scatter. *)
let level_of s i = i * s.depth / s.objects
let level_start s l = (l * s.objects + s.depth - 1) / s.depth
let level_end s l = if l = s.depth - 1 then s.objects else level_start s (l + 1)

let generate spec ~seed =
  validate_spec spec;
  let rng = Rng.create ~seed in
  let class_of =
    Array.init spec.objects (fun _ -> Rng.int rng spec.classes)
  in
  (* Per-object fan-out is uniform in [1, 2*fanout-1], mean exactly
     [fanout]; targets are distinct objects of the next level. *)
  let refs =
    Array.init spec.objects (fun i ->
        let l = level_of spec i in
        if l = spec.depth - 1 then [||]
        else begin
          let lo = level_start spec (l + 1) in
          let hi = level_end spec (l + 1) in
          let size = hi - lo in
          let k = min size (Rng.int_in rng ~lo:1 ~hi:((2 * spec.fanout) - 1)) in
          Array.map
            (fun off -> lo + off)
            (Rng.sample_without_replacement rng ~k ~n:size)
        end)
  in
  let roots = Array.init (level_end spec 0) (fun i -> i) in
  let counts = Array.make spec.classes 0 in
  Array.iter (fun c -> counts.(c) <- counts.(c) + 1) class_of;
  let instances = Array.map (fun n -> Array.make n 0) counts in
  let fill = Array.make spec.classes 0 in
  Array.iteri
    (fun i c ->
      instances.(c).(fill.(c)) <- i;
      fill.(c) <- fill.(c) + 1)
    class_of;
  { spec; class_of; refs; roots; instances }

let num_objects t = t.spec.objects
let num_classes t = t.spec.classes

let edge_count t =
  Array.fold_left (fun acc rs -> acc + Array.length rs) 0 t.refs

let mean_fanout t =
  let non_leaf =
    if t.spec.depth = 1 then 0 else level_start t.spec (t.spec.depth - 1)
  in
  if non_leaf = 0 then 0.0
  else float_of_int (edge_count t) /. float_of_int non_leaf

(* Longest reference path, in objects.  The graph is layered, so a
   memoized downward walk is linear. *)
let max_depth t =
  let memo = Array.make t.spec.objects (-1) in
  let rec go i =
    if memo.(i) >= 0 then memo.(i)
    else begin
      let d =
        Array.fold_left (fun acc j -> max acc (1 + go j)) 1 t.refs.(i)
      in
      memo.(i) <- d;
      d
    end
  in
  Array.fold_left (fun acc r -> max acc (go r)) 0 t.roots

(** Object-placement (clustering) policies.

    A policy maps every object of an {!Objbase.t} to a dense storage
    position; position [p] lives at page [p / objects_per_page], slot
    [p mod objects_per_page].  Placement decides page co-residency,
    which is {e the} lever on page-grain false sharing: a depth-first
    layout keeps a traversal on few pages, a random scatter spreads it
    over many. *)

type policy =
  | Sequential  (** creation order: levels laid out in contiguous runs *)
  | Dfs_ref  (** depth-first by reference: referents co-located *)
  | Scatter  (** seed-deterministic random permutation: worst case *)

val all : policy list
val name : policy -> string
val of_string : string -> policy option

val layout : policy -> Objbase.t -> seed:int -> int array
(** Object -> position bijection on [\[0, objects)]; deterministic in
    [(policy, base, seed)]. *)

val oid_of : pos:int array -> objects_per_page:int -> int -> Storage.Ids.Oid.t

val quality : Objbase.t -> pos:int array -> objects_per_page:int -> float
(** Fraction of reference edges with both endpoints on one page
    (1.0 when the base has no edges). *)

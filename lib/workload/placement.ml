open Simcore

type policy = Sequential | Dfs_ref | Scatter

let all = [ Sequential; Dfs_ref; Scatter ]
let name = function Sequential -> "seq" | Dfs_ref -> "dfs" | Scatter -> "scatter"

let of_string s =
  match String.lowercase_ascii s with
  | "seq" | "sequential" -> Some Sequential
  | "dfs" | "dfs-ref" | "depth-first" -> Some Dfs_ref
  | "scatter" | "random" -> Some Scatter
  | _ -> None

(* Object -> dense storage position; the caller turns positions into
   (page, slot) pairs.  Each policy is a bijection on [0, objects). *)
let layout policy (base : Objbase.t) ~seed =
  let n = Objbase.num_objects base in
  match policy with
  | Sequential -> Array.init n (fun i -> i)
  | Scatter ->
    let perm = Array.init n (fun i -> i) in
    Rng.shuffle (Rng.create ~seed) perm;
    let pos = Array.make n 0 in
    (* perm.(p) is the object stored at position p; invert. *)
    Array.iteri (fun p obj -> pos.(obj) <- p) perm;
    pos
  | Dfs_ref ->
    (* Discovery order of a depth-first walk from each root, children
       in reference order: an object lands next to the referents its
       traversals will touch, maximizing page co-residency. *)
    let pos = Array.make n (-1) in
    let next = ref 0 in
    let place obj =
      if pos.(obj) < 0 then begin
        pos.(obj) <- !next;
        incr next;
        true
      end
      else false
    in
    let stack = Stack.create () in
    Array.iter
      (fun root ->
        Stack.push root stack;
        while not (Stack.is_empty stack) do
          let obj = Stack.pop stack in
          if place obj then
            (* Push in reverse so the first reference is visited first. *)
            for k = Array.length base.Objbase.refs.(obj) - 1 downto 0 do
              let child = base.Objbase.refs.(obj).(k) in
              if pos.(child) < 0 then Stack.push child stack
            done
        done)
      base.Objbase.roots;
    (* Objects unreachable from any root keep creation order at the end. *)
    for obj = 0 to n - 1 do
      ignore (place obj)
    done;
    pos

let oid_of ~pos ~objects_per_page obj =
  let p = pos.(obj) in
  Storage.Ids.Oid.make ~page:(p / objects_per_page)
    ~slot:(p mod objects_per_page)

(* Clustering quality: the fraction of reference edges whose endpoints
   share a page.  This is the lever page-grain protocols feel — a
   traversal over co-resident objects touches few pages, a scattered
   one drags a page in (and locks it) per object. *)
let quality (base : Objbase.t) ~pos ~objects_per_page =
  let edges = ref 0 and local = ref 0 in
  Array.iteri
    (fun i rs ->
      Array.iter
        (fun j ->
          incr edges;
          if pos.(i) / objects_per_page = pos.(j) / objects_per_page then
            incr local)
        rs)
    base.Objbase.refs;
  if !edges = 0 then 1.0 else float_of_int !local /. float_of_int !edges

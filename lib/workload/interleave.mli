(** Object remapping for the Interleaved PRIVATE workload (Section 5.5).

    The hot regions of client pairs (0,1), (2,3), ... are combined: the
    hot objects of the even client move to the top half of each page of
    the combined region, and those of the odd client to the bottom half.
    The result is an extreme false-sharing workload — each page of a
    combined region carries hot objects of exactly two clients — while
    every client still accesses the {e same objects} as in PRIVATE. *)

open Storage

val remap :
  hot_pages_per_client:int ->
  objects_per_page:int ->
  num_clients:int ->
  Ids.Oid.t ->
  Ids.Oid.t
(** Relocate an object.  Objects outside the private hot area (i.e. in
    the shared cold region) are returned unchanged.  Client [i]'s hot
    region is assumed to be pages
    [i * hot_pages_per_client .. (i+1) * hot_pages_per_client - 1].
    [objects_per_page] must be even; with an odd [num_clients] the last
    client keeps its original layout (it has no partner). *)

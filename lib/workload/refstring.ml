open Storage
open Simcore

type op = { oid : Ids.Oid.t; write : bool }
type t = op array

(* Draw [n] distinct pages, each independently routed to the hot or cold
   region; duplicates are rejected and redrawn.  If one region becomes
   exhausted the draw falls through to the other, so generation always
   terminates when Wparams.validate accepted the workload. *)
let draw_pages rng (c : Wparams.per_client) n =
  let chosen = Hashtbl.create (2 * n) in
  let pick_in (r : Wparams.region) =
    Rng.int_in rng ~lo:r.first ~hi:r.last
  in
  let region_full (r : Wparams.region) =
    let size = Wparams.region_size r in
    let inside = Hashtbl.fold (fun p () acc ->
        if Wparams.in_region r p then acc + 1 else acc) chosen 0 in
    inside >= size
  in
  let out = ref [] in
  let count = ref 0 in
  while !count < n do
    let want_hot =
      match c.hot_region with
      | None -> false
      | Some hr ->
        if region_full hr then false
        else if region_full c.cold_region then true
        else Rng.bool rng ~p:c.hot_access_prob
    in
    let p =
      match (want_hot, c.hot_region) with
      | true, Some hr -> pick_in hr
      | true, None -> assert false
      | false, _ -> pick_in c.cold_region
    in
    if not (Hashtbl.mem chosen p) then begin
      Hashtbl.add chosen p ();
      out := p :: !out;
      incr count
    end
  done;
  List.rev !out

let write_prob_for (c : Wparams.per_client) page =
  match c.hot_region with
  | Some hr when Wparams.in_region hr page -> c.hot_write_prob
  | Some _ | None -> c.cold_write_prob

let generate_preset ~rng ~params ~client ~objects_per_page =
  let c = params.Wparams.clients.(client) in
  let pages = draw_pages rng c params.trans_size in
  let per_page_ops =
    List.map
      (fun page ->
        let k =
          Rng.int_in rng ~lo:params.page_locality.lo
            ~hi:(min params.page_locality.hi objects_per_page)
        in
        let slots = Rng.sample_without_replacement rng ~k ~n:objects_per_page in
        let wp = write_prob_for c page in
        Array.map
          (fun slot ->
            { oid = Ids.Oid.make ~page ~slot; write = Rng.bool rng ~p:wp })
          slots)
      pages
  in
  let ops =
    match params.access_pattern with
    | Clustered -> Array.concat per_page_ops
    | Unclustered ->
      let all = Array.concat per_page_ops in
      Rng.shuffle rng all;
      all
  in
  match params.remap with
  | None -> ops
  | Some f -> Array.map (fun op -> { op with oid = f op.oid }) ops

(* Generic object-base workloads bypass the preset hot/cold page draw
   entirely: the object base fixes which objects exist and the placement
   fixes where they live, so the generator emits oids directly. *)
let generate ~rng ~params ~client ~objects_per_page =
  match params.Wparams.generic with
  | Some g ->
    Array.map (fun (oid, write) -> { oid; write }) (Generic.generate g ~rng)
  | None -> generate_preset ~rng ~params ~client ~objects_per_page

let pages t =
  let seen = Hashtbl.create 32 in
  let out = ref [] in
  Array.iter
    (fun op ->
      let p = op.oid.Ids.Oid.page in
      if not (Hashtbl.mem seen p) then begin
        Hashtbl.add seen p ();
        out := p :: !out
      end)
    t;
  List.rev !out

let object_count t = Array.length t

let write_count t =
  Array.fold_left (fun acc op -> if op.write then acc + 1 else acc) 0 t

(** The paper's workload suite (Table 2 and Section 5.5).

    Region sizes are expressed as fractions of the database so that the
    scaled-up experiments of Section 5.6.1 (database and buffers x9)
    keep the same sharing structure:

    - HOTCOLD: per-client hot region of [db/25] pages (50 of 1250), 80%
      of accesses hot, remainder uniform over the whole database;
    - UNIFORM: uniform over the whole database;
    - HICON: one shared hot region of [db/5] pages (250 of 1250), 80% of
      accesses hot — the very-high-contention stress case;
    - PRIVATE: per-client private hot region of [db/50] pages (25 of
      1250), cold accesses uniform over the read-only second half of the
      database, cold write probability 0;
    - Interleaved PRIVATE: PRIVATE with hot objects of client pairs
      physically interleaved (see {!Interleave}). *)

type name = Hotcold | Uniform | Hicon | Private_ | Interleaved_private

val all : name list
val name_to_string : name -> string
val name_of_string : string -> name option

type locality = Low | High
(** [Low]: trans_size 30 pages, 1-7 objects/page (avg 4).
    [High]: trans_size 10 pages, 8-16 objects/page (avg 12).
    Both average 120 objects per transaction. *)

val locality_range : locality -> Wparams.range
val default_trans_size : locality -> int

val make :
  ?trans_size:int ->
  ?page_locality:Wparams.range ->
  ?access_pattern:Wparams.access_pattern ->
  ?per_object_read_instr:float ->
  ?think_time:float ->
  name ->
  db_pages:int ->
  objects_per_page:int ->
  num_clients:int ->
  locality:locality ->
  write_prob:float ->
  Wparams.t
(** Build a workload.  [write_prob] is the per-object update probability
    (the x-axis of every throughput figure); it applies to both regions
    except for PRIVATE's read-only cold region.  [trans_size] and
    [page_locality] default from [locality]; PRIVATE with [Low] locality
    uses the paper's footnote setting (13 pages, 8-16 objects) since a
    30-page transaction does not fit a 25-page hot region. *)

val ocb :
  ?classes:int ->
  ?objects:int ->
  ?fanout:int ->
  ?depth:int ->
  ?policy:Placement.policy ->
  ?theta:float ->
  ?mix:Generic.mix ->
  ?traversal_depth:int ->
  ?traversal_cap:int ->
  ?match_size:int ->
  ?update_size:int ->
  ?per_object_read_instr:float ->
  ?think_time:float ->
  ?arrival:Arrival.t ->
  ?seed:int ->
  db_pages:int ->
  objects_per_page:int ->
  num_clients:int ->
  write_prob:float ->
  unit ->
  Wparams.t
(** An OCB-style generic object-base workload as a [Wparams.t]: the
    classic preset fields are inert placeholders and the [generic]
    payload (see {!Generic.make} for knob defaults) drives transaction
    generation.  [seed] (default 42) fixes the object base and layout
    independently of the simulation seed; [arrival] optionally shapes
    client traffic. *)

(** Generic object-base model (OCB-style).

    A seed-deterministic population of objects, each assigned a class,
    linked by an inter-object reference DAG with tunable fan-out and
    depth: objects split into [depth] contiguous levels and every
    non-leaf object references a uniform [1, 2*fanout-1] (mean
    [fanout]) distinct objects of the next level.  Level-0 objects are
    the traversal roots.  [generate] is a pure function of [(spec,
    seed)], so any worker that rebuilds the base gets bit-identical
    arrays — the property behind jobs=1 == jobs=N reproducibility. *)

type spec = {
  classes : int;  (** distinct object classes, in [1, objects] *)
  objects : int;  (** population size *)
  fanout : int;  (** mean references per non-leaf object, in [1, 64] *)
  depth : int;  (** levels of the reference DAG, in [1, 64] *)
}

type t = {
  spec : spec;
  class_of : int array;  (** object -> class *)
  refs : int array array;  (** object -> referenced objects (next level) *)
  roots : int array;  (** the level-0 objects *)
  instances : int array array;  (** class -> member objects, ascending *)
}

val validate_spec : spec -> unit
(** Raises [Invalid_argument] with a friendly message on an
    out-of-range knob. *)

val generate : spec -> seed:int -> t
(** Build the object base; validates the spec first. *)

val level_of : spec -> int -> int
val num_objects : t -> int
val num_classes : t -> int
val edge_count : t -> int

val mean_fanout : t -> float
(** Edges per non-leaf object (empirically near [spec.fanout]). *)

val max_depth : t -> int
(** Longest root-to-leaf reference path, in objects (at most
    [spec.depth]). *)

(** Zipf-distributed rank sampling for skewed hotspot access.

    Rank [r] (0-based) is drawn with probability proportional to
    [1/(r+1)^theta]: [theta = 0] is uniform, [theta = 1] the classic
    Zipf law, larger values sharpen the hotspot.  The cumulative table
    is precomputed, so a draw costs one uniform float and a binary
    search — and exactly one RNG draw either way, keeping event
    schedules insensitive to the skew setting. *)

type t

val make : n:int -> theta:float -> t
(** Raises [Invalid_argument] with a friendly message when [n <= 0] or
    [theta] is outside [0, 4]. *)

val n : t -> int
val theta : t -> float

val draw : t -> Simcore.Rng.t -> int
(** A rank in [\[0, n)], skewed towards 0. *)

val pmf : t -> int -> float
(** Probability mass of a rank, for distribution tests. *)

type name = Hotcold | Uniform | Hicon | Private_ | Interleaved_private

let all = [ Hotcold; Uniform; Hicon; Private_; Interleaved_private ]

let name_to_string = function
  | Hotcold -> "HOTCOLD"
  | Uniform -> "UNIFORM"
  | Hicon -> "HICON"
  | Private_ -> "PRIVATE"
  | Interleaved_private -> "INTERLEAVED-PRIVATE"

let name_of_string s =
  match String.uppercase_ascii s with
  | "HOTCOLD" -> Some Hotcold
  | "UNIFORM" -> Some Uniform
  | "HICON" -> Some Hicon
  | "PRIVATE" -> Some Private_
  | "INTERLEAVED-PRIVATE" | "INTERLEAVED_PRIVATE" | "INTERLEAVED" ->
    Some Interleaved_private
  | _ -> None

type locality = Low | High

let locality_range = function
  | Low -> { Wparams.lo = 1; hi = 7 }
  | High -> { Wparams.lo = 8; hi = 16 }

let default_trans_size = function Low -> 30 | High -> 10

let whole_db ~db_pages = { Wparams.first = 0; last = db_pages - 1 }

let hot_region_of ~db_pages ~num_clients which client =
  match which with
  | Uniform -> None
  | Hicon ->
    (* One shared skewed region: db/5 pages (250 of 1250). *)
    Some { Wparams.first = 0; last = (db_pages / 5) - 1 }
  | Hotcold ->
    let span = db_pages / 25 (* 50 of 1250 *) in
    Some { Wparams.first = client * span; last = ((client + 1) * span) - 1 }
  | Private_ | Interleaved_private ->
    let span = db_pages / 50 (* 25 of 1250 *) in
    ignore num_clients;
    Some { Wparams.first = client * span; last = ((client + 1) * span) - 1 }

let make ?trans_size ?page_locality ?(access_pattern = Wparams.Unclustered)
    ?(per_object_read_instr = 10_000.0) ?(think_time = 0.0) which ~db_pages
    ~objects_per_page ~num_clients ~locality ~write_prob =
  let is_private =
    match which with Private_ | Interleaved_private -> true | _ -> false
  in
  let trans_size =
    match trans_size with
    | Some n -> n
    | None ->
      if is_private && locality = Low then 13
        (* paper footnote: 30-page transactions do not fit PRIVATE's
           25-page hot regions; they used transSize=13, locality ~8 *)
      else default_trans_size locality
  in
  let page_locality =
    match page_locality with
    | Some r -> r
    | None ->
      if is_private && locality = Low then { Wparams.lo = 4; hi = 12 }
      else locality_range locality
  in
  (* The partitioned presets carve one hot region per client out of a
     fixed fraction of the database, so they only support a bounded
     population; fail with the bound (rather than a bare out-of-range
     region error from [Wparams.validate]) so large-population runs are
     steered to the shared-region presets. *)
  (match which with
  | Hotcold | Private_ | Interleaved_private ->
    let denom = match which with Hotcold -> 25 | _ -> 50 in
    let span = db_pages / denom in
    let supported = if span = 0 then 0 else db_pages / span in
    if num_clients > supported then
      invalid_arg
        (Printf.sprintf
           "Presets: %s gives each client a private hot region of %d pages \
            (db_pages/%d), so at most %d clients fit a %d-page database; \
            use UNIFORM or HICON for larger populations"
           (name_to_string which) span denom supported db_pages)
  | Uniform | Hicon -> ());
  let clients =
    Array.init num_clients (fun client ->
        let hot_region = hot_region_of ~db_pages ~num_clients which client in
        let cold_region =
          if is_private then
            (* Shared, read-only second half of the database. *)
            { Wparams.first = db_pages / 2; last = db_pages - 1 }
          else whole_db ~db_pages
        in
        {
          Wparams.hot_region;
          cold_region;
          hot_access_prob = (match which with Uniform -> 0.0 | _ -> 0.8);
          hot_write_prob = write_prob;
          cold_write_prob = (if is_private then 0.0 else write_prob);
        })
  in
  let remap =
    match which with
    | Interleaved_private ->
      let hot_pages_per_client = db_pages / 50 in
      Some
        (Interleave.remap ~hot_pages_per_client ~objects_per_page ~num_clients)
    | _ -> None
  in
  let params =
    {
      Wparams.name = name_to_string which;
      trans_size;
      page_locality;
      access_pattern;
      per_object_read_instr;
      per_object_write_instr = 2.0 *. per_object_read_instr;
      think_time;
      clients;
      remap;
      generic = None;
      arrival = None;
    }
  in
  Wparams.validate params ~db_pages ~objects_per_page;
  params

(* --- Generic (OCB-style) workloads ------------------------------------- *)

(* The generic object-base workload wrapped as a [Wparams.t]: the
   preset fields are inert placeholders that satisfy [validate]; the
   [generic] payload drives transaction generation.  All knobs default
   to the values documented in {!Generic.make}. *)
let ocb ?classes ?objects ?fanout ?depth ?policy ?theta ?mix ?traversal_depth
    ?traversal_cap ?match_size ?update_size ?(per_object_read_instr = 10_000.0)
    ?(think_time = 0.0) ?arrival ?(seed = 42) ~db_pages ~objects_per_page
    ~num_clients ~write_prob () =
  let g =
    Generic.make ?classes ?objects ?fanout ?depth ?policy ?theta ?mix
      ?traversal_depth ?traversal_cap ?match_size ?update_size ~write_prob
      ~db_pages ~objects_per_page ~seed ()
  in
  let clients =
    Array.init num_clients (fun _ ->
        {
          Wparams.hot_region = None;
          cold_region = whole_db ~db_pages;
          hot_access_prob = 0.0;
          hot_write_prob = 0.0;
          cold_write_prob = 0.0;
        })
  in
  let params =
    {
      Wparams.name = Generic.name g;
      trans_size = 1;
      page_locality = { Wparams.lo = 1; hi = 1 };
      access_pattern = Wparams.Clustered;
      per_object_read_instr;
      per_object_write_instr = 2.0 *. per_object_read_instr;
      think_time;
      clients;
      remap = None;
      generic = Some g;
      arrival;
    }
  in
  Wparams.validate params ~db_pages ~objects_per_page;
  params

(** Transaction reference-string generation.

    "Client transactions themselves are each modeled as a string of
    object references (i.e., object reads and writes).  When a client
    transaction aborts, it is resubmitted with the same object reference
    string." (Section 4.1) — so a transaction is generated once as an
    immutable array of operations and replayed verbatim on restart. *)

open Storage

type op = {
  oid : Ids.Oid.t;
  write : bool;
      (** a write is a read access that leads to an update of the same
          object (Section 4.2: update probability applies to reads) *)
}

type t = op array

val generate :
  rng:Simcore.Rng.t ->
  params:Wparams.t ->
  client:int ->
  objects_per_page:int ->
  t
(** Draw one transaction for [client]: [trans_size] distinct pages
    (hot with probability [hot_access_prob], without replacement),
    a uniform [page_locality] number of distinct objects on each, a
    per-object update flag, ordered per the access pattern, and finally
    run through [remap] if the workload relocates objects. *)

val pages : t -> Ids.page list
(** Distinct pages referenced, in first-reference order. *)

val object_count : t -> int
val write_count : t -> int

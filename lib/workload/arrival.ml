type t = {
  diurnal_period : float;
  diurnal_amp : float;
  flash_at : float;
  flash_duration : float;
  flash_boost : float;
}

let off =
  {
    diurnal_period = 0.0;
    diurnal_amp = 0.0;
    flash_at = 0.0;
    flash_duration = 0.0;
    flash_boost = 1.0;
  }

let is_off t =
  (t.diurnal_period = 0.0 || t.diurnal_amp = 0.0)
  && (t.flash_duration = 0.0 || t.flash_boost = 1.0)

let validate t =
  let fail fmt = Printf.ksprintf invalid_arg fmt in
  if t.diurnal_period < 0.0 then
    fail "Arrival: diurnal period %.3f must be >= 0 (0 = off)" t.diurnal_period;
  if t.diurnal_amp < 0.0 || t.diurnal_amp >= 1.0 then
    fail
      "Arrival: diurnal amplitude %.3f outside [0, 1) (1 would stall the \
       trough entirely)"
      t.diurnal_amp;
  if t.diurnal_amp > 0.0 && t.diurnal_period = 0.0 then
    fail "Arrival: diurnal amplitude %.3f needs a positive period"
      t.diurnal_amp;
  if t.flash_at < 0.0 then fail "Arrival: flash-crowd start %.3f must be >= 0" t.flash_at;
  if t.flash_duration < 0.0 then
    fail "Arrival: flash-crowd duration %.3f must be >= 0" t.flash_duration;
  if t.flash_boost < 1.0 || t.flash_boost > 100.0 then
    fail
      "Arrival: flash-crowd boost %.3f outside [1, 100] (arrival-rate \
       multiplier during the crowd)"
      t.flash_boost

let pi = 4.0 *. atan 1.0

(* Instantaneous arrival-rate multiplier: 1.0 at rest, raised during a
   flash crowd, modulated sinusoidally over the diurnal period. *)
let rate_factor t ~now =
  let diurnal =
    if t.diurnal_period > 0.0 && t.diurnal_amp > 0.0 then
      1.0 +. (t.diurnal_amp *. sin (2.0 *. pi *. now /. t.diurnal_period))
    else 1.0
  in
  let flash =
    if
      t.flash_duration > 0.0 && now >= t.flash_at
      && now < t.flash_at +. t.flash_duration
    then t.flash_boost
    else 1.0
  in
  diurnal *. flash

(* Think times scale inversely with the arrival rate: a 3x crowd
   submits three times as fast. *)
let think t ~base ~now = base /. rate_factor t ~now

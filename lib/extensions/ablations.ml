open Oodb_core

type row = { label : string; result : Runner.result }

let pp_rows ppf (title, rows) =
  Format.fprintf ppf "@[<v>%s@," title;
  Format.fprintf ppf "%-44s %8s %9s %8s %7s %7s@," "configuration" "tps"
    "msgs/c" "KB/c" "srvCPU" "disk";
  List.iter
    (fun { label; result = r } ->
      Format.fprintf ppf "%-44s %8.2f %9.1f %8.1f %7.2f %7.2f@," label
        r.Runner.throughput r.Runner.msgs_per_commit r.Runner.kbytes_per_commit
        r.Runner.server_cpu_util r.Runner.disk_util)
    rows;
  Format.fprintf ppf "@]"

let windows time_scale = (30.0 *. time_scale, 120.0 *. time_scale)

(* Describe one ablation cell; nothing runs until an executor is
   applied. *)
let cell ?(time_scale = 1.0) ?think_time ~cfg ~algo ~which ~locality
    ~write_prob ~sweep ~label () =
  let warmup, measure = windows time_scale in
  let params =
    Workload.Presets.make which ?think_time ~db_pages:cfg.Config.db_pages
      ~objects_per_page:cfg.Config.objects_per_page
      ~num_clients:cfg.Config.num_clients ~locality ~write_prob
  in
  Job.make ~sweep ~label ~cfg ~algo ~params ~warmup ~measure ()

let commit_mode ?(time_scale = 1.0) () =
  {
    Job.title = "ablation: commit processing (merge-at-server vs redo-at-server)";
    jobs =
      List.concat_map
        (fun (mode, mode_name) ->
          List.concat_map
            (fun algo ->
              List.map
                (fun wp ->
                  let cfg =
                    { Config.default with Config.commit_mode = mode }
                  in
                  cell ~time_scale ~cfg ~algo ~which:Workload.Presets.Hotcold
                    ~locality:Workload.Presets.Low ~write_prob:wp
                    ~sweep:"abl-commit"
                    ~label:
                      (Printf.sprintf "%-14s %-6s wp=%.2f" mode_name
                         (Algo.to_string algo) wp)
                    ())
                [ 0.05; 0.2 ])
            [ Algo.PS; Algo.PS_AA ])
        [ (Config.Ship_pages, "ship-pages"); (Config.Redo_at_server, "redo-log") ];
  }

let write_token ?(time_scale = 1.0) () =
  {
    Job.title = "ablation: concurrent page updates (merge vs write token)";
    jobs =
      List.concat_map
        (fun (mode, mode_name) ->
          List.concat_map
            (fun algo ->
              List.map
                (fun wp ->
                  let cfg =
                    { Config.default with Config.update_mode = mode }
                  in
                  cell ~time_scale ~cfg ~algo
                    ~which:Workload.Presets.Interleaved_private
                    ~locality:Workload.Presets.High ~write_prob:wp
                    ~sweep:"abl-token"
                    ~label:
                      (Printf.sprintf "%-12s %-6s wp=%.2f" mode_name
                         (Algo.to_string algo) wp)
                    ())
                [ 0.1; 0.3 ])
            [ Algo.PS_OO; Algo.PS_AA ])
        [ (Config.Merge, "merge"); (Config.Write_token, "write-token") ];
  }

let group_size ?(time_scale = 1.0) () =
  {
    Job.title = "ablation: grouped-object server (OS transfer group size)";
    jobs =
      List.concat_map
        (fun locality ->
          List.map
            (fun g ->
              let cfg = { Config.default with Config.os_group_size = g } in
              cell ~time_scale ~cfg ~algo:Algo.OS
                ~which:Workload.Presets.Hotcold ~locality ~write_prob:0.05
                ~sweep:"abl-group"
                ~label:
                  (Printf.sprintf "OS group=%-2d locality=%s" g
                     (match locality with
                     | Workload.Presets.Low -> "low"
                     | Workload.Presets.High -> "high"))
                ())
            [ 1; 5; 10; 20 ])
        [ Workload.Presets.Low; Workload.Presets.High ];
  }

let overflow ?(time_scale = 1.0) () =
  {
    Job.title = "ablation: size-changing updates and page overflow";
    jobs =
      List.map
        (fun scp ->
          let cfg =
            {
              Config.default with
              Config.size_change_prob = scp;
              overflow_prob = 0.1;
            }
          in
          cell ~time_scale ~cfg ~algo:Algo.PS_AA
            ~which:Workload.Presets.Hotcold ~locality:Workload.Presets.Low
            ~write_prob:0.2 ~sweep:"abl-overflow"
            ~label:(Printf.sprintf "size-change prob=%.2f" scp)
            ())
        [ 0.0; 0.2; 0.5; 1.0 ];
  }

let think_time ?(time_scale = 1.0) () =
  {
    Job.title = "ablation: client think time (closed-system load)";
    jobs =
      List.map
        (fun think ->
          cell ~time_scale ~think_time:think ~cfg:Config.default
            ~algo:Algo.PS_AA ~which:Workload.Presets.Hotcold
            ~locality:Workload.Presets.Low ~write_prob:0.1 ~sweep:"abl-think"
            ~label:(Printf.sprintf "think time %.1fs" think)
            ())
        [ 0.0; 0.5; 2.0 ];
  }

let faults ?(time_scale = 1.0) () =
  {
    Job.title = "ablation: fault storm (crash/loss/stall) vs fault-free";
    jobs =
      List.concat_map
        (fun (profile, pname) ->
          List.map
            (fun algo ->
              let cfg = { Config.default with Config.faults = profile } in
              cell ~time_scale ~cfg ~algo ~which:Workload.Presets.Hotcold
                ~locality:Workload.Presets.Low ~write_prob:0.1
                ~sweep:"abl-faults"
                ~label:
                  (Printf.sprintf "%-11s %-6s wp=0.10" pname
                     (Algo.to_string algo))
                ())
            Algo.all)
        [ (Faults.off, "fault-free"); (Faults.storm ~rate:0.02, "storm-0.02") ];
  }

let tables ?(time_scale = 1.0) () =
  [
    commit_mode ~time_scale ();
    write_token ~time_scale ();
    group_size ~time_scale ();
    overflow ~time_scale ();
    think_time ~time_scale ();
    faults ~time_scale ();
  ]

let rows_of (tbl : Job.table) results =
  ( tbl.Job.title,
    List.map2 (fun (j : Job.t) r -> { label = j.Job.label; result = r })
      tbl.Job.jobs results )

let all ?(time_scale = 1.0) ?(run = Job.run_all) () =
  List.map
    (fun tbl -> rows_of tbl (run tbl.Job.jobs))
    (tables ~time_scale ())

(** Runnable ablations for the paper's Section 6 discussion points and
    for the simulator's own design choices (see DESIGN.md's ablation
    index).  Each driver {e describes} a small grid of simulations as a
    {!Oodb_core.Job.table}; an executor (sequential
    {!Oodb_core.Job.run_all} or the parallel [Harness.Pool]) produces
    the results, and {!rows_of} zips them into labelled rows;
    {!pp_rows} renders them as a table. *)

type row = { label : string; result : Oodb_core.Runner.result }

val pp_rows : Format.formatter -> string * row list -> unit
(** Print a titled ablation table. *)

val commit_mode : ?time_scale:float -> unit -> Oodb_core.Job.table
(** Merge-at-server (ship dirty pages) vs redo-at-server (ship log
    records, replay at the server): Section 6.1 predicts redo saves
    client-server data volume but burdens the server with the replay
    work, eroding data-shipping's offload advantage. *)

val write_token : ?time_scale:float -> unit -> Oodb_core.Job.table
(** Merging concurrent page updates vs the write-token approach
    ([Moha91]; the paper's stated future work).  Run on Interleaved
    PRIVATE, whose false sharing makes pages bounce. *)

val group_size : ?time_scale:float -> unit -> Oodb_core.Job.table
(** Object server with grouped-object transfer (Section 6.2): group
    sizes 1 (pure OS) to 20 (page-sized groups), showing how grouping
    recovers the page server's transfer economy but not its consistency
    economy. *)

val overflow : ?time_scale:float -> unit -> Oodb_core.Job.table
(** Size-changing updates and page overflow (Section 6.1): forwarding
    costs as the fraction of growing updates rises. *)

val think_time : ?time_scale:float -> unit -> Oodb_core.Job.table
(** Closed-system load sensitivity: client think time between
    transactions. *)

val faults : ?time_scale:float -> unit -> Oodb_core.Job.table
(** Fault-free vs a {!Faults.storm} at rate 0.02 for every protocol:
    how gracefully each sharing protocol degrades when clients crash,
    messages drop/duplicate and disks stall. *)

val tables : ?time_scale:float -> unit -> Oodb_core.Job.table list
(** All six ablation grids, as job tables. *)

val rows_of :
  Oodb_core.Job.table -> Oodb_core.Runner.result list -> string * row list
(** Zip a table's jobs with their results (same order) into printable
    rows. *)

val all :
  ?time_scale:float ->
  ?run:(Oodb_core.Job.t list -> Oodb_core.Runner.result list) ->
  unit ->
  (string * row list) list
(** Describe and execute every ablation.  [run] is the job executor;
    the default runs sequentially. *)

(** Runnable ablations for the paper's Section 6 discussion points and
    for the simulator's own design choices (see DESIGN.md's ablation
    index).  Each driver runs a small grid of simulations and returns
    labelled rows; {!pp_rows} renders them as a table. *)

type row = { label : string; result : Oodb_core.Runner.result }

val pp_rows : Format.formatter -> string * row list -> unit
(** Print a titled ablation table. *)

val commit_mode : ?time_scale:float -> unit -> string * row list
(** Merge-at-server (ship dirty pages) vs redo-at-server (ship log
    records, replay at the server): Section 6.1 predicts redo saves
    client-server data volume but burdens the server with the replay
    work, eroding data-shipping's offload advantage. *)

val write_token : ?time_scale:float -> unit -> string * row list
(** Merging concurrent page updates vs the write-token approach
    ([Moha91]; the paper's stated future work).  Run on Interleaved
    PRIVATE, whose false sharing makes pages bounce. *)

val group_size : ?time_scale:float -> unit -> string * row list
(** Object server with grouped-object transfer (Section 6.2): group
    sizes 1 (pure OS) to 20 (page-sized groups), showing how grouping
    recovers the page server's transfer economy but not its consistency
    economy. *)

val overflow : ?time_scale:float -> unit -> string * row list
(** Size-changing updates and page overflow (Section 6.1): forwarding
    costs as the fraction of growing updates rises. *)

val think_time : ?time_scale:float -> unit -> string * row list
(** Closed-system load sensitivity: client think time between
    transactions. *)

val all : ?time_scale:float -> unit -> (string * row list) list

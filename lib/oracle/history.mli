(** Transaction-history recorder for the serializability oracle.

    The simulator ships no real data, so the oracle maintains a {e
    shadow version store}: every update allocates a fresh version id
    for its object, and the recorder mirrors where each version lives —
    at the server (including uncommitted versions shipped by dirty
    evictions) and in each client's cache — by observing the same cache
    install/drop/mark operations the protocols perform.  A read then
    records exactly which committed (or not!) version the transaction
    observed, without touching the protocols' control flow, RNG
    streams, or event schedule: recording is pure observation, so a run
    with the oracle attached is byte-identical to one without.

    The resulting history — per-transaction read (object, version)
    and write (object, version) sets, plus commit order — is what
    {!Checker.check} analyses. *)

open Storage

type version = int
(** [0] is the initial version of every object; positive ids are
    allocated per update and identify a unique (writer, object) pair. *)

type outcome =
  | Pending  (** still running (or in flight) at end of run *)
  | Committed of int  (** commit sequence number, 1-based *)
  | Aborted

type txn = {
  tid : int;
  client : int;
  mutable reads : (Ids.Oid.t * version * int) list;
      (** (object, version observed, logical stamp), newest first; own
          writes are never recorded as reads *)
  mutable writes : (Ids.Oid.t * version) list;
      (** one entry per distinct object updated, newest first *)
  mutable outcome : outcome;
  mutable end_stamp : int;  (** logical stamp of commit/abort; 0 if pending *)
}

type t

val create : clients:int -> t

(** {2 Recording hooks}

    All hooks are idempotent-friendly and tolerate unknown
    transactions (e.g. operations observed for a transaction recorded
    before the oracle was attached are ignored). *)

val begin_txn : t -> tid:int -> client:int -> unit

val read : t -> tid:int -> oid:Ids.Oid.t -> unit
(** Record that the transaction read [oid], observing the version its
    client's shadow cache currently holds (falling back to the last
    committed version when the client shadow has no entry). *)

val write : t -> tid:int -> oid:Ids.Oid.t -> unit
(** Record the transaction's first update of [oid]: allocates a fresh
    pending version and installs it in the writer's client shadow. *)

val ship : t -> tid:int -> oid:Ids.Oid.t -> unit
(** The transaction's uncommitted update of [oid] reached the server
    (dirty eviction or commit-time shipment): the server shadow now
    holds the pending version, so a (buggy) fetch of it is observable
    as a dirty read. *)

val commit : t -> tid:int -> unit
(** Assigns the next commit sequence number and promotes the
    transaction's versions to committed server state. *)

val abort : t -> tid:int -> unit
(** Marks the transaction aborted (no-op if already committed — a
    client crash after the server committed is still a commit) and
    rolls any of its versions out of the server shadow. *)

val install_copy : t -> client:int -> oid:Ids.Oid.t -> unit
(** The client received a copy of [oid] from the server: its shadow now
    holds the server's current version. *)

val drop_copy : t -> client:int -> oid:Ids.Oid.t -> unit
(** The client's copy of [oid] was purged, marked unavailable, or
    evicted. *)

val purge_client : t -> client:int -> unit
(** Crash: the client's whole shadow cache is gone. *)

(** {2 Queries} *)

val find_txn : t -> int -> txn option
val writer_of : t -> version -> int option
(** The transaction that created this version ([None] for version 0). *)

val committed : t -> txn list
(** Committed transactions in commit order. *)

val committed_count : t -> int
val op_count : t -> int
(** Total read and write operations recorded. *)

val dump : t -> string
(** Render the full history, one transaction per block, in begin
    order — the artifact uploaded by CI when the checker fires. *)

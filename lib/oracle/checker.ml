open Storage

exception Violation of string

type kind = WW | WR | RW

let kind_str = function WW -> "ww" | WR -> "wr" | RW -> "rw"

type edge = { src : int; dst : int; oid : Ids.Oid.t; kind : kind }

let pp_oid (oid : Ids.Oid.t) =
  Printf.sprintf "%d.%d" oid.Ids.Oid.page oid.Ids.Oid.slot

let pp_cycle cycle =
  let buf = Buffer.create 128 in
  (match cycle with
  | [] -> ()
  | first :: _ -> Buffer.add_string buf (Printf.sprintf "txn %d" first.src));
  List.iter
    (fun e ->
      Buffer.add_string buf
        (Printf.sprintf " -[%s %s]-> txn %d" (kind_str e.kind) (pp_oid e.oid)
           e.dst))
    cycle;
  Buffer.contents buf

(* DFS cycle search over the conflict graph.  [path] holds the edges
   from the DFS root to the current node, newest first; a back edge
   closes the cycle, which is reconstructed in forward order for the
   witness. *)
let find_cycle nodes adj =
  let state = Hashtbl.create 256 in
  let cycle_of path e =
    let rec take acc = function
      | [] -> acc
      | edge :: rest ->
        if edge.src = e.dst then edge :: acc else take (edge :: acc) rest
    in
    take [ e ] path
  in
  let rec dfs path tid =
    Hashtbl.replace state tid 1;
    let result =
      let rec go = function
        | [] -> None
        | e :: rest -> (
          match Hashtbl.find_opt state e.dst with
          | Some 1 -> Some (cycle_of path e)
          | Some _ -> go rest
          | None -> (
            match dfs (e :: path) e.dst with
            | Some _ as c -> c
            | None -> go rest))
      in
      go (Option.value ~default:[] (Hashtbl.find_opt adj tid))
    in
    if result = None then Hashtbl.replace state tid 2;
    result
  in
  List.find_map
    (fun tid -> if Hashtbl.mem state tid then None else dfs [] tid)
    nodes

type anomaly = { reader : History.txn; a_oid : Ids.Oid.t; message : string }

let check h =
  let committed = History.committed h in
  let cseq = Hashtbl.create 256 in
  List.iter
    (fun (txn : History.txn) ->
      match txn.History.outcome with
      | History.Committed n -> Hashtbl.replace cseq txn.History.tid n
      | _ -> assert false)
    committed;
  (* Per-object committed version chains, in commit order, and the
     successor map: (version) -> the next committed writer of the same
     object. *)
  let last_writer = Hashtbl.create 256 in
  (* oid -> (version, tid) of latest chain entry so far *)
  let succ = Hashtbl.create 256 in
  (* version -> (next writer tid); version 0 is per-object, keyed below *)
  let first_writer = Hashtbl.create 256 in
  (* oid -> first committed writer tid *)
  let edges = ref [] in
  let add_edge src dst oid kind =
    if src <> dst then edges := { src; dst; oid; kind } :: !edges
  in
  List.iter
    (fun (txn : History.txn) ->
      List.iter
        (fun (oid, v) ->
          (match Hashtbl.find_opt last_writer oid with
          | Some (pv, ptid) ->
            Hashtbl.replace succ pv txn.History.tid;
            add_edge ptid txn.History.tid oid WW
          | None -> Hashtbl.replace first_writer oid txn.History.tid);
          Hashtbl.replace last_writer oid (v, txn.History.tid))
        (List.rev txn.History.writes))
    committed;
  (* Read edges and read anomalies (recoverability / cascade-freedom),
     the latter only reported when the graph itself is clean so a cycle
     witness takes precedence. *)
  let anomalies = ref [] in
  let note_anomaly reader a_oid message =
    anomalies := { reader; a_oid; message } :: !anomalies
  in
  List.iter
    (fun (r : History.txn) ->
      List.iter
        (fun (oid, v, rstamp) ->
          (* rw: the reader precedes whatever committed version
             overwrote the one it observed. *)
          (if v = 0 then
             match Hashtbl.find_opt first_writer oid with
             | Some w -> add_edge r.History.tid w oid RW
             | None -> ()
           else
             match Hashtbl.find_opt succ v with
             | Some w -> add_edge r.History.tid w oid RW
             | None -> ());
          (* wr: the observed version's writer precedes the reader. *)
          if v > 0 then
            match History.writer_of h v with
            | None ->
              note_anomaly r oid
                (Printf.sprintf
                   "committed txn %d read unknown version v%d of %d.%d"
                   r.History.tid v oid.Ids.Oid.page oid.Ids.Oid.slot)
            | Some w when w = r.History.tid -> ()
            | Some w -> (
              match History.find_txn h w with
              | None -> ()
              | Some wt -> (
                match wt.History.outcome with
                | History.Committed _ ->
                  add_edge w r.History.tid oid WR;
                  if wt.History.end_stamp >= rstamp then
                    note_anomaly r oid
                      (Printf.sprintf
                         "dirty read: committed txn %d read %s = v%d before \
                          its writer txn %d committed"
                         r.History.tid (pp_oid oid) v w)
                | History.Aborted ->
                  note_anomaly r oid
                    (Printf.sprintf
                       "recoverability violation: committed txn %d read %s = \
                        v%d written by aborted txn %d"
                       r.History.tid (pp_oid oid) v w)
                | History.Pending ->
                  note_anomaly r oid
                    (Printf.sprintf
                       "dirty read: committed txn %d read %s = v%d written \
                        by txn %d, which never committed"
                       r.History.tid (pp_oid oid) v w))))
        (List.rev r.History.reads))
    committed;
  (* (a) conflict-serializability: no cycle. *)
  let adj = Hashtbl.create 256 in
  List.iter
    (fun e ->
      Hashtbl.replace adj e.src
        (e :: Option.value ~default:[] (Hashtbl.find_opt adj e.src)))
    !edges;
  let nodes = List.map (fun (t : History.txn) -> t.History.tid) committed in
  (match find_cycle nodes adj with
  | Some cycle -> raise (Violation ("serializability cycle: " ^ pp_cycle cycle))
  | None -> ());
  (* (b) the equivalent serial order must be the commit order (strict
     two-phase locking: every conflict edge points forward). *)
  List.iter
    (fun e ->
      let s = Hashtbl.find cseq e.src and d = Hashtbl.find cseq e.dst in
      if s >= d then
        raise
          (Violation
             (Printf.sprintf
                "conflict edge txn %d -[%s %s]-> txn %d contradicts commit \
                 order (committed #%d vs #%d)"
                e.src (kind_str e.kind) (pp_oid e.oid) e.dst s d)))
    (List.rev !edges);
  (* (c) recoverability / cascade-freedom. *)
  match
    List.sort
      (fun a b ->
        compare
          (Hashtbl.find cseq a.reader.History.tid)
          (Hashtbl.find cseq b.reader.History.tid))
      !anomalies
  with
  | [] -> ()
  | a :: _ -> raise (Violation a.message)

open Storage

type version = int
type outcome = Pending | Committed of int | Aborted

type txn = {
  tid : int;
  client : int;
  mutable reads : (Ids.Oid.t * version * int) list;
  mutable writes : (Ids.Oid.t * version) list;
  mutable outcome : outcome;
  mutable end_stamp : int;
}

type t = {
  txns : (int, txn) Hashtbl.t;
  mutable order : int list;  (** tids in reverse begin order (for dump) *)
  writer : (version, int) Hashtbl.t;
  committed_content : (Ids.Oid.t, version) Hashtbl.t;  (** missing = 0 *)
  server_content : (Ids.Oid.t, version) Hashtbl.t;
      (** what a fetch returns right now: the last committed version
          overlaid with uncommitted versions shipped to the server;
          missing = committed *)
  client_content : (Ids.Oid.t, version) Hashtbl.t array;
  mutable next_version : int;
  mutable next_stamp : int;
  mutable next_commit : int;
  mutable commits : int;
  mutable ops : int;
}

let create ~clients =
  {
    txns = Hashtbl.create 1024;
    order = [];
    writer = Hashtbl.create 1024;
    committed_content = Hashtbl.create 1024;
    server_content = Hashtbl.create 64;
    client_content = Array.init clients (fun _ -> Hashtbl.create 256);
    next_version = 0;
    next_stamp = 0;
    next_commit = 0;
    commits = 0;
    ops = 0;
  }

let stamp t =
  t.next_stamp <- t.next_stamp + 1;
  t.next_stamp

let committed_version t oid =
  Option.value ~default:0 (Hashtbl.find_opt t.committed_content oid)

let server_version t oid =
  match Hashtbl.find_opt t.server_content oid with
  | Some v -> v
  | None -> committed_version t oid

let find_txn t tid = Hashtbl.find_opt t.txns tid
let writer_of t v = Hashtbl.find_opt t.writer v

let begin_txn t ~tid ~client =
  if not (Hashtbl.mem t.txns tid) then begin
    Hashtbl.replace t.txns tid
      { tid; client; reads = []; writes = []; outcome = Pending; end_stamp = 0 };
    t.order <- tid :: t.order
  end

let read t ~tid ~oid =
  match find_txn t tid with
  | None -> ()
  | Some txn ->
    (* Reads of the transaction's own uncommitted writes carry no
       inter-transaction dependency (and the client code never records
       them anyway); skip defensively. *)
    if not (List.mem_assoc oid txn.writes) then begin
      let v =
        match Hashtbl.find_opt t.client_content.(txn.client) oid with
        | Some v -> v
        | None -> committed_version t oid
      in
      txn.reads <- (oid, v, stamp t) :: txn.reads;
      t.ops <- t.ops + 1
    end

let write t ~tid ~oid =
  match find_txn t tid with
  | None -> ()
  | Some txn ->
    if not (List.mem_assoc oid txn.writes) then begin
      t.next_version <- t.next_version + 1;
      let v = t.next_version in
      Hashtbl.replace t.writer v tid;
      txn.writes <- (oid, v) :: txn.writes;
      (* The writer's cached copy now holds the pending version. *)
      Hashtbl.replace t.client_content.(txn.client) oid v;
      t.ops <- t.ops + 1
    end

let ship t ~tid ~oid =
  match find_txn t tid with
  | None -> ()
  | Some txn -> (
    match (txn.outcome, List.assoc_opt oid txn.writes) with
    | Pending, Some v -> Hashtbl.replace t.server_content oid v
    | _ -> ())

let commit t ~tid =
  match find_txn t tid with
  | None -> ()
  | Some txn ->
    if txn.outcome = Pending then begin
      t.next_commit <- t.next_commit + 1;
      txn.outcome <- Committed t.next_commit;
      txn.end_stamp <- stamp t;
      t.commits <- t.commits + 1;
      List.iter
        (fun (oid, v) ->
          Hashtbl.replace t.committed_content oid v;
          Hashtbl.remove t.server_content oid)
        txn.writes
    end

let abort t ~tid =
  match find_txn t tid with
  | None -> ()
  | Some txn ->
    if txn.outcome = Pending then begin
      txn.outcome <- Aborted;
      txn.end_stamp <- stamp t;
      (* Any of the aborter's versions shipped to the server are rolled
         back to the committed state. *)
      List.iter
        (fun (oid, v) ->
          match Hashtbl.find_opt t.server_content oid with
          | Some v' when v' = v -> Hashtbl.remove t.server_content oid
          | Some _ | None -> ())
        txn.writes
    end

let install_copy t ~client ~oid =
  Hashtbl.replace t.client_content.(client) oid (server_version t oid)

let drop_copy t ~client ~oid = Hashtbl.remove t.client_content.(client) oid
let purge_client t ~client = Hashtbl.reset t.client_content.(client)

let committed t =
  let cs =
    Hashtbl.fold
      (fun _ txn acc ->
        match txn.outcome with Committed n -> (n, txn) :: acc | _ -> acc)
      t.txns []
  in
  List.map snd (List.sort (fun (a, _) (b, _) -> compare a b) cs)

let committed_count t = t.commits
let op_count t = t.ops

let dump t =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    (Printf.sprintf "history: %d txns, %d committed, %d ops\n"
       (Hashtbl.length t.txns) t.commits t.ops);
  List.iter
    (fun tid ->
      match find_txn t tid with
      | None -> ()
      | Some txn ->
        let outcome =
          match txn.outcome with
          | Pending -> "pending"
          | Aborted -> Printf.sprintf "aborted @%d" txn.end_stamp
          | Committed n -> Printf.sprintf "committed #%d @%d" n txn.end_stamp
        in
        Buffer.add_string buf
          (Printf.sprintf "txn %d (client %d) %s\n" txn.tid txn.client outcome);
        List.iter
          (fun (oid, v, s) ->
            let by =
              match writer_of t v with
              | Some w -> Printf.sprintf " (txn %d)" w
              | None -> ""
            in
            Buffer.add_string buf
              (Printf.sprintf "  r %d.%d = v%d%s @%d\n" oid.Ids.Oid.page
                 oid.Ids.Oid.slot v by s))
          (List.rev txn.reads);
        List.iter
          (fun (oid, v) ->
            Buffer.add_string buf
              (Printf.sprintf "  w %d.%d -> v%d\n" oid.Ids.Oid.page
                 oid.Ids.Oid.slot v))
          (List.rev txn.writes))
    (List.rev t.order);
  Buffer.contents buf

(** The serializability checker over a recorded {!History}.

    Three properties, checked in order over the committed transactions:

    {ol
    {- {b Conflict-serializability}: the conflict graph (ww/wr/rw edges
       over object versions) is acyclic.  A violation names the cycle:
       ["txn 12 -[rw 3.7]-> txn 15 -[wr 3.7]-> txn 12"].}
    {- {b Commit-order consistency}: every conflict edge points forward
       in commit order.  The callback-locking protocols are strict
       two-phase (all locks held to transaction end), so the equivalent
       serial order must be the commit order itself — a serializable
       history whose serial order contradicts commit order still
       indicates a protocol bug.}
    {- {b Recoverability / cascade-freedom}: every version a committed
       transaction read was written by a transaction that committed
       {e before the read} — no committed reader of an aborted or
       still-pending writer's version, and no read of a version whose
       writer only committed later.}} *)

exception Violation of string
(** Human-readable witness naming the transactions and objects. *)

val check : History.t -> unit
(** Raises {!Violation} on the first property violated.  Aborted and
    pending transactions are ignored except as (dirty-read) version
    writers. *)

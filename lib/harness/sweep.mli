(** Parallel figure sweeps: the pool-backed counterpart of
    {!Oodb_core.Experiments.run_spec}. *)

val run_spec :
  ?seed:int ->
  ?time_scale:float ->
  ?oracle:bool ->
  ?timeline:bool ->
  ?servers:int ->
  ?partition:Oodb_core.Config.partition ->
  ?jobs:int ->
  ?progress:(string -> unit) ->
  Oodb_core.Experiments.spec ->
  Oodb_core.Experiments.series
(** Describe the figure's cells as jobs and run them on {!Pool} with
    [jobs] workers ([~jobs:1] reproduces the sequential driver
    byte-for-byte).  [oracle] attaches the serializability oracle to
    every cell; [timeline] the event-timeline recorder.  [progress]
    receives one line per completed cell, in completion order. *)

val run_specs :
  ?seed:int ->
  ?time_scale:float ->
  ?oracle:bool ->
  ?timeline:bool ->
  ?servers:int ->
  ?partition:Oodb_core.Config.partition ->
  ?jobs:int ->
  ?progress:(string -> unit) ->
  Oodb_core.Experiments.spec list ->
  Oodb_core.Experiments.series list
(** Run several figures as one flat job list (better worker
    utilization across figure boundaries); results come back per
    figure, in input order. *)

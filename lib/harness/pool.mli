(** A fixed-size worker pool over OCaml 5 domains.

    [map]/[run] fan a work list out over [jobs] workers pulling from a
    shared queue (an atomic index into the list).  Results always come
    back in submission order, whatever the scheduling; progress
    callbacks are serialized under a mutex so workers may print.  With
    [~jobs:1] (or a single item) everything runs sequentially in the
    calling domain — exactly the pre-pool code path.

    The work items must not share mutable state: each simulation job
    builds its own {!Oodb_core.Model.sys}, so [Job.run] qualifies.

    Setting [BENCH_MINOR_MB=<n>] in the environment gives each worker
    domain (and the sequential path) an [n] MiB minor heap via
    [Gc.set] before it starts — an opt-in benchmarking knob; unset or
    invalid values leave the GC configuration untouched. *)

val default_jobs : unit -> int
(** [Domain.recommended_domain_count () - 1] (at least 1): leave one
    core for the coordinating domain. *)

type failure = {
  index : int;  (** position of the failed item in the input list *)
  description : string;  (** [describe item] — which cell failed *)
  error : exn;  (** what it failed with *)
}

exception Sweep_failed of failure list
(** Raised by {!map}/{!run} after {e all} items have been attempted,
    carrying every failure in input order.  A registered printer
    renders the list, so an uncaught sweep failure names each failed
    cell instead of only the first exception encountered. *)

val map :
  ?jobs:int ->
  ?describe:('a -> string) ->
  ?progress:('a -> 'b -> unit) ->
  ('a -> 'b) ->
  'a list ->
  'b list
(** [map ~jobs f items] applies [f] to every item across [jobs]
    workers (default {!default_jobs}) and returns the results in input
    order.  [progress] is called once per completed item, serialized
    across workers but in completion order.  If any application
    raises, the remaining items still run to completion and
    {!Sweep_failed} is raised after all workers have been joined, with
    each failure attributed via [describe] (default: ["item <index>"]). *)

val run :
  ?jobs:int ->
  ?progress:(Oodb_core.Job.t -> Oodb_core.Runner.result -> unit) ->
  Oodb_core.Job.t list ->
  Oodb_core.Runner.result list
(** [map] specialized to {!Oodb_core.Job.run}. *)

val run_table :
  ?jobs:int ->
  ?progress:(Oodb_core.Job.t -> Oodb_core.Runner.result -> unit) ->
  Oodb_core.Job.table ->
  Oodb_core.Job.table * Oodb_core.Runner.result list
(** Run a titled job table; pair it with its results for the caller's
    [rows_of]. *)

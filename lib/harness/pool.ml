open Oodb_core

let default_jobs () = max 1 (Domain.recommended_domain_count () - 1)

let sequential_map ?progress f items =
  List.map
    (fun x ->
      let y = f x in
      Option.iter (fun p -> p x y) progress;
      y)
    items

let parallel_map ~workers ?progress f items =
  let items_a = Array.of_list items in
  let n = Array.length items_a in
  let results = Array.make n None in
  let next = Atomic.make 0 in
  let progress_lock = Mutex.create () in
  let report x y =
    Option.iter
      (fun p ->
        Mutex.lock progress_lock;
        Fun.protect ~finally:(fun () -> Mutex.unlock progress_lock) (fun () ->
            p x y))
      progress
  in
  let worker () =
    let rec loop () =
      let i = Atomic.fetch_and_add next 1 in
      if i < n then begin
        let x = items_a.(i) in
        let y = f x in
        results.(i) <- Some y;
        report x y;
        loop ()
      end
    in
    loop ()
  in
  let domains = Array.init (workers - 1) (fun _ -> Domain.spawn worker) in
  (* The calling domain is worker number [workers]; defer any exception
     until the spawned domains have been joined so none leak. *)
  let first_exn = ref None in
  let record_exn f =
    try f () with e -> if !first_exn = None then first_exn := Some e
  in
  record_exn worker;
  Array.iter (fun d -> record_exn (fun () -> Domain.join d)) domains;
  match !first_exn with
  | Some e -> raise e
  | None ->
    Array.to_list
      (Array.map
         (function
           | Some y -> y
           | None -> invalid_arg "Pool.map: missing result")
         results)

let map ?jobs ?progress f items =
  let n = List.length items in
  let workers =
    let requested = match jobs with Some j -> j | None -> default_jobs () in
    max 1 (min requested n)
  in
  if workers <= 1 then sequential_map ?progress f items
  else parallel_map ~workers ?progress f items

let run ?jobs ?progress js = map ?jobs ?progress Job.run js

let run_table ?jobs ?progress (tbl : Job.table) =
  (tbl, run ?jobs ?progress tbl.Job.jobs)

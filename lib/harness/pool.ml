open Oodb_core

let default_jobs () = max 1 (Domain.recommended_domain_count () - 1)

type failure = { index : int; description : string; error : exn }

exception Sweep_failed of failure list

let () =
  Printexc.register_printer (function
    | Sweep_failed failures ->
      Some
        (Printf.sprintf "Sweep_failed: %d job(s) failed\n%s"
           (List.length failures)
           (String.concat "\n"
              (List.map
                 (fun f ->
                   Printf.sprintf "  [%d] %s: %s" f.index f.description
                     (Printexc.to_string f.error))
                 failures)))
    | _ -> None)

let default_describe _ = ""

(* Opt-in benchmarking knob: [BENCH_MINOR_MB=<n>] gives every worker
   domain an [n] MiB minor heap before it pulls its first item (the
   sequential path tunes the calling domain the same way).  Unset,
   invalid or non-positive values leave the GC untouched, so ordinary
   runs are unaffected.  See BENCH_engine.json for measurements. *)
let bench_minor_words =
  lazy
    (match Sys.getenv_opt "BENCH_MINOR_MB" with
    | None -> None
    | Some s ->
      (match int_of_string_opt (String.trim s) with
      | Some mb when mb > 0 -> Some (mb * 1024 * 1024 / (Sys.word_size / 8))
      | _ -> None))

let tune_gc () =
  match Lazy.force bench_minor_words with
  | None -> ()
  | Some minor_heap_size -> Gc.set { (Gc.get ()) with minor_heap_size }

(* Each item either yields a result or records an attributed failure;
   one bad cell must not discard the rest of a long sweep, and the
   error must say which cell died, not just how. *)
let apply ~describe ~failures ~failures_lock f i x =
  match f x with
  | y -> Some y
  | exception error ->
    let description =
      let d = try describe x with _ -> "" in
      if d = "" then Printf.sprintf "item %d" i else d
    in
    Mutex.lock failures_lock;
    failures := { index = i; description; error } :: !failures;
    Mutex.unlock failures_lock;
    None

let finish ~failures results =
  match List.sort (fun a b -> compare a.index b.index) !failures with
  | [] ->
    Array.to_list
      (Array.map
         (function
           | Some y -> y
           | None -> invalid_arg "Pool.map: missing result")
         results)
  | fs -> raise (Sweep_failed fs)

let sequential_map ~describe ?progress f items =
  tune_gc ();
  let items_a = Array.of_list items in
  let n = Array.length items_a in
  let results = Array.make n None in
  let failures = ref [] in
  let failures_lock = Mutex.create () in
  for i = 0 to n - 1 do
    let x = items_a.(i) in
    match apply ~describe ~failures ~failures_lock f i x with
    | Some y as r ->
      results.(i) <- r;
      Option.iter (fun p -> p x y) progress
    | None -> ()
  done;
  finish ~failures results

let parallel_map ~workers ~describe ?progress f items =
  let items_a = Array.of_list items in
  let n = Array.length items_a in
  let results = Array.make n None in
  let failures = ref [] in
  let failures_lock = Mutex.create () in
  let next = Atomic.make 0 in
  let progress_lock = Mutex.create () in
  let report x y =
    Option.iter
      (fun p ->
        Mutex.lock progress_lock;
        Fun.protect ~finally:(fun () -> Mutex.unlock progress_lock) (fun () ->
            p x y))
      progress
  in
  let worker () =
    tune_gc ();
    let rec loop () =
      let i = Atomic.fetch_and_add next 1 in
      if i < n then begin
        let x = items_a.(i) in
        (match apply ~describe ~failures ~failures_lock f i x with
        | Some y as r ->
          results.(i) <- r;
          report x y
        | None -> ());
        loop ()
      end
    in
    loop ()
  in
  let domains = Array.init (workers - 1) (fun _ -> Domain.spawn worker) in
  (* The calling domain is worker number [workers]; per-item failures
     are captured above, so nothing escapes before the joins.  (A crash
     of the pool machinery itself would still propagate from join.) *)
  worker ();
  Array.iter Domain.join domains;
  finish ~failures results

let map ?jobs ?(describe = default_describe) ?progress f items =
  let n = List.length items in
  let workers =
    let requested = match jobs with Some j -> j | None -> default_jobs () in
    max 1 (min requested n)
  in
  if workers <= 1 then sequential_map ~describe ?progress f items
  else parallel_map ~workers ~describe ?progress f items

let run ?jobs ?progress js =
  map ?jobs ~describe:Job.describe ?progress Job.run js

let run_table ?jobs ?progress (tbl : Job.table) =
  (tbl, run ?jobs ?progress tbl.Job.jobs)

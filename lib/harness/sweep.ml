open Oodb_core

let progress_printer ?progress () =
  Option.map
    (fun p (j : Job.t) r -> p (Experiments.progress_line j r))
    progress

let run_spec ?seed ?time_scale ?oracle ?timeline ?servers ?partition ?jobs
    ?progress spec =
  let js =
    Experiments.jobs_of_spec ?seed ?time_scale ?oracle ?timeline ?servers
      ?partition spec
  in
  let results = Pool.run ?jobs ?progress:(progress_printer ?progress ()) js in
  Experiments.series_of_results spec results

let run_specs ?seed ?time_scale ?oracle ?timeline ?servers ?partition ?jobs
    ?progress specs =
  (* One flat job list across every figure, so a wide sweep keeps all
     workers busy even when individual figures have few cells left. *)
  let per_spec =
    List.map
      (fun s ->
        ( s,
          Experiments.jobs_of_spec ?seed ?time_scale ?oracle ?timeline
            ?servers ?partition s ))
      specs
  in
  let results =
    Pool.run ?jobs
      ?progress:(progress_printer ?progress ())
      (List.concat_map snd per_spec)
  in
  let rec take n acc rs =
    if n = 0 then (List.rev acc, rs)
    else
      match rs with
      | [] -> invalid_arg "Sweep.run_specs: missing results"
      | r :: rs -> take (n - 1) (r :: acc) rs
  in
  let rec split results = function
    | [] -> []
    | (spec, js) :: rest ->
      let mine, theirs = take (List.length js) [] results in
      Experiments.series_of_results spec mine :: split theirs rest
  in
  split results per_spec

(* Re-export so harness users can say [Harness.Job] for the job
   vocabulary next to [Harness.Pool] for the execution engine.  The
   type itself lives in [Oodb_core] because the sweep drivers there
   describe their grids with it. *)
include Oodb_core.Job

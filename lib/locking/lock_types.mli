(** Shared vocabulary of the locking layer.

    In the callback-locking protocols of the paper, read permissions are
    embodied by cached copies (a client may read anything it caches), so
    the server-side lock tables contain only {e write} (exclusive)
    locks.  Two request kinds queue at the server:

    - {!request_kind.Probe} — a read request that must wait until no
      other transaction write-locks the item, but acquires nothing;
    - {!request_kind.Lock} — a request for the exclusive write lock. *)

type txn = int
(** Transaction identifier.  Each incarnation of a (possibly restarted)
    transaction gets a fresh id. *)

type request_kind = Probe | Lock

type grant = Granted | Aborted
(** Outcome of a blocking request: [Aborted] means the requesting
    transaction was chosen as a deadlock victim while waiting. *)

open Lock_types

type wait = { mutable blockers : txn list; cancel : unit -> unit; info : string }

type t = {
  waits : (txn, wait) Hashtbl.t;
  starts : (txn, float) Hashtbl.t;
  mutable deadlock_count : int;
  (* Linked cluster of per-server graphs.  [[||]] means solo (the
     classic single-graph topology); [link] points every member at the
     shared array, itself included.  Cycle detection always traverses
     the union, so a wait registered at one server is visible to the
     others — the designated-coordinator idealization of distributed
     deadlock detection.  The [on_edge] hook fires whenever this graph
     gains an edge, letting the simulation charge for the edge-exchange
     control message that a real coordinator would receive. *)
  mutable peers : t array;
  mutable on_edge : (txn -> unit) option;
}

let create () =
  {
    waits = Hashtbl.create 64;
    starts = Hashtbl.create 64;
    deadlock_count = 0;
    peers = [||];
    on_edge = None;
  }

let link graphs = Array.iter (fun g -> g.peers <- graphs) graphs
let set_exchange_hook t f = t.on_edge <- Some f

(* Union lookup: the graph (if any) holding [txn]'s pending wait.  A
   transaction blocks on at most one request at a time, so at most one
   member of the cluster has an entry. *)
let wait_owner t txn =
  if Array.length t.peers = 0 then
    if Hashtbl.mem t.waits txn then Some t else None
  else Array.find_opt (fun g -> Hashtbl.mem g.waits txn) t.peers

let find_wait t txn =
  match wait_owner t txn with
  | None -> None
  | Some g -> Hashtbl.find_opt g.waits txn

let begin_txn t txn ~start = Hashtbl.replace t.starts txn start

let end_txn t txn =
  assert (not (Hashtbl.mem t.waits txn));
  Hashtbl.remove t.starts txn

let fire_edge t txn = match t.on_edge with None -> () | Some f -> f txn

let set_wait ?(info = "") t txn ~blockers ~cancel =
  Hashtbl.replace t.waits txn { blockers; cancel; info };
  fire_edge t txn

let update_blockers t txn blockers =
  match find_wait t txn with
  | None -> ()
  | Some w -> w.blockers <- blockers

let add_blocker t txn blocker =
  match wait_owner t txn with
  | None -> ()
  | Some g -> (
    match Hashtbl.find_opt g.waits txn with
    | None -> ()
    | Some w ->
      if not (List.mem blocker w.blockers) then begin
        w.blockers <- blocker :: w.blockers;
        fire_edge g txn
      end)

let clear_wait t txn =
  match wait_owner t txn with
  | None -> ()
  | Some g -> Hashtbl.remove g.waits txn

let is_waiting t txn = wait_owner t txn <> None

(* Depth-first search for a path from a blocker of [from] back to
   [from].  Only waiting transactions have outgoing edges, so the search
   space is the set of blocked transactions (small: at most one wait per
   client).  Edges are looked up across the whole cluster, so a cycle
   spanning two partitions — invisible to either server's local graph —
   is still found.  Returns the cycle as a list of transactions. *)
let find_cycle t ~from =
  let visited = Hashtbl.create 16 in
  let rec dfs u path =
    if u = from then Some path
    else if Hashtbl.mem visited u then None
    else begin
      Hashtbl.add visited u ();
      match find_wait t u with
      | None -> None
      | Some w -> dfs_list w.blockers (u :: path)
    end
  and dfs_list vs path =
    match vs with
    | [] -> None
    | v :: rest -> (
      match dfs v path with Some c -> Some c | None -> dfs_list rest path)
  in
  match find_wait t from with
  | None -> None
  | Some w -> dfs_list w.blockers [ from ]

let start_time t txn =
  match Hashtbl.find_opt t.starts txn with Some s -> s | None -> neg_infinity

(* The youngest transaction (latest start) loses.  Start times are
   replicated on every member of the cluster, so the local table is
   authoritative. *)
let pick_victim t cycle =
  List.fold_left
    (fun best txn ->
      if start_time t txn > start_time t best then txn else best)
    (List.hd cycle) (List.tl cycle)

let cancel_wait t victim =
  match wait_owner t victim with
  | None -> ()
  | Some g -> (
    match Hashtbl.find_opt g.waits victim with
    | None -> ()
    | Some w ->
      Hashtbl.remove g.waits victim;
      w.cancel ())

let check_deadlock t ~from =
  let victims = ref 0 in
  let continue = ref true in
  while !continue do
    match find_cycle t ~from with
    | None -> continue := false
    | Some cycle ->
      let victim = pick_victim t cycle in
      (* The victim count lives on the graph holding the victim's wait:
         per-server deadlock attribution, summed by the runner. *)
      let g = match wait_owner t victim with Some g -> g | None -> t in
      g.deadlock_count <- g.deadlock_count + 1;
      incr victims;
      cancel_wait t victim
  done;
  !victims

let deadlocks t = t.deadlock_count
let waiting_count t = Hashtbl.length t.waits
let is_active t txn = Hashtbl.mem t.starts txn

(* Audit helper: search for a cycle from every transaction waiting in
   {e this} graph.  [find_cycle] only explores paths returning to its
   origin, so one search per waiter covers all cycles through this
   partition; the audit loops over every server, covering the union. *)
let any_cycle t =
  Hashtbl.fold
    (fun txn _ acc ->
      match acc with Some _ -> acc | None -> find_cycle t ~from:txn)
    t.waits None

let dump t =
  Hashtbl.fold (fun txn w acc -> (txn, w.blockers, w.info) :: acc) t.waits []

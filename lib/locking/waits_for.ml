open Lock_types

type wait = { mutable blockers : txn list; cancel : unit -> unit; info : string }

type t = {
  waits : (txn, wait) Hashtbl.t;
  starts : (txn, float) Hashtbl.t;
  mutable deadlock_count : int;
}

let create () =
  { waits = Hashtbl.create 64; starts = Hashtbl.create 64; deadlock_count = 0 }

let begin_txn t txn ~start = Hashtbl.replace t.starts txn start

let end_txn t txn =
  assert (not (Hashtbl.mem t.waits txn));
  Hashtbl.remove t.starts txn

let set_wait ?(info = "") t txn ~blockers ~cancel =
  Hashtbl.replace t.waits txn { blockers; cancel; info }

let update_blockers t txn blockers =
  match Hashtbl.find_opt t.waits txn with
  | None -> ()
  | Some w -> w.blockers <- blockers

let add_blocker t txn blocker =
  match Hashtbl.find_opt t.waits txn with
  | None -> ()
  | Some w -> if not (List.mem blocker w.blockers) then w.blockers <- blocker :: w.blockers

let clear_wait t txn = Hashtbl.remove t.waits txn
let is_waiting t txn = Hashtbl.mem t.waits txn

(* Depth-first search for a path from a blocker of [from] back to
   [from].  Only waiting transactions have outgoing edges, so the search
   space is the set of blocked transactions (small: at most one wait per
   client).  Returns the cycle as a list of transactions. *)
let find_cycle t ~from =
  let visited = Hashtbl.create 16 in
  let rec dfs u path =
    if u = from then Some path
    else if Hashtbl.mem visited u then None
    else begin
      Hashtbl.add visited u ();
      match Hashtbl.find_opt t.waits u with
      | None -> None
      | Some w -> dfs_list w.blockers (u :: path)
    end
  and dfs_list vs path =
    match vs with
    | [] -> None
    | v :: rest -> (
      match dfs v path with Some c -> Some c | None -> dfs_list rest path)
  in
  match Hashtbl.find_opt t.waits from with
  | None -> None
  | Some w -> dfs_list w.blockers [ from ]

let start_time t txn =
  match Hashtbl.find_opt t.starts txn with Some s -> s | None -> neg_infinity

(* The youngest transaction (latest start) loses. *)
let pick_victim t cycle =
  List.fold_left
    (fun best txn ->
      if start_time t txn > start_time t best then txn else best)
    (List.hd cycle) (List.tl cycle)

let cancel_wait t victim =
  match Hashtbl.find_opt t.waits victim with
  | None -> ()
  | Some w ->
    Hashtbl.remove t.waits victim;
    w.cancel ()

let check_deadlock t ~from =
  let victims = ref 0 in
  let continue = ref true in
  while !continue do
    match find_cycle t ~from with
    | None -> continue := false
    | Some cycle ->
      let victim = pick_victim t cycle in
      t.deadlock_count <- t.deadlock_count + 1;
      incr victims;
      cancel_wait t victim
  done;
  !victims

let deadlocks t = t.deadlock_count
let waiting_count t = Hashtbl.length t.waits
let is_active t txn = Hashtbl.mem t.starts txn

(* Audit helper: search for a cycle from every waiting transaction.
   [find_cycle] only explores paths returning to its origin, so one
   search per waiter covers all cycles. *)
let any_cycle t =
  Hashtbl.fold
    (fun txn _ acc ->
      match acc with Some _ -> acc | None -> find_cycle t ~from:txn)
    t.waits None

let dump t =
  Hashtbl.fold (fun txn w acc -> (txn, w.blockers, w.info) :: acc) t.waits []

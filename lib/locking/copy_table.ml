(* Sparse holder representation.  The dense version kept an
   [int array] of size [num_clients] per item, which makes every
   callback collection O(clients) and a 10k-client run quadratic in
   population.  Here each item row is a compact ascending vector of
   holder sites, and each site keeps an item -> refcount index, so:

     holders / holders_except   O(holders of that item)
     refs / holds               O(1) expected (site-index lookup)
     client_copies              O(1)          (site-index length)
     purge_client               O(that site's copies)

   The ascending order of [holders] is load-bearing: callback fan-out
   iterates it, so it determines message order and therefore the RNG
   draw sequence.  The sorted vector reproduces the dense scan's
   ascending order exactly. *)

type row = {
  mutable cids : int array; (* holder sites, ascending; first [len] live *)
  mutable len : int;
}

type 'item t = {
  clients : int;
  rows : ('item, row) Hashtbl.t;
  (* Per site, item -> positive refcount.  Allocated lazily: most
     sites never touch most servers' tables. *)
  index : ('item, int) Hashtbl.t option array;
  mutable total : int; (* (item, site) pairs with count > 0 *)
}

let create ~clients =
  if clients <= 0 then invalid_arg "Copy_table.create: clients";
  { clients; rows = Hashtbl.create 1024; index = Array.make clients None; total = 0 }

let check_client t client =
  if client < 0 || client >= t.clients then
    invalid_arg "Copy_table: client out of range"

let idx t client =
  match t.index.(client) with
  | Some h -> h
  | None ->
    let h = Hashtbl.create 16 in
    t.index.(client) <- Some h;
    h

(* First position whose cid is >= [cid]. *)
let lower_bound row cid =
  let lo = ref 0 and hi = ref row.len in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if row.cids.(mid) < cid then lo := mid + 1 else hi := mid
  done;
  !lo

let row_insert row cid =
  let pos = lower_bound row cid in
  if row.len = Array.length row.cids then begin
    let a = Array.make (max 2 (2 * row.len)) 0 in
    Array.blit row.cids 0 a 0 pos;
    Array.blit row.cids pos a (pos + 1) (row.len - pos);
    a.(pos) <- cid;
    row.cids <- a
  end
  else begin
    Array.blit row.cids pos row.cids (pos + 1) (row.len - pos);
    row.cids.(pos) <- cid
  end;
  row.len <- row.len + 1

let row_remove row cid =
  let pos = lower_bound row cid in
  assert (pos < row.len && row.cids.(pos) = cid);
  Array.blit row.cids (pos + 1) row.cids pos (row.len - pos - 1);
  row.len <- row.len - 1

let register t item ~client =
  check_client t client;
  let h = idx t client in
  match Hashtbl.find_opt h item with
  | Some n -> Hashtbl.replace h item (n + 1)
  | None ->
    Hashtbl.replace h item 1;
    t.total <- t.total + 1;
    let row =
      match Hashtbl.find_opt t.rows item with
      | Some r -> r
      | None ->
        let r = { cids = Array.make 2 0; len = 0 } in
        Hashtbl.replace t.rows item r;
        r
    in
    row_insert row client

let unregister t item ~client =
  check_client t client;
  match t.index.(client) with
  | None -> ()
  | Some h -> (
    match Hashtbl.find_opt h item with
    | None -> ()
    | Some 1 ->
      Hashtbl.remove h item;
      t.total <- t.total - 1;
      let row = Hashtbl.find t.rows item in
      row_remove row client;
      if row.len = 0 then Hashtbl.remove t.rows item
    | Some n -> Hashtbl.replace h item (n - 1))

let refs t item ~client =
  check_client t client;
  match t.index.(client) with
  | None -> 0
  | Some h -> ( match Hashtbl.find_opt h item with Some n -> n | None -> 0)

let holds t item ~client = refs t item ~client > 0

let holders t item =
  match Hashtbl.find_opt t.rows item with
  | None -> []
  | Some row ->
    let out = ref [] in
    for i = row.len - 1 downto 0 do
      out := row.cids.(i) :: !out
    done;
    !out

let holders_except t item ~client =
  match Hashtbl.find_opt t.rows item with
  | None -> []
  | Some row ->
    (* One pass, ascending, skipping the requester. *)
    let out = ref [] in
    for i = row.len - 1 downto 0 do
      let c = row.cids.(i) in
      if c <> client then out := c :: !out
    done;
    !out

let copies t = t.total

let client_copies t ~client =
  check_client t client;
  match t.index.(client) with None -> 0 | Some h -> Hashtbl.length h

let purge_client t ~client =
  check_client t client;
  match t.index.(client) with
  | None -> 0
  | Some h ->
    let n = Hashtbl.length h in
    Hashtbl.iter
      (fun item _refs ->
        t.total <- t.total - 1;
        let row = Hashtbl.find t.rows item in
        row_remove row client;
        if row.len = 0 then Hashtbl.remove t.rows item)
      h;
    t.index.(client) <- None;
    n

type 'item t = {
  clients : int;
  table : ('item, int array) Hashtbl.t;
  mutable total : int; (* (item, site) pairs with count > 0 *)
}

let create ~clients =
  if clients <= 0 then invalid_arg "Copy_table.create: clients";
  { clients; table = Hashtbl.create 1024; total = 0 }

let register t item ~client =
  let sites =
    match Hashtbl.find_opt t.table item with
    | Some s -> s
    | None ->
      let s = Array.make t.clients 0 in
      Hashtbl.replace t.table item s;
      s
  in
  if sites.(client) = 0 then t.total <- t.total + 1;
  sites.(client) <- sites.(client) + 1

let unregister t item ~client =
  match Hashtbl.find_opt t.table item with
  | None -> ()
  | Some sites ->
    if sites.(client) > 0 then begin
      sites.(client) <- sites.(client) - 1;
      if sites.(client) = 0 then begin
        t.total <- t.total - 1;
        if Array.for_all (fun c -> c = 0) sites then Hashtbl.remove t.table item
      end
    end

let refs t item ~client =
  match Hashtbl.find_opt t.table item with
  | None -> 0
  | Some sites -> sites.(client)

let holds t item ~client = refs t item ~client > 0

let holders t item =
  match Hashtbl.find_opt t.table item with
  | None -> []
  | Some sites ->
    let out = ref [] in
    for c = t.clients - 1 downto 0 do
      if sites.(c) > 0 then out := c :: !out
    done;
    !out

let holders_except t item ~client =
  List.filter (fun c -> c <> client) (holders t item)

let copies t = t.total

let client_copies t ~client =
  Hashtbl.fold
    (fun _item sites acc -> if sites.(client) > 0 then acc + 1 else acc)
    t.table 0

let purge_client t ~client =
  (* Collect first: zeroing a column can empty a row, and removing rows
     while iterating the table is undefined. *)
  let hits = ref [] in
  Hashtbl.iter
    (fun item sites -> if sites.(client) > 0 then hits := item :: !hits)
    t.table;
  List.iter
    (fun item ->
      let sites = Hashtbl.find t.table item in
      sites.(client) <- 0;
      t.total <- t.total - 1;
      if Array.for_all (fun c -> c = 0) sites then Hashtbl.remove t.table item)
    !hits;
  List.length !hits

(** Server-side lock table for one granularity (pages or objects).

    Holds exclusive (write) locks and a FIFO queue of blocked requests
    per item.  Read requests enter the queue as {!Lock_types.Probe}s:
    they wait for conflicting write locks to drain but acquire nothing
    (read permission is then conferred by the page/object copy the
    server ships).  The table is wired to a {!Waits_for} graph: blocking
    a request registers its edges and runs deadlock detection, and a
    victim's pending request resumes with [Aborted].

    The table is generic in the item type; the protocols instantiate it
    with pages ([int]) and with {!Storage.Ids.Oid.t}. *)

open Lock_types

type 'item t

val create :
  Simcore.Engine.t -> waits_for:Waits_for.t -> lock_name:string -> 'item t

val acquire : 'item t -> 'item -> txn:txn -> kind:request_kind -> grant
(** Blocking request (FIFO).  [Probe] returns [Granted] once no other
    transaction holds the write lock; [Lock] additionally acquires it.
    Re-acquiring a lock already held by [txn] succeeds immediately.
    Returns [Aborted] if the transaction is chosen as a deadlock victim
    while queued. *)

val try_acquire : 'item t -> 'item -> txn:txn -> kind:request_kind -> bool
(** Non-blocking variant: grant only when no conflict and no queue. *)

val holder : 'item t -> 'item -> txn option
(** Current write-lock holder. *)

val held_by : 'item t -> 'item -> txn:txn -> bool
val conflicts : 'item t -> 'item -> txn:txn -> bool
(** True when another transaction write-locks the item. *)

val release : 'item t -> 'item -> txn:txn -> unit
(** Release one write lock (no-op if not held by [txn]); wakes eligible
    queued requests. *)

val release_all : 'item t -> txn:txn -> unit
(** Release every write lock of [txn]. *)

val locks_of : 'item t -> txn:txn -> 'item list
(** Items currently write-locked by [txn]. *)

val force_grant : 'item t -> 'item -> txn:txn -> unit
(** Install a write lock without queueing, for lock {e conversion}: used
    by PS-AA de-escalation, where the holder of a page lock atomically
    registers object locks it already implicitly holds.  Raises
    [Invalid_argument] when another transaction holds the lock. *)

val iter_holders : 'item t -> ('item -> txn -> unit) -> unit
(** Visit every (item, write-lock holder) pair (audit). *)

val iter_waiters : 'item t -> ('item -> txn -> unit) -> unit
(** Visit every (item, queued transaction) pair (audit). *)

val lock_count : 'item t -> int
val waiter_count : 'item t -> int
val waits : 'item t -> int
(** Total requests that had to block since creation (a contention
    metric). *)

val dump_waiting : 'item t -> ('item -> string) -> (txn * string) list
(** Diagnostics: every queued request as (txn, description of the item's
    entry: holder and queue).  Setting the [LOCK_TRACE] environment
    variable additionally streams every grant/release to stderr. *)

open Lock_types
open Simcore

type 'item waiter = {
  w_txn : txn;
  kind : request_kind;
  resume : grant Proc.resumer;
}

type 'item entry = {
  mutable lock_holder : txn option;
  queue : 'item waiter Queue.t; (* FIFO order, head first *)
}

type 'item t = {
  engine : Engine.t;
  waits_for : Waits_for.t;
  lock_name : string;
  entries : ('item, 'item entry) Hashtbl.t;
  txn_locks : (txn, 'item list) Hashtbl.t;
  mutable blocked_total : int;
}

let trace = Sys.getenv_opt "LOCK_TRACE" <> None

let tr t fmt =
  if trace then Printf.eprintf ("[%s] " ^^ fmt ^^ "\n%!") t.lock_name
  else Printf.ifprintf stderr fmt

let create engine ~waits_for ~lock_name =
  {
    engine;
    waits_for;
    lock_name;
    entries = Hashtbl.create 256;
    txn_locks = Hashtbl.create 64;
    blocked_total = 0;
  }

let entry t item =
  match Hashtbl.find_opt t.entries item with
  | Some e -> e
  | None ->
    let e = { lock_holder = None; queue = Queue.create () } in
    Hashtbl.replace t.entries item e;
    e

let entry_opt t item = Hashtbl.find_opt t.entries item

let maybe_gc t item e =
  if e.lock_holder = None && Queue.is_empty e.queue then
    Hashtbl.remove t.entries item

let record_lock t item txn =
  let existing =
    match Hashtbl.find_opt t.txn_locks txn with Some l -> l | None -> []
  in
  Hashtbl.replace t.txn_locks txn (item :: existing)

let forget_lock t item txn =
  match Hashtbl.find_opt t.txn_locks txn with
  | None -> ()
  | Some l ->
    let l = List.filter (fun i -> i <> item) l in
    if l = [] then Hashtbl.remove t.txn_locks txn
    else Hashtbl.replace t.txn_locks txn l

(* Blockers of a waiter: the current foreign holder plus foreign Lock
   requests queued ahead of it (FIFO order means it waits on those too). *)
let blockers_of e w =
  let ahead = ref [] in
  (try
     Queue.iter
       (fun w' ->
         if w' == w then raise Exit
         else if w'.kind = Lock && w'.w_txn <> w.w_txn then
           ahead := w'.w_txn :: !ahead)
       e.queue
   with Exit -> ());
  (match e.lock_holder with
  | Some h when h <> w.w_txn -> h :: !ahead
  | Some _ | None -> !ahead)

let refresh_edges t e =
  Queue.iter
    (fun w -> Waits_for.update_blockers t.waits_for w.w_txn (blockers_of e w))
    e.queue

(* Grant the longest grantable prefix of the queue. *)
let rec process_queue t item e =
  match Queue.peek_opt e.queue with
  | None -> maybe_gc t item e
  | Some w ->
    let compatible =
      match e.lock_holder with None -> true | Some h -> h = w.w_txn
    in
    if not compatible then refresh_edges t e
    else begin
      ignore (Queue.pop e.queue);
      if w.kind = Lock && e.lock_holder <> Some w.w_txn then begin
        e.lock_holder <- Some w.w_txn;
        record_lock t item w.w_txn;
        tr t "queue-grant L txn=%d" w.w_txn
      end;
      Waits_for.clear_wait t.waits_for w.w_txn;
      w.resume (Ok Granted);
      process_queue t item e
    end

let grantable_now e ~txn =
  Queue.is_empty e.queue
  && (match e.lock_holder with None -> true | Some h -> h = txn)

let try_acquire t item ~txn ~kind =
  let e = entry t item in
  if grantable_now e ~txn then begin
    if kind = Lock && e.lock_holder <> Some txn then begin
      e.lock_holder <- Some txn;
      record_lock t item txn
    end
    else maybe_gc t item e;
    true
  end
  else begin
    maybe_gc t item e;
    false
  end

let acquire t item ~txn ~kind =
  let e = entry t item in
  if grantable_now e ~txn then begin
    if kind = Lock && e.lock_holder <> Some txn then begin
      e.lock_holder <- Some txn;
      record_lock t item txn;
      tr t "acquire-grant L txn=%d" txn
    end
    else maybe_gc t item e;
    Granted
  end
  else begin
    t.blocked_total <- t.blocked_total + 1;
    Proc.suspend t.engine (fun resume ->
        let w = { w_txn = txn; kind; resume } in
        Queue.add w e.queue;
        let cancel () =
          (* Cancellation is rare (deadlock victim / crash), so an O(n)
             queue rebuild here is fine; the hot path above is O(1). *)
          let keep = Queue.create () in
          Queue.iter (fun w' -> if not (w' == w) then Queue.add w' keep) e.queue;
          Queue.clear e.queue;
          Queue.transfer keep e.queue;
          w.resume (Ok Aborted);
          (* Removing a queued request may unblock its successors. *)
          process_queue t item e
        in
        Waits_for.set_wait ~info:("lock:" ^ t.lock_name) t.waits_for txn
          ~blockers:(blockers_of e w) ~cancel;
        ignore (Waits_for.check_deadlock t.waits_for ~from:txn))
  end

let holder t item =
  match entry_opt t item with Some e -> e.lock_holder | None -> None

let held_by t item ~txn = holder t item = Some txn

let conflicts t item ~txn =
  match holder t item with Some h -> h <> txn | None -> false

let release t item ~txn =
  match entry_opt t item with
  | None -> ()
  | Some e ->
    if e.lock_holder = Some txn then begin
      e.lock_holder <- None;
      forget_lock t item txn;
      tr t "release txn=%d" txn;
      process_queue t item e
    end

let release_all t ~txn =
  match Hashtbl.find_opt t.txn_locks txn with
  | None -> ()
  | Some items ->
    Hashtbl.remove t.txn_locks txn;
    tr t "release-all txn=%d (%d items)" txn (List.length items);
    List.iter
      (fun item ->
        match entry_opt t item with
        | Some e when e.lock_holder = Some txn ->
          e.lock_holder <- None;
          process_queue t item e
        | Some _ | None -> ())
      items

let locks_of t ~txn =
  match Hashtbl.find_opt t.txn_locks txn with Some l -> l | None -> []

let force_grant t item ~txn =
  let e = entry t item in
  match e.lock_holder with
  | Some h when h <> txn ->
    invalid_arg
      (Printf.sprintf "Lock_table(%s).force_grant: lock held elsewhere"
         t.lock_name)
  | Some _ -> ()
  | None ->
    e.lock_holder <- Some txn;
    record_lock t item txn;
    tr t "force-grant txn=%d" txn

let lock_count t =
  Hashtbl.fold
    (fun _ e acc -> if e.lock_holder <> None then acc + 1 else acc)
    t.entries 0

let waiter_count t =
  Hashtbl.fold (fun _ e acc -> acc + Queue.length e.queue) t.entries 0

let waits t = t.blocked_total

let iter_holders t f =
  Hashtbl.iter
    (fun item e ->
      match e.lock_holder with Some h -> f item h | None -> ())
    t.entries

let iter_waiters t f =
  Hashtbl.iter
    (fun item e -> Queue.iter (fun w -> f item w.w_txn) e.queue)
    t.entries

let dump_waiting t show =
  Hashtbl.fold
    (fun item e acc ->
      let desc =
        Printf.sprintf "%s holder=%s queue=[%s]" (show item)
          (match e.lock_holder with
          | Some h -> string_of_int h
          | None -> "-")
          (String.concat ";"
             (List.rev
                (Queue.fold
                   (fun acc w ->
                     Printf.sprintf "%d%s" w.w_txn
                       (match w.kind with Lock -> "L" | Probe -> "P")
                     :: acc)
                   [] e.queue)))
      in
      Queue.fold (fun acc w -> (w.w_txn, desc) :: acc) acc e.queue)
    t.entries []

(** Server-side registry of cached copies ("replica management").

    Tracks which client sites hold a cached copy of each item so the
    server knows where to direct callbacks.  The page-server protocols
    track pages; OS and PS-OO track objects (Section 3.3).

    Registrations are {e reference counted}: the server registers a
    copy when it ships it (before the reply reaches the client), so a
    client may momentarily hold two references to one item — the cached
    copy and a fresh copy in transit.  Installing the fresh copy over
    the old one releases the old copy's reference, and dropping a copy
    releases exactly one reference, so a registration in flight is
    never erased by the concurrent purge of its predecessor.  A site is
    a callback target while it holds any reference.

    The representation is sparse: each item keeps a compact ascending
    vector of holder sites and each site keeps an item -> refcount
    index, so [holders]/[holders_except] cost O(holders of the item),
    [client_copies] is O(1) and [purge_client] is O(that site's
    copies) — population-independent, which is what makes 10k+ client
    runs feasible. *)

type 'item t

val create : clients:int -> 'item t

val register : 'item t -> 'item -> client:int -> unit
(** Add one reference. *)

val unregister : 'item t -> 'item -> client:int -> unit
(** Release one reference (no-op at zero). *)

val holds : 'item t -> 'item -> client:int -> bool
(** True while the site holds at least one reference. *)

val refs : 'item t -> 'item -> client:int -> int

val holders : 'item t -> 'item -> int list
(** Sites holding at least one reference, ascending. *)

val holders_except : 'item t -> 'item -> client:int -> int list
(** Callback targets: every holding site except the requester's. *)

val copies : 'item t -> int
(** Number of (item, site) pairs with at least one reference. *)

val client_copies : 'item t -> client:int -> int
(** Items for which the site holds at least one reference (audit). *)

val purge_client : 'item t -> client:int -> int
(** Drop {e all} of one site's registrations — including references for
    copies still in transit — and return how many items were affected.
    Used when the site crashes: its volatile cache is gone, so it must
    stop being a callback target immediately. *)

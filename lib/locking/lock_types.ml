type txn = int
type request_kind = Probe | Lock
type grant = Granted | Aborted

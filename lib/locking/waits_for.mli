(** Global waits-for graph with continuous deadlock detection.

    The simulator is omniscient, so a single graph covers both kinds of
    waiting in the protocols: transactions blocked in server lock
    queues, and writers blocked on callbacks that are in turn held up by
    other clients' active transactions.  A cycle is broken by aborting
    the {e youngest} transaction in it (the one that started most
    recently, losing the least work); the victim's registered [cancel]
    thunk is responsible for dequeuing its pending request and resuming
    its fiber with [Aborted]. *)

open Lock_types

type t

val create : unit -> t

val link : t array -> unit
(** Join the given graphs into one cluster: every member sees the
    others' waits during cycle detection ([find_cycle]/[cancel_wait]
    and friends traverse the union), modelling an idealized coordinator
    that always holds a current global picture.  Linking an array of
    one is equivalent to the solo topology. *)

val set_exchange_hook : t -> (txn -> unit) -> unit
(** Install a hook fired whenever this graph gains a wait edge
    ([set_wait] or a successful [add_blocker]).  The simulation uses it
    to charge for the edge-exchange control message a server sends the
    coordinator; purely observational. *)

val begin_txn : t -> txn -> start:float -> unit
(** Register a transaction incarnation and its start time (used for
    victim selection). *)

val end_txn : t -> txn -> unit
(** Forget a finished or aborted transaction.  It must not be waiting. *)

val set_wait :
  ?info:string -> t -> txn -> blockers:txn list -> cancel:(unit -> unit) -> unit
(** [txn] is now blocked on the given transactions.  A transaction can
    have at most one pending wait; re-registering replaces it. *)

val update_blockers : t -> txn -> txn list -> unit
(** Replace the blocker set of a waiting transaction (no-op if it is not
    waiting). *)

val add_blocker : t -> txn -> txn -> unit
(** Add one edge to an existing wait (no-op if not waiting). *)

val clear_wait : t -> txn -> unit
(** The transaction is no longer blocked (granted); drops its edges
    without invoking the cancel thunk. *)

val is_waiting : t -> txn -> bool

val is_active : t -> txn -> bool
(** The transaction has begun and not yet ended — the audit's notion of
    a legitimate lock owner. *)

val cancel_wait : t -> txn -> unit
(** Resolve a pending wait by invoking its [cancel] thunk (dequeue and
    resume with [Aborted]); a no-op when the transaction is not
    waiting.  Used to break deadlock cycles, and by crash recovery to
    unblock a crashed client's transaction wherever it is queued. *)

val any_cycle : t -> txn list option
(** Any cycle currently in the graph (audit invariant: always [None]
    outside of [check_deadlock] itself, since every edge addition runs
    detection). *)

val check_deadlock : t -> from:txn -> int
(** Detect and break every cycle reachable from [from].  Returns the
    number of victims aborted (0 when no deadlock).  Detection must be
    run after every edge addition; cycles always involve the
    most-recently blocked transaction. *)

val deadlocks : t -> int
(** Total victims aborted since creation. *)

val waiting_count : t -> int
(** Waits registered in this graph only (not cluster-wide). *)

val dump : t -> (txn * txn list * string) list
(** Snapshot of the graph: each waiting transaction with its blockers
    (diagnostics). *)
